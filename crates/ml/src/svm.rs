//! Support-vector machine trained with (simplified) Sequential Minimal
//! Optimization.
//!
//! The paper's headline classifier: compact to serialize, robust to the
//! sparse road-following datasets that overfit decision trees (§3.2). This
//! implementation supports linear and RBF kernels, soft margins, and a full
//! kernel cache; it follows Platt's SMO in the simplified form (random
//! second multiplier) with a bounded iteration budget.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::linalg::{dist_sq, dot};
use crate::{Classifier, Dataset};

/// SVM kernel functions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Kernel {
    /// `K(a, b) = a·b`.
    Linear,
    /// `K(a, b) = exp(−γ‖a−b‖²)`.
    Rbf {
        /// The RBF width parameter γ.
        gamma: f64,
    },
}

impl Kernel {
    /// Evaluates the kernel on two feature vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        match *self {
            Kernel::Linear => dot(a, b),
            Kernel::Rbf { gamma } => (-gamma * dist_sq(a, b)).exp(),
        }
    }
}

/// Errors from SVM training.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvmError {
    /// The dataset is empty.
    Empty,
    /// Only one class is present.
    SingleClass,
}

impl std::fmt::Display for SvmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SvmError::Empty => write!(f, "training set is empty"),
            SvmError::SingleClass => write!(f, "training set contains a single class"),
        }
    }
}

impl std::error::Error for SvmError {}

/// Trainer for [`SvmModel`].
///
/// # Examples
///
/// ```
/// use waldo_ml::{Classifier, Dataset};
/// use waldo_ml::svm::{Kernel, SvmTrainer};
///
/// let ds = Dataset::from_rows(
///     vec![vec![-1.0, 0.0], vec![-1.5, 0.3], vec![1.0, 0.0], vec![1.5, -0.3]],
///     vec![false, false, true, true],
/// ).unwrap();
/// let model = SvmTrainer::new().kernel(Kernel::Linear).fit(&ds).unwrap();
/// assert!(model.predict(&[1.2, 0.0]));
/// assert!(!model.predict(&[-1.2, 0.0]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmTrainer {
    c: f64,
    kernel: Option<Kernel>,
    tol: f64,
    max_passes: usize,
    max_iter: usize,
    seed: u64,
}

impl Default for SvmTrainer {
    fn default() -> Self {
        Self::new()
    }
}

impl SvmTrainer {
    /// Creates a trainer with `C = 10`, an RBF kernel with γ = 1/dim
    /// (features are expected standardized), tolerance `1e-3`, and a
    /// bounded iteration budget.
    pub fn new() -> Self {
        Self { c: 10.0, kernel: None, tol: 1e-3, max_passes: 3, max_iter: 120, seed: 0 }
    }

    /// Soft-margin penalty `C` (default 10).
    ///
    /// # Panics
    ///
    /// Panics unless `c > 0`.
    pub fn c(mut self, c: f64) -> Self {
        assert!(c > 0.0, "C must be positive");
        self.c = c;
        self
    }

    /// Kernel override (default: RBF with γ = 1/dim at fit time).
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = Some(kernel);
        self
    }

    /// KKT violation tolerance (default `1e-3`).
    pub fn tol(mut self, tol: f64) -> Self {
        assert!(tol > 0.0, "tolerance must be positive");
        self.tol = tol;
        self
    }

    /// Number of consecutive clean passes declaring convergence (default 3).
    pub fn max_passes(mut self, p: usize) -> Self {
        assert!(p > 0, "at least one pass is required");
        self.max_passes = p;
        self
    }

    /// Hard cap on outer iterations (default 120).
    pub fn max_iter(mut self, it: usize) -> Self {
        assert!(it > 0, "at least one iteration is required");
        self.max_iter = it;
        self
    }

    /// Seed for the random second-multiplier choice.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Trains on `ds` (labels: `true` ⇒ +1, `false` ⇒ −1).
    ///
    /// # Errors
    ///
    /// Returns [`SvmError`] if the dataset is empty or single-class.
    pub fn fit(&self, ds: &Dataset) -> Result<SvmModel, SvmError> {
        if ds.is_empty() {
            return Err(SvmError::Empty);
        }
        if !ds.has_both_classes() {
            return Err(SvmError::SingleClass);
        }
        let n = ds.len();
        let kernel = self.kernel.unwrap_or(Kernel::Rbf { gamma: 1.0 / ds.dim().max(1) as f64 });
        let y: Vec<f64> = ds.labels().iter().map(|&l| if l { 1.0 } else { -1.0 }).collect();

        // Full kernel cache: n ≤ a few thousand in this system.
        let mut k = vec![0.0f64; n * n];
        for i in 0..n {
            for j in i..n {
                let v = kernel.eval(&ds.rows()[i], &ds.rows()[j]);
                k[i * n + j] = v;
                k[j * n + i] = v;
            }
        }

        let mut alpha = vec![0.0f64; n];
        let mut b = 0.0f64;
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5e_ed);

        let f = |alpha: &[f64], b: f64, k: &[f64], idx: usize| -> f64 {
            let mut s = b;
            for j in 0..n {
                if alpha[j] != 0.0 {
                    s += alpha[j] * y[j] * k[j * n + idx];
                }
            }
            s
        };

        let mut passes = 0;
        let mut iter = 0;
        while passes < self.max_passes && iter < self.max_iter {
            let mut changed = 0usize;
            for i in 0..n {
                let e_i = f(&alpha, b, &k, i) - y[i];
                let viol = (y[i] * e_i < -self.tol && alpha[i] < self.c)
                    || (y[i] * e_i > self.tol && alpha[i] > 0.0);
                if !viol {
                    continue;
                }
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let e_j = f(&alpha, b, &k, j) - y[j];
                let (a_i_old, a_j_old) = (alpha[i], alpha[j]);
                let (lo, hi) = if (y[i] - y[j]).abs() > f64::EPSILON {
                    ((a_j_old - a_i_old).max(0.0), (self.c + a_j_old - a_i_old).min(self.c))
                } else {
                    ((a_i_old + a_j_old - self.c).max(0.0), (a_i_old + a_j_old).min(self.c))
                };
                // Guard against floating-point producing hi marginally
                // below lo (e.g. −2.2e−16 when the box collapses).
                let hi = hi.max(lo);
                if hi - lo < 1e-12 {
                    continue;
                }
                let eta = 2.0 * k[i * n + j] - k[i * n + i] - k[j * n + j];
                if eta >= 0.0 {
                    continue;
                }
                let mut a_j = a_j_old - y[j] * (e_i - e_j) / eta;
                a_j = a_j.clamp(lo, hi);
                if (a_j - a_j_old).abs() < 1e-6 {
                    continue;
                }
                let a_i = a_i_old + y[i] * y[j] * (a_j_old - a_j);
                alpha[i] = a_i;
                alpha[j] = a_j;

                let b1 = b
                    - e_i
                    - y[i] * (a_i - a_i_old) * k[i * n + i]
                    - y[j] * (a_j - a_j_old) * k[i * n + j];
                let b2 = b
                    - e_j
                    - y[i] * (a_i - a_i_old) * k[i * n + j]
                    - y[j] * (a_j - a_j_old) * k[j * n + j];
                b = if a_i > 0.0 && a_i < self.c {
                    b1
                } else if a_j > 0.0 && a_j < self.c {
                    b2
                } else {
                    (b1 + b2) / 2.0
                };
                changed += 1;
            }
            if changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
            iter += 1;
        }

        // Keep only support vectors.
        let mut support = Vec::new();
        let mut coef = Vec::new();
        for i in 0..n {
            if alpha[i] > 1e-9 {
                support.push(ds.rows()[i].clone());
                coef.push(alpha[i] * y[i]);
            }
        }
        Ok(SvmModel { kernel, support, coef, bias: b })
    }
}

/// A trained SVM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvmModel {
    kernel: Kernel,
    support: Vec<Vec<f64>>,
    coef: Vec<f64>,
    bias: f64,
}

impl SvmModel {
    /// Signed distance-like decision value; positive predicts `true`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn decision_function(&self, x: &[f64]) -> f64 {
        let mut s = self.bias;
        for (sv, &a) in self.support.iter().zip(&self.coef) {
            s += a * self.kernel.eval(sv, x);
        }
        s
    }

    /// Number of support vectors retained.
    pub fn support_vector_count(&self) -> usize {
        self.support.len()
    }

    /// The kernel the model was trained with.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Number of serialized parameters: every support vector plus its dual
    /// coefficient plus the bias. Backs the model-size experiment (the
    /// paper reports ~40 kB SVM vs ~4 kB NB descriptors).
    pub fn parameter_count(&self) -> usize {
        let dim = self.support.first().map_or(0, Vec::len);
        self.support.len() * (dim + 1) + 1
    }
}

impl Classifier for SvmModel {
    fn predict(&self, x: &[f64]) -> bool {
        self.decision_function(x) > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn linearly_separable(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let x: f64 = rng.gen_range(-1.0..1.0);
            let y: f64 = rng.gen_range(-1.0..1.0);
            let pos = x + y > 0.2 || x + y < -0.2;
            if !pos {
                continue; // leave a margin gap
            }
            rows.push(vec![x, y]);
            labels.push(x + y > 0.0);
        }
        Dataset::from_rows(rows, labels).unwrap()
    }

    /// Points inside a disk are positive — linearly inseparable.
    fn ring(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let x: f64 = rng.gen_range(-2.0..2.0);
            let y: f64 = rng.gen_range(-2.0..2.0);
            let r = (x * x + y * y).sqrt();
            if (0.8..1.2).contains(&r) {
                continue; // margin gap
            }
            rows.push(vec![x, y]);
            labels.push(r < 1.0);
        }
        Dataset::from_rows(rows, labels).unwrap()
    }

    #[test]
    fn linear_kernel_separates_linear_data() {
        let ds = linearly_separable(200, 1);
        let model = SvmTrainer::new().kernel(Kernel::Linear).seed(1).fit(&ds).unwrap();
        let correct =
            ds.rows().iter().zip(ds.labels()).filter(|(r, &l)| model.predict(r) == l).count();
        assert!(correct as f64 / ds.len() as f64 > 0.97, "{correct}/{}", ds.len());
    }

    #[test]
    fn rbf_kernel_separates_ring_data() {
        let ds = ring(300, 2);
        let model = SvmTrainer::new().kernel(Kernel::Rbf { gamma: 1.0 }).seed(2).fit(&ds).unwrap();
        let correct =
            ds.rows().iter().zip(ds.labels()).filter(|(r, &l)| model.predict(r) == l).count();
        assert!(correct as f64 / ds.len() as f64 > 0.95, "{correct}/{}", ds.len());
    }

    #[test]
    fn rbf_beats_linear_on_ring_data() {
        // Sanity check that the RBF result above is meaningful: a linear
        // boundary cannot carve out a disk, so it can do no better than
        // roughly the majority-class rate.
        let ds = ring(300, 3);
        let linear = SvmTrainer::new().kernel(Kernel::Linear).seed(3).fit(&ds).unwrap();
        let rbf = SvmTrainer::new().kernel(Kernel::Rbf { gamma: 1.0 }).seed(3).fit(&ds).unwrap();
        let acc = |m: &SvmModel| {
            ds.rows().iter().zip(ds.labels()).filter(|(r, &l)| m.predict(r) == l).count() as f64
                / ds.len() as f64
        };
        let majority = ds.negatives().max(ds.positives()) as f64 / ds.len() as f64;
        assert!(acc(&linear) <= majority + 0.05, "linear {} vs majority {majority}", acc(&linear));
        assert!(acc(&rbf) > acc(&linear) + 0.05, "rbf {} linear {}", acc(&rbf), acc(&linear));
    }

    #[test]
    fn training_errors() {
        assert_eq!(SvmTrainer::new().fit(&Dataset::default()), Err(SvmError::Empty));
        let single = Dataset::from_rows(vec![vec![0.0], vec![1.0]], vec![true, true]).unwrap();
        assert_eq!(SvmTrainer::new().fit(&single), Err(SvmError::SingleClass));
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = ring(150, 4);
        let a = SvmTrainer::new().seed(9).fit(&ds).unwrap();
        let b = SvmTrainer::new().seed(9).fit(&ds).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn support_vectors_are_a_subset() {
        let ds = linearly_separable(200, 5);
        let model = SvmTrainer::new().kernel(Kernel::Linear).fit(&ds).unwrap();
        assert!(model.support_vector_count() > 0);
        assert!(model.support_vector_count() <= ds.len());
        // A wide-margin problem should need few support vectors.
        assert!(model.support_vector_count() < ds.len() / 2);
    }

    #[test]
    fn decision_function_sign_matches_predict() {
        let ds = ring(200, 6);
        let model = SvmTrainer::new().fit(&ds).unwrap();
        for row in ds.rows().iter().take(20) {
            assert_eq!(model.predict(row), model.decision_function(row) > 0.0);
        }
    }

    #[test]
    fn kernel_eval_known_values() {
        assert_eq!(Kernel::Linear.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let rbf = Kernel::Rbf { gamma: 0.5 };
        assert!((rbf.eval(&[0.0], &[0.0]) - 1.0).abs() < 1e-12);
        assert!((rbf.eval(&[0.0], &[2.0]) - (-2.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn parameter_count_reflects_sv_budget() {
        let ds = linearly_separable(100, 7);
        let model = SvmTrainer::new().kernel(Kernel::Linear).fit(&ds).unwrap();
        let expect = model.support_vector_count() * 3 + 1;
        assert_eq!(model.parameter_count(), expect);
    }

    #[test]
    #[should_panic(expected = "C must be positive")]
    fn non_positive_c_panics() {
        let _ = SvmTrainer::new().c(0.0);
    }
}
