//! Support-vector machine trained with Sequential Minimal Optimization.
//!
//! The paper's headline classifier: compact to serialize, robust to the
//! sparse road-following datasets that overfit decision trees (§3.2). This
//! implementation supports linear and RBF kernels, soft margins, and a full
//! kernel cache. Training follows Platt's SMO with an **incremental error
//! cache**: `E[i] = f(i) − y[i]` is maintained across the whole training
//! set and refreshed in O(n) after each successful alpha step, instead of
//! recomputing `f()` per candidate (O(n) each, O(n²) per pass). The second
//! multiplier is chosen by max-|E_i − E_j| over non-bound points, with the
//! seeded RNG as a deterministic fallback — see DESIGN.md §8.4 for why
//! this preserves bit-level determinism. The pre-cache implementation is
//! retained as [`SvmTrainer::fit_naive_reference`] for benchmarks and the
//! equivalence property tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{DeError, Deserialize, Map, Serialize, Value};

use crate::linalg::{dist_sq, dot};
use crate::{Classifier, Dataset};

/// SVM kernel functions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Kernel {
    /// `K(a, b) = a·b`.
    Linear,
    /// `K(a, b) = exp(−γ‖a−b‖²)`.
    Rbf {
        /// The RBF width parameter γ.
        gamma: f64,
    },
}

impl Kernel {
    /// Evaluates the kernel on two feature vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        match *self {
            Kernel::Linear => dot(a, b),
            Kernel::Rbf { gamma } => (-gamma * dist_sq(a, b)).exp(),
        }
    }
}

/// Errors from SVM training.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvmError {
    /// The dataset is empty.
    Empty,
    /// Only one class is present.
    SingleClass,
}

impl std::fmt::Display for SvmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SvmError::Empty => write!(f, "training set is empty"),
            SvmError::SingleClass => write!(f, "training set contains a single class"),
        }
    }
}

impl std::error::Error for SvmError {}

/// Full symmetric kernel cache (`n ≤` a few thousand in this system).
///
/// RBF entries are computed from precomputed per-row squared norms —
/// `K(a, b) = exp(−γ(‖a‖² + ‖b‖² − 2a·b))` — so each entry costs one dot
/// product instead of a full `dist_sq` walk.
fn build_kernel_cache(kernel: Kernel, rows: &[Vec<f64>]) -> Vec<f64> {
    let n = rows.len();
    let mut k = vec![0.0f64; n * n];
    match kernel {
        Kernel::Linear => {
            for i in 0..n {
                for j in i..n {
                    let v = dot(&rows[i], &rows[j]);
                    k[i * n + j] = v;
                    k[j * n + i] = v;
                }
            }
        }
        Kernel::Rbf { gamma } => {
            let norms: Vec<f64> = rows.iter().map(|r| dot(r, r)).collect();
            for i in 0..n {
                for j in i..n {
                    // Rounding can push ‖a−b‖² marginally negative for
                    // near-identical rows; clamp so K ≤ 1 holds.
                    let d = (norms[i] + norms[j] - 2.0 * dot(&rows[i], &rows[j])).max(0.0);
                    let v = (-gamma * d).exp();
                    k[i * n + j] = v;
                    k[j * n + i] = v;
                }
            }
        }
    }
    k
}

/// Trainer for [`SvmModel`].
///
/// # Examples
///
/// ```
/// use waldo_ml::{Classifier, Dataset};
/// use waldo_ml::svm::{Kernel, SvmTrainer};
///
/// let ds = Dataset::from_rows(
///     vec![vec![-1.0, 0.0], vec![-1.5, 0.3], vec![1.0, 0.0], vec![1.5, -0.3]],
///     vec![false, false, true, true],
/// ).unwrap();
/// let model = SvmTrainer::new().kernel(Kernel::Linear).fit(&ds).unwrap();
/// assert!(model.predict(&[1.2, 0.0]));
/// assert!(!model.predict(&[-1.2, 0.0]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmTrainer {
    c: f64,
    kernel: Option<Kernel>,
    tol: f64,
    max_passes: usize,
    max_iter: usize,
    seed: u64,
}

impl Default for SvmTrainer {
    fn default() -> Self {
        Self::new()
    }
}

impl SvmTrainer {
    /// Creates a trainer with `C = 10`, an RBF kernel with γ = 1/dim
    /// (features are expected standardized), tolerance `1e-3`, and a
    /// bounded iteration budget.
    pub fn new() -> Self {
        Self { c: 10.0, kernel: None, tol: 1e-3, max_passes: 3, max_iter: 120, seed: 0 }
    }

    /// Soft-margin penalty `C` (default 10).
    ///
    /// # Panics
    ///
    /// Panics unless `c > 0`.
    pub fn c(mut self, c: f64) -> Self {
        assert!(c > 0.0, "C must be positive");
        self.c = c;
        self
    }

    /// Kernel override (default: RBF with γ = 1/dim at fit time).
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = Some(kernel);
        self
    }

    /// KKT violation tolerance (default `1e-3`).
    pub fn tol(mut self, tol: f64) -> Self {
        assert!(tol > 0.0, "tolerance must be positive");
        self.tol = tol;
        self
    }

    /// Number of consecutive clean passes declaring convergence (default 3).
    pub fn max_passes(mut self, p: usize) -> Self {
        assert!(p > 0, "at least one pass is required");
        self.max_passes = p;
        self
    }

    /// Hard cap on outer iterations (default 120).
    pub fn max_iter(mut self, it: usize) -> Self {
        assert!(it > 0, "at least one iteration is required");
        self.max_iter = it;
        self
    }

    /// Seed for the random second-multiplier fallback.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Trains on `ds` (labels: `true` ⇒ +1, `false` ⇒ −1) with the
    /// error-cached SMO.
    ///
    /// # Errors
    ///
    /// Returns [`SvmError`] if the dataset is empty or single-class.
    pub fn fit(&self, ds: &Dataset) -> Result<SvmModel, SvmError> {
        self.fit_impl(ds, |_, _, _, _, _| {})
    }

    /// Error-cached SMO core. `audit` fires after every successful alpha
    /// step with `(alpha, b, e, k, y)` so tests can verify the cache
    /// invariant `e[i] == f(i) − y[i]` at each update.
    fn fit_impl(
        &self,
        ds: &Dataset,
        mut audit: impl FnMut(&[f64], f64, &[f64], &[f64], &[f64]),
    ) -> Result<SvmModel, SvmError> {
        let _t = waldo_prof::scope("svm_fit");
        if ds.is_empty() {
            return Err(SvmError::Empty);
        }
        if !ds.has_both_classes() {
            return Err(SvmError::SingleClass);
        }
        let n = ds.len();
        let kernel = self.kernel.unwrap_or(Kernel::Rbf { gamma: 1.0 / ds.dim().max(1) as f64 });
        let y: Vec<f64> = ds.labels().iter().map(|&l| if l { 1.0 } else { -1.0 }).collect();
        let k = build_kernel_cache(kernel, ds.rows());

        let mut alpha = vec![0.0f64; n];
        let mut b = 0.0f64;
        // Error cache: with all alphas zero, f(i) = 0 so E[i] = −y[i].
        let mut e: Vec<f64> = y.iter().map(|&yi| -yi).collect();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5e_ed);

        let mut passes = 0;
        let mut iter = 0;
        while passes < self.max_passes && iter < self.max_iter {
            let mut changed = 0usize;
            for i in 0..n {
                let e_i = e[i];
                let viol = (y[i] * e_i < -self.tol && alpha[i] < self.c)
                    || (y[i] * e_i > self.tol && alpha[i] > 0.0);
                if !viol {
                    continue;
                }
                // Second multiplier: the non-bound point maximizing
                // |E_i − E_j| takes the largest unconstrained step. Strict
                // `>` keeps the first index on ties, so the scan order is
                // deterministic.
                let mut best: Option<(usize, f64)> = None;
                for (j, &a_j) in alpha.iter().enumerate() {
                    if j == i || a_j <= 0.0 || a_j >= self.c {
                        continue;
                    }
                    let gap = (e_i - e[j]).abs();
                    if best.is_none_or(|(_, g)| gap > g) {
                        best = Some((j, gap));
                    }
                }
                let mut stepped = match best {
                    Some((j, _)) => self.try_step(i, j, &k, &y, &mut alpha, &mut b, &mut e),
                    None => false,
                };
                if !stepped {
                    // Deterministic seeded fallback: no non-bound candidate,
                    // or the heuristic step was rejected at the boundary.
                    let mut j = rng.gen_range(0..n - 1);
                    if j >= i {
                        j += 1;
                    }
                    stepped = self.try_step(i, j, &k, &y, &mut alpha, &mut b, &mut e);
                }
                if stepped {
                    changed += 1;
                    audit(&alpha, b, &e, &k, &y);
                }
            }
            if changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
            iter += 1;
        }

        Ok(SvmModel::from_training(kernel, ds, &alpha, &y, b))
    }

    /// Attempts one SMO step on the pair `(i, j)`. On success updates
    /// `alpha`, `b`, and the full error cache in O(n), and returns `true`;
    /// on a rejected step (degenerate box, non-negative curvature, or a
    /// negligible move) leaves all state untouched and returns `false`.
    #[allow(clippy::too_many_arguments)]
    fn try_step(
        &self,
        i: usize,
        j: usize,
        k: &[f64],
        y: &[f64],
        alpha: &mut [f64],
        b: &mut f64,
        e: &mut [f64],
    ) -> bool {
        let n = y.len();
        if i == j {
            return false;
        }
        let (e_i, e_j) = (e[i], e[j]);
        let (a_i_old, a_j_old) = (alpha[i], alpha[j]);
        let (lo, hi) = if (y[i] - y[j]).abs() > f64::EPSILON {
            ((a_j_old - a_i_old).max(0.0), (self.c + a_j_old - a_i_old).min(self.c))
        } else {
            ((a_i_old + a_j_old - self.c).max(0.0), (a_i_old + a_j_old).min(self.c))
        };
        // Guard against floating-point producing hi marginally below lo
        // (e.g. −2.2e−16 when the box collapses).
        let hi = hi.max(lo);
        if hi - lo < 1e-12 {
            return false;
        }
        let eta = 2.0 * k[i * n + j] - k[i * n + i] - k[j * n + j];
        if eta >= 0.0 {
            return false;
        }
        let mut a_j = a_j_old - y[j] * (e_i - e_j) / eta;
        a_j = a_j.clamp(lo, hi);
        if (a_j - a_j_old).abs() < 1e-6 {
            return false;
        }
        let a_i = a_i_old + y[i] * y[j] * (a_j_old - a_j);
        alpha[i] = a_i;
        alpha[j] = a_j;

        let b1 = *b
            - e_i
            - y[i] * (a_i - a_i_old) * k[i * n + i]
            - y[j] * (a_j - a_j_old) * k[i * n + j];
        let b2 = *b
            - e_j
            - y[i] * (a_i - a_i_old) * k[i * n + j]
            - y[j] * (a_j - a_j_old) * k[j * n + j];
        let b_new = if a_i > 0.0 && a_i < self.c {
            b1
        } else if a_j > 0.0 && a_j < self.c {
            b2
        } else {
            (b1 + b2) / 2.0
        };

        // O(n) error-cache refresh: f changed by
        // Δf(t) = y_i·Δα_i·K_it + y_j·Δα_j·K_jt + Δb.
        let d_i = y[i] * (a_i - a_i_old);
        let d_j = y[j] * (a_j - a_j_old);
        let d_b = b_new - *b;
        *b = b_new;
        let (row_i, row_j) = (&k[i * n..(i + 1) * n], &k[j * n..(j + 1) * n]);
        for ((e_t, &k_it), &k_jt) in e.iter_mut().zip(row_i).zip(row_j) {
            *e_t += d_i * k_it + d_j * k_jt + d_b;
        }
        true
    }

    /// The pre-error-cache reference implementation: recomputes `f()` for
    /// every candidate (O(n) per KKT check, O(n²) per pass), picks the
    /// second multiplier uniformly at random, and builds RBF cache entries
    /// with full `dist_sq` walks. Retained as the baseline for the
    /// `svm_fit` before/after benchmark and as the convergence oracle for
    /// the SMO equivalence property tests.
    ///
    /// # Errors
    ///
    /// Returns [`SvmError`] if the dataset is empty or single-class.
    pub fn fit_naive_reference(&self, ds: &Dataset) -> Result<SvmModel, SvmError> {
        if ds.is_empty() {
            return Err(SvmError::Empty);
        }
        if !ds.has_both_classes() {
            return Err(SvmError::SingleClass);
        }
        let n = ds.len();
        let kernel = self.kernel.unwrap_or(Kernel::Rbf { gamma: 1.0 / ds.dim().max(1) as f64 });
        let y: Vec<f64> = ds.labels().iter().map(|&l| if l { 1.0 } else { -1.0 }).collect();

        let mut k = vec![0.0f64; n * n];
        for i in 0..n {
            for j in i..n {
                let v = kernel.eval(&ds.rows()[i], &ds.rows()[j]);
                k[i * n + j] = v;
                k[j * n + i] = v;
            }
        }

        let mut alpha = vec![0.0f64; n];
        let mut b = 0.0f64;
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5e_ed);

        let f = |alpha: &[f64], b: f64, k: &[f64], idx: usize| -> f64 {
            let mut s = b;
            for j in 0..n {
                if alpha[j] != 0.0 {
                    s += alpha[j] * y[j] * k[j * n + idx];
                }
            }
            s
        };

        let mut passes = 0;
        let mut iter = 0;
        while passes < self.max_passes && iter < self.max_iter {
            let mut changed = 0usize;
            for i in 0..n {
                let e_i = f(&alpha, b, &k, i) - y[i];
                let viol = (y[i] * e_i < -self.tol && alpha[i] < self.c)
                    || (y[i] * e_i > self.tol && alpha[i] > 0.0);
                if !viol {
                    continue;
                }
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let e_j = f(&alpha, b, &k, j) - y[j];
                let (a_i_old, a_j_old) = (alpha[i], alpha[j]);
                let (lo, hi) = if (y[i] - y[j]).abs() > f64::EPSILON {
                    ((a_j_old - a_i_old).max(0.0), (self.c + a_j_old - a_i_old).min(self.c))
                } else {
                    ((a_i_old + a_j_old - self.c).max(0.0), (a_i_old + a_j_old).min(self.c))
                };
                let hi = hi.max(lo);
                if hi - lo < 1e-12 {
                    continue;
                }
                let eta = 2.0 * k[i * n + j] - k[i * n + i] - k[j * n + j];
                if eta >= 0.0 {
                    continue;
                }
                let mut a_j = a_j_old - y[j] * (e_i - e_j) / eta;
                a_j = a_j.clamp(lo, hi);
                if (a_j - a_j_old).abs() < 1e-6 {
                    continue;
                }
                let a_i = a_i_old + y[i] * y[j] * (a_j_old - a_j);
                alpha[i] = a_i;
                alpha[j] = a_j;

                let b1 = b
                    - e_i
                    - y[i] * (a_i - a_i_old) * k[i * n + i]
                    - y[j] * (a_j - a_j_old) * k[i * n + j];
                let b2 = b
                    - e_j
                    - y[i] * (a_i - a_i_old) * k[i * n + j]
                    - y[j] * (a_j - a_j_old) * k[j * n + j];
                b = if a_i > 0.0 && a_i < self.c {
                    b1
                } else if a_j > 0.0 && a_j < self.c {
                    b2
                } else {
                    (b1 + b2) / 2.0
                };
                changed += 1;
            }
            if changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
            iter += 1;
        }

        Ok(SvmModel::from_training(kernel, ds, &alpha, &y, b))
    }
}

/// A trained SVM.
///
/// Serialized as `{kernel, support, coef, bias}`; the prediction caches
/// (per-support-vector squared norms for RBF, the explicit weight vector
/// for linear kernels) are recomputed on construction and deserialization
/// rather than stored.
#[derive(Debug, Clone)]
pub struct SvmModel {
    kernel: Kernel,
    support: Vec<Vec<f64>>,
    coef: Vec<f64>,
    bias: f64,
    /// Per-support-vector squared norms (RBF prediction cache).
    sv_norms: Vec<f64>,
    /// Explicit weight vector `w = Σ αᵢyᵢxᵢ` (linear prediction cache;
    /// empty for RBF kernels).
    weights: Vec<f64>,
}

impl SvmModel {
    /// Assembles a model from its serialized parts, computing the
    /// prediction caches. This is the decode path for both the JSON
    /// descriptor and the `waldo-serve` binary wire format.
    pub fn from_parts(kernel: Kernel, support: Vec<Vec<f64>>, coef: Vec<f64>, bias: f64) -> Self {
        let sv_norms = match kernel {
            Kernel::Rbf { .. } => support.iter().map(|sv| dot(sv, sv)).collect(),
            Kernel::Linear => Vec::new(),
        };
        let weights = match kernel {
            Kernel::Linear => {
                let dim = support.first().map_or(0, Vec::len);
                let mut w = vec![0.0f64; dim];
                for (sv, &a) in support.iter().zip(&coef) {
                    for (w_d, &x_d) in w.iter_mut().zip(sv) {
                        *w_d += a * x_d;
                    }
                }
                w
            }
            Kernel::Rbf { .. } => Vec::new(),
        };
        Self { kernel, support, coef, bias, sv_norms, weights }
    }

    /// Extracts the support vectors (`alpha > 1e-9`) from a finished
    /// training run.
    fn from_training(kernel: Kernel, ds: &Dataset, alpha: &[f64], y: &[f64], bias: f64) -> Self {
        let mut support = Vec::new();
        let mut coef = Vec::new();
        for (i, &a) in alpha.iter().enumerate() {
            if a > 1e-9 {
                support.push(ds.rows()[i].clone());
                coef.push(a * y[i]);
            }
        }
        Self::from_parts(kernel, support, coef, bias)
    }

    /// Signed distance-like decision value; positive predicts `true`.
    ///
    /// Linear kernels evaluate `w·x + b` (one dot product total); RBF
    /// kernels use the cached support-vector norms so each term costs one
    /// dot product.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn decision_function(&self, x: &[f64]) -> f64 {
        let _t = waldo_obs::timed("svm_predict");
        match self.kernel {
            Kernel::Linear => dot(&self.weights, x) + self.bias,
            Kernel::Rbf { gamma } => {
                let x_norm = dot(x, x);
                let mut s = self.bias;
                for ((sv, &a), &sv_norm) in self.support.iter().zip(&self.coef).zip(&self.sv_norms)
                {
                    let d = (sv_norm + x_norm - 2.0 * dot(sv, x)).max(0.0);
                    s += a * (-gamma * d).exp();
                }
                s
            }
        }
    }

    /// Pre-cache decision path: a full kernel evaluation per support
    /// vector. Retained as the baseline for the `svm_predict` benchmark.
    pub fn decision_function_naive(&self, x: &[f64]) -> f64 {
        let mut s = self.bias;
        for (sv, &a) in self.support.iter().zip(&self.coef) {
            s += a * self.kernel.eval(sv, x);
        }
        s
    }

    /// Number of support vectors retained.
    pub fn support_vector_count(&self) -> usize {
        self.support.len()
    }

    /// The retained support vectors.
    pub fn support_vectors(&self) -> &[Vec<f64>] {
        &self.support
    }

    /// Per-support-vector dual coefficients (`alpha_i * y_i`), parallel to
    /// [`support_vectors`](Self::support_vectors).
    pub fn coefficients(&self) -> &[f64] {
        &self.coef
    }

    /// The kernel the model was trained with.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The decision-function bias term `b`.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Number of serialized parameters: every support vector plus its dual
    /// coefficient plus the bias. Backs the model-size experiment (the
    /// paper reports ~40 kB SVM vs ~4 kB NB descriptors).
    pub fn parameter_count(&self) -> usize {
        let dim = self.support.first().map_or(0, Vec::len);
        self.support.len() * (dim + 1) + 1
    }
}

/// Equality over the serialized descriptor (kernel, support vectors, dual
/// coefficients, bias). The prediction caches are deterministic functions
/// of those fields, so comparing them would be redundant.
impl PartialEq for SvmModel {
    fn eq(&self, other: &Self) -> bool {
        self.kernel == other.kernel
            && self.support == other.support
            && self.coef == other.coef
            && self.bias == other.bias
    }
}

impl Serialize for SvmModel {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("kernel", self.kernel.to_value());
        m.insert("support", self.support.to_value());
        m.insert("coef", self.coef.to_value());
        m.insert("bias", self.bias.to_value());
        Value::Object(m)
    }
}

impl Deserialize for SvmModel {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let obj = value.as_object().ok_or_else(|| DeError::msg("SvmModel: expected object"))?;
        let field = |name: &str| {
            obj.get(name).ok_or_else(|| DeError::msg(format!("SvmModel: missing field {name}")))
        };
        Ok(Self::from_parts(
            Kernel::from_value(field("kernel")?)?,
            Vec::<Vec<f64>>::from_value(field("support")?)?,
            Vec::<f64>::from_value(field("coef")?)?,
            f64::from_value(field("bias")?)?,
        ))
    }
}

impl Classifier for SvmModel {
    fn predict(&self, x: &[f64]) -> bool {
        self.decision_function(x) > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn linearly_separable(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let x: f64 = rng.gen_range(-1.0..1.0);
            let y: f64 = rng.gen_range(-1.0..1.0);
            let pos = x + y > 0.2 || x + y < -0.2;
            if !pos {
                continue; // leave a margin gap
            }
            rows.push(vec![x, y]);
            labels.push(x + y > 0.0);
        }
        Dataset::from_rows(rows, labels).unwrap()
    }

    /// Points inside a disk are positive — linearly inseparable.
    fn ring(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let x: f64 = rng.gen_range(-2.0..2.0);
            let y: f64 = rng.gen_range(-2.0..2.0);
            let r = (x * x + y * y).sqrt();
            if (0.8..1.2).contains(&r) {
                continue; // margin gap
            }
            rows.push(vec![x, y]);
            labels.push(r < 1.0);
        }
        Dataset::from_rows(rows, labels).unwrap()
    }

    #[test]
    fn linear_kernel_separates_linear_data() {
        let ds = linearly_separable(200, 1);
        let model = SvmTrainer::new().kernel(Kernel::Linear).seed(1).fit(&ds).unwrap();
        let correct =
            ds.rows().iter().zip(ds.labels()).filter(|(r, &l)| model.predict(r) == l).count();
        assert!(correct as f64 / ds.len() as f64 > 0.97, "{correct}/{}", ds.len());
    }

    #[test]
    fn rbf_kernel_separates_ring_data() {
        let ds = ring(300, 2);
        let model = SvmTrainer::new().kernel(Kernel::Rbf { gamma: 1.0 }).seed(2).fit(&ds).unwrap();
        let correct =
            ds.rows().iter().zip(ds.labels()).filter(|(r, &l)| model.predict(r) == l).count();
        assert!(correct as f64 / ds.len() as f64 > 0.95, "{correct}/{}", ds.len());
    }

    #[test]
    fn rbf_beats_linear_on_ring_data() {
        // Sanity check that the RBF result above is meaningful: a linear
        // boundary cannot carve out a disk, so it can do no better than
        // roughly the majority-class rate.
        let ds = ring(300, 3);
        let linear = SvmTrainer::new().kernel(Kernel::Linear).seed(3).fit(&ds).unwrap();
        let rbf = SvmTrainer::new().kernel(Kernel::Rbf { gamma: 1.0 }).seed(3).fit(&ds).unwrap();
        let acc = |m: &SvmModel| {
            ds.rows().iter().zip(ds.labels()).filter(|(r, &l)| m.predict(r) == l).count() as f64
                / ds.len() as f64
        };
        let majority = ds.negatives().max(ds.positives()) as f64 / ds.len() as f64;
        assert!(acc(&linear) <= majority + 0.05, "linear {} vs majority {majority}", acc(&linear));
        assert!(acc(&rbf) > acc(&linear) + 0.05, "rbf {} linear {}", acc(&rbf), acc(&linear));
    }

    #[test]
    fn training_errors() {
        assert_eq!(SvmTrainer::new().fit(&Dataset::default()), Err(SvmError::Empty));
        let single = Dataset::from_rows(vec![vec![0.0], vec![1.0]], vec![true, true]).unwrap();
        assert_eq!(SvmTrainer::new().fit(&single), Err(SvmError::SingleClass));
        assert_eq!(
            SvmTrainer::new().fit_naive_reference(&Dataset::default()),
            Err(SvmError::Empty)
        );
        assert_eq!(SvmTrainer::new().fit_naive_reference(&single), Err(SvmError::SingleClass));
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = ring(150, 4);
        let a = SvmTrainer::new().seed(9).fit(&ds).unwrap();
        let b = SvmTrainer::new().seed(9).fit(&ds).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn support_vectors_are_a_subset() {
        let ds = linearly_separable(200, 5);
        let model = SvmTrainer::new().kernel(Kernel::Linear).fit(&ds).unwrap();
        assert!(model.support_vector_count() > 0);
        assert!(model.support_vector_count() <= ds.len());
        // A wide-margin problem should need few support vectors.
        assert!(model.support_vector_count() < ds.len() / 2);
    }

    #[test]
    fn decision_function_sign_matches_predict() {
        let ds = ring(200, 6);
        let model = SvmTrainer::new().fit(&ds).unwrap();
        for row in ds.rows().iter().take(20) {
            assert_eq!(model.predict(row), model.decision_function(row) > 0.0);
        }
    }

    #[test]
    fn cached_decision_matches_naive_decision() {
        // The norms-based RBF path and the w-vector linear path must agree
        // with the plain kernel-sum within rounding.
        for kernel in [Kernel::Linear, Kernel::Rbf { gamma: 0.7 }] {
            let ds = ring(200, 8);
            let model = SvmTrainer::new().kernel(kernel).seed(8).fit(&ds).unwrap();
            for row in ds.rows().iter().take(40) {
                let fast = model.decision_function(row);
                let naive = model.decision_function_naive(row);
                assert!((fast - naive).abs() < 1e-9, "{kernel:?}: {fast} vs {naive}");
            }
        }
    }

    #[test]
    fn error_cache_matches_recomputed_f_after_every_update() {
        // The invariant behind the whole optimization: after every
        // successful alpha step, the incrementally maintained E equals the
        // from-scratch f(i) − y[i] for every point.
        let ds = ring(120, 10);
        let mut audits = 0usize;
        let trainer = SvmTrainer::new().seed(10);
        trainer
            .fit_impl(&ds, |alpha, b, e, k, y| {
                audits += 1;
                let n = y.len();
                for idx in 0..n {
                    let mut f = b;
                    for t in 0..n {
                        if alpha[t] != 0.0 {
                            f += alpha[t] * y[t] * k[t * n + idx];
                        }
                    }
                    let expect = f - y[idx];
                    assert!(
                        (e[idx] - expect).abs() < 1e-8,
                        "update {audits}: e[{idx}] = {} but f−y = {expect}",
                        e[idx]
                    );
                }
            })
            .unwrap();
        assert!(audits > 0, "training must take successful steps");
    }

    #[test]
    fn serde_roundtrip_rebuilds_caches() {
        for kernel in [Kernel::Linear, Kernel::Rbf { gamma: 1.0 }] {
            let ds = ring(150, 12);
            let model = SvmTrainer::new().kernel(kernel).seed(12).fit(&ds).unwrap();
            let back = SvmModel::from_value(&model.to_value()).unwrap();
            assert_eq!(model, back);
            // The rebuilt caches must drive identical decisions.
            for row in ds.rows().iter().take(20) {
                assert_eq!(
                    model.decision_function(row).to_bits(),
                    back.decision_function(row).to_bits()
                );
            }
        }
    }

    #[test]
    fn kernel_eval_known_values() {
        assert_eq!(Kernel::Linear.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let rbf = Kernel::Rbf { gamma: 0.5 };
        assert!((rbf.eval(&[0.0], &[0.0]) - 1.0).abs() < 1e-12);
        assert!((rbf.eval(&[0.0], &[2.0]) - (-2.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn parameter_count_reflects_sv_budget() {
        let ds = linearly_separable(100, 7);
        let model = SvmTrainer::new().kernel(Kernel::Linear).fit(&ds).unwrap();
        let expect = model.support_vector_count() * 3 + 1;
        assert_eq!(model.parameter_count(), expect);
    }

    #[test]
    #[should_panic(expected = "C must be positive")]
    fn non_positive_c_panics() {
        let _ = SvmTrainer::new().c(0.0);
    }
}
