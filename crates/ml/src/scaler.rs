//! Feature standardization.
//!
//! SVMs and k-means are scale-sensitive; location coordinates (tens of
//! kilometres) and dB features (tens of dB) differ by three orders of
//! magnitude, so every pipeline standardizes features first.

use serde::{Deserialize, Serialize};

use crate::stats::{mean, std_dev};
use crate::Dataset;

/// Per-dimension standardizer: `x → (x − μ) / σ`.
///
/// Dimensions with zero spread map to `0.0` (they carry no information).
///
/// # Examples
///
/// ```
/// use waldo_ml::{Dataset, StandardScaler};
///
/// let ds = Dataset::from_rows(vec![vec![0.0], vec![10.0]], vec![false, true]).unwrap();
/// let scaler = StandardScaler::fit(&ds);
/// assert_eq!(scaler.transform(&[5.0]), vec![0.0]); // the mean maps to 0
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Learns per-dimension mean and standard deviation from `ds`.
    ///
    /// # Panics
    ///
    /// Panics if `ds` is empty.
    pub fn fit(ds: &Dataset) -> Self {
        assert!(!ds.is_empty(), "cannot fit a scaler on an empty dataset");
        let dim = ds.dim();
        let mut means = Vec::with_capacity(dim);
        let mut stds = Vec::with_capacity(dim);
        for d in 0..dim {
            let col: Vec<f64> = ds.rows().iter().map(|r| r[d]).collect();
            means.push(mean(&col));
            stds.push(std_dev(&col));
        }
        Self { means, stds }
    }

    /// Identity scaler of dimension `dim` (μ = 0, σ = 1), useful when a
    /// caller wants to bypass scaling without branching.
    pub fn identity(dim: usize) -> Self {
        Self { means: vec![0.0; dim], stds: vec![1.0; dim] }
    }

    /// Assembles a scaler from decoded parts.
    ///
    /// # Panics
    ///
    /// Panics if `means` and `stds` differ in length.
    pub fn from_parts(means: Vec<f64>, stds: Vec<f64>) -> Self {
        assert_eq!(means.len(), stds.len(), "means/stds dimension mismatch");
        Self { means, stds }
    }

    /// Per-dimension means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-dimension standard deviations.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Feature dimension this scaler operates on.
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// Standardizes one row.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim(), "scaler dimension mismatch");
        x.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(v, (m, s))| if *s > 0.0 { (v - m) / s } else { 0.0 })
            .collect()
    }

    /// Standardizes a whole dataset.
    pub fn transform_dataset(&self, ds: &Dataset) -> Dataset {
        ds.map_rows(|r| self.transform(r))
    }

    /// Number of serialized parameters (used for the model-size experiment).
    pub fn parameter_count(&self) -> usize {
        self.means.len() + self.stds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        Dataset::from_rows(
            vec![vec![0.0, 100.0], vec![10.0, 100.0], vec![20.0, 100.0]],
            vec![false, true, false],
        )
        .unwrap()
    }

    #[test]
    fn transformed_columns_are_standardized() {
        let ds = dataset();
        let scaler = StandardScaler::fit(&ds);
        let out = scaler.transform_dataset(&ds);
        let col0: Vec<f64> = out.rows().iter().map(|r| r[0]).collect();
        assert!(mean(&col0).abs() < 1e-12);
        assert!((std_dev(&col0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_column_maps_to_zero() {
        let ds = dataset();
        let scaler = StandardScaler::fit(&ds);
        let out = scaler.transform(&[10.0, 100.0]);
        assert_eq!(out[1], 0.0);
    }

    #[test]
    fn identity_passes_through() {
        let s = StandardScaler::identity(2);
        assert_eq!(s.transform(&[3.0, -4.0]), vec![3.0, -4.0]);
        assert_eq!(s.parameter_count(), 4);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn dimension_mismatch_panics() {
        StandardScaler::fit(&dataset()).transform(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_fit_panics() {
        let _ = StandardScaler::fit(&Dataset::default());
    }
}
