//! From-scratch machine-learning substrate for the Waldo reproduction.
//!
//! The paper implements Waldo on OpenCV's ML library; no comparable library
//! is available here, so this crate provides everything the system and its
//! baselines consume:
//!
//! * [`svm`] — a support-vector machine trained with SMO (linear and RBF
//!   kernels); the paper's primary classifier.
//! * [`nb`] — Gaussian Naive Bayes, the paper's second classifier.
//! * [`kmeans`] — k-means++ clustering for locality identification and for
//!   the V-Scope baseline's measurement clustering.
//! * [`tree`] — a CART decision tree (the paper trained one and rejected it
//!   as overfit; the reproduction keeps it for the same ablation).
//! * [`knn`] — k-nearest-neighbour classification/regression (the
//!   measurement-augmented-database family interpolates this way).
//! * [`linreg`] — ordinary least squares (V-Scope's propagation-model fit
//!   and the sensor-calibration map).
//! * [`logistic`] — L2-regularized logistic regression, the
//!   "regression-analysis" classifier family of §3.2 and the most compact
//!   descriptor of all.
//! * [`anova`] — one-way ANOVA with real F-distribution p-values (feature
//!   screening, §3.2).
//! * [`metrics`], [`model_selection`], [`roc`], [`scaler`], [`stats`] —
//!   evaluation plumbing: confusion matrices, ROC/AUC, 10-fold CV,
//!   standardization, descriptive statistics.
//!
//! All estimators follow the same convention: a *trainer* (builder-style
//! configuration) has a `fit(&Dataset) -> Model` method, and models
//! implement [`Classifier::predict`] on feature slices.
//!
//! # Examples
//!
//! ```
//! use waldo_ml::{Dataset, Classifier};
//! use waldo_ml::nb::GaussianNbTrainer;
//!
//! let ds = Dataset::from_rows(
//!     vec![vec![0.0], vec![0.2], vec![5.0], vec![5.2]],
//!     vec![false, false, true, true],
//! ).unwrap();
//! let model = GaussianNbTrainer::new().fit(&ds).unwrap();
//! assert!(model.predict(&[5.1]));
//! assert!(!model.predict(&[0.1]));
//! ```

pub mod anova;
mod dataset;
pub mod kmeans;
pub mod knn;
pub mod linalg;
pub mod linreg;
pub mod logistic;
pub mod metrics;
pub mod model_selection;
pub mod nb;
pub mod roc;
pub mod scaler;
pub mod special;
pub mod stats;
pub mod svm;
pub mod tree;

pub use dataset::{Dataset, DatasetError};
pub use metrics::ConfusionMatrix;
pub use scaler::StandardScaler;

/// A trained binary classifier over dense feature vectors.
///
/// `true` is the positive class; in the Waldo system positive means
/// **not safe** for white-space operation (an incumbent is protected
/// there).
pub trait Classifier {
    /// Predicts the class of one feature vector.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `x.len()` differs from the dimension
    /// the model was trained on.
    fn predict(&self, x: &[f64]) -> bool;

    /// Predicts a whole batch, one row at a time.
    fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<bool> {
        rows.iter().map(|r| self.predict(r)).collect()
    }
}
