//! CART decision tree (Gini impurity, axis-aligned splits).
//!
//! The paper trained decision trees, saw ≤ 1 % error, and rejected them as
//! overfit to the road-following dataset (§3.2 — "standard decision trees
//! are usually outperformed by SVM"). The reproduction keeps the tree to
//! re-run exactly that ablation.

use serde::{Deserialize, Serialize};

use crate::{Classifier, Dataset};

/// Errors from tree training.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeError {
    /// The dataset is empty.
    Empty,
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::Empty => write!(f, "training set is empty"),
        }
    }
}

impl std::error::Error for TreeError {}

/// Trainer for [`DecisionTree`].
///
/// # Examples
///
/// ```
/// use waldo_ml::{Classifier, Dataset};
/// use waldo_ml::tree::DecisionTreeTrainer;
///
/// let ds = Dataset::from_rows(
///     vec![vec![0.0], vec![1.0], vec![10.0], vec![11.0]],
///     vec![false, false, true, true],
/// ).unwrap();
/// let tree = DecisionTreeTrainer::new().fit(&ds).unwrap();
/// assert!(tree.predict(&[10.5]));
/// assert!(!tree.predict(&[0.5]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionTreeTrainer {
    max_depth: usize,
    min_samples_leaf: usize,
}

impl Default for DecisionTreeTrainer {
    fn default() -> Self {
        Self::new()
    }
}

impl DecisionTreeTrainer {
    /// Creates a trainer with depth ≤ 12 and ≥ 1 sample per leaf.
    pub fn new() -> Self {
        Self { max_depth: 12, min_samples_leaf: 1 }
    }

    /// Caps tree depth.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn max_depth(mut self, d: usize) -> Self {
        assert!(d > 0, "depth must be at least one");
        self.max_depth = d;
        self
    }

    /// Minimum samples per leaf (pre-pruning).
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn min_samples_leaf(mut self, m: usize) -> Self {
        assert!(m > 0, "leaves need at least one sample");
        self.min_samples_leaf = m;
        self
    }

    /// Fits a tree.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::Empty`] on an empty dataset. A single-class
    /// dataset yields a valid single-leaf tree.
    pub fn fit(&self, ds: &Dataset) -> Result<DecisionTree, TreeError> {
        if ds.is_empty() {
            return Err(TreeError::Empty);
        }
        let indices: Vec<usize> = (0..ds.len()).collect();
        let root = self.build(ds, &indices, 0);
        Ok(DecisionTree { root })
    }

    fn build(&self, ds: &Dataset, indices: &[usize], depth: usize) -> Node {
        let positives = indices.iter().filter(|&&i| ds.labels()[i]).count();
        let majority = positives * 2 >= indices.len();
        if depth >= self.max_depth
            || positives == 0
            || positives == indices.len()
            || indices.len() < 2 * self.min_samples_leaf
        {
            return Node::Leaf { not_safe: majority };
        }

        match best_split(ds, indices, self.min_samples_leaf) {
            None => Node::Leaf { not_safe: majority },
            Some((feature, threshold)) => {
                let (left, right): (Vec<usize>, Vec<usize>) =
                    indices.iter().partition(|&&i| ds.rows()[i][feature] <= threshold);
                if left.is_empty() || right.is_empty() {
                    return Node::Leaf { not_safe: majority };
                }
                Node::Split {
                    feature,
                    threshold,
                    left: Box::new(self.build(ds, &left, depth + 1)),
                    right: Box::new(self.build(ds, &right, depth + 1)),
                }
            }
        }
    }
}

fn gini(pos: usize, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let p = pos as f64 / total as f64;
    2.0 * p * (1.0 - p)
}

/// Best (feature, threshold) by weighted Gini, or `None` if no split
/// improves purity.
fn best_split(ds: &Dataset, indices: &[usize], min_leaf: usize) -> Option<(usize, f64)> {
    let total = indices.len();
    let total_pos = indices.iter().filter(|&&i| ds.labels()[i]).count();
    let parent = gini(total_pos, total);
    let mut best: Option<(f64, usize, f64)> = None;

    for feature in 0..ds.dim() {
        let mut vals: Vec<(f64, bool)> =
            indices.iter().map(|&i| (ds.rows()[i][feature], ds.labels()[i])).collect();
        vals.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut left_pos = 0usize;
        for split_at in 1..total {
            if vals[split_at - 1].1 {
                left_pos += 1;
            }
            if vals[split_at - 1].0 == vals[split_at].0 {
                continue; // cannot split between equal values
            }
            if split_at < min_leaf || total - split_at < min_leaf {
                continue;
            }
            let left_g = gini(left_pos, split_at);
            let right_g = gini(total_pos - left_pos, total - split_at);
            let weighted =
                (split_at as f64 * left_g + (total - split_at) as f64 * right_g) / total as f64;
            let gain = parent - weighted;
            // Zero-gain splits are admitted (gain ≥ 0): problems like XOR
            // have no first split that improves Gini, yet splitting unlocks
            // pure children one level down. Recursion still terminates
            // because both children are strictly smaller.
            if gain >= -1e-12 && best.is_none_or(|(bg, _, _)| gain > bg) {
                let threshold = (vals[split_at - 1].0 + vals[split_at].0) / 2.0;
                best = Some((gain, feature, threshold));
            }
        }
    }
    best.map(|(_, f, t)| (f, t))
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf { not_safe: bool },
    Split { feature: usize, threshold: f64, left: Box<Node>, right: Box<Node> },
}

impl Node {
    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 0,
            Node::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }

    fn leaves(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { left, right, .. } => left.leaves() + right.leaves(),
        }
    }
}

/// A tree node in flattened (preorder) form, for wire encoding. A `Split`
/// is always followed by its complete left subtree, then its complete
/// right subtree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlatNode {
    /// A leaf carrying the not-safe decision.
    Leaf {
        /// Whether this leaf predicts not-safe.
        not_safe: bool,
    },
    /// An axis-aligned split.
    Split {
        /// Feature index the split tests.
        feature: usize,
        /// `x[feature] <= threshold` goes left.
        threshold: f64,
    },
}

/// A trained CART decision tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    root: Node,
}

impl DecisionTree {
    /// Depth of the tree (0 for a single leaf).
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.root.leaves()
    }

    /// Serializes the tree into a preorder node list.
    pub fn flatten(&self) -> Vec<FlatNode> {
        fn walk(node: &Node, out: &mut Vec<FlatNode>) {
            match node {
                Node::Leaf { not_safe } => out.push(FlatNode::Leaf { not_safe: *not_safe }),
                Node::Split { feature, threshold, left, right } => {
                    out.push(FlatNode::Split { feature: *feature, threshold: *threshold });
                    walk(left, out);
                    walk(right, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &mut out);
        out
    }

    /// Rebuilds a tree from a preorder node list produced by
    /// [`flatten`](Self::flatten). Returns `None` if the list is truncated,
    /// empty, or has trailing nodes — i.e. it does not describe exactly one
    /// complete tree.
    pub fn from_flat(nodes: &[FlatNode]) -> Option<Self> {
        fn build(nodes: &[FlatNode], at: &mut usize) -> Option<Node> {
            let node = *nodes.get(*at)?;
            *at += 1;
            Some(match node {
                FlatNode::Leaf { not_safe } => Node::Leaf { not_safe },
                FlatNode::Split { feature, threshold } => Node::Split {
                    feature,
                    threshold,
                    left: Box::new(build(nodes, at)?),
                    right: Box::new(build(nodes, at)?),
                },
            })
        }
        let mut at = 0;
        let root = build(nodes, &mut at)?;
        if at != nodes.len() {
            return None; // trailing garbage
        }
        Some(Self { root })
    }
}

impl Classifier for DecisionTree {
    fn predict(&self, x: &[f64]) -> bool {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { not_safe } => return *not_safe,
                Node::Split { feature, threshold, left, right } => {
                    node = if x[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_dataset() -> Dataset {
        // XOR needs depth ≥ 2; a linear model cannot solve it.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for &(x, y, l) in
            &[(0.0, 0.0, false), (0.0, 1.0, true), (1.0, 0.0, true), (1.0, 1.0, false)]
        {
            for j in 0..5 {
                rows.push(vec![x + j as f64 * 0.01, y + j as f64 * 0.01]);
                labels.push(l);
            }
        }
        Dataset::from_rows(rows, labels).unwrap()
    }

    #[test]
    fn solves_xor() {
        let tree = DecisionTreeTrainer::new().fit(&xor_dataset()).unwrap();
        assert!(tree.predict(&[0.0, 1.0]));
        assert!(tree.predict(&[1.0, 0.0]));
        assert!(!tree.predict(&[0.0, 0.0]));
        assert!(!tree.predict(&[1.0, 1.0]));
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn single_class_yields_single_leaf() {
        let ds = Dataset::from_rows(vec![vec![1.0], vec![2.0]], vec![true, true]).unwrap();
        let tree = DecisionTreeTrainer::new().fit(&ds).unwrap();
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.leaf_count(), 1);
        assert!(tree.predict(&[0.0]));
    }

    #[test]
    fn depth_cap_is_respected() {
        let tree = DecisionTreeTrainer::new().max_depth(1).fit(&xor_dataset()).unwrap();
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn min_samples_leaf_prunes() {
        let deep = DecisionTreeTrainer::new().fit(&xor_dataset()).unwrap();
        let shallow = DecisionTreeTrainer::new().min_samples_leaf(10).fit(&xor_dataset()).unwrap();
        assert!(shallow.leaf_count() <= deep.leaf_count());
    }

    #[test]
    fn empty_dataset_errors() {
        assert_eq!(DecisionTreeTrainer::new().fit(&Dataset::default()), Err(TreeError::Empty));
    }

    #[test]
    fn flatten_roundtrip_preserves_tree() {
        let tree = DecisionTreeTrainer::new().fit(&xor_dataset()).unwrap();
        let flat = tree.flatten();
        assert!(flat.len() >= 3, "xor tree must have splits");
        let back = DecisionTree::from_flat(&flat).unwrap();
        assert_eq!(tree, back);
    }

    #[test]
    fn from_flat_rejects_malformed_lists() {
        assert_eq!(DecisionTree::from_flat(&[]), None);
        // A split with no children.
        assert_eq!(
            DecisionTree::from_flat(&[FlatNode::Split { feature: 0, threshold: 1.0 }]),
            None
        );
        // A complete leaf followed by trailing garbage.
        assert_eq!(
            DecisionTree::from_flat(&[
                FlatNode::Leaf { not_safe: true },
                FlatNode::Leaf { not_safe: false },
            ]),
            None
        );
    }

    #[test]
    fn overfits_training_data_perfectly_when_unbounded() {
        // This is exactly the overfitting behaviour the paper warns about.
        let ds = xor_dataset();
        let tree = DecisionTreeTrainer::new().max_depth(64).fit(&ds).unwrap();
        for (row, &label) in ds.rows().iter().zip(ds.labels()) {
            assert_eq!(tree.predict(row), label);
        }
    }
}
