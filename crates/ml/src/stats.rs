//! Descriptive statistics shared across the system: moments, percentiles,
//! Pearson correlation, empirical CDFs, and confidence intervals.

use crate::special::norm_ppf;

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divides by `n`); `0.0` for fewer than two samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample variance (divides by `n − 1`); `0.0` for fewer than two samples.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Linear-interpolated percentile (`q` in `[0, 100]`) of unsorted data.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is out of range.
///
/// # Examples
///
/// ```
/// let xs = [4.0, 1.0, 3.0, 2.0];
/// assert_eq!(waldo_ml::stats::percentile(&xs, 50.0), 2.5);
/// assert_eq!(waldo_ml::stats::percentile(&xs, 0.0), 1.0);
/// assert_eq!(waldo_ml::stats::percentile(&xs, 100.0), 4.0);
/// ```
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of an empty slice");
    assert!((0.0..=100.0).contains(&q), "percentile rank must be in [0, 100]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile).
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Pearson correlation coefficient between two equal-length series.
/// Returns `0.0` when either series is constant (correlation undefined).
///
/// # Panics
///
/// Panics if the lengths differ or are zero.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "series must have equal length");
    assert!(!xs.is_empty(), "correlation of empty series");
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// The points of an empirical CDF: sorted values paired with cumulative
/// probability `i/n`. Used by every "CDF of …" figure.
pub fn empirical_cdf(xs: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len() as f64;
    sorted.into_iter().enumerate().map(|(i, x)| (x, (i + 1) as f64 / n)).collect()
}

/// A two-sided normal-approximation confidence interval for the mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl ConfidenceInterval {
    /// Width of the interval.
    pub fn span(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Confidence interval for the mean of `xs` at `level` (e.g. `0.90`),
/// using the normal approximation `mean ± z·s/√n`.
///
/// Returns `None` for fewer than two samples (no spread estimate exists).
///
/// # Panics
///
/// Panics unless `level ∈ (0, 1)`.
///
/// # Examples
///
/// ```
/// use waldo_ml::stats::mean_confidence_interval;
///
/// let xs: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
/// let ci = mean_confidence_interval(&xs, 0.90).unwrap();
/// assert!(ci.lo < 4.5 && 4.5 < ci.hi);
/// ```
pub fn mean_confidence_interval(xs: &[f64], level: f64) -> Option<ConfidenceInterval> {
    assert!(level > 0.0 && level < 1.0, "confidence level must lie in (0, 1)");
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs);
    let se = (sample_variance(xs) / xs.len() as f64).sqrt();
    let z = norm_ppf(0.5 + level / 2.0);
    Some(ConfidenceInterval { lo: m - z * se, hi: m + z * se })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_of_simple_series() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
        assert!((sample_variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single_are_degenerate() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(sample_variance(&[]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 25.0), 17.5);
        assert_eq!(median(&xs), 25.0);
        assert_eq!(percentile(&xs, 95.0), 38.5);
    }

    #[test]
    fn pearson_known_cases() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let anti: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &anti) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &[5.0; 4]), 0.0);
    }

    #[test]
    fn cdf_is_monotone_and_reaches_one() {
        let xs = [3.0, 1.0, 2.0];
        let cdf = empirical_cdf(&xs);
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf[0].0, 1.0);
        assert!((cdf[2].1 - 1.0).abs() < 1e-12);
        assert!(cdf.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
    }

    #[test]
    fn ci_narrows_with_more_samples() {
        let small: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let big: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        let ci_small = mean_confidence_interval(&small, 0.90).unwrap();
        let ci_big = mean_confidence_interval(&big, 0.90).unwrap();
        assert!(ci_big.span() < ci_small.span());
        assert!(mean_confidence_interval(&[1.0], 0.9).is_none());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        let _ = percentile(&[], 50.0);
    }
}
