//! Minimal dense linear algebra: just enough for OLS normal equations and
//! the distance computations the estimators share.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the lengths differ.
///
/// # Examples
///
/// ```
/// assert_eq!(waldo_ml::linalg::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dist_sq: dimension mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two equal-length slices.
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    dist_sq(a, b).sqrt()
}

/// A small dense row-major matrix.
///
/// # Examples
///
/// ```
/// use waldo_ml::linalg::Matrix;
///
/// let m = Matrix::from_rows(vec![vec![2.0, 0.0], vec![0.0, 4.0]]).unwrap();
/// let x = m.solve(&[2.0, 8.0]).unwrap();
/// assert_eq!(x, vec![1.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Errors from matrix construction and solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixError {
    /// Rows have inconsistent lengths or the matrix is empty.
    Ragged,
    /// The dimensions do not fit the requested operation.
    Shape,
    /// The system is singular (no unique solution).
    Singular,
}

impl std::fmt::Display for MatrixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatrixError::Ragged => write!(f, "rows are empty or have inconsistent lengths"),
            MatrixError::Shape => write!(f, "dimension mismatch"),
            MatrixError::Singular => write!(f, "matrix is singular to working precision"),
        }
    }
}

impl std::error::Error for MatrixError {}

impl Matrix {
    /// Builds a matrix from row vectors.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::Ragged`] if `rows` is empty or rows differ in
    /// length.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, MatrixError> {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        if r == 0 || c == 0 || rows.iter().any(|row| row.len() != c) {
            return Err(MatrixError::Ragged);
        }
        Ok(Self { rows: r, cols: c, data: rows.into_iter().flatten().collect() })
    }

    /// A `n × n` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// `Aᵀ·A` (the Gram matrix of the columns).
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.cols {
            for j in i..self.cols {
                let mut s = 0.0;
                for r in 0..self.rows {
                    s += self.get(r, i) * self.get(r, j);
                }
                out.set(i, j, s);
                out.set(j, i, s);
            }
        }
        out
    }

    /// `Aᵀ·v` for a vector `v` with one entry per row.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::Shape`] if `v.len() != nrows`.
    pub fn transpose_mul_vec(&self, v: &[f64]) -> Result<Vec<f64>, MatrixError> {
        if v.len() != self.rows {
            return Err(MatrixError::Shape);
        }
        let mut out = vec![0.0; self.cols];
        for (r, &vr) in v.iter().enumerate() {
            for (c, slot) in out.iter_mut().enumerate() {
                *slot += self.get(r, c) * vr;
            }
        }
        Ok(out)
    }

    /// Solves `A·x = b` by Gaussian elimination with partial pivoting.
    /// `A` must be square.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::Shape`] for non-square systems or mismatched
    /// `b`, and [`MatrixError::Singular`] when a pivot underflows.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, MatrixError> {
        if self.rows != self.cols || b.len() != self.rows {
            return Err(MatrixError::Shape);
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();

        for col in 0..n {
            // Partial pivot.
            let mut pivot = col;
            let mut best = a[col * n + col].abs();
            for r in col + 1..n {
                let v = a[r * n + col].abs();
                if v > best {
                    best = v;
                    pivot = r;
                }
            }
            if best < 1e-12 {
                return Err(MatrixError::Singular);
            }
            if pivot != col {
                for c in 0..n {
                    a.swap(col * n + c, pivot * n + c);
                }
                x.swap(col, pivot);
            }
            // Eliminate below.
            for r in col + 1..n {
                let f = a[r * n + col] / a[col * n + col];
                if f == 0.0 {
                    continue;
                }
                for c in col..n {
                    a[r * n + c] -= f * a[col * n + c];
                }
                x[r] -= f * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut s = x[col];
            for c in col + 1..n {
                s -= a[col * n + c] * x[c];
            }
            x[col] = s / a[col * n + col];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_distances() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dist_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn dot_rejects_mismatch() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn from_rows_validates() {
        assert_eq!(Matrix::from_rows(vec![]), Err(MatrixError::Ragged));
        assert_eq!(Matrix::from_rows(vec![vec![]]), Err(MatrixError::Ragged));
        assert_eq!(Matrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]), Err(MatrixError::Ragged));
    }

    #[test]
    fn solve_identity_returns_rhs() {
        let m = Matrix::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        assert_eq!(m.solve(&[5.0, -2.0]).unwrap(), vec![5.0, -2.0]);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let m = Matrix::from_rows(vec![vec![0.0, 2.0], vec![3.0, 1.0]]).unwrap();
        let x = m.solve(&[4.0, 5.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_three_by_three() {
        let m = Matrix::from_rows(vec![
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ])
        .unwrap();
        let x = m.solve(&[8.0, -11.0, -3.0]).unwrap();
        let expect = [2.0, 3.0, -1.0];
        for (a, b) in x.iter().zip(expect) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn solve_detects_singularity() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert_eq!(m.solve(&[1.0, 2.0]), Err(MatrixError::Singular));
    }

    #[test]
    fn gram_and_transpose_mul() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let g = a.gram();
        assert_eq!(g.get(0, 0), 35.0);
        assert_eq!(g.get(0, 1), 44.0);
        assert_eq!(g.get(1, 0), 44.0);
        assert_eq!(g.get(1, 1), 56.0);
        let v = a.transpose_mul_vec(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(v, vec![9.0, 12.0]);
        assert_eq!(a.transpose_mul_vec(&[1.0]), Err(MatrixError::Shape));
    }

    #[test]
    fn error_display_is_informative() {
        assert!(MatrixError::Singular.to_string().contains("singular"));
        assert!(MatrixError::Ragged.to_string().contains("rows"));
    }
}
