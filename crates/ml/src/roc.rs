//! ROC curves and AUC over continuous detector scores.
//!
//! The confusion-matrix metrics of §4.2 score *hard* decisions; the
//! detectors underneath (SVM decision values, NB log-odds, RSS readings
//! against a threshold) are continuous. The ROC view sweeps the threshold
//! and summarizes separability as the area under the curve — used by the
//! ablations to compare sensing statistics independent of any particular
//! operating point.

use serde::{Deserialize, Serialize};

/// One ROC operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// Threshold at or above which samples are declared positive.
    pub threshold: f64,
    /// True-positive rate at this threshold.
    pub tpr: f64,
    /// False-positive rate at this threshold.
    pub fpr: f64,
}

/// Errors from ROC construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RocError {
    /// No samples.
    Empty,
    /// All samples share one label; TPR or FPR is undefined.
    SingleClass,
}

impl std::fmt::Display for RocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RocError::Empty => write!(f, "no scored samples"),
            RocError::SingleClass => write!(f, "need both classes for a ROC curve"),
        }
    }
}

impl std::error::Error for RocError {}

/// A ROC curve built from `(score, is_positive)` pairs, where larger
/// scores indicate the positive class.
///
/// # Examples
///
/// ```
/// use waldo_ml::roc::RocCurve;
///
/// let scored = [(0.9, true), (0.8, true), (0.3, false), (0.1, false)];
/// let roc = RocCurve::from_scores(&scored).unwrap();
/// assert_eq!(roc.auc(), 1.0); // perfectly separable
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RocCurve {
    points: Vec<RocPoint>,
    auc: f64,
}

impl RocCurve {
    /// Builds the curve by sweeping the threshold over every distinct
    /// score.
    ///
    /// # Errors
    ///
    /// Returns [`RocError`] on empty or single-class input.
    pub fn from_scores(scored: &[(f64, bool)]) -> Result<Self, RocError> {
        if scored.is_empty() {
            return Err(RocError::Empty);
        }
        let pos = scored.iter().filter(|(_, l)| *l).count();
        let neg = scored.len() - pos;
        if pos == 0 || neg == 0 {
            return Err(RocError::SingleClass);
        }

        let mut sorted: Vec<(f64, bool)> = scored.to_vec();
        sorted.sort_by(|a, b| b.0.total_cmp(&a.0)); // descending score

        let mut points = Vec::with_capacity(sorted.len() + 1);
        points.push(RocPoint { threshold: f64::INFINITY, tpr: 0.0, fpr: 0.0 });
        let (mut tp, mut fp) = (0usize, 0usize);
        let mut i = 0;
        while i < sorted.len() {
            // Consume ties together so the curve is threshold-consistent.
            let score = sorted[i].0;
            while i < sorted.len() && sorted[i].0 == score {
                if sorted[i].1 {
                    tp += 1;
                } else {
                    fp += 1;
                }
                i += 1;
            }
            points.push(RocPoint {
                threshold: score,
                tpr: tp as f64 / pos as f64,
                fpr: fp as f64 / neg as f64,
            });
        }

        // Trapezoidal AUC over the (fpr, tpr) polyline.
        let mut auc = 0.0;
        for w in points.windows(2) {
            auc += (w[1].fpr - w[0].fpr) * (w[0].tpr + w[1].tpr) / 2.0;
        }
        Ok(Self { points, auc })
    }

    /// The operating points, from the strictest threshold to the loosest.
    pub fn points(&self) -> &[RocPoint] {
        &self.points
    }

    /// Area under the curve: 1.0 = perfect separation, 0.5 = chance.
    pub fn auc(&self) -> f64 {
        self.auc
    }

    /// The operating point with the highest Youden index (TPR − FPR) —
    /// a standard threshold-selection rule.
    pub fn best_youden(&self) -> RocPoint {
        *self
            .points
            .iter()
            .max_by(|a, b| (a.tpr - a.fpr).total_cmp(&(b.tpr - b.fpr)))
            .expect("curves always have at least the origin point")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_has_auc_one() {
        let scored: Vec<(f64, bool)> = (0..20).map(|i| (i as f64, i >= 10)).collect();
        let roc = RocCurve::from_scores(&scored).unwrap();
        assert_eq!(roc.auc(), 1.0);
        let best = roc.best_youden();
        assert_eq!(best.tpr, 1.0);
        assert_eq!(best.fpr, 0.0);
    }

    #[test]
    fn inverted_scores_have_auc_zero() {
        let scored: Vec<(f64, bool)> = (0..20).map(|i| (i as f64, i < 10)).collect();
        let roc = RocCurve::from_scores(&scored).unwrap();
        assert_eq!(roc.auc(), 0.0);
    }

    #[test]
    fn interleaved_scores_have_auc_half() {
        let scored: Vec<(f64, bool)> = (0..100).map(|i| (i as f64, i % 2 == 0)).collect();
        let roc = RocCurve::from_scores(&scored).unwrap();
        assert!((roc.auc() - 0.5).abs() < 0.02, "auc {}", roc.auc());
    }

    #[test]
    fn ties_are_handled_as_one_step() {
        // All scores equal: the curve is the diagonal, AUC exactly 0.5.
        let scored = [(1.0, true), (1.0, false), (1.0, true), (1.0, false)];
        let roc = RocCurve::from_scores(&scored).unwrap();
        assert!((roc.auc() - 0.5).abs() < 1e-12);
        assert_eq!(roc.points().len(), 2);
    }

    #[test]
    fn curve_is_monotone() {
        let scored: Vec<(f64, bool)> = (0..200)
            .map(|i| {
                let noise = ((i * 37) % 11) as f64 - 5.0;
                (i as f64 + noise * 8.0, i >= 100)
            })
            .collect();
        let roc = RocCurve::from_scores(&scored).unwrap();
        for w in roc.points().windows(2) {
            assert!(w[1].tpr >= w[0].tpr);
            assert!(w[1].fpr >= w[0].fpr);
        }
        assert!(roc.auc() > 0.5);
    }

    #[test]
    fn error_cases() {
        assert_eq!(RocCurve::from_scores(&[]), Err(RocError::Empty));
        assert_eq!(RocCurve::from_scores(&[(1.0, true), (2.0, true)]), Err(RocError::SingleClass));
    }
}
