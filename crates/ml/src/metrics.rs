//! Detection metrics (§4.2 of the paper).
//!
//! The paper's convention — which this module adopts verbatim — is stated
//! in terms of *channel vacancy decisions*:
//!
//! * **False positive**: the system declares a channel *vacant* while it is
//!   occupied → a safety violation. FP rate must stay near zero.
//! * **False negative**: the system declares a channel *occupied* while it
//!   is vacant → lost opportunity; the efficiency metric to minimize.
//! * **Error rate**: total fraction of wrong decisions.
//!
//! Internally labels are booleans where `true` means *not safe*
//! (occupied/protected). A false positive is then "truth = not safe,
//! prediction = safe".

use serde::{Deserialize, Serialize};

/// Confusion counts for binary white-space decisions.
///
/// # Examples
///
/// ```
/// use waldo_ml::ConfusionMatrix;
///
/// let truth = [true, true, false, false];
/// let pred  = [true, false, false, true];
/// let cm = ConfusionMatrix::from_labels(&truth, &pred);
/// assert_eq!(cm.false_positives(), 1); // truth not-safe, predicted safe
/// assert_eq!(cm.false_negatives(), 1); // truth safe, predicted not-safe
/// assert_eq!(cm.error_rate(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Truth not-safe, predicted not-safe.
    tp: usize,
    /// Truth safe, predicted not-safe (lost opportunity).
    fn_: usize,
    /// Truth not-safe, predicted safe (safety violation).
    fp: usize,
    /// Truth safe, predicted safe.
    tn: usize,
}

impl ConfusionMatrix {
    /// Builds the matrix from parallel truth/prediction label slices, where
    /// `true` = not safe.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn from_labels(truth: &[bool], pred: &[bool]) -> Self {
        assert_eq!(truth.len(), pred.len(), "label slices must align");
        let mut cm = ConfusionMatrix::default();
        for (&t, &p) in truth.iter().zip(pred) {
            cm.record(t, p);
        }
        cm
    }

    /// Records one decision.
    pub fn record(&mut self, truth_not_safe: bool, pred_not_safe: bool) {
        match (truth_not_safe, pred_not_safe) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, true) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Merges another matrix into this one (e.g. across CV folds).
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
        self.tn += other.tn;
    }

    /// Total decisions recorded.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// Count of safety violations (declared vacant while occupied).
    pub fn false_positives(&self) -> usize {
        self.fp
    }

    /// Count of lost opportunities (declared occupied while vacant).
    pub fn false_negatives(&self) -> usize {
        self.fn_
    }

    /// FP rate = FP / (number of truly not-safe samples); `0.0` when there
    /// are none.
    pub fn fp_rate(&self) -> f64 {
        let denom = self.fp + self.tp;
        if denom == 0 {
            0.0
        } else {
            self.fp as f64 / denom as f64
        }
    }

    /// FN rate = FN / (number of truly safe samples); `0.0` when there are
    /// none.
    pub fn fn_rate(&self) -> f64 {
        let denom = self.fn_ + self.tn;
        if denom == 0 {
            0.0
        } else {
            self.fn_ as f64 / denom as f64
        }
    }

    /// Fraction of all decisions that were wrong.
    pub fn error_rate(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.fp + self.fn_) as f64 / t as f64
        }
    }

    /// Fraction of all decisions that were right.
    pub fn accuracy(&self) -> f64 {
        1.0 - self.error_rate()
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FP {:.4} / FN {:.4} / err {:.4} (n = {})",
            self.fp_rate(),
            self.fn_rate(),
            self.error_rate(),
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let t = [true, false, true];
        let cm = ConfusionMatrix::from_labels(&t, &t);
        assert_eq!(cm.error_rate(), 0.0);
        assert_eq!(cm.fp_rate(), 0.0);
        assert_eq!(cm.fn_rate(), 0.0);
        assert_eq!(cm.accuracy(), 1.0);
    }

    #[test]
    fn rates_use_paper_denominators() {
        // 4 truly not-safe, 1 declared safe → FP rate 0.25.
        // 6 truly safe, 3 declared not-safe → FN rate 0.5.
        let truth = [true, true, true, true, false, false, false, false, false, false];
        let pred = [false, true, true, true, true, true, true, false, false, false];
        let cm = ConfusionMatrix::from_labels(&truth, &pred);
        assert_eq!(cm.fp_rate(), 0.25);
        assert_eq!(cm.fn_rate(), 0.5);
        assert_eq!(cm.error_rate(), 0.4);
    }

    #[test]
    fn merge_accumulates() {
        let a = ConfusionMatrix::from_labels(&[true], &[false]);
        let mut b = ConfusionMatrix::from_labels(&[false], &[false]);
        b.merge(&a);
        assert_eq!(b.total(), 2);
        assert_eq!(b.false_positives(), 1);
    }

    #[test]
    fn empty_matrix_is_all_zero() {
        let cm = ConfusionMatrix::default();
        assert_eq!(cm.error_rate(), 0.0);
        assert_eq!(cm.fp_rate(), 0.0);
        assert_eq!(cm.fn_rate(), 0.0);
        assert_eq!(cm.total(), 0);
    }

    #[test]
    fn display_mentions_all_rates() {
        let cm = ConfusionMatrix::from_labels(&[true, false], &[false, true]);
        let s = cm.to_string();
        assert!(s.contains("FP") && s.contains("FN") && s.contains("err"));
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_labels_panic() {
        let _ = ConfusionMatrix::from_labels(&[true], &[]);
    }
}
