//! Ordinary least squares via the normal equations.
//!
//! Two consumers: the wired sensor-calibration map (raw reading → dBm,
//! §2.1) and the V-Scope baseline's per-cluster log-distance path-loss fit
//! (`P(d) = p₀ − 10·n·log₁₀(d)` is linear in `log₁₀ d`).

use serde::{Deserialize, Serialize};

use crate::linalg::{Matrix, MatrixError};

/// Errors from a least-squares fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinRegError {
    /// No samples, or fewer samples than coefficients.
    TooFewSamples,
    /// Rows are ragged.
    Ragged,
    /// The design matrix is rank-deficient.
    Singular,
}

impl std::fmt::Display for LinRegError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinRegError::TooFewSamples => write!(f, "need at least as many samples as terms"),
            LinRegError::Ragged => write!(f, "feature rows have inconsistent dimensions"),
            LinRegError::Singular => write!(f, "design matrix is rank-deficient"),
        }
    }
}

impl std::error::Error for LinRegError {}

/// A fitted linear model `y = intercept + coefficients·x`.
///
/// # Examples
///
/// ```
/// use waldo_ml::linreg::LinearRegression;
///
/// // y = 1 + 2x fitted exactly.
/// let xs = vec![vec![0.0], vec![1.0], vec![2.0]];
/// let ys = vec![1.0, 3.0, 5.0];
/// let model = LinearRegression::fit(&xs, &ys).unwrap();
/// assert!((model.predict(&[10.0]) - 21.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearRegression {
    intercept: f64,
    coefficients: Vec<f64>,
}

impl LinearRegression {
    /// Fits by OLS with an implicit intercept term.
    ///
    /// # Errors
    ///
    /// Returns [`LinRegError`] when the system is under-determined, ragged,
    /// or singular.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64]) -> Result<Self, LinRegError> {
        if xs.len() != ys.len() || xs.is_empty() {
            return Err(LinRegError::TooFewSamples);
        }
        let dim = xs[0].len();
        if xs.iter().any(|r| r.len() != dim) {
            return Err(LinRegError::Ragged);
        }
        if xs.len() < dim + 1 {
            return Err(LinRegError::TooFewSamples);
        }
        // Design matrix with a leading 1 column.
        let rows: Vec<Vec<f64>> = xs
            .iter()
            .map(|r| {
                let mut row = Vec::with_capacity(dim + 1);
                row.push(1.0);
                row.extend_from_slice(r);
                row
            })
            .collect();
        let design = Matrix::from_rows(rows).map_err(|_| LinRegError::Ragged)?;
        let gram = design.gram();
        let rhs = design.transpose_mul_vec(ys).map_err(|_| LinRegError::TooFewSamples)?;
        let beta = gram.solve(&rhs).map_err(|e| match e {
            MatrixError::Singular => LinRegError::Singular,
            _ => LinRegError::TooFewSamples,
        })?;
        Ok(Self { intercept: beta[0], coefficients: beta[1..].to_vec() })
    }

    /// Fits a simple (single-feature) regression from `(x, y)` pairs.
    ///
    /// # Errors
    ///
    /// Same as [`fit`](Self::fit).
    pub fn fit_simple(pairs: &[(f64, f64)]) -> Result<Self, LinRegError> {
        let xs: Vec<Vec<f64>> = pairs.iter().map(|&(x, _)| vec![x]).collect();
        let ys: Vec<f64> = pairs.iter().map(|&(_, y)| y).collect();
        Self::fit(&xs, &ys)
    }

    /// The fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// The fitted slope coefficients.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Predicts `y` at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.coefficients.len(), "feature dimension mismatch");
        self.intercept + x.iter().zip(&self.coefficients).map(|(a, b)| a * b).sum::<f64>()
    }

    /// Coefficient of determination on a dataset.
    pub fn r_squared(&self, xs: &[Vec<f64>], ys: &[f64]) -> f64 {
        let mean_y = ys.iter().sum::<f64>() / ys.len() as f64;
        let ss_tot: f64 = ys.iter().map(|y| (y - mean_y).powi(2)).sum();
        let ss_res: f64 = xs.iter().zip(ys).map(|(x, y)| (y - self.predict(x)).powi(2)).sum();
        if ss_tot == 0.0 {
            return if ss_res == 0.0 { 1.0 } else { 0.0 };
        }
        1.0 - ss_res / ss_tot
    }

    /// Inverts a single-feature model: the `x` that predicts `y`.
    ///
    /// # Panics
    ///
    /// Panics if the model is multivariate or the slope is (near) zero.
    pub fn invert(&self, y: f64) -> f64 {
        assert_eq!(self.coefficients.len(), 1, "inversion requires a single feature");
        let slope = self.coefficients[0];
        assert!(slope.abs() > 1e-12, "cannot invert a flat model");
        (y - self.intercept) / slope
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fit_on_noiseless_line() {
        let model = LinearRegression::fit_simple(&[(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)]).unwrap();
        assert!((model.intercept() - 1.0).abs() < 1e-10);
        assert!((model.coefficients()[0] - 2.0).abs() < 1e-10);
        assert!((model.r_squared(&[vec![0.0], vec![1.0]], &[1.0, 3.0]) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn multivariate_fit() {
        // y = 2 + 3a − b on a grid.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for a in 0..5 {
            for b in 0..5 {
                xs.push(vec![a as f64, b as f64]);
                ys.push(2.0 + 3.0 * a as f64 - b as f64);
            }
        }
        let model = LinearRegression::fit(&xs, &ys).unwrap();
        assert!((model.intercept() - 2.0).abs() < 1e-9);
        assert!((model.coefficients()[0] - 3.0).abs() < 1e-9);
        assert!((model.coefficients()[1] + 1.0).abs() < 1e-9);
    }

    #[test]
    fn least_squares_on_noisy_data_recovers_slope() {
        let pairs: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let x = i as f64 / 10.0;
                let noise = if i % 2 == 0 { 0.1 } else { -0.1 };
                (x, 5.0 - 2.0 * x + noise)
            })
            .collect();
        let model = LinearRegression::fit_simple(&pairs).unwrap();
        assert!((model.coefficients()[0] + 2.0).abs() < 0.02);
        assert!((model.intercept() - 5.0).abs() < 0.1);
    }

    #[test]
    fn invert_roundtrips() {
        let model =
            LinearRegression::fit_simple(&[(0.0, -100.0), (10.0, -50.0), (20.0, 0.0)]).unwrap();
        let x = model.invert(-75.0);
        assert!((model.predict(&[x]) - -75.0).abs() < 1e-9);
    }

    #[test]
    fn fit_errors() {
        assert_eq!(LinearRegression::fit(&[], &[]), Err(LinRegError::TooFewSamples));
        assert_eq!(
            LinearRegression::fit(&[vec![1.0, 2.0]], &[1.0]),
            Err(LinRegError::TooFewSamples)
        );
        // Duplicate x with only that x → singular.
        assert_eq!(
            LinearRegression::fit_simple(&[(1.0, 2.0), (1.0, 3.0)]),
            Err(LinRegError::Singular)
        );
    }

    #[test]
    #[should_panic(expected = "single feature")]
    fn invert_multivariate_panics() {
        let xs = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]];
        let ys = vec![0.0, 1.0, 2.0, 3.0];
        let model = LinearRegression::fit(&xs, &ys).unwrap();
        let _ = model.invert(1.0);
    }
}
