//! Brute-force k-nearest-neighbour classification and regression.
//!
//! The measurement-augmented-database family the paper compares against
//! (Achtzehn et al., Ying et al.) classifies a location by interpolating
//! nearby measurements — which is k-NN over location features. The
//! regressor also backs RSS interpolation baselines.

use serde::{Deserialize, Serialize};

use crate::linalg::dist_sq;
use crate::{Classifier, Dataset};

/// Errors from k-NN construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnnError {
    /// The training set is empty.
    Empty,
    /// `k` was zero.
    ZeroNeighbours,
}

impl std::fmt::Display for KnnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KnnError::Empty => write!(f, "training set is empty"),
            KnnError::ZeroNeighbours => write!(f, "k must be at least one"),
        }
    }
}

impl std::error::Error for KnnError {}

/// k-NN majority-vote classifier.
///
/// # Examples
///
/// ```
/// use waldo_ml::{Classifier, Dataset};
/// use waldo_ml::knn::KnnClassifier;
///
/// let ds = Dataset::from_rows(
///     vec![vec![0.0], vec![0.5], vec![10.0], vec![10.5]],
///     vec![false, false, true, true],
/// ).unwrap();
/// let knn = KnnClassifier::fit(3, &ds).unwrap();
/// assert!(knn.predict(&[9.0]));
/// assert!(!knn.predict(&[1.0]));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnnClassifier {
    k: usize,
    ds: Dataset,
}

impl KnnClassifier {
    /// Stores the training set for neighbour queries.
    ///
    /// # Errors
    ///
    /// Returns [`KnnError`] if `k == 0` or the dataset is empty. `k` larger
    /// than the dataset is clamped at query time.
    pub fn fit(k: usize, ds: &Dataset) -> Result<Self, KnnError> {
        if k == 0 {
            return Err(KnnError::ZeroNeighbours);
        }
        if ds.is_empty() {
            return Err(KnnError::Empty);
        }
        Ok(Self { k, ds: ds.clone() })
    }

    /// The `k` nearest training indices to `x`, nearest first.
    pub fn neighbours(&self, x: &[f64]) -> Vec<usize> {
        let mut order: Vec<(f64, usize)> =
            self.ds.rows().iter().enumerate().map(|(i, r)| (dist_sq(r, x), i)).collect();
        order.sort_by(|a, b| a.0.total_cmp(&b.0));
        order.into_iter().take(self.k.min(self.ds.len())).map(|(_, i)| i).collect()
    }
}

impl Classifier for KnnClassifier {
    fn predict(&self, x: &[f64]) -> bool {
        let neigh = self.neighbours(x);
        let pos = neigh.iter().filter(|&&i| self.ds.labels()[i]).count();
        // Tie breaks toward not-safe (the conservative call).
        2 * pos >= neigh.len()
    }
}

/// k-NN mean regressor over `(row, value)` pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnnRegressor {
    k: usize,
    rows: Vec<Vec<f64>>,
    values: Vec<f64>,
}

impl KnnRegressor {
    /// Stores `(rows, values)` for neighbour-mean prediction.
    ///
    /// # Errors
    ///
    /// Returns [`KnnError`] on `k == 0` or empty data.
    ///
    /// # Panics
    ///
    /// Panics if `rows` and `values` differ in length.
    pub fn fit(k: usize, rows: Vec<Vec<f64>>, values: Vec<f64>) -> Result<Self, KnnError> {
        assert_eq!(rows.len(), values.len(), "rows and values must align");
        if k == 0 {
            return Err(KnnError::ZeroNeighbours);
        }
        if rows.is_empty() {
            return Err(KnnError::Empty);
        }
        Ok(Self { k, rows, values })
    }

    /// Mean of the `k` nearest stored values.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut order: Vec<(f64, usize)> =
            self.rows.iter().enumerate().map(|(i, r)| (dist_sq(r, x), i)).collect();
        order.sort_by(|a, b| a.0.total_cmp(&b.0));
        let take = self.k.min(self.rows.len());
        order[..take].iter().map(|&(_, i)| self.values[i]).sum::<f64>() / take as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        Dataset::from_rows(
            vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![10.0, 0.0], vec![11.0, 0.0]],
            vec![false, false, true, true],
        )
        .unwrap()
    }

    #[test]
    fn classification_by_majority() {
        let knn = KnnClassifier::fit(3, &dataset()).unwrap();
        assert!(!knn.predict(&[0.5, 0.0]));
        assert!(knn.predict(&[10.5, 0.0]));
    }

    #[test]
    fn neighbours_are_sorted_by_distance() {
        let knn = KnnClassifier::fit(4, &dataset()).unwrap();
        assert_eq!(knn.neighbours(&[0.9, 0.0]), vec![1, 0, 2, 3]);
    }

    #[test]
    fn ties_break_not_safe() {
        let ds = Dataset::from_rows(vec![vec![0.0], vec![2.0]], vec![true, false]).unwrap();
        let knn = KnnClassifier::fit(2, &ds).unwrap();
        // One vote each → conservative not-safe.
        assert!(knn.predict(&[1.0]));
    }

    #[test]
    fn oversized_k_clamps() {
        let knn = KnnClassifier::fit(100, &dataset()).unwrap();
        // Majority of the whole set is a 2-2 tie → not-safe.
        assert!(knn.predict(&[5.0, 0.0]));
    }

    #[test]
    fn regressor_means_neighbours() {
        let reg =
            KnnRegressor::fit(2, vec![vec![0.0], vec![1.0], vec![10.0]], vec![-80.0, -82.0, -60.0])
                .unwrap();
        assert!((reg.predict(&[0.5]) - -81.0).abs() < 1e-12);
        assert!((reg.predict(&[10.0]) - -71.0).abs() < 1e-12);
    }

    #[test]
    fn construction_errors() {
        assert_eq!(KnnClassifier::fit(0, &dataset()), Err(KnnError::ZeroNeighbours));
        assert_eq!(KnnClassifier::fit(1, &Dataset::default()), Err(KnnError::Empty));
        assert_eq!(KnnRegressor::fit(1, vec![], vec![]), Err(KnnError::Empty));
    }
}
