//! Train/test splitting and k-fold cross validation.
//!
//! The paper evaluates with 10-fold cross validation: 90 % of the data
//! trains, the remaining 10 % tests, repeated to cover everything (§4.1).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::Dataset;

/// One train/test index split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Indices of the training samples.
    pub train: Vec<usize>,
    /// Indices of the test samples.
    pub test: Vec<usize>,
}

/// Seeded k-fold splitter.
///
/// # Examples
///
/// ```
/// use waldo_ml::model_selection::KFold;
///
/// let folds = KFold::new(5, 42).splits(50);
/// assert_eq!(folds.len(), 5);
/// for f in &folds {
///     assert_eq!(f.test.len(), 10);
///     assert_eq!(f.train.len(), 40);
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KFold {
    k: usize,
    seed: u64,
}

impl KFold {
    /// Creates a `k`-fold splitter with a shuffle seed.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k >= 2, "cross validation needs at least two folds");
        Self { k, seed }
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Produces the `k` splits over `n` samples. Every sample appears in
    /// exactly one test fold; fold sizes differ by at most one.
    ///
    /// # Panics
    ///
    /// Panics if `n < k`.
    pub fn splits(&self, n: usize) -> Vec<Split> {
        assert!(n >= self.k, "need at least one sample per fold");
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        order.shuffle(&mut rng);

        let base = n / self.k;
        let extra = n % self.k;
        let mut splits = Vec::with_capacity(self.k);
        let mut start = 0;
        for fold in 0..self.k {
            let size = base + usize::from(fold < extra);
            let test: Vec<usize> = order[start..start + size].to_vec();
            let train: Vec<usize> =
                order[..start].iter().chain(&order[start + size..]).copied().collect();
            splits.push(Split { train, test });
            start += size;
        }
        splits
    }
}

/// Splits `n` samples into a shuffled train/test partition with the given
/// test fraction.
///
/// # Panics
///
/// Panics unless `test_fraction ∈ (0, 1)` and both sides end up non-empty.
pub fn train_test_split(n: usize, test_fraction: f64, seed: u64) -> Split {
    assert!(test_fraction > 0.0 && test_fraction < 1.0, "test fraction must be in (0, 1)");
    let n_test = ((n as f64) * test_fraction).round() as usize;
    assert!(n_test > 0 && n_test < n, "both partitions must be non-empty");
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    Split { test: order[..n_test].to_vec(), train: order[n_test..].to_vec() }
}

/// Draws a random subsample of at most `cap` indices from a dataset,
/// preserving at least one sample of each present class. Used to bound SVM
/// training cost on large folds.
pub fn stratified_cap(ds: &Dataset, cap: usize, seed: u64) -> Vec<usize> {
    let n = ds.len();
    if n <= cap {
        return (0..n).collect();
    }
    let mut pos: Vec<usize> = (0..n).filter(|&i| ds.labels()[i]).collect();
    let mut neg: Vec<usize> = (0..n).filter(|&i| !ds.labels()[i]).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    pos.shuffle(&mut rng);
    neg.shuffle(&mut rng);

    // Proportional allocation, but never starve a present class.
    let mut n_pos = ((pos.len() as f64 / n as f64) * cap as f64).round() as usize;
    if !pos.is_empty() {
        n_pos = n_pos.clamp(1, pos.len().min(cap.saturating_sub(usize::from(!neg.is_empty()))));
    }
    let n_neg = (cap - n_pos).min(neg.len());
    let mut out: Vec<usize> = pos[..n_pos].to_vec();
    out.extend_from_slice(&neg[..n_neg]);
    out.shuffle(&mut rng);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_partition_everything() {
        let splits = KFold::new(10, 7).splits(103);
        let mut seen = [false; 103];
        for s in &splits {
            for &i in &s.test {
                assert!(!seen[i], "sample {i} tested twice");
                seen[i] = true;
            }
            assert_eq!(s.train.len() + s.test.len(), 103);
            // Train and test are disjoint.
            for &i in &s.test {
                assert!(!s.train.contains(&i));
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn folds_are_deterministic_per_seed() {
        let a = KFold::new(5, 3).splits(40);
        let b = KFold::new(5, 3).splits(40);
        assert_eq!(a, b);
        let c = KFold::new(5, 4).splits(40);
        assert_ne!(a, c);
    }

    #[test]
    fn train_test_split_fractions() {
        let s = train_test_split(100, 0.1, 9);
        assert_eq!(s.test.len(), 10);
        assert_eq!(s.train.len(), 90);
    }

    #[test]
    fn stratified_cap_keeps_both_classes() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let mut labels = vec![false; 100];
        labels[0] = true; // a single positive
        let ds = Dataset::from_rows(rows, labels).unwrap();
        let idx = stratified_cap(&ds, 10, 1);
        assert_eq!(idx.len(), 10);
        assert!(idx.iter().any(|&i| ds.labels()[i]), "positive sample dropped");
        assert!(idx.iter().any(|&i| !ds.labels()[i]));
    }

    #[test]
    fn stratified_cap_noop_when_small() {
        let ds = Dataset::from_rows(vec![vec![1.0], vec![2.0]], vec![true, false]).unwrap();
        assert_eq!(stratified_cap(&ds, 10, 0), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "two folds")]
    fn one_fold_panics() {
        let _ = KFold::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "per fold")]
    fn too_few_samples_panics() {
        let _ = KFold::new(10, 0).splits(5);
    }
}
