//! One-way analysis of variance (ANOVA).
//!
//! The paper screens candidate signal features by testing whether a
//! feature's distribution differs between the *safe* and *not-safe* classes
//! (§3.2): RSS, CFT, and AFT score p ≈ 0 on every channel, while the
//! rejected features score p > 0.1 on at least one channel. This module
//! provides that test with real F-distribution p-values (via
//! [`crate::special::f_sf`]).

use crate::special::f_sf;
use crate::stats::mean;

/// Result of a one-way ANOVA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnovaResult {
    /// The F statistic (between-group over within-group variance).
    pub f_statistic: f64,
    /// Upper-tail probability of the F statistic under the null.
    pub p_value: f64,
    /// Between-group degrees of freedom.
    pub df_between: usize,
    /// Within-group degrees of freedom.
    pub df_within: usize,
}

/// Errors from ANOVA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnovaError {
    /// Fewer than two groups were supplied.
    TooFewGroups,
    /// A group was empty, or there are not enough samples for the
    /// within-group variance.
    TooFewSamples,
}

impl std::fmt::Display for AnovaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnovaError::TooFewGroups => write!(f, "need at least two groups"),
            AnovaError::TooFewSamples => write!(f, "each group needs samples and df > 0"),
        }
    }
}

impl std::error::Error for AnovaError {}

/// One-way ANOVA across `groups`.
///
/// # Errors
///
/// Returns [`AnovaError`] if fewer than two groups are given, any group is
/// empty, or the within-group degrees of freedom vanish.
///
/// # Examples
///
/// ```
/// use waldo_ml::anova::one_way;
///
/// let well_separated = one_way(&[&[1.0, 1.1, 0.9], &[5.0, 5.1, 4.9]]).unwrap();
/// assert!(well_separated.p_value < 0.01);
///
/// let identical = one_way(&[&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]]).unwrap();
/// assert!(identical.p_value > 0.9);
/// ```
pub fn one_way(groups: &[&[f64]]) -> Result<AnovaResult, AnovaError> {
    if groups.len() < 2 {
        return Err(AnovaError::TooFewGroups);
    }
    if groups.iter().any(|g| g.is_empty()) {
        return Err(AnovaError::TooFewSamples);
    }
    let n_total: usize = groups.iter().map(|g| g.len()).sum();
    let k = groups.len();
    if n_total <= k {
        return Err(AnovaError::TooFewSamples);
    }

    let all: Vec<f64> = groups.iter().flat_map(|g| g.iter().copied()).collect();
    let grand = mean(&all);

    let mut ss_between = 0.0;
    let mut ss_within = 0.0;
    for g in groups {
        let m = mean(g);
        ss_between += g.len() as f64 * (m - grand) * (m - grand);
        ss_within += g.iter().map(|x| (x - m) * (x - m)).sum::<f64>();
    }

    let df_between = k - 1;
    let df_within = n_total - k;
    let ms_between = ss_between / df_between as f64;
    let ms_within = ss_within / df_within as f64;

    let f_statistic = if ms_within <= 0.0 {
        if ms_between > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    } else {
        ms_between / ms_within
    };
    let p_value = if f_statistic.is_infinite() {
        0.0
    } else {
        f_sf(f_statistic, df_between as f64, df_within as f64)
    };
    Ok(AnovaResult { f_statistic, p_value, df_between, df_within })
}

/// Convenience wrapper for the two-group (safe vs not-safe) screening the
/// paper performs per feature per channel.
///
/// # Errors
///
/// Same as [`one_way`].
pub fn two_group(a: &[f64], b: &[f64]) -> Result<AnovaResult, AnovaError> {
    one_way(&[a, b])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separated_groups_have_tiny_p() {
        let a: Vec<f64> = (0..50).map(|i| 0.0 + (i % 5) as f64 * 0.1).collect();
        let b: Vec<f64> = (0..50).map(|i| 10.0 + (i % 5) as f64 * 0.1).collect();
        let r = two_group(&a, &b).unwrap();
        assert!(r.p_value < 1e-10, "p = {}", r.p_value);
        assert!(r.f_statistic > 100.0);
    }

    #[test]
    fn identical_groups_have_large_p() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r = two_group(&a, &a).unwrap();
        assert!(r.f_statistic.abs() < 1e-12);
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn matches_hand_computed_example() {
        // Classic textbook example: three groups.
        let g1 = [6.0, 8.0, 4.0, 5.0, 3.0, 4.0];
        let g2 = [8.0, 12.0, 9.0, 11.0, 6.0, 8.0];
        let g3 = [13.0, 9.0, 11.0, 8.0, 7.0, 12.0];
        let r = one_way(&[&g1, &g2, &g3]).unwrap();
        // Known result: F ≈ 9.3, df = (2, 15), p ≈ 0.0024.
        assert!((r.f_statistic - 9.3).abs() < 0.2, "F = {}", r.f_statistic);
        assert_eq!(r.df_between, 2);
        assert_eq!(r.df_within, 15);
        assert!((r.p_value - 0.0024).abs() < 5e-4, "p = {}", r.p_value);
    }

    #[test]
    fn zero_within_variance_gives_p_zero() {
        let r = two_group(&[1.0, 1.0, 1.0], &[2.0, 2.0, 2.0]).unwrap();
        assert_eq!(r.p_value, 0.0);
        assert!(r.f_statistic.is_infinite());
    }

    #[test]
    fn error_cases() {
        assert_eq!(one_way(&[&[1.0, 2.0]]), Err(AnovaError::TooFewGroups));
        assert_eq!(two_group(&[], &[1.0]), Err(AnovaError::TooFewSamples));
        assert_eq!(two_group(&[1.0], &[2.0]), Err(AnovaError::TooFewSamples));
    }

    #[test]
    fn p_value_monotone_in_separation() {
        let base: Vec<f64> = (0..30).map(|i| (i % 7) as f64).collect();
        let mut last_p = 1.1;
        for shift in [0.5, 2.0, 8.0] {
            let moved: Vec<f64> = base.iter().map(|x| x + shift).collect();
            let p = two_group(&base, &moved).unwrap().p_value;
            assert!(p < last_p, "p should drop as groups separate");
            last_p = p;
        }
    }
}
