//! Gaussian Naive Bayes.
//!
//! One of the two classifiers Waldo ships (§3.2): compact (two moments per
//! feature per class), fast to train, and probabilistic — which is exactly
//! why the paper observes it confuses weak signals with noise more often
//! than the SVM (higher FN rate on boundary readings).

use serde::{Deserialize, Serialize};

use crate::{Classifier, Dataset};

/// Error returned when a training set cannot support a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NbError {
    /// The dataset is empty.
    Empty,
    /// Only one class is present; the model would be degenerate.
    SingleClass,
}

impl std::fmt::Display for NbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NbError::Empty => write!(f, "training set is empty"),
            NbError::SingleClass => write!(f, "training set contains a single class"),
        }
    }
}

impl std::error::Error for NbError {}

/// Trainer for [`GaussianNb`].
///
/// # Examples
///
/// ```
/// use waldo_ml::{Classifier, Dataset};
/// use waldo_ml::nb::GaussianNbTrainer;
///
/// let ds = Dataset::from_rows(
///     vec![vec![-1.0], vec![-1.2], vec![1.0], vec![1.2]],
///     vec![false, false, true, true],
/// ).unwrap();
/// let model = GaussianNbTrainer::new().fit(&ds).unwrap();
/// assert!(model.predict(&[0.9]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianNbTrainer {
    var_smoothing: f64,
}

impl Default for GaussianNbTrainer {
    fn default() -> Self {
        Self::new()
    }
}

impl GaussianNbTrainer {
    /// Creates a trainer with variance smoothing `1e-9` (relative to the
    /// largest feature variance, as in scikit-learn).
    pub fn new() -> Self {
        Self { var_smoothing: 1e-9 }
    }

    /// Overrides the variance-smoothing factor.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or non-finite.
    pub fn var_smoothing(mut self, s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "smoothing must be a non-negative finite number");
        self.var_smoothing = s;
        self
    }

    /// Fits a Gaussian NB model.
    ///
    /// # Errors
    ///
    /// Returns [`NbError`] if the dataset is empty or single-class.
    pub fn fit(&self, ds: &Dataset) -> Result<GaussianNb, NbError> {
        if ds.is_empty() {
            return Err(NbError::Empty);
        }
        if !ds.has_both_classes() {
            return Err(NbError::SingleClass);
        }
        let dim = ds.dim();
        let mut acc = [Accumulator::new(dim), Accumulator::new(dim)];
        for (row, &label) in ds.rows().iter().zip(ds.labels()) {
            acc[usize::from(label)].accumulate(row);
        }
        let [neg_acc, pos_acc] = acc;
        let mut stats = [neg_acc.finalize(), pos_acc.finalize()];
        // Global max variance for the smoothing floor.
        let mut max_var: f64 = 0.0;
        for s in &stats {
            for &v in &s.vars {
                max_var = max_var.max(v);
            }
        }
        let floor = self.var_smoothing * max_var.max(1e-30);
        for s in &mut stats {
            for v in s.vars.iter_mut() {
                *v += floor;
                if *v <= 0.0 {
                    *v = floor.max(1e-12);
                }
            }
        }
        let n = ds.len() as f64;
        let prior_pos = ds.positives() as f64 / n;
        let [neg, pos] = stats;
        Ok(GaussianNb {
            log_prior_pos: prior_pos.ln(),
            log_prior_neg: (1.0 - prior_pos).ln(),
            pos,
            neg,
        })
    }
}

/// Fit-time running sums; collapses into [`ClassMoments`] once the pass
/// over the training set finishes. Never stored or serialized — the
/// descriptor only carries the finished moments.
struct Accumulator {
    count: usize,
    sums: Vec<f64>,
    sq_sums: Vec<f64>,
}

impl Accumulator {
    fn new(dim: usize) -> Self {
        Self { count: 0, sums: vec![0.0; dim], sq_sums: vec![0.0; dim] }
    }

    fn accumulate(&mut self, row: &[f64]) {
        self.count += 1;
        for (d, &v) in row.iter().enumerate() {
            self.sums[d] += v;
            self.sq_sums[d] += v * v;
        }
    }

    fn finalize(self) -> ClassMoments {
        let n = self.count.max(1) as f64;
        let means: Vec<f64> = self.sums.iter().map(|&s| s / n).collect();
        let vars =
            self.sq_sums.iter().zip(&means).map(|(&sq, &m)| (sq / n - m * m).max(0.0)).collect();
        ClassMoments { count: self.count, means, vars }
    }
}

/// Per-class Gaussian parameters: the sample count and, per feature, the
/// mean and (smoothed) variance. This is everything the classifier needs
/// at prediction time, and all that the JSON descriptor and the
/// `waldo-serve` wire format carry per class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassMoments {
    count: usize,
    means: Vec<f64>,
    vars: Vec<f64>,
}

impl ClassMoments {
    /// Assembles moments from decoded parts.
    ///
    /// # Panics
    ///
    /// Panics if `means` and `vars` differ in length.
    pub fn from_parts(count: usize, means: Vec<f64>, vars: Vec<f64>) -> Self {
        assert_eq!(means.len(), vars.len(), "means/vars dimension mismatch");
        Self { count, means, vars }
    }

    /// Training rows this class observed.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Per-feature means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-feature smoothed variances.
    pub fn vars(&self) -> &[f64] {
        &self.vars
    }

    fn log_likelihood(&self, x: &[f64]) -> f64 {
        let mut ll = 0.0;
        for ((&v, &m), &var) in x.iter().zip(&self.means).zip(&self.vars) {
            let diff = v - m;
            ll += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + diff * diff / var);
        }
        ll
    }
}

/// A trained Gaussian Naive Bayes classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianNb {
    log_prior_pos: f64,
    log_prior_neg: f64,
    pos: ClassMoments,
    neg: ClassMoments,
}

impl GaussianNb {
    /// Assembles a model from decoded parts.
    ///
    /// # Panics
    ///
    /// Panics if the two classes disagree on feature dimension.
    pub fn from_parts(
        log_prior_pos: f64,
        log_prior_neg: f64,
        pos: ClassMoments,
        neg: ClassMoments,
    ) -> Self {
        assert_eq!(pos.means.len(), neg.means.len(), "class dimension mismatch");
        Self { log_prior_pos, log_prior_neg, pos, neg }
    }

    /// Log prior of the positive (not-safe) class.
    pub fn log_prior_pos(&self) -> f64 {
        self.log_prior_pos
    }

    /// Log prior of the negative (safe) class.
    pub fn log_prior_neg(&self) -> f64 {
        self.log_prior_neg
    }

    /// Moments of the positive class.
    pub fn positive(&self) -> &ClassMoments {
        &self.pos
    }

    /// Moments of the negative class.
    pub fn negative(&self) -> &ClassMoments {
        &self.neg
    }
    /// Log-odds of the positive class for `x` (positive ⇒ predicts `true`).
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn log_odds(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.pos.means.len(), "feature dimension mismatch");
        (self.log_prior_pos + self.pos.log_likelihood(x))
            - (self.log_prior_neg + self.neg.log_likelihood(x))
    }

    /// Number of serialized parameters (per-class mean + variance per
    /// feature, plus two priors). Backs the model-size experiment: NB's
    /// descriptor is ~10× smaller than the SVM's.
    pub fn parameter_count(&self) -> usize {
        2 * (self.pos.means.len() + self.pos.vars.len()) + 2
    }
}

impl Classifier for GaussianNb {
    fn predict(&self, x: &[f64]) -> bool {
        self.log_odds(x) > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..50 {
            let t = i as f64 / 50.0;
            rows.push(vec![-2.0 - t, 1.0 + t]);
            labels.push(false);
            rows.push(vec![2.0 + t, -1.0 - t]);
            labels.push(true);
        }
        Dataset::from_rows(rows, labels).unwrap()
    }

    #[test]
    fn classifies_separable_data() {
        let model = GaussianNbTrainer::new().fit(&separable()).unwrap();
        assert!(model.predict(&[2.5, -1.5]));
        assert!(!model.predict(&[-2.5, 1.5]));
    }

    #[test]
    fn training_errors() {
        assert_eq!(GaussianNbTrainer::new().fit(&Dataset::default()), Err(NbError::Empty));
        let single = Dataset::from_rows(vec![vec![1.0], vec![2.0]], vec![true, true]).unwrap();
        assert_eq!(GaussianNbTrainer::new().fit(&single), Err(NbError::SingleClass));
    }

    #[test]
    fn log_odds_sign_matches_prediction() {
        let model = GaussianNbTrainer::new().fit(&separable()).unwrap();
        for x in [[3.0, -2.0], [-3.0, 2.0]] {
            assert_eq!(model.predict(&x), model.log_odds(&x) > 0.0);
        }
    }

    #[test]
    fn zero_variance_feature_is_smoothed() {
        // Second feature is constant within each class.
        let ds = Dataset::from_rows(
            vec![vec![0.0, 5.0], vec![0.1, 5.0], vec![1.0, 5.0], vec![1.1, 5.0]],
            vec![false, false, true, true],
        )
        .unwrap();
        let model = GaussianNbTrainer::new().fit(&ds).unwrap();
        // Must not NaN/panic and must still separate on the informative axis.
        assert!(model.predict(&[1.05, 5.0]));
        assert!(!model.predict(&[0.05, 5.0]));
    }

    #[test]
    fn priors_shift_the_boundary() {
        // Two classes with identical shape (σ = 1) centred at 0 and 2, but
        // the negative class is 10× more frequent: the midpoint x = 1,
        // equidistant from both means, must go negative on the prior.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..100 {
            rows.push(vec![((i % 11) as f64 - 5.0) / 2.5]);
            labels.push(false);
        }
        for i in 0..10 {
            rows.push(vec![2.0 + ((i % 11) as f64 - 5.0) / 2.5]);
            labels.push(true);
        }
        let ds = Dataset::from_rows(rows, labels).unwrap();
        let model = GaussianNbTrainer::new().fit(&ds).unwrap();
        assert!(!model.predict(&[1.0]));
        // Far into the positive lobe the likelihood outweighs the prior.
        assert!(model.predict(&[4.0]));
    }

    #[test]
    fn parameter_count_scales_with_dim() {
        let model = GaussianNbTrainer::new().fit(&separable()).unwrap();
        assert_eq!(model.parameter_count(), 2 * (2 + 2) + 2);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn wrong_dimension_panics() {
        let model = GaussianNbTrainer::new().fit(&separable()).unwrap();
        let _ = model.predict(&[1.0]);
    }
}
