//! L2-regularized logistic regression trained by gradient descent.
//!
//! The paper lists "regression analysis-based classifiers" among the
//! compact, Waldo-friendly model families (§3.2) alongside SVM and
//! Bayesian classifiers; this is that family's standard representative.
//! Its descriptor is the smallest of all (one weight per feature plus a
//! bias), which matters for the model-download overhead of §5.

use serde::{Deserialize, Serialize};

use crate::linalg::dot;
use crate::{Classifier, Dataset};

/// Errors from logistic-regression training.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogisticError {
    /// The dataset is empty.
    Empty,
    /// Only one class is present.
    SingleClass,
}

impl std::fmt::Display for LogisticError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogisticError::Empty => write!(f, "training set is empty"),
            LogisticError::SingleClass => write!(f, "training set contains a single class"),
        }
    }
}

impl std::error::Error for LogisticError {}

/// Trainer for [`LogisticModel`].
///
/// # Examples
///
/// ```
/// use waldo_ml::{Classifier, Dataset};
/// use waldo_ml::logistic::LogisticTrainer;
///
/// let ds = Dataset::from_rows(
///     vec![vec![-2.0], vec![-1.5], vec![1.5], vec![2.0]],
///     vec![false, false, true, true],
/// ).unwrap();
/// let model = LogisticTrainer::new().fit(&ds).unwrap();
/// assert!(model.predict(&[1.8]));
/// assert!(!model.predict(&[-1.8]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogisticTrainer {
    learning_rate: f64,
    l2: f64,
    epochs: usize,
}

impl Default for LogisticTrainer {
    fn default() -> Self {
        Self::new()
    }
}

impl LogisticTrainer {
    /// Creates a trainer with learning rate 0.1, L2 weight 1e-4, and 300
    /// full-batch epochs — comfortable for standardized features.
    pub fn new() -> Self {
        Self { learning_rate: 0.1, l2: 1e-4, epochs: 300 }
    }

    /// Overrides the learning rate.
    ///
    /// # Panics
    ///
    /// Panics unless positive.
    pub fn learning_rate(mut self, lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        self.learning_rate = lr;
        self
    }

    /// Overrides the L2 regularization weight.
    ///
    /// # Panics
    ///
    /// Panics if negative.
    pub fn l2(mut self, l2: f64) -> Self {
        assert!(l2 >= 0.0, "regularization must be non-negative");
        self.l2 = l2;
        self
    }

    /// Overrides the epoch count.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn epochs(mut self, epochs: usize) -> Self {
        assert!(epochs > 0, "at least one epoch is required");
        self.epochs = epochs;
        self
    }

    /// Fits by full-batch gradient descent on the regularized log loss.
    ///
    /// # Errors
    ///
    /// Returns [`LogisticError`] on empty or single-class data.
    pub fn fit(&self, ds: &Dataset) -> Result<LogisticModel, LogisticError> {
        if ds.is_empty() {
            return Err(LogisticError::Empty);
        }
        if !ds.has_both_classes() {
            return Err(LogisticError::SingleClass);
        }
        let n = ds.len() as f64;
        let dim = ds.dim();
        let mut weights = vec![0.0f64; dim];
        let mut bias = 0.0f64;

        for _ in 0..self.epochs {
            let mut grad_w = vec![0.0f64; dim];
            let mut grad_b = 0.0f64;
            for (row, &label) in ds.rows().iter().zip(ds.labels()) {
                let y = f64::from(u8::from(label));
                let p = sigmoid(dot(&weights, row) + bias);
                let err = p - y;
                for (g, &x) in grad_w.iter_mut().zip(row) {
                    *g += err * x / n;
                }
                grad_b += err / n;
            }
            for (w, g) in weights.iter_mut().zip(&grad_w) {
                *w -= self.learning_rate * (g + self.l2 * *w);
            }
            bias -= self.learning_rate * grad_b;
        }
        Ok(LogisticModel { weights, bias })
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// A trained logistic-regression classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticModel {
    weights: Vec<f64>,
    bias: f64,
}

impl LogisticModel {
    /// Assembles a model from decoded parts.
    pub fn from_parts(weights: Vec<f64>, bias: f64) -> Self {
        Self { weights, bias }
    }

    /// Probability of the positive (not-safe) class.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn probability(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "feature dimension mismatch");
        sigmoid(dot(&self.weights, x) + self.bias)
    }

    /// The fitted weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The fitted bias.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Serialized parameter count: one weight per feature plus the bias —
    /// the most compact descriptor of the classifier families in §3.2.
    pub fn parameter_count(&self) -> usize {
        self.weights.len() + 1
    }
}

impl Classifier for LogisticModel {
    fn predict(&self, x: &[f64]) -> bool {
        self.probability(x) > 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let t = i as f64 * 0.01;
            rows.push(vec![-1.0 - t, 0.5 + t]);
            labels.push(false);
            rows.push(vec![1.0 + t, -0.5 - t]);
            labels.push(true);
        }
        Dataset::from_rows(rows, labels).unwrap()
    }

    #[test]
    fn separates_linear_data() {
        let model = LogisticTrainer::new().fit(&separable()).unwrap();
        assert!(model.predict(&[1.5, -1.0]));
        assert!(!model.predict(&[-1.5, 1.0]));
    }

    #[test]
    fn probabilities_are_calibrated_in_direction() {
        let model = LogisticTrainer::new().fit(&separable()).unwrap();
        let deep_pos = model.probability(&[3.0, -2.0]);
        let border = model.probability(&[0.0, 0.0]);
        let deep_neg = model.probability(&[-3.0, 2.0]);
        assert!(deep_pos > border && border > deep_neg);
        assert!((0.0..=1.0).contains(&deep_pos));
    }

    #[test]
    fn l2_shrinks_weights() {
        let loose = LogisticTrainer::new().l2(0.0).fit(&separable()).unwrap();
        let tight = LogisticTrainer::new().l2(1.0).fit(&separable()).unwrap();
        let norm = |m: &LogisticModel| m.weights().iter().map(|w| w * w).sum::<f64>();
        assert!(norm(&tight) < norm(&loose));
    }

    #[test]
    fn training_errors() {
        assert_eq!(LogisticTrainer::new().fit(&Dataset::default()), Err(LogisticError::Empty));
        let single = Dataset::from_rows(vec![vec![1.0]], vec![true]).unwrap();
        assert_eq!(LogisticTrainer::new().fit(&single), Err(LogisticError::SingleClass));
    }

    #[test]
    fn parameter_count_is_minimal() {
        let model = LogisticTrainer::new().fit(&separable()).unwrap();
        assert_eq!(model.parameter_count(), 3);
    }

    #[test]
    fn deterministic_training() {
        let a = LogisticTrainer::new().fit(&separable()).unwrap();
        let b = LogisticTrainer::new().fit(&separable()).unwrap();
        assert_eq!(a, b);
    }
}
