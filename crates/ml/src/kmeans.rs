//! k-means clustering with k-means++ initialization.
//!
//! Two consumers in the reproduction: Waldo's *localities identification*
//! (partitioning the study region into a handful of local models, §3.2) and
//! the V-Scope baseline's measurement clustering.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::linalg::dist_sq;

/// Errors from clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KMeansError {
    /// Fewer points than requested clusters.
    TooFewPoints,
    /// `k` was zero.
    ZeroClusters,
}

impl std::fmt::Display for KMeansError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KMeansError::TooFewPoints => write!(f, "fewer points than clusters"),
            KMeansError::ZeroClusters => write!(f, "k must be at least one"),
        }
    }
}

impl std::error::Error for KMeansError {}

/// Configuration for a k-means run.
///
/// # Examples
///
/// ```
/// use waldo_ml::kmeans::KMeans;
///
/// let pts = vec![
///     vec![0.0, 0.0], vec![0.1, 0.0], vec![10.0, 10.0], vec![10.1, 10.0],
/// ];
/// let clustering = KMeans::new(2).seed(1).fit(&pts).unwrap();
/// assert_eq!(clustering.k(), 2);
/// assert_eq!(clustering.assign(&[0.05, 0.0]), clustering.assign(&[0.0, 0.1]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KMeans {
    k: usize,
    max_iter: usize,
    seed: u64,
}

impl KMeans {
    /// Creates a runner for `k` clusters (k-means++ init, ≤ 100 Lloyd
    /// iterations).
    pub fn new(k: usize) -> Self {
        Self { k, max_iter: 100, seed: 0 }
    }

    /// Caps Lloyd iterations (default 100).
    ///
    /// # Panics
    ///
    /// Panics if `it == 0`.
    pub fn max_iter(mut self, it: usize) -> Self {
        assert!(it > 0, "at least one iteration is required");
        self.max_iter = it;
        self
    }

    /// Seed for initialization.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs clustering over `points`.
    ///
    /// # Errors
    ///
    /// Returns [`KMeansError`] if `k == 0` or there are fewer points than
    /// clusters.
    pub fn fit(&self, points: &[Vec<f64>]) -> Result<Clustering, KMeansError> {
        if self.k == 0 {
            return Err(KMeansError::ZeroClusters);
        }
        if points.len() < self.k {
            return Err(KMeansError::TooFewPoints);
        }
        let _t = waldo_prof::scope("kmeans");
        let mut rng = StdRng::seed_from_u64(self.seed ^ KMEANS_SALT);
        let mut centroids = plus_plus_init(points, self.k, &mut rng);
        let mut assignment = vec![0usize; points.len()];

        for _ in 0..self.max_iter {
            // Assignment step: each point's nearest centroid is independent
            // of the others, so fan chunks out over the worker pool. The
            // update step below stays serial to keep the floating-point
            // accumulation order (and thus the centroids) bit-identical to
            // a single-threaded run.
            let next = assign_all(points, &centroids);
            let mut moved = false;
            for (slot, best) in assignment.iter_mut().zip(&next) {
                if *slot != *best {
                    *slot = *best;
                    moved = true;
                }
            }
            // Update step.
            let dim = points[0].len();
            let mut sums = vec![vec![0.0; dim]; self.k];
            let mut counts = vec![0usize; self.k];
            for (i, p) in points.iter().enumerate() {
                counts[assignment[i]] += 1;
                for d in 0..dim {
                    sums[assignment[i]][d] += p[d];
                }
            }
            for c in 0..self.k {
                if counts[c] == 0 {
                    // Re-seed an empty cluster at the point farthest from
                    // its centroid.
                    let far = points
                        .iter()
                        .enumerate()
                        .max_by(|(_, a), (_, b)| {
                            dist_sq(a, &centroids[nearest(&centroids, a)])
                                .total_cmp(&dist_sq(b, &centroids[nearest(&centroids, b)]))
                        })
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    centroids[c] = points[far].clone();
                    moved = true;
                } else {
                    for slot in &mut sums[c] {
                        *slot /= counts[c] as f64;
                    }
                    centroids[c] = std::mem::take(&mut sums[c]);
                }
            }
            if !moved {
                break;
            }
        }
        // Final assignment after the last update.
        let assignment = assign_all(points, &centroids);
        Ok(Clustering { centroids, assignment })
    }
}

/// Seed salt so k-means draws differ from other seeded components fed the
/// same user seed ("kmeans" in ASCII).
const KMEANS_SALT: u64 = 0x6b6d_6561_6e73;

/// Points per parallel chunk in the assignment step: large enough that a
/// chunk amortizes its scheduling, small enough to load-balance the
/// campaign-sized inputs.
const ASSIGN_CHUNK: usize = 256;

/// Nearest-centroid assignment for every point, chunked over the worker
/// pool. Pure per-point computation, so the output does not depend on the
/// worker count or chunk boundaries.
fn assign_all(points: &[Vec<f64>], centroids: &[Vec<f64>]) -> Vec<usize> {
    waldo_par::par_chunk_map(points, ASSIGN_CHUNK, |chunk| {
        chunk.iter().map(|p| nearest(centroids, p)).collect()
    })
}

fn nearest(centroids: &[Vec<f64>], p: &[f64]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = dist_sq(centroid, p);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

fn plus_plus_init<R: Rng>(points: &[Vec<f64>], k: usize, rng: &mut R) -> Vec<Vec<f64>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    let mut dists: Vec<f64> = points.iter().map(|p| dist_sq(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = dists.iter().sum();
        let next = if total <= 0.0 {
            rng.gen_range(0..points.len())
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = points.len() - 1;
            for (i, &d) in dists.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(points[next].clone());
        for (i, p) in points.iter().enumerate() {
            let d = dist_sq(p, centroids.last().expect("just pushed"));
            if d < dists[i] {
                dists[i] = d;
            }
        }
    }
    centroids
}

/// The result of a k-means run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Clustering {
    centroids: Vec<Vec<f64>>,
    assignment: Vec<usize>,
}

impl Clustering {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// The cluster centroids.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Training-point assignments, parallel to the input order. Empty for
    /// clusterings rebuilt from centroids alone (see
    /// [`from_centroids`](Self::from_centroids)).
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Builds a clustering from bare centroids, with no training
    /// assignment. This is the decode path for distributed models: a device
    /// only needs the centroids to route readings to localities.
    ///
    /// # Panics
    ///
    /// Panics if `centroids` is empty or the centroids disagree on
    /// dimension.
    pub fn from_centroids(centroids: Vec<Vec<f64>>) -> Self {
        assert!(!centroids.is_empty(), "at least one centroid is required");
        let dim = centroids[0].len();
        assert!(centroids.iter().all(|c| c.len() == dim), "centroid dimension mismatch");
        Self { centroids, assignment: Vec::new() }
    }

    /// Drops the training assignment, keeping only the centroids. Shipping
    /// a model does not require the per-training-point assignment (which
    /// scales with the campaign size, not the model), so constructors strip
    /// it before storing the downloadable descriptor.
    pub fn without_assignment(self) -> Self {
        Self { centroids: self.centroids, assignment: Vec::new() }
    }

    /// Assigns an arbitrary point to its nearest centroid.
    ///
    /// # Panics
    ///
    /// Panics if `p` has a different dimension than the centroids.
    pub fn assign(&self, p: &[f64]) -> usize {
        nearest(&self.centroids, p)
    }

    /// Sum of squared distances of training points to their centroids.
    pub fn inertia(&self, points: &[Vec<f64>]) -> f64 {
        points.iter().zip(&self.assignment).map(|(p, &c)| dist_sq(p, &self.centroids[c])).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..20 {
            let o = i as f64 * 0.01;
            pts.push(vec![0.0 + o, 0.0]);
            pts.push(vec![10.0 + o, 10.0]);
            pts.push(vec![-10.0 - o, 10.0]);
        }
        pts
    }

    #[test]
    fn recovers_three_blobs() {
        let pts = blobs();
        let c = KMeans::new(3).seed(1).fit(&pts).unwrap();
        assert_eq!(c.k(), 3);
        // All points of one blob share a cluster.
        let a = c.assign(&[0.0, 0.0]);
        let b = c.assign(&[10.0, 10.0]);
        let d = c.assign(&[-10.0, 10.0]);
        assert!(a != b && b != d && a != d);
        for p in &pts {
            let expected = if p[0] > 5.0 {
                b
            } else if p[0] < -5.0 {
                d
            } else {
                a
            };
            assert_eq!(c.assign(p), expected);
        }
    }

    #[test]
    fn assignments_match_nearest_centroid() {
        let pts = blobs();
        let c = KMeans::new(3).seed(5).fit(&pts).unwrap();
        for (i, p) in pts.iter().enumerate() {
            let manual = (0..c.k())
                .min_by(|&a, &b| {
                    dist_sq(p, &c.centroids()[a]).total_cmp(&dist_sq(p, &c.centroids()[b]))
                })
                .unwrap();
            assert_eq!(c.assignment()[i], manual);
        }
    }

    #[test]
    fn inertia_decreases_with_k() {
        let pts = blobs();
        let i1 = KMeans::new(1).seed(2).fit(&pts).unwrap().inertia(&pts);
        let i3 = KMeans::new(3).seed(2).fit(&pts).unwrap().inertia(&pts);
        assert!(i3 < i1, "k=3 inertia {i3} should beat k=1 {i1}");
    }

    #[test]
    fn k_equals_one_centroid_is_mean() {
        let pts = vec![vec![0.0], vec![2.0], vec![4.0]];
        let c = KMeans::new(1).fit(&pts).unwrap();
        assert!((c.centroids()[0][0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn errors_on_bad_inputs() {
        assert_eq!(KMeans::new(0).fit(&blobs()), Err(KMeansError::ZeroClusters));
        assert_eq!(KMeans::new(5).fit(&[vec![1.0], vec![2.0]]), Err(KMeansError::TooFewPoints));
    }

    #[test]
    fn deterministic_per_seed() {
        let pts = blobs();
        let a = KMeans::new(3).seed(11).fit(&pts).unwrap();
        let b = KMeans::new(3).seed(11).fit(&pts).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_points_do_not_break_init() {
        let pts = vec![vec![1.0, 1.0]; 10];
        let c = KMeans::new(3).seed(0).fit(&pts).unwrap();
        assert_eq!(c.assignment().len(), 10);
    }
}
