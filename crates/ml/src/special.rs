//! Special functions needed for real p-values: log-gamma, the regularized
//! incomplete beta function, and the standard-normal quantile.
//!
//! These back the F-distribution tail probability in [`crate::anova`] and
//! the confidence intervals of the online detector. Implementations follow
//! the classic Lanczos / continued-fraction formulations (Numerical Recipes
//! §6) written from scratch.

/// Natural log of the gamma function for `x > 0` (Lanczos approximation,
/// g = 7, n = 9; accurate to ~1e-13 over the relevant range).
///
/// # Panics
///
/// Panics if `x <= 0`.
///
/// # Examples
///
/// ```
/// let lg = waldo_ml::special::ln_gamma(5.0);
/// assert!((lg - (24.0f64).ln()).abs() < 1e-10); // Γ(5) = 4! = 24
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument");
    const G: f64 = 7.0;
    // Lanczos g=7 coefficients, kept at published precision.
    #[allow(clippy::excessive_precision, clippy::inconsistent_digit_grouping)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0` and
/// `x ∈ [0, 1]`, via the Lentz continued fraction.
///
/// # Panics
///
/// Panics if the arguments are out of range.
///
/// # Examples
///
/// ```
/// // I_x(1, 1) is the uniform CDF.
/// assert!((waldo_ml::special::betainc(0.3, 1.0, 1.0) - 0.3).abs() < 1e-12);
/// ```
pub fn betainc(x: f64, a: f64, b: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "betainc requires positive shape parameters");
    assert!((0.0..=1.0).contains(&x), "betainc requires x in [0, 1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the symmetry relation to keep the continued fraction convergent.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(x, a, b) / a
    } else {
        1.0 - ln_gamma_betainc_complement(x, a, b, front)
    }
}

fn ln_gamma_betainc_complement(x: f64, a: f64, b: f64, front: f64) -> f64 {
    front * beta_cf(1.0 - x, b, a) / b
}

/// Modified Lentz evaluation of the continued fraction for `betainc`.
fn beta_cf(x: f64, a: f64, b: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const TINY: f64 = 1e-300;
    const EPS: f64 = 1e-14;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Survival function (upper tail) of the F-distribution with `(d1, d2)`
/// degrees of freedom: `P(F > f)`.
///
/// # Panics
///
/// Panics if the degrees of freedom are not positive or `f < 0`.
pub fn f_sf(f: f64, d1: f64, d2: f64) -> f64 {
    assert!(d1 > 0.0 && d2 > 0.0, "degrees of freedom must be positive");
    assert!(f >= 0.0, "an F statistic cannot be negative");
    let x = d2 / (d2 + d1 * f);
    betainc(x, d2 / 2.0, d1 / 2.0)
}

/// Standard-normal quantile function (inverse CDF), Acklam's rational
/// approximation (relative error < 1.2e-9).
///
/// # Panics
///
/// Panics unless `p ∈ (0, 1)`.
///
/// # Examples
///
/// ```
/// let z = waldo_ml::special::norm_ppf(0.95);
/// assert!((z - 1.6449).abs() < 1e-3);
/// ```
// Acklam inverse-normal coefficients, kept at published precision.
#[allow(clippy::excessive_precision)]
pub fn norm_ppf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability must lie strictly inside (0, 1)");
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_690e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Standard-normal CDF via `erf`-free Abramowitz–Stegun 26.2.17 rational
/// approximation (absolute error < 7.5e-8), adequate for reporting.
pub fn norm_cdf(z: f64) -> f64 {
    if z < 0.0 {
        return 1.0 - norm_cdf(-z);
    }
    let t = 1.0 / (1.0 + 0.231_641_9 * z);
    let poly = t
        * (0.319_381_530
            + t * (-0.356_563_782
                + t * (1.781_477_937 + t * (-1.821_255_978 + t * 1.330_274_429))));
    let pdf = (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt();
    1.0 - pdf * poly
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        let mut fact = 1.0f64;
        for n in 1..12u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            assert!((ln_gamma(n as f64) - fact.ln()).abs() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn betainc_boundaries_and_symmetry() {
        assert_eq!(betainc(0.0, 2.0, 3.0), 0.0);
        assert_eq!(betainc(1.0, 2.0, 3.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a).
        for &(x, a, b) in &[(0.3, 2.0, 5.0), (0.7, 0.5, 0.5), (0.5, 10.0, 3.0)] {
            let lhs = betainc(x, a, b);
            let rhs = 1.0 - betainc(1.0 - x, b, a);
            assert!((lhs - rhs).abs() < 1e-10, "x={x} a={a} b={b}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn betainc_known_values() {
        // I_x(1,1) = x; I_x(2,1) = x^2.
        assert!((betainc(0.42, 1.0, 1.0) - 0.42).abs() < 1e-12);
        assert!((betainc(0.42, 2.0, 1.0) - 0.42f64.powi(2)).abs() < 1e-10);
        // I_{1/2}(a,a) = 1/2 by symmetry.
        assert!((betainc(0.5, 7.3, 7.3) - 0.5).abs() < 1e-10);
    }

    #[test]
    fn f_sf_reference_points() {
        // F(1, 10): P(F > 4.96) ≈ 0.05 (standard table value 4.9646).
        let p = f_sf(4.9646, 1.0, 10.0);
        assert!((p - 0.05).abs() < 2e-3, "got {p}");
        // F(2, 20): P(F > 3.4928) ≈ 0.05.
        let p = f_sf(3.4928, 2.0, 20.0);
        assert!((p - 0.05).abs() < 2e-3, "got {p}");
        // Huge statistic → vanishing p.
        assert!(f_sf(1e6, 1.0, 100.0) < 1e-10);
        // Zero statistic → p = 1.
        assert!((f_sf(0.0, 3.0, 30.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn norm_ppf_matches_table() {
        for &(p, z) in &[(0.5, 0.0), (0.8413, 1.0), (0.9772, 2.0), (0.95, 1.6449), (0.975, 1.96)] {
            assert!((norm_ppf(p) - z).abs() < 2e-3, "p={p}");
        }
        // Symmetry.
        assert!((norm_ppf(0.25) + norm_ppf(0.75)).abs() < 1e-9);
    }

    #[test]
    fn norm_cdf_inverts_ppf() {
        for &p in &[0.01, 0.1, 0.3, 0.5, 0.77, 0.99] {
            let z = norm_ppf(p);
            assert!((norm_cdf(z) - p).abs() < 1e-5, "p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn ln_gamma_rejects_non_positive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    #[should_panic(expected = "inside")]
    fn norm_ppf_rejects_bounds() {
        let _ = norm_ppf(1.0);
    }
}
