use serde::{Deserialize, Serialize};

/// A dense binary-classification dataset: feature rows plus boolean labels
/// (`true` = positive class = *not safe* in Waldo's convention).
///
/// # Examples
///
/// ```
/// use waldo_ml::Dataset;
///
/// let ds = Dataset::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]], vec![true, false]).unwrap();
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.dim(), 2);
/// assert_eq!(ds.positives(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Dataset {
    rows: Vec<Vec<f64>>,
    labels: Vec<bool>,
}

/// Errors from dataset construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetError {
    /// Row count and label count differ.
    LengthMismatch,
    /// Rows have inconsistent dimensions.
    Ragged,
    /// A feature value is NaN or infinite.
    NotFinite,
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::LengthMismatch => write!(f, "row count differs from label count"),
            DatasetError::Ragged => write!(f, "feature rows have inconsistent dimensions"),
            DatasetError::NotFinite => write!(f, "feature values must be finite"),
        }
    }
}

impl std::error::Error for DatasetError {}

impl Dataset {
    /// Builds a dataset from rows and labels.
    ///
    /// # Errors
    ///
    /// Returns an error if lengths mismatch, rows are ragged, or any value
    /// is non-finite. An empty dataset (no rows) is valid.
    pub fn from_rows(rows: Vec<Vec<f64>>, labels: Vec<bool>) -> Result<Self, DatasetError> {
        if rows.len() != labels.len() {
            return Err(DatasetError::LengthMismatch);
        }
        if let Some(first) = rows.first() {
            let d = first.len();
            if rows.iter().any(|r| r.len() != d) {
                return Err(DatasetError::Ragged);
            }
        }
        if rows.iter().flatten().any(|v| !v.is_finite()) {
            return Err(DatasetError::NotFinite);
        }
        Ok(Self { rows, labels })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Feature dimension (0 for an empty dataset).
    pub fn dim(&self) -> usize {
        self.rows.first().map_or(0, Vec::len)
    }

    /// The feature rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// The labels.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// One sample.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn sample(&self, i: usize) -> (&[f64], bool) {
        (&self.rows[i], self.labels[i])
    }

    /// Number of positive (`true`) labels.
    pub fn positives(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// Number of negative labels.
    pub fn negatives(&self) -> usize {
        self.len() - self.positives()
    }

    /// Whether both classes are present.
    pub fn has_both_classes(&self) -> bool {
        let p = self.positives();
        p > 0 && p < self.len()
    }

    /// A new dataset containing the samples at `indices` (in that order).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            rows: indices.iter().map(|&i| self.rows[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
        }
    }

    /// Applies `f` to every row, producing a dataset with transformed
    /// features and the same labels.
    pub fn map_rows<F: FnMut(&[f64]) -> Vec<f64>>(&self, mut f: F) -> Dataset {
        Dataset { rows: self.rows.iter().map(|r| f(r)).collect(), labels: self.labels.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert_eq!(
            Dataset::from_rows(vec![vec![1.0]], vec![]).unwrap_err(),
            DatasetError::LengthMismatch
        );
        assert_eq!(
            Dataset::from_rows(vec![vec![1.0], vec![1.0, 2.0]], vec![true, false]).unwrap_err(),
            DatasetError::Ragged
        );
        assert_eq!(
            Dataset::from_rows(vec![vec![f64::NAN]], vec![true]).unwrap_err(),
            DatasetError::NotFinite
        );
        assert!(Dataset::from_rows(vec![], vec![]).is_ok());
    }

    #[test]
    fn class_counts() {
        let ds = Dataset::from_rows(vec![vec![0.0], vec![1.0], vec![2.0]], vec![true, false, true])
            .unwrap();
        assert_eq!(ds.positives(), 2);
        assert_eq!(ds.negatives(), 1);
        assert!(ds.has_both_classes());
        let single = Dataset::from_rows(vec![vec![0.0]], vec![true]).unwrap();
        assert!(!single.has_both_classes());
    }

    #[test]
    fn subset_preserves_order() {
        let ds =
            Dataset::from_rows(vec![vec![0.0], vec![1.0], vec![2.0]], vec![false, true, false])
                .unwrap();
        let sub = ds.subset(&[2, 0]);
        assert_eq!(sub.rows(), &[vec![2.0], vec![0.0]]);
        assert_eq!(sub.labels(), &[false, false]);
    }

    #[test]
    fn map_rows_transforms_features_only() {
        let ds = Dataset::from_rows(vec![vec![1.0], vec![2.0]], vec![true, false]).unwrap();
        let doubled = ds.map_rows(|r| r.iter().map(|v| v * 2.0).collect());
        assert_eq!(doubled.rows(), &[vec![2.0], vec![4.0]]);
        assert_eq!(doubled.labels(), ds.labels());
    }

    #[test]
    fn error_messages() {
        assert!(DatasetError::Ragged.to_string().contains("inconsistent"));
        assert!(DatasetError::NotFinite.to_string().contains("finite"));
    }
}
