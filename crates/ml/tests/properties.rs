//! Property-based tests of the ML substrate's invariants.

use proptest::prelude::*;
use waldo_ml::kmeans::KMeans;
use waldo_ml::model_selection::KFold;
use waldo_ml::stats::{mean, percentile};
use waldo_ml::svm::{Kernel, SvmTrainer};
use waldo_ml::{ConfusionMatrix, Dataset, StandardScaler};

proptest! {
    #[test]
    fn percentile_is_monotone_and_bounded(
        mut xs in prop::collection::vec(-1e6f64..1e6, 1..200),
        q1 in 0.0f64..100.0,
        q2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let p_lo = percentile(&xs, lo);
        let p_hi = percentile(&xs, hi);
        prop_assert!(p_lo <= p_hi);
        xs.sort_by(|a, b| a.total_cmp(b));
        prop_assert!(p_lo >= xs[0] && p_hi <= xs[xs.len() - 1]);
    }

    #[test]
    fn kfold_partitions_exactly(n in 10usize..300, k in 2usize..10, seed in 0u64..50) {
        prop_assume!(n >= k);
        let splits = KFold::new(k, seed).splits(n);
        let mut seen = vec![0usize; n];
        for s in &splits {
            for &i in &s.test {
                seen[i] += 1;
            }
            prop_assert_eq!(s.train.len() + s.test.len(), n);
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn confusion_rates_are_probabilities(
        labels in prop::collection::vec((any::<bool>(), any::<bool>()), 1..300),
    ) {
        let truth: Vec<bool> = labels.iter().map(|&(t, _)| t).collect();
        let pred: Vec<bool> = labels.iter().map(|&(_, p)| p).collect();
        let cm = ConfusionMatrix::from_labels(&truth, &pred);
        for r in [cm.fp_rate(), cm.fn_rate(), cm.error_rate(), cm.accuracy()] {
            prop_assert!((0.0..=1.0).contains(&r));
        }
        prop_assert_eq!(cm.total(), labels.len());
    }

    #[test]
    fn scaler_standardizes_every_column(
        rows in prop::collection::vec(
            prop::collection::vec(-1e3f64..1e3, 3..=3), 2..100),
    ) {
        let labels = vec![false; rows.len()];
        let ds = Dataset::from_rows(rows, labels).unwrap();
        let scaler = StandardScaler::fit(&ds);
        let out = scaler.transform_dataset(&ds);
        for d in 0..3 {
            let col: Vec<f64> = out.rows().iter().map(|r| r[d]).collect();
            let m = mean(&col);
            prop_assert!(m.abs() < 1e-6, "column {} mean {}", d, m);
        }
    }

    #[test]
    fn kmeans_assignment_is_nearest_centroid(
        pts in prop::collection::vec(
            prop::collection::vec(-100.0f64..100.0, 2..=2), 6..60),
        k in 1usize..5,
        seed in 0u64..20,
    ) {
        prop_assume!(pts.len() >= k);
        let clustering = KMeans::new(k).seed(seed).fit(&pts).unwrap();
        for (i, p) in pts.iter().enumerate() {
            let assigned = clustering.assignment()[i];
            let d_assigned = waldo_ml::linalg::dist_sq(p, &clustering.centroids()[assigned]);
            for c in clustering.centroids() {
                prop_assert!(d_assigned <= waldo_ml::linalg::dist_sq(p, c) + 1e-9);
            }
        }
    }

    #[test]
    fn error_cached_smo_matches_naive_reference(
        raw in prop::collection::vec(
            prop::collection::vec(-1.0f64..1.0, 3..=3), 14..48),
        gamma in 0.3f64..2.0,
    ) {
        // Push every point away from the separating plane so the margin
        // is unambiguous: both solvers must then converge to the same
        // dual optimum regardless of working-set selection order.
        let rows: Vec<Vec<f64>> = raw
            .into_iter()
            .map(|mut r| {
                let s: f64 = r.iter().sum();
                let signed = if s >= 0.0 { 1.0 } else { -1.0 };
                if s.abs() < 0.4 {
                    r[0] += signed * (0.4 - s.abs());
                }
                r
            })
            .collect();
        let labels: Vec<bool> = rows.iter().map(|r| r.iter().sum::<f64>() > 0.0).collect();
        prop_assume!(labels.iter().any(|&l| l) && labels.iter().any(|&l| !l));
        let ds = Dataset::from_rows(rows.clone(), labels).unwrap();

        // A generous iteration budget: the default caps (120 outer
        // iterations) can halt either solver mid-descent, and the claim
        // under test is about the *converged* optimum both must share.
        let trainer = SvmTrainer::new()
            .kernel(Kernel::Rbf { gamma })
            .tol(1e-4)
            .max_iter(5_000)
            .max_passes(5);
        let cached = trainer.fit(&ds).unwrap();
        let naive = trainer.fit_naive_reference(&ds).unwrap();

        // Same substantial support set. Both solvers stop at KKT
        // violation < tol, which pins the decision function but lets
        // boundary points carry solver-path-dependent residual alphas;
        // the robust form of "same support set" is: every SV one solver
        // weights materially (|alpha·y| > 10% of C = 10) must appear in
        // the other solver's support set at all.
        for (heavy, other, dir) in [(&cached, &naive, "cached→naive"), (&naive, &cached, "naive→cached")] {
            for (sv, &a) in heavy.support_vectors().iter().zip(heavy.coefficients()) {
                if a.abs() > 1.0 {
                    prop_assert!(
                        other.support_vectors().contains(sv),
                        "heavy SV (coef {}) missing from the other support set ({})", a, dir
                    );
                }
            }
        }
        // Same decision sign on every confidently-classified training
        // point, and margins within the solvers' convergence tolerance
        // (each stops at KKT violation < 1e-3, so the decision functions
        // agree to that order, not to machine precision).
        for (i, row) in rows.iter().enumerate() {
            let dc = cached.decision_function(row);
            let dn = naive.decision_function(row);
            prop_assert!(
                (dc - dn).abs() < 0.05,
                "margin diverged on row {}: cached {} vs naive {}", i, dc, dn
            );
            if dn.abs() > 0.05 {
                prop_assert_eq!(dc > 0.0, dn > 0.0, "decision sign flipped on row {}", i);
            }
        }
    }

    #[test]
    fn betainc_is_a_cdf_in_x(a in 0.2f64..20.0, b in 0.2f64..20.0,
                              x1 in 0.0f64..1.0, x2 in 0.0f64..1.0) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        let f_lo = waldo_ml::special::betainc(lo, a, b);
        let f_hi = waldo_ml::special::betainc(hi, a, b);
        prop_assert!((0.0..=1.0).contains(&f_lo));
        prop_assert!(f_lo <= f_hi + 1e-12);
    }
}
