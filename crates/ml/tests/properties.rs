//! Property-based tests of the ML substrate's invariants.

use proptest::prelude::*;
use waldo_ml::kmeans::KMeans;
use waldo_ml::model_selection::KFold;
use waldo_ml::stats::{mean, percentile};
use waldo_ml::{ConfusionMatrix, Dataset, StandardScaler};

proptest! {
    #[test]
    fn percentile_is_monotone_and_bounded(
        mut xs in prop::collection::vec(-1e6f64..1e6, 1..200),
        q1 in 0.0f64..100.0,
        q2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let p_lo = percentile(&xs, lo);
        let p_hi = percentile(&xs, hi);
        prop_assert!(p_lo <= p_hi);
        xs.sort_by(|a, b| a.total_cmp(b));
        prop_assert!(p_lo >= xs[0] && p_hi <= xs[xs.len() - 1]);
    }

    #[test]
    fn kfold_partitions_exactly(n in 10usize..300, k in 2usize..10, seed in 0u64..50) {
        prop_assume!(n >= k);
        let splits = KFold::new(k, seed).splits(n);
        let mut seen = vec![0usize; n];
        for s in &splits {
            for &i in &s.test {
                seen[i] += 1;
            }
            prop_assert_eq!(s.train.len() + s.test.len(), n);
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn confusion_rates_are_probabilities(
        labels in prop::collection::vec((any::<bool>(), any::<bool>()), 1..300),
    ) {
        let truth: Vec<bool> = labels.iter().map(|&(t, _)| t).collect();
        let pred: Vec<bool> = labels.iter().map(|&(_, p)| p).collect();
        let cm = ConfusionMatrix::from_labels(&truth, &pred);
        for r in [cm.fp_rate(), cm.fn_rate(), cm.error_rate(), cm.accuracy()] {
            prop_assert!((0.0..=1.0).contains(&r));
        }
        prop_assert_eq!(cm.total(), labels.len());
    }

    #[test]
    fn scaler_standardizes_every_column(
        rows in prop::collection::vec(
            prop::collection::vec(-1e3f64..1e3, 3..=3), 2..100),
    ) {
        let labels = vec![false; rows.len()];
        let ds = Dataset::from_rows(rows, labels).unwrap();
        let scaler = StandardScaler::fit(&ds);
        let out = scaler.transform_dataset(&ds);
        for d in 0..3 {
            let col: Vec<f64> = out.rows().iter().map(|r| r[d]).collect();
            let m = mean(&col);
            prop_assert!(m.abs() < 1e-6, "column {} mean {}", d, m);
        }
    }

    #[test]
    fn kmeans_assignment_is_nearest_centroid(
        pts in prop::collection::vec(
            prop::collection::vec(-100.0f64..100.0, 2..=2), 6..60),
        k in 1usize..5,
        seed in 0u64..20,
    ) {
        prop_assume!(pts.len() >= k);
        let clustering = KMeans::new(k).seed(seed).fit(&pts).unwrap();
        for (i, p) in pts.iter().enumerate() {
            let assigned = clustering.assignment()[i];
            let d_assigned = waldo_ml::linalg::dist_sq(p, &clustering.centroids()[assigned]);
            for c in clustering.centroids() {
                prop_assert!(d_assigned <= waldo_ml::linalg::dist_sq(p, c) + 1e-9);
            }
        }
    }

    #[test]
    fn betainc_is_a_cdf_in_x(a in 0.2f64..20.0, b in 0.2f64..20.0,
                              x1 in 0.0f64..1.0, x2 in 0.0f64..1.0) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        let f_lo = waldo_ml::special::betainc(lo, a, b);
        let f_hi = waldo_ml::special::betainc(hi, a, b);
        prop_assert!((0.0..=1.0).contains(&f_lo));
        prop_assert!(f_lo <= f_hi + 1e-12);
    }
}
