use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use waldo_geo::Point;

use crate::pathloss::PathLossModel;
use crate::{Obstacle, ShadowingField, Transmitter, TvChannel};

/// The ground-truth propagation state of one TV channel: its transmitters,
/// a frozen shadowing realization, shared obstacles, and the path-loss
/// model that ties them together.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelField {
    channel: TvChannel,
    transmitters: Vec<Transmitter>,
    shadowing: ShadowingField,
    obstacles: Vec<Obstacle>,
    pathloss: PathLossModel,
    rx_height_m: f64,
    shadow_cap_db: f64,
}

impl ChannelField {
    /// Composes a channel field.
    ///
    /// # Panics
    ///
    /// Panics if any transmitter is on a different channel, or
    /// `rx_height_m <= 0`.
    pub fn new(
        channel: TvChannel,
        transmitters: Vec<Transmitter>,
        shadowing: ShadowingField,
        obstacles: Vec<Obstacle>,
        pathloss: PathLossModel,
        rx_height_m: f64,
    ) -> Self {
        assert!(rx_height_m > 0.0, "receiver height must be positive");
        assert!(
            transmitters.iter().all(|t| t.channel() == channel),
            "all transmitters must be on the field's channel"
        );
        Self {
            channel,
            transmitters,
            shadowing,
            obstacles,
            pathloss,
            rx_height_m,
            shadow_cap_db: f64::INFINITY,
        }
    }

    /// Caps positive shadowing excursions at `cap_db` (deep *negative*
    /// shadowing — obstruction — is physically common; sustained gains
    /// above the median are not: constructive multipath rarely beats a few
    /// dB at UHF over street-level paths). The cap keeps Algorithm 1's
    /// protected labels within territory whose signal low-cost sensors can
    /// actually observe, which is the regime the paper measured.
    pub fn with_shadow_cap_db(mut self, cap_db: f64) -> Self {
        self.shadow_cap_db = cap_db;
        self
    }

    /// The channel.
    pub fn channel(&self) -> TvChannel {
        self.channel
    }

    /// The incumbent transmitters.
    pub fn transmitters(&self) -> &[Transmitter] {
        &self.transmitters
    }

    /// The receive height the truth is evaluated at, metres.
    pub fn rx_height_m(&self) -> f64 {
        self.rx_height_m
    }

    /// Median received power from `tx` at `p` (path loss only, no
    /// shadowing or obstacles) — what a model-driven database can know.
    pub fn median_rss_dbm(&self, tx: &Transmitter, p: Point) -> f64 {
        let d = tx.location().distance(p).max(1.0);
        self.pathloss.received_dbm(
            tx.erp_dbm(),
            self.channel.center_mhz(),
            d,
            tx.height_m(),
            self.rx_height_m,
        )
    }

    /// Ground-truth received power at `p` in dBm: the power sum over
    /// transmitters of median loss + correlated shadowing − obstacle
    /// excess loss. Returns `-inf` when the channel has no transmitter.
    pub fn rss_dbm(&self, p: Point) -> f64 {
        if self.transmitters.is_empty() {
            return f64::NEG_INFINITY;
        }
        let shadow = self.shadowing.value_db(p).min(self.shadow_cap_db);
        let obstacle: f64 = self.obstacles.iter().map(|o| o.excess_loss_db(p)).sum();
        let total_mw: f64 = self
            .transmitters
            .iter()
            .map(|tx| {
                let db = self.median_rss_dbm(tx, p) + shadow - obstacle;
                10f64.powf(db / 10.0)
            })
            .sum();
        10.0 * total_mw.log10()
    }
}

/// Ground truth for every channel in the study: the RF world the campaign
/// drives through.
///
/// # Examples
///
/// ```
/// use waldo_rf::world::WorldBuilder;
/// use waldo_geo::Point;
///
/// let world = WorldBuilder::new().seed(1).build();
/// let ch = world.field().channels()[0];
/// let rss = world.field().rss_dbm(ch, Point::new(10_000.0, 10_000.0));
/// assert!(rss.is_finite());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignalField {
    fields: BTreeMap<TvChannel, ChannelField>,
}

impl SignalField {
    /// Builds the field from per-channel components.
    pub fn new(fields: Vec<ChannelField>) -> Self {
        Self { fields: fields.into_iter().map(|f| (f.channel(), f)).collect() }
    }

    /// The channels present, ascending.
    pub fn channels(&self) -> Vec<TvChannel> {
        self.fields.keys().copied().collect()
    }

    /// Per-channel field accessor.
    pub fn channel_field(&self, ch: TvChannel) -> Option<&ChannelField> {
        self.fields.get(&ch)
    }

    /// Ground-truth RSS for `ch` at `p` in dBm.
    ///
    /// # Panics
    ///
    /// Panics if `ch` is not part of this field.
    pub fn rss_dbm(&self, ch: TvChannel, p: Point) -> f64 {
        self.fields
            .get(&ch)
            .unwrap_or_else(|| panic!("channel {ch} is not part of this world"))
            .rss_dbm(p)
    }

    /// Every transmitter across all channels (the incumbent registry a
    /// spectrum database would hold).
    pub fn transmitters(&self) -> Vec<Transmitter> {
        self.fields.values().flat_map(|f| f.transmitters().iter().copied()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathloss::Environment;
    use waldo_geo::Region;

    fn region() -> Region {
        Region::new(Point::new(0.0, 0.0), Point::new(20_000.0, 20_000.0)).unwrap()
    }

    fn channel_field(erp: f64, obstacles: Vec<Obstacle>, sigma: f64) -> ChannelField {
        let ch = TvChannel::new(30).unwrap();
        ChannelField::new(
            ch,
            vec![Transmitter::new(ch, Point::new(10_000.0, 10_000.0), erp, 300.0)],
            ShadowingField::generate(region(), sigma, 250.0, 9),
            obstacles,
            PathLossModel::Hata { environment: Environment::Urban },
            2.0,
        )
    }

    #[test]
    fn rss_decays_with_distance() {
        let f = channel_field(60.0, vec![], 0.0);
        let near = f.rss_dbm(Point::new(10_500.0, 10_000.0));
        let mid = f.rss_dbm(Point::new(14_000.0, 10_000.0));
        let far = f.rss_dbm(Point::new(19_900.0, 10_000.0));
        assert!(near > mid && mid > far, "{near} {mid} {far}");
    }

    #[test]
    fn obstacle_carves_a_pocket() {
        let zone =
            Region::new(Point::new(12_000.0, 9_000.0), Point::new(14_000.0, 11_000.0)).unwrap();
        let blocked = channel_field(60.0, vec![Obstacle::new(zone, 30.0, 100.0)], 0.0);
        let open = channel_field(60.0, vec![], 0.0);
        let inside = Point::new(13_000.0, 10_000.0);
        assert!((open.rss_dbm(inside) - blocked.rss_dbm(inside) - 30.0).abs() < 1e-9);
        let outside = Point::new(5_000.0, 5_000.0);
        assert_eq!(open.rss_dbm(outside), blocked.rss_dbm(outside));
    }

    #[test]
    fn empty_channel_reads_negative_infinity() {
        let ch = TvChannel::new(30).unwrap();
        let f = ChannelField::new(
            ch,
            vec![],
            ShadowingField::generate(region(), 6.0, 250.0, 1),
            vec![],
            PathLossModel::FreeSpace,
            2.0,
        );
        assert_eq!(f.rss_dbm(Point::new(0.0, 0.0)), f64::NEG_INFINITY);
    }

    #[test]
    fn two_transmitters_sum_in_power() {
        let ch = TvChannel::new(30).unwrap();
        let mk = |txs: Vec<Transmitter>| {
            ChannelField::new(
                ch,
                txs,
                ShadowingField::generate(region(), 0.0, 250.0, 1),
                vec![],
                PathLossModel::FreeSpace,
                2.0,
            )
        };
        let a = Transmitter::new(ch, Point::new(0.0, 10_000.0), 60.0, 300.0);
        let b = Transmitter::new(ch, Point::new(20_000.0, 10_000.0), 60.0, 300.0);
        let p = Point::new(10_000.0, 10_000.0); // equidistant
        let single = mk(vec![a]).rss_dbm(p);
        let both = mk(vec![a, b]).rss_dbm(p);
        assert!((both - single - 3.01).abs() < 0.02, "expected +3 dB, got {}", both - single);
    }

    #[test]
    fn signal_field_lookup() {
        let f = channel_field(60.0, vec![], 3.0);
        let world = SignalField::new(vec![f]);
        assert_eq!(world.channels().len(), 1);
        assert_eq!(world.transmitters().len(), 1);
        let ch = world.channels()[0];
        assert!(world.channel_field(ch).is_some());
        assert!(world.channel_field(TvChannel::new(15).unwrap()).is_none());
    }

    #[test]
    #[should_panic(expected = "not part of this world")]
    fn unknown_channel_panics() {
        let world = SignalField::new(vec![channel_field(60.0, vec![], 0.0)]);
        let _ = world.rss_dbm(TvChannel::new(15).unwrap(), Point::new(0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "field's channel")]
    fn mismatched_transmitter_channel_panics() {
        let ch30 = TvChannel::new(30).unwrap();
        let ch15 = TvChannel::new(15).unwrap();
        let _ = ChannelField::new(
            ch30,
            vec![Transmitter::new(ch15, Point::default(), 60.0, 300.0)],
            ShadowingField::generate(region(), 6.0, 250.0, 1),
            vec![],
            PathLossModel::FreeSpace,
            2.0,
        );
    }
}
