//! Median path-loss models.
//!
//! The ground-truth world propagates with Hata's empirical model; the
//! spectrum-database baseline predicts with a *different*, conservative
//! model ([`PathLossModel::ConservativeBroadcast`]) that is blind to
//! shadowing and obstacles — which is precisely how real databases built on
//! the FCC R-6602 curves end up overprotecting (§1, Fig 4).

use serde::{Deserialize, Serialize};

use crate::antenna::hata_correction_db;

/// Hata environment classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Environment {
    /// Dense urban (large city).
    Urban,
    /// Suburban: urban minus a frequency-dependent offset.
    Suburban,
    /// Open/rural.
    Open,
}

/// A median path-loss model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PathLossModel {
    /// Free-space (Friis) loss.
    FreeSpace,
    /// Hata's empirical model for 150–1500 MHz.
    Hata {
        /// Environment class.
        environment: Environment,
    },
    /// Log-distance: `ref_loss_db + 10·n·log₁₀(d / 1 km)`.
    LogDistance {
        /// Path-loss exponent.
        exponent: f64,
        /// Loss at the 1 km reference distance, dB.
        ref_loss_db: f64,
    },
    /// A generic broadcast planning curve in the spirit of the FCC R-6602
    /// contours: the same 1 km intercept as Hata but a clear-terrain
    /// exponent of 4.0 — below the ~4.2 street-level decay the ground
    /// truth exhibits, so predicted coverage *over*-reaches and databases
    /// overprotect (and grows worse with distance, like real planning
    /// curves).
    ConservativeBroadcast,
}

impl PathLossModel {
    /// The ground-truth street-level model: log-distance with exponent 4.2
    /// anchored at Hata's urban 1 km intercept for the given carrier and
    /// antenna heights. Measured urban UHF campaigns at ~2 m receive height
    /// (the V-Scope family fits exactly such models) report exponents of
    /// 3.5–4.5; 4.2 sits in that band and leaves the generic planning
    /// curves overpredicting coverage, which is the paper's premise.
    pub fn street_level_urban(freq_mhz: f64, tx_h_m: f64, rx_h_m: f64) -> PathLossModel {
        let ref_loss_db = PathLossModel::Hata { environment: Environment::Urban }
            .loss_db(freq_mhz, 1_000.0, tx_h_m, rx_h_m);
        PathLossModel::LogDistance { exponent: 4.2, ref_loss_db }
    }
}

impl PathLossModel {
    /// Median path loss in dB for carrier `freq_mhz`, distance `dist_m`,
    /// transmitter height `tx_h_m`, and receiver height `rx_h_m`.
    ///
    /// Distances below 50 m are clamped to 50 m (the models are not defined
    /// at the mast base).
    ///
    /// # Panics
    ///
    /// Panics if frequency, heights, or distance are not positive.
    pub fn loss_db(&self, freq_mhz: f64, dist_m: f64, tx_h_m: f64, rx_h_m: f64) -> f64 {
        assert!(freq_mhz > 0.0, "frequency must be positive");
        assert!(tx_h_m > 0.0 && rx_h_m > 0.0, "antenna heights must be positive");
        assert!(dist_m > 0.0, "distance must be positive");
        let d_km = (dist_m.max(50.0)) / 1000.0;
        match *self {
            PathLossModel::FreeSpace => 32.45 + 20.0 * freq_mhz.log10() + 20.0 * d_km.log10(),
            PathLossModel::Hata { environment } => {
                let a = hata_correction_db(rx_h_m);
                let urban = 69.55 + 26.16 * freq_mhz.log10() - 13.82 * tx_h_m.log10() - a
                    + (44.9 - 6.55 * tx_h_m.log10()) * d_km.log10();
                match environment {
                    Environment::Urban => urban,
                    Environment::Suburban => urban - 2.0 * (freq_mhz / 28.0).log10().powi(2) - 5.4,
                    Environment::Open => {
                        urban - 4.78 * freq_mhz.log10().powi(2) + 18.33 * freq_mhz.log10() - 40.94
                    }
                }
            }
            PathLossModel::LogDistance { exponent, ref_loss_db } => {
                ref_loss_db + 10.0 * exponent * d_km.log10()
            }
            PathLossModel::ConservativeBroadcast => {
                // A planning curve that assumes clear terrain: Hata's 1 km
                // intercept with a 3.5 exponent (vs the ~4.2 street-level
                // truth), so coverage predictions over-reach.
                let intercept = 69.55 + 26.16 * freq_mhz.log10()
                    - 13.82 * tx_h_m.log10()
                    - hata_correction_db(rx_h_m);
                intercept + 40.0 * d_km.log10()
            }
        }
    }

    /// Received power in dBm given transmit ERP in dBm.
    pub fn received_dbm(
        &self,
        erp_dbm: f64,
        freq_mhz: f64,
        dist_m: f64,
        tx_h_m: f64,
        rx_h_m: f64,
    ) -> f64 {
        erp_dbm - self.loss_db(freq_mhz, dist_m, tx_h_m, rx_h_m)
    }

    /// The distance (metres) at which received power falls to
    /// `threshold_dbm`, found by bisection over [50 m, 300 km]. Returns the
    /// upper bound if the signal is still above threshold there, or 50 m if
    /// it is already below at the minimum distance.
    pub fn contour_distance_m(
        &self,
        erp_dbm: f64,
        freq_mhz: f64,
        tx_h_m: f64,
        rx_h_m: f64,
        threshold_dbm: f64,
    ) -> f64 {
        let (mut lo, mut hi) = (50.0f64, 300_000.0f64);
        let rx = |d: f64| self.received_dbm(erp_dbm, freq_mhz, d, tx_h_m, rx_h_m);
        if rx(lo) <= threshold_dbm {
            return lo;
        }
        if rx(hi) >= threshold_dbm {
            return hi;
        }
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if rx(mid) >= threshold_dbm {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: f64 = 671.0; // channel 47
    const TX_H: f64 = 300.0;
    const RX_H: f64 = 2.0;

    #[test]
    fn free_space_matches_friis() {
        // FSPL at 1 km, 671 MHz: 32.45 + 20log(671) + 0 ≈ 88.98 dB.
        let l = PathLossModel::FreeSpace.loss_db(F, 1000.0, TX_H, RX_H);
        assert!((l - 88.98).abs() < 0.05, "got {l}");
        // +20 dB per decade of distance.
        let l10 = PathLossModel::FreeSpace.loss_db(F, 10_000.0, TX_H, RX_H);
        assert!((l10 - l - 20.0).abs() < 1e-9);
    }

    #[test]
    fn hata_urban_exceeds_free_space() {
        let hata = PathLossModel::Hata { environment: Environment::Urban };
        for d in [1_000.0, 5_000.0, 20_000.0] {
            let lh = hata.loss_db(F, d, TX_H, RX_H);
            let lf = PathLossModel::FreeSpace.loss_db(F, d, TX_H, RX_H);
            assert!(lh > lf, "Hata {lh} ≤ free space {lf} at {d} m");
        }
    }

    #[test]
    fn environment_ordering() {
        let d = 10_000.0;
        let urban =
            PathLossModel::Hata { environment: Environment::Urban }.loss_db(F, d, TX_H, RX_H);
        let suburban =
            PathLossModel::Hata { environment: Environment::Suburban }.loss_db(F, d, TX_H, RX_H);
        let open = PathLossModel::Hata { environment: Environment::Open }.loss_db(F, d, TX_H, RX_H);
        assert!(urban > suburban, "urban {urban} suburban {suburban}");
        assert!(suburban > open, "suburban {suburban} open {open}");
    }

    #[test]
    fn planning_curve_overreaches_street_level_truth() {
        // This is the root of database overprotection: the planning curve
        // reaches farther than the cluttered street-level truth.
        let truth = PathLossModel::street_level_urban(F, TX_H, RX_H);
        let cons = PathLossModel::ConservativeBroadcast;
        // Full-power far-field station: the 2 dB/decade slope gap compounds
        // with distance, so the planning contour overreaches more the
        // farther out it lands.
        let erp = 90.0;
        let d_truth = truth.contour_distance_m(erp, F, TX_H, RX_H, -84.0);
        let d_cons = cons.contour_distance_m(erp, F, TX_H, RX_H, -84.0);
        assert!(
            d_cons > d_truth * 1.15,
            "planning contour {d_cons} should overreach truth {d_truth}"
        );
        // And the gap is larger at 90 dBm ERP than at 70 dBm.
        let ratio_near = cons.contour_distance_m(70.0, F, TX_H, RX_H, -84.0)
            / truth.contour_distance_m(70.0, F, TX_H, RX_H, -84.0);
        assert!(d_cons / d_truth > ratio_near);
    }

    #[test]
    fn street_level_model_anchors_at_hata_one_km() {
        let truth = PathLossModel::street_level_urban(F, TX_H, RX_H);
        let hata = PathLossModel::Hata { environment: Environment::Urban };
        let at_1km = truth.loss_db(F, 1_000.0, TX_H, RX_H);
        assert!((at_1km - hata.loss_db(F, 1_000.0, TX_H, RX_H)).abs() < 1e-9);
        // 42 dB per decade beyond the anchor.
        let at_10km = truth.loss_db(F, 10_000.0, TX_H, RX_H);
        assert!((at_10km - at_1km - 42.0).abs() < 1e-9);
    }

    #[test]
    fn loss_monotone_in_distance() {
        for model in [
            PathLossModel::FreeSpace,
            PathLossModel::Hata { environment: Environment::Urban },
            PathLossModel::LogDistance { exponent: 3.5, ref_loss_db: 120.0 },
            PathLossModel::ConservativeBroadcast,
        ] {
            let mut last = f64::NEG_INFINITY;
            for d in [100.0, 500.0, 2_000.0, 10_000.0, 50_000.0] {
                let l = model.loss_db(F, d, TX_H, RX_H);
                assert!(l > last, "{model:?} not monotone at {d}");
                last = l;
            }
        }
    }

    #[test]
    fn contour_bisection_hits_threshold() {
        let model = PathLossModel::Hata { environment: Environment::Urban };
        let d = model.contour_distance_m(80.0, F, TX_H, RX_H, -84.0);
        let rx = model.received_dbm(80.0, F, d, TX_H, RX_H);
        assert!((rx - -84.0).abs() < 0.01, "rx at contour = {rx}");
    }

    #[test]
    fn contour_clamps_at_bounds() {
        let model = PathLossModel::FreeSpace;
        // Absurdly strong: still above threshold at 300 km.
        assert_eq!(model.contour_distance_m(200.0, F, TX_H, RX_H, -84.0), 300_000.0);
        // Absurdly weak: below threshold everywhere.
        assert_eq!(model.contour_distance_m(-100.0, F, TX_H, RX_H, -84.0), 50.0);
    }

    #[test]
    fn log_distance_slope() {
        let m = PathLossModel::LogDistance { exponent: 4.0, ref_loss_db: 100.0 };
        let l1 = m.loss_db(F, 1_000.0, TX_H, RX_H);
        let l10 = m.loss_db(F, 10_000.0, TX_H, RX_H);
        assert!((l1 - 100.0).abs() < 1e-9);
        assert!((l10 - l1 - 40.0).abs() < 1e-9);
    }

    #[test]
    fn tiny_distances_clamp() {
        let m = PathLossModel::FreeSpace;
        assert_eq!(m.loss_db(F, 1.0, TX_H, RX_H), m.loss_db(F, 50.0, TX_H, RX_H));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_distance_panics() {
        let _ = PathLossModel::FreeSpace.loss_db(F, 0.0, TX_H, RX_H);
    }
}
