//! Spatially correlated log-normal shadowing.
//!
//! Shadow fading decorrelates exponentially with distance
//! (`R(d) = e^{−d/d₀}`, Gudmundson 1991 — reference [29] of the paper; the
//! paper builds on this to require > 20 m spacing between readings). The
//! field is realized by drawing i.i.d. Gaussians on a grid with spacing
//! `d₀` and interpolating bilinearly, which yields a stationary field whose
//! correlation decays over ~`d₀` — the behaviour the labeling rule and the
//! pocket structure depend on.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use waldo_geo::{Point, Region};
use waldo_iq::gauss;

/// A frozen realization of a correlated shadowing field over a region.
///
/// Values are in dB, zero-mean, with standard deviation `sigma_db` and
/// decorrelation distance `decorrelation_m`. Points outside the region are
/// clamped to its edge.
///
/// # Examples
///
/// ```
/// use waldo_geo::{Point, Region};
/// use waldo_rf::ShadowingField;
///
/// let region = Region::new(Point::new(0.0, 0.0), Point::new(10_000.0, 10_000.0)).unwrap();
/// let field = ShadowingField::generate(region, 6.0, 300.0, 42);
/// let a = field.value_db(Point::new(100.0, 100.0));
/// let b = field.value_db(Point::new(100.0, 100.0));
/// assert_eq!(a, b); // frozen realization
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShadowingField {
    region: Region,
    sigma_db: f64,
    spacing_m: f64,
    nx: usize,
    ny: usize,
    grid: Vec<f64>,
}

impl ShadowingField {
    /// Generates a field over `region` with standard deviation `sigma_db`
    /// and decorrelation distance `decorrelation_m`, deterministically from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_db < 0` or `decorrelation_m <= 0`.
    pub fn generate(region: Region, sigma_db: f64, decorrelation_m: f64, seed: u64) -> Self {
        assert!(sigma_db >= 0.0, "sigma must be non-negative");
        assert!(decorrelation_m > 0.0, "decorrelation distance must be positive");
        let spacing = decorrelation_m;
        let nx = (region.width_m() / spacing).ceil() as usize + 2;
        let ny = (region.height_m() / spacing).ceil() as usize + 2;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5badc0de);
        // Buffered fill keeps both halves of every Box–Muller transform.
        let mut grid = vec![0.0f64; nx * ny];
        gauss::fill_standard_normal(&mut rng, &mut grid);
        Self { region, sigma_db, spacing_m: spacing, nx, ny, grid }
    }

    /// The field's standard deviation in dB.
    pub fn sigma_db(&self) -> f64 {
        self.sigma_db
    }

    /// The decorrelation distance in metres.
    pub fn decorrelation_m(&self) -> f64 {
        self.spacing_m
    }

    /// Shadowing value in dB at `p` (bilinear interpolation of the frozen
    /// grid; points outside the region clamp to its edge).
    pub fn value_db(&self, p: Point) -> f64 {
        let p = self.region.clamp(p);
        let fx = (p.x - self.region.min().x) / self.spacing_m;
        let fy = (p.y - self.region.min().y) / self.spacing_m;
        let ix = (fx.floor() as usize).min(self.nx - 2);
        let iy = (fy.floor() as usize).min(self.ny - 2);
        let tx = (fx - ix as f64).clamp(0.0, 1.0);
        let ty = (fy - iy as f64).clamp(0.0, 1.0);
        let g = |x: usize, y: usize| self.grid[y * self.nx + x];
        let v = g(ix, iy) * (1.0 - tx) * (1.0 - ty)
            + g(ix + 1, iy) * tx * (1.0 - ty)
            + g(ix, iy + 1) * (1.0 - tx) * ty
            + g(ix + 1, iy + 1) * tx * ty;
        // Bilinear blending of unit-variance corners shrinks variance
        // between nodes; renormalize so σ holds everywhere.
        let w = ((1.0 - tx) * (1.0 - ty)).powi(2)
            + (tx * (1.0 - ty)).powi(2)
            + ((1.0 - tx) * ty).powi(2)
            + (tx * ty).powi(2);
        self.sigma_db * v / w.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn region() -> Region {
        Region::new(Point::new(0.0, 0.0), Point::new(20_000.0, 10_000.0)).unwrap()
    }

    fn sample_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..20_000.0), rng.gen_range(0.0..10_000.0)))
            .collect()
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ShadowingField::generate(region(), 6.0, 250.0, 7);
        let b = ShadowingField::generate(region(), 6.0, 250.0, 7);
        let c = ShadowingField::generate(region(), 6.0, 250.0, 8);
        let p = Point::new(1234.0, 5678.0);
        assert_eq!(a.value_db(p), b.value_db(p));
        assert_ne!(a.value_db(p), c.value_db(p));
    }

    #[test]
    fn marginal_statistics_match_sigma() {
        let field = ShadowingField::generate(region(), 6.0, 250.0, 1);
        let vals: Vec<f64> = sample_points(4000, 2).iter().map(|&p| field.value_db(p)).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
        assert!(mean.abs() < 0.5, "mean {mean}");
        assert!((var.sqrt() - 6.0).abs() < 0.6, "sigma {}", var.sqrt());
    }

    #[test]
    fn nearby_points_correlate_distant_points_do_not() {
        let field = ShadowingField::generate(region(), 6.0, 300.0, 3);
        let pts = sample_points(2000, 4);
        let mut near = Vec::new();
        let mut far = Vec::new();
        for &p in &pts {
            let v = field.value_db(p);
            near.push((v, field.value_db(Point::new(p.x + 30.0, p.y))));
            far.push((v, field.value_db(Point::new(p.x + 5_000.0, p.y))));
        }
        let corr = |pairs: &[(f64, f64)]| {
            let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let mx = xs.iter().sum::<f64>() / xs.len() as f64;
            let my = ys.iter().sum::<f64>() / ys.len() as f64;
            let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
            for (x, y) in xs.iter().zip(&ys) {
                sxy += (x - mx) * (y - my);
                sxx += (x - mx) * (x - mx);
                syy += (y - my) * (y - my);
            }
            sxy / (sxx * syy).sqrt()
        };
        let c_near = corr(&near);
        let c_far = corr(&far);
        assert!(c_near > 0.8, "30 m correlation too low: {c_near}");
        assert!(c_far.abs() < 0.15, "5 km correlation too high: {c_far}");
    }

    #[test]
    fn outside_points_clamp_to_edge() {
        let field = ShadowingField::generate(region(), 6.0, 250.0, 5);
        let inside = field.value_db(Point::new(0.0, 0.0));
        let outside = field.value_db(Point::new(-500.0, -500.0));
        assert_eq!(inside, outside);
    }

    #[test]
    fn zero_sigma_field_is_flat() {
        let field = ShadowingField::generate(region(), 0.0, 250.0, 5);
        for p in sample_points(50, 6) {
            assert_eq!(field.value_db(p), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_decorrelation_panics() {
        let _ = ShadowingField::generate(region(), 6.0, 0.0, 0);
    }
}
