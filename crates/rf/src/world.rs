//! The canonical simulated study area ("SimAtlanta").
//!
//! A 35 km × 20 km (700 km²) region with the paper's nine channels laid out
//! so the interesting structure — contour edges, near-floor signals, fully
//! occupied channels, and obstacle pockets — all fall inside the drive
//! area:
//!
//! * **ch 15 / 17 / 30 / 46 / 47** — edge channels: a distant station's
//!   −84 dBm contour crosses the region, leaving both protected and free
//!   territory.
//! * **ch 21** — the *near-floor* channel: a far transmitter keeps RSS in
//!   the −82…−95 dBm band across most of the region, straddling the
//!   RTL-SDR's effective sensitivity (this reproduces the paper's channel-21
//!   anomaly in Fig 7).
//! * **ch 22** — two low-power in-region stations forming small protected
//!   islands.
//! * **ch 27 / 39** — fully occupied everywhere (dropped from system
//!   evaluation, §2.1).
//!
//! Rectangular obstacles (an urban core and scattered hills/buildings)
//! carve white-space pockets *inside* nominal contours — the structure of
//! Fig 1 that databases cannot see.

use serde::{Deserialize, Serialize};
use waldo_geo::{GeoPoint, LocalFrame, Point, Region};

use crate::pathloss::PathLossModel;
use crate::{ChannelField, Obstacle, ShadowingField, SignalField, Transmitter, TvChannel};

/// Builder for [`World`].
///
/// # Examples
///
/// ```
/// use waldo_rf::world::WorldBuilder;
///
/// let world = WorldBuilder::new().seed(7).build();
/// assert_eq!(world.field().channels().len(), 9);
/// assert_eq!(world.region().area_km2(), 700.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorldBuilder {
    seed: u64,
    rx_height_m: f64,
    shadowing_sigma_db: f64,
    shadowing_decorrelation_m: f64,
    with_obstacles: bool,
}

impl Default for WorldBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl WorldBuilder {
    /// Starts a builder with the paper-matched defaults: 2 m receive
    /// height, σ = 4 dB shadowing decorrelating over 500 m, obstacles on.
    pub fn new() -> Self {
        Self {
            seed: 0,
            rx_height_m: 2.0,
            shadowing_sigma_db: 4.0,
            shadowing_decorrelation_m: 500.0,
            with_obstacles: true,
        }
    }

    /// Master seed; every random component derives from it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Receive antenna height (default 2 m, the war-driving mast).
    ///
    /// # Panics
    ///
    /// Panics unless positive.
    pub fn rx_height_m(mut self, h: f64) -> Self {
        assert!(h > 0.0, "receiver height must be positive");
        self.rx_height_m = h;
        self
    }

    /// Shadowing standard deviation (default 4 dB).
    pub fn shadowing_sigma_db(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        self.shadowing_sigma_db = sigma;
        self
    }

    /// Shadowing decorrelation distance (default 500 m).
    pub fn shadowing_decorrelation_m(mut self, d: f64) -> Self {
        assert!(d > 0.0, "decorrelation distance must be positive");
        self.shadowing_decorrelation_m = d;
        self
    }

    /// Disables obstacles (ablation: a pocket-free world).
    pub fn without_obstacles(mut self) -> Self {
        self.with_obstacles = false;
        self
    }

    /// Builds the world.
    pub fn build(&self) -> World {
        let region = Region::new(Point::new(0.0, 0.0), Point::new(35_000.0, 20_000.0))
            .expect("region corners are fixed and valid");
        let frame = LocalFrame::new(
            GeoPoint::new(33.6000, -84.6000).expect("anchor is a valid coordinate"),
        );
        let obstacles = if self.with_obstacles { standard_obstacles() } else { Vec::new() };

        let km = |x: f64, y: f64| Point::new(x * 1000.0, y * 1000.0);
        let ch = |n: u8| TvChannel::new(n).expect("study channels are valid");

        // (channel, transmitters as (x km, y km, ERP dBm, mast m)).
        //
        // Full-power stations sit 40-80 km outside the region (like the
        // real Atlanta towers): their -84 dBm street-level contours cross
        // the region, and because the stations are far away the 6 km
        // protection halo spans only ~2 dB of signal - the protected
        // fringe stays *visible* to low-cost sensors, the regime the paper
        // measured. Channel 22 keeps two local LPTV translators whose
        // halos are invisible (the hard case), 21 is the near-floor
        // channel, and 27/39 blanket everything.
        #[allow(clippy::type_complexity)]
        let layout: Vec<(TvChannel, Vec<(f64, f64, f64, f64)>)> = vec![
            (ch(15), vec![(75.0, 10.0, 86.5, 300.0)]),
            (ch(17), vec![(17.5, 55.0, 83.6, 300.0)]),
            (ch(21), vec![(-40.0, 10.0, 88.6, 300.0)]),
            (ch(22), vec![(8.0, 5.0, 46.9, 150.0), (28.0, 15.0, 44.5, 150.0)]),
            (ch(27), vec![(17.5, 10.0, 90.0, 400.0)]),
            (ch(30), vec![(10.0, 48.0, 81.7, 300.0)]),
            (ch(39), vec![(20.0, 8.0, 90.0, 400.0)]),
            (ch(46), vec![(80.0, -25.0, 93.5, 300.0)]),
            (ch(47), vec![(-30.0, -30.0, 91.5, 300.0)]),
        ];

        let fields: Vec<ChannelField> = layout
            .into_iter()
            .map(|(channel, txs)| {
                let transmitters: Vec<Transmitter> = txs
                    .into_iter()
                    .map(|(x, y, erp, mast)| Transmitter::new(channel, km(x, y), erp, mast))
                    .collect();
                // Ground truth decays at the measured street-level exponent
                // (4.2), anchored at Hata's 1 km intercept for this channel.
                let pathloss = PathLossModel::street_level_urban(
                    channel.center_mhz(),
                    transmitters[0].height_m(),
                    self.rx_height_m,
                );
                let shadowing = ShadowingField::generate(
                    region,
                    self.shadowing_sigma_db,
                    self.shadowing_decorrelation_m,
                    self.seed
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(channel.number() as u64),
                );
                ChannelField::new(
                    channel,
                    transmitters,
                    shadowing,
                    obstacles.clone(),
                    pathloss,
                    self.rx_height_m,
                )
                .with_shadow_cap_db(5.0)
            })
            .collect();

        World { region, frame, field: SignalField::new(fields), seed: self.seed }
    }
}

/// Scattered urban obstructions. With the far-field transmitter layout a
/// channel's contour ring crosses several of these, which bends the
/// protected boundary at 3-6 km scale - the jagged "terrain" structure
/// that defeats location-only models while staying perfectly legible to
/// the signal features.
fn standard_obstacles() -> Vec<Obstacle> {
    let rect = |x0: f64, y0: f64, x1: f64, y1: f64| {
        Region::new(Point::new(x0 * 1000.0, y0 * 1000.0), Point::new(x1 * 1000.0, y1 * 1000.0))
            .expect("obstacle corners are fixed and valid")
    };
    vec![
        // Urban core canyon.
        Obstacle::new(rect(14.0, 7.5, 20.5, 12.0), 16.0, 800.0),
        // Eastern ridge (bends ch 15's boundary).
        Obstacle::new(rect(24.0, 6.0, 30.0, 13.0), 18.0, 1_000.0),
        // Northern development (bends ch 17 / 30).
        Obstacle::new(rect(9.0, 13.5, 16.0, 18.5), 14.0, 800.0),
        // South-west hill (bends ch 47, shades ch 22's west island).
        Obstacle::new(rect(3.0, 1.5, 9.5, 7.0), 15.0, 900.0),
        // South-east bluff (bends ch 46).
        Obstacle::new(rect(27.0, 0.5, 33.5, 5.5), 13.0, 700.0),
        // North-west warehouse district (bends ch 21's west edge).
        Obstacle::new(rect(1.0, 10.0, 6.5, 15.5), 12.0, 700.0),
        // Mid-north corridor.
        Obstacle::new(rect(20.5, 14.0, 26.0, 18.0), 12.0, 600.0),
        // Small scattered blocks.
        Obstacle::new(rect(11.0, 2.0, 14.0, 4.5), 10.0, 400.0),
        Obstacle::new(rect(31.0, 15.0, 34.0, 18.0), 10.0, 400.0),
    ]
}

/// The fully assembled simulated study area.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct World {
    region: Region,
    frame: LocalFrame,
    field: SignalField,
    seed: u64,
}

impl World {
    /// The 700 km² study region.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Local frame anchoring the region to geographic coordinates.
    pub fn frame(&self) -> LocalFrame {
        self.frame
    }

    /// Ground-truth signal field.
    pub fn field(&self) -> &SignalField {
        &self.field
    }

    /// The seed the world was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The seven evaluation channels present in this world.
    pub fn evaluation_channels(&self) -> Vec<TvChannel> {
        TvChannel::EVALUATION.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        WorldBuilder::new().seed(42).build()
    }

    fn grid_points(region: Region, step_m: f64) -> Vec<Point> {
        let mut pts = Vec::new();
        let mut x = region.min().x + step_m / 2.0;
        while x < region.max().x {
            let mut y = region.min().y + step_m / 2.0;
            while y < region.max().y {
                pts.push(Point::new(x, y));
                y += step_m;
            }
            x += step_m;
        }
        pts
    }

    #[test]
    fn has_all_nine_study_channels() {
        let w = world();
        let chans = w.field().channels();
        assert_eq!(chans.len(), 9);
        for c in TvChannel::STUDY {
            assert!(chans.contains(&c));
        }
    }

    #[test]
    fn fully_occupied_channels_leave_no_usable_pocket() {
        // The paper's ch 27/39 were "completely occupied in all
        // measurements": under Algorithm 1 every point would be labeled
        // not-safe. Equivalently: hot (> -84 dBm) points blanket the region
        // and every rare shadowed dip sits within the 6 km protection
        // radius of a hot point.
        let w = world();
        for n in [27u8, 39] {
            let ch = TvChannel::new(n).unwrap();
            let pts = grid_points(w.region(), 1_000.0);
            let hot: Vec<_> = pts
                .iter()
                .filter(|&&p| w.field().rss_dbm(ch, p) > crate::DECODABLE_DBM)
                .copied()
                .collect();
            assert!(
                hot.len() as f64 / pts.len() as f64 > 0.95,
                "{ch}: only {}/{} hot",
                hot.len(),
                pts.len()
            );
            for p in &pts {
                let near_hot = hot.iter().any(|h| h.distance(*p) <= crate::PROTECTION_RADIUS_M);
                assert!(near_hot, "{ch} at {p} escapes the protection radius");
            }
        }
    }

    #[test]
    fn edge_channels_have_both_occupied_and_free_territory() {
        let w = world();
        for n in [15u8, 17, 30, 46, 47] {
            let ch = TvChannel::new(n).unwrap();
            let pts = grid_points(w.region(), 1_000.0);
            let hot = pts.iter().filter(|&&p| w.field().rss_dbm(ch, p) > -84.0).count();
            let frac = hot as f64 / pts.len() as f64;
            // The exact fringe size depends on the shadowing realization;
            // the structural requirement is that decodable and free
            // territory both exist, not any particular split. Channel 46's
            // contour only clips the region corner, so its occupied side
            // can legitimately be a handful of cells.
            assert!(
                hot >= 3 && frac <= 0.95,
                "{ch}: occupied fraction {frac} ({hot} cells) leaves no structure"
            );
        }
    }

    #[test]
    fn channel_21_hovers_near_the_rtl_floor() {
        let w = world();
        let ch = TvChannel::new(21).unwrap();
        let pts = grid_points(w.region(), 1_500.0);
        let near_floor = pts
            .iter()
            .filter(|&&p| {
                let rss = w.field().rss_dbm(ch, p);
                (-100.0..=-80.0).contains(&rss)
            })
            .count();
        let frac = near_floor as f64 / pts.len() as f64;
        assert!(frac > 0.4, "only {frac} of the region sits near the floor");
    }

    #[test]
    fn obstacles_create_pockets_inside_coverage() {
        // Ch 15's contour covers the eastern ridge; the obstacle must push
        // part of it below decodability while the surrounding area stays hot.
        let with = WorldBuilder::new().seed(42).build();
        let without = WorldBuilder::new().seed(42).without_obstacles().build();
        let ch = TvChannel::new(15).unwrap();
        let inside = Point::new(27_000.0, 10_000.0); // inside the eastern ridge
        let rss_with = with.field().rss_dbm(ch, inside);
        let rss_without = without.field().rss_dbm(ch, inside);
        assert!(rss_without - rss_with > 15.0, "obstacle lost: {rss_without} vs {rss_with}");
    }

    #[test]
    fn worlds_are_deterministic_per_seed() {
        let a = WorldBuilder::new().seed(5).build();
        let b = WorldBuilder::new().seed(5).build();
        assert_eq!(a, b);
        let c = WorldBuilder::new().seed(6).build();
        assert_ne!(a, c);
    }

    #[test]
    fn evaluation_channels_exclude_fully_occupied() {
        let w = world();
        let eval = w.evaluation_channels();
        assert_eq!(eval.len(), 7);
        assert!(!eval.iter().any(|c| c.number() == 27 || c.number() == 39));
    }

    #[test]
    fn transmitter_registry_covers_all_channels() {
        let w = world();
        let txs = w.field().transmitters();
        assert_eq!(txs.len(), 10); // ch22 has two stations
        for c in TvChannel::STUDY {
            assert!(txs.iter().any(|t| t.channel() == c), "{c} missing");
        }
    }
}
