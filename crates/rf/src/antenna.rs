//! Hata's mobile-antenna height correction (§2.1 of the paper).
//!
//! Regulations assume a 10 m receive antenna; the war-driving antennas sit
//! at ~2 m. The paper compensates with the large-city correction factor of
//! Hata's urban model, `a(h) = 3.2·(log₁₀ 11.5·h)² − 4.97`, evaluated at the
//! 8 m height difference, yielding ≈ 7.4 dB that is added uniformly to all
//! RSS values before labeling.

/// Hata large-city antenna correction factor `a(h)` in dB for an antenna
/// height `h` in metres (paper's form with the 11.5 constant).
///
/// # Panics
///
/// Panics unless `h > 0`.
///
/// # Examples
///
/// ```
/// let a = waldo_rf::antenna::hata_correction_db(8.0);
/// assert!((a - 7.4).abs() < 0.2); // the paper's "7.5 dB correction factor"
/// ```
pub fn hata_correction_db(h_m: f64) -> f64 {
    assert!(h_m > 0.0, "antenna height must be positive");
    let l = (11.5 * h_m).log10();
    3.2 * l * l - 4.97
}

/// The correction the paper applies for measuring at 2 m instead of the
/// 10 m the rules assume: `a(10 − 2) ≈ 7.4 dB`, added uniformly to every
/// reading used in labeling.
pub fn measurement_height_correction_db() -> f64 {
    hata_correction_db(8.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correction_at_eight_metres_matches_paper() {
        // The paper reports "a 7.5 dB correction factor"; the formula gives
        // 3.2·(log10 92)² − 4.97 ≈ 7.37 dB.
        let a = hata_correction_db(8.0);
        assert!((a - 7.37).abs() < 0.05, "got {a}");
        assert_eq!(a, measurement_height_correction_db());
    }

    #[test]
    fn correction_grows_with_height() {
        assert!(hata_correction_db(10.0) > hata_correction_db(5.0));
        assert!(hata_correction_db(5.0) > hata_correction_db(2.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_height_panics() {
        let _ = hata_correction_db(0.0);
    }
}
