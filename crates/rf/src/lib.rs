//! RF propagation substrate: the physical world the paper measured, rebuilt
//! as a simulator.
//!
//! The paper's dataset is 5282 readings per channel over 700 km² of metro
//! Atlanta. That RF environment — TV transmitters, distance-dependent path
//! loss, correlated log-normal shadowing, and the terrain/obstacle effects
//! that carve out white-space "pockets" (Fig 1) — is the input every
//! experiment depends on. This crate provides:
//!
//! * [`TvChannel`] — US TV channel numbers and their frequencies.
//! * [`pathloss`] — free-space, Hata (urban/suburban/open), and
//!   log-distance path-loss models, plus the R-6602-like conservative curve
//!   the spectrum-database baseline uses.
//! * [`antenna`] — Hata's mobile-antenna correction factor, including the
//!   7.4 dB 2 m → 10 m correction the paper applies (§2.1).
//! * [`ShadowingField`] — spatially correlated log-normal shadowing
//!   (Gudmundson's exponential correlation model).
//! * [`Obstacle`] — localized excess attenuation that creates pockets and
//!   hidden nodes.
//! * [`Transmitter`], [`SignalField`] — the composed ground-truth RSS at any
//!   point, per channel.
//! * [`world`] — the canonical "SimAtlanta" scenario every experiment runs
//!   against (35 km × 20 km, nine channels, seeded).

pub mod antenna;
mod channel;
mod field;
mod obstacle;
pub mod pathloss;
mod shadowing;
mod transmitter;
pub mod world;

pub use channel::{ChannelError, TvChannel};
pub use field::{ChannelField, SignalField};
pub use obstacle::Obstacle;
pub use shadowing::ShadowingField;
pub use transmitter::Transmitter;

/// Minimum decodable TV signal per FCC rules: −84 dBm (§1, §2.1). Readings
/// at or above this level mark the protected contour.
pub const DECODABLE_DBM: f64 = -84.0;

/// The legacy FCC sensing threshold for standalone spectrum sensing:
/// −114 dBm, requiring expensive hardware.
pub const SENSING_THRESHOLD_DBM: f64 = -114.0;

/// Protection radius around a decodable reading for portable white-space
/// devices: 6 km (§2.1, Algorithm 1).
pub const PROTECTION_RADIUS_M: f64 = 6_000.0;
