use serde::{Deserialize, Serialize};

/// Error constructing a [`TvChannel`] outside the UHF/VHF plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelError {
    number: u8,
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "channel {} is outside the supported US TV plan (2-51)", self.number)
    }
}

impl std::error::Error for ChannelError {}

/// A US TV broadcast channel (6 MHz wide).
///
/// The measurement study covers nine UHF channels:
/// {15, 17, 21, 22, 27, 30, 39, 46, 47}. Channels 27 and 39 were fully
/// occupied in every reading and are excluded from the system evaluation,
/// exactly as in the paper (§2.1).
///
/// # Examples
///
/// ```
/// use waldo_rf::TvChannel;
///
/// let ch = TvChannel::new(47).unwrap();
/// assert_eq!(ch.number(), 47);
/// assert_eq!(ch.center_mhz(), 671.0);
/// assert!(TvChannel::new(80).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TvChannel(u8);

impl TvChannel {
    /// The nine channels of the measurement study (§2.1).
    pub const STUDY: [TvChannel; 9] = [
        TvChannel(15),
        TvChannel(17),
        TvChannel(21),
        TvChannel(22),
        TvChannel(27),
        TvChannel(30),
        TvChannel(39),
        TvChannel(46),
        TvChannel(47),
    ];

    /// The seven channels used in the system evaluation (27 and 39 are
    /// always occupied and dropped, §2.1).
    pub const EVALUATION: [TvChannel; 7] = [
        TvChannel(15),
        TvChannel(17),
        TvChannel(21),
        TvChannel(22),
        TvChannel(30),
        TvChannel(46),
        TvChannel(47),
    ];

    /// Creates a channel, validating against the US plan (2–51).
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError`] for numbers outside 2–51.
    pub fn new(number: u8) -> Result<Self, ChannelError> {
        if (2..=51).contains(&number) {
            Ok(Self(number))
        } else {
            Err(ChannelError { number })
        }
    }

    /// The channel number.
    pub fn number(self) -> u8 {
        self.0
    }

    /// Channel bandwidth: 6 MHz for all US TV channels.
    pub fn bandwidth_mhz(self) -> f64 {
        6.0
    }

    /// Centre frequency in MHz (US plan: VHF-low 2–6, VHF-high 7–13,
    /// UHF 14–51).
    pub fn center_mhz(self) -> f64 {
        let n = self.0 as f64;
        match self.0 {
            2..=4 => 54.0 + (n - 2.0) * 6.0 + 3.0,
            5..=6 => 76.0 + (n - 5.0) * 6.0 + 3.0,
            7..=13 => 174.0 + (n - 7.0) * 6.0 + 3.0,
            _ => 470.0 + (n - 14.0) * 6.0 + 3.0,
        }
    }

    /// ATSC pilot frequency: 0.31 MHz above the lower channel edge.
    pub fn pilot_mhz(self) -> f64 {
        self.center_mhz() - 3.0 + 0.31
    }
}

impl std::fmt::Display for TvChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_plan_bounds() {
        assert!(TvChannel::new(2).is_ok());
        assert!(TvChannel::new(51).is_ok());
        assert!(TvChannel::new(1).is_err());
        assert!(TvChannel::new(52).is_err());
        assert!(TvChannel::new(0).is_err());
    }

    #[test]
    fn uhf_frequencies_match_the_plan() {
        // Known UHF centres: ch14 = 473 MHz, ch47 = 671 MHz, ch51 = 695 MHz.
        assert_eq!(TvChannel::new(14).unwrap().center_mhz(), 473.0);
        assert_eq!(TvChannel::new(47).unwrap().center_mhz(), 671.0);
        assert_eq!(TvChannel::new(51).unwrap().center_mhz(), 695.0);
    }

    #[test]
    fn vhf_frequencies_match_the_plan() {
        assert_eq!(TvChannel::new(2).unwrap().center_mhz(), 57.0);
        assert_eq!(TvChannel::new(5).unwrap().center_mhz(), 79.0);
        assert_eq!(TvChannel::new(7).unwrap().center_mhz(), 177.0);
        assert_eq!(TvChannel::new(13).unwrap().center_mhz(), 213.0);
    }

    #[test]
    fn pilot_sits_near_lower_edge() {
        let ch = TvChannel::new(30).unwrap();
        assert!((ch.pilot_mhz() - (ch.center_mhz() - 2.69)).abs() < 1e-9);
    }

    #[test]
    fn study_and_evaluation_sets() {
        assert_eq!(TvChannel::STUDY.len(), 9);
        assert_eq!(TvChannel::EVALUATION.len(), 7);
        for ch in TvChannel::EVALUATION {
            assert!(TvChannel::STUDY.contains(&ch));
        }
        assert!(!TvChannel::EVALUATION.iter().any(|c| c.number() == 27 || c.number() == 39));
    }

    #[test]
    fn display_and_error() {
        assert_eq!(TvChannel::new(15).unwrap().to_string(), "ch15");
        assert!(TvChannel::new(99).unwrap_err().to_string().contains("99"));
    }
}
