use serde::{Deserialize, Serialize};
use waldo_geo::Point;

use crate::TvChannel;

/// A licensed TV transmitter (a primary spectrum incumbent).
///
/// # Examples
///
/// ```
/// use waldo_geo::Point;
/// use waldo_rf::{Transmitter, TvChannel};
///
/// let tx = Transmitter::new(
///     TvChannel::new(47).unwrap(),
///     Point::new(10_000.0, 5_000.0),
///     80.0,
///     300.0,
/// );
/// assert_eq!(tx.erp_dbm(), 80.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transmitter {
    channel: TvChannel,
    location: Point,
    erp_dbm: f64,
    height_m: f64,
}

impl Transmitter {
    /// Creates a transmitter.
    ///
    /// # Panics
    ///
    /// Panics unless `height_m > 0` and `erp_dbm` is finite.
    pub fn new(channel: TvChannel, location: Point, erp_dbm: f64, height_m: f64) -> Self {
        assert!(height_m > 0.0, "mast height must be positive");
        assert!(erp_dbm.is_finite(), "ERP must be finite");
        Self { channel, location, erp_dbm, height_m }
    }

    /// The channel this transmitter occupies.
    pub fn channel(&self) -> TvChannel {
        self.channel
    }

    /// Transmitter location in the local frame.
    pub fn location(&self) -> Point {
        self.location
    }

    /// Effective radiated power in dBm.
    pub fn erp_dbm(&self) -> f64 {
        self.erp_dbm
    }

    /// Mast height in metres.
    pub fn height_m(&self) -> f64 {
        self.height_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_roundtrip() {
        let tx = Transmitter::new(TvChannel::new(30).unwrap(), Point::new(1.0, 2.0), 75.0, 250.0);
        assert_eq!(tx.channel().number(), 30);
        assert_eq!(tx.location(), Point::new(1.0, 2.0));
        assert_eq!(tx.erp_dbm(), 75.0);
        assert_eq!(tx.height_m(), 250.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_height_panics() {
        let _ = Transmitter::new(TvChannel::new(30).unwrap(), Point::default(), 75.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_erp_panics() {
        let _ = Transmitter::new(TvChannel::new(30).unwrap(), Point::default(), f64::NAN, 100.0);
    }
}
