//! Localized excess attenuation: the terrain and building effects that
//! create white-space "pockets" (Fig 1 of the paper).
//!
//! A generic propagation model cannot see a pocket — a region inside the
//! nominal contour where the signal is actually undecodable — nor the
//! complementary hidden-node shadow. Obstacles inject exactly those
//! structures into the ground truth, with a soft edge so boundaries are not
//! knife-edge artifacts.

use serde::{Deserialize, Serialize};
use waldo_geo::{Point, Region};

/// A rectangular obstruction adding `attenuation_db` of extra loss to
/// receivers inside it, tapering linearly to zero over `edge_m` outside its
/// boundary.
///
/// # Examples
///
/// ```
/// use waldo_geo::{Point, Region};
/// use waldo_rf::Obstacle;
///
/// let zone = Region::new(Point::new(0.0, 0.0), Point::new(1_000.0, 1_000.0)).unwrap();
/// let hill = Obstacle::new(zone, 25.0, 200.0);
/// assert_eq!(hill.excess_loss_db(Point::new(500.0, 500.0)), 25.0);
/// assert_eq!(hill.excess_loss_db(Point::new(5_000.0, 500.0)), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Obstacle {
    zone: Region,
    attenuation_db: f64,
    edge_m: f64,
}

impl Obstacle {
    /// Creates an obstacle over `zone` with full attenuation inside and a
    /// linear taper over `edge_m` metres outside.
    ///
    /// # Panics
    ///
    /// Panics if `attenuation_db < 0` or `edge_m < 0`.
    pub fn new(zone: Region, attenuation_db: f64, edge_m: f64) -> Self {
        assert!(attenuation_db >= 0.0, "attenuation must be non-negative");
        assert!(edge_m >= 0.0, "edge width must be non-negative");
        Self { zone, attenuation_db, edge_m }
    }

    /// The obstructed zone.
    pub fn zone(&self) -> Region {
        self.zone
    }

    /// Peak attenuation in dB.
    pub fn attenuation_db(&self) -> f64 {
        self.attenuation_db
    }

    /// Extra loss experienced by a receiver at `p`.
    pub fn excess_loss_db(&self, p: Point) -> f64 {
        if self.zone.contains(p) {
            return self.attenuation_db;
        }
        if self.edge_m == 0.0 {
            return 0.0;
        }
        let nearest = self.zone.clamp(p);
        let d = nearest.distance(p);
        if d >= self.edge_m {
            0.0
        } else {
            self.attenuation_db * (1.0 - d / self.edge_m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obstacle() -> Obstacle {
        let zone = Region::new(Point::new(1_000.0, 1_000.0), Point::new(2_000.0, 2_000.0)).unwrap();
        Obstacle::new(zone, 30.0, 500.0)
    }

    #[test]
    fn full_loss_inside() {
        let o = obstacle();
        assert_eq!(o.excess_loss_db(Point::new(1_500.0, 1_500.0)), 30.0);
        assert_eq!(o.excess_loss_db(Point::new(1_000.0, 1_000.0)), 30.0);
    }

    #[test]
    fn taper_is_linear() {
        let o = obstacle();
        let at = |d: f64| o.excess_loss_db(Point::new(2_000.0 + d, 1_500.0));
        assert_eq!(at(0.0), 30.0);
        assert!((at(250.0) - 15.0).abs() < 1e-9);
        assert_eq!(at(500.0), 0.0);
        assert_eq!(at(501.0), 0.0);
    }

    #[test]
    fn corner_distance_uses_euclidean_metric() {
        let o = obstacle();
        // 300 m diagonal from the (2000, 2000) corner: d = √(180000) ≈ 424 m.
        let loss = o.excess_loss_db(Point::new(2_300.0, 2_300.0));
        let expect = 30.0 * (1.0 - (300.0f64 * 300.0 * 2.0).sqrt() / 500.0);
        assert!((loss - expect).abs() < 1e-9, "{loss} vs {expect}");
    }

    #[test]
    fn hard_edge_with_zero_taper() {
        let zone = Region::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)).unwrap();
        let o = Obstacle::new(zone, 20.0, 0.0);
        assert_eq!(o.excess_loss_db(Point::new(5.0, 5.0)), 20.0);
        assert_eq!(o.excess_loss_db(Point::new(10.1, 5.0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_attenuation_panics() {
        let zone = Region::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)).unwrap();
        let _ = Obstacle::new(zone, -1.0, 0.0);
    }
}
