//! Property-based tests of Algorithm-1 labeling.

use proptest::prelude::*;
use waldo_data::Labeler;
use waldo_geo::Point;

fn arb_readings() -> impl Strategy<Value = Vec<(Point, f64)>> {
    prop::collection::vec(
        (0.0f64..35_000.0, 0.0f64..20_000.0, -120.0f64..-60.0)
            .prop_map(|(x, y, rss)| (Point::new(x, y), rss)),
        1..120,
    )
}

proptest! {
    #[test]
    fn labeling_matches_brute_force(readings in arb_readings()) {
        let labels = Labeler::new().label(&readings);
        for (i, &(p, _)) in readings.iter().enumerate() {
            let expect = readings
                .iter()
                .any(|&(q, r)| r > -84.0 && q.distance(p) <= 6_000.0);
            prop_assert_eq!(labels[i].is_not_safe(), expect);
        }
    }

    #[test]
    fn adding_readings_is_monotone(readings in arb_readings(),
                                   extra_x in 0.0f64..35_000.0,
                                   extra_y in 0.0f64..20_000.0) {
        let before = Labeler::new().label(&readings);
        let mut more = readings.clone();
        more.push((Point::new(extra_x, extra_y), -70.0)); // a hot reading
        let after = Labeler::new().label(&more);
        for i in 0..before.len() {
            prop_assert!(!before[i].is_not_safe() || after[i].is_not_safe());
        }
    }

    #[test]
    fn raising_the_correction_is_monotone(readings in arb_readings(),
                                          c1 in 0.0f64..10.0, c2 in 0.0f64..10.0) {
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        let small = Labeler::new().antenna_correction_db(lo).label(&readings);
        let big = Labeler::new().antenna_correction_db(hi).label(&readings);
        for i in 0..small.len() {
            prop_assert!(!small[i].is_not_safe() || big[i].is_not_safe());
        }
    }

    #[test]
    fn widening_the_radius_is_monotone(readings in arb_readings(),
                                       r1 in 100.0f64..10_000.0, r2 in 100.0f64..10_000.0) {
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        let small = Labeler::new().radius_m(lo).label(&readings);
        let big = Labeler::new().radius_m(hi).label(&readings);
        for i in 0..small.len() {
            prop_assert!(!small[i].is_not_safe() || big[i].is_not_safe());
        }
    }
}
