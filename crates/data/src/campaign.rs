//! The war-driving collection campaign (§2.1).
//!
//! Every sensor rides the same vehicle: readings for all sensors share
//! locations, which is what makes the per-reading sensor comparisons of
//! Fig 6/7 possible. Readings on a channel are spaced 150 m apart (well
//! beyond the ~20 m urban shadowing decorrelation distance the paper
//! requires), and the default 5282 readings × 150 m ≈ 800 km matches the
//! paper's drive length.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use waldo_rf::world::World;
use waldo_rf::TvChannel;
use waldo_sensors::{calibrate, Calibration, Observation, SensorKind, SensorModel};

use crate::{ChannelDataset, Labeler, Measurement, Safety};

/// Builder for [`Campaign`].
///
/// # Examples
///
/// ```
/// use waldo_rf::world::WorldBuilder;
/// use waldo_data::CampaignBuilder;
///
/// let world = WorldBuilder::new().seed(3).build();
/// let campaign = CampaignBuilder::new(&world)
///     .readings_per_channel(200)
///     .seed(3)
///     .collect();
/// assert_eq!(campaign.channels().len(), 9);
/// ```
#[derive(Debug, Clone)]
pub struct CampaignBuilder<'a> {
    world: &'a World,
    sensors: Vec<SensorModel>,
    readings_per_channel: usize,
    spacing_m: f64,
    seed: u64,
    labeler: Labeler,
    wired_calibration: bool,
}

impl<'a> CampaignBuilder<'a> {
    /// Starts a campaign over `world` with the paper's defaults: all three
    /// sensors, 5282 readings per channel, 150 m spacing, Algorithm-1
    /// labeling, wired calibration for the SDRs.
    pub fn new(world: &'a World) -> Self {
        Self {
            world,
            sensors: vec![
                SensorModel::rtl_sdr(),
                SensorModel::usrp_b200(),
                SensorModel::spectrum_analyzer(),
            ],
            readings_per_channel: 5282,
            spacing_m: 150.0,
            seed: 0,
            labeler: Labeler::new(),
            wired_calibration: true,
        }
    }

    /// Restricts the sensor fleet.
    ///
    /// # Panics
    ///
    /// Panics if `sensors` is empty.
    pub fn sensors(mut self, sensors: Vec<SensorModel>) -> Self {
        assert!(!sensors.is_empty(), "need at least one sensor");
        self.sensors = sensors;
        self
    }

    /// Number of readings per channel (default 5282).
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn readings_per_channel(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one reading");
        self.readings_per_channel = n;
        self
    }

    /// Along-route spacing between readings (default 150 m; must exceed the
    /// 20 m decorrelation minimum of §2.1).
    ///
    /// # Panics
    ///
    /// Panics unless `m > 20.0`.
    pub fn spacing_m(mut self, m: f64) -> Self {
        assert!(m > 20.0, "readings must be spaced more than 20 m apart");
        self.spacing_m = m;
        self
    }

    /// Campaign seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the labeler (antenna correction, threshold, radius).
    pub fn labeler(mut self, labeler: Labeler) -> Self {
        self.labeler = labeler;
        self
    }

    /// Uses exact factory calibration instead of running the wired
    /// calibration procedure (faster for tests; the full pipeline is the
    /// default).
    pub fn factory_calibration(mut self) -> Self {
        self.wired_calibration = false;
        self
    }

    /// Runs the campaign: drives the route, collects every (sensor,
    /// channel) series, and labels each with Algorithm 1.
    ///
    /// The (sensor, channel) series fan out across the [`waldo_par`]
    /// worker pool. Each series seeds its own RNG from `(seed, channel,
    /// sensor)` — no generator is shared across series — so the parallel
    /// collection is bit-identical to a serial one (and to any worker
    /// count); see `waldo_par::with_workers` to pin the pool size.
    pub fn collect(&self) -> Campaign {
        let _t = waldo_prof::scope("collect");
        let path = waldo_geo::DrivePathBuilder::new(self.world.region())
            .seed(self.seed ^ xd21ve_u64())
            .build();
        let samples = path.samples(self.readings_per_channel, self.spacing_m);

        // Calibrations depend only on the sensor (their RNG is salted with
        // the campaign seed, not the channel), so run them once up front
        // and share them across the fan-out.
        let calibrations: Vec<Calibration> =
            self.sensors.iter().map(|s| self.calibration_for(s)).collect();

        let channels = self.world.field().channels();
        let series: Vec<(usize, TvChannel)> =
            (0..self.sensors.len()).flat_map(|i| channels.iter().map(move |&c| (i, c))).collect();

        let collected = waldo_par::par_map(&series, |&(i, channel)| {
            let sensor = &self.sensors[i];
            let calibration = &calibrations[i];
            let mut rng = StdRng::seed_from_u64(
                self.seed
                    .wrapping_mul(0x517c_c1b7_2722_0a95)
                    .wrapping_add((channel.number() as u64) << 8)
                    .wrapping_add(sensor.kind() as u64),
            );
            let measurements: Vec<Measurement> = samples
                .iter()
                .map(|s| {
                    let true_rss = self.world.field().rss_dbm(channel, s.point);
                    let rss_opt = true_rss.is_finite().then_some(true_rss);
                    Measurement {
                        location: s.point,
                        odometer_m: s.odometer_m,
                        observation: Observation::measure(sensor, calibration, rss_opt, &mut rng),
                        true_rss_dbm: true_rss,
                    }
                })
                .collect();
            let readings: Vec<_> =
                measurements.iter().map(|m| (m.location, m.observation.rss_dbm)).collect();
            let labels = self.labeler.label(&readings);
            (
                (sensor.kind(), channel),
                ChannelDataset::new(channel, sensor.kind(), measurements, labels),
            )
        });

        Campaign { datasets: collected.into_iter().collect(), labeler: self.labeler }
    }

    fn calibration_for(&self, sensor: &SensorModel) -> Calibration {
        if sensor.kind() == SensorKind::SpectrumAnalyzer {
            return Calibration::identity();
        }
        if !self.wired_calibration {
            return Calibration::factory(sensor);
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ xca11b_u64());
        calibrate(sensor, &[-90.0, -80.0, -70.0, -60.0, -50.0], 30, &mut rng)
            .unwrap_or_else(|_| Calibration::factory(sensor))
    }
}

// Salt helpers (readable hex tags would collide with identifier rules).
fn xd21ve_u64() -> u64 {
    0x0064_7269_7665 // "drive"
}
fn xca11b_u64() -> u64 {
    0x0063_616c_6962 // "calib"
}

/// The collected measurement campaign: one labeled [`ChannelDataset`] per
/// (sensor, channel).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Campaign {
    datasets: BTreeMap<(SensorKind, TvChannel), ChannelDataset>,
    #[serde(skip, default = "Labeler::new")]
    labeler: Labeler,
}

impl Campaign {
    /// Channels present (ascending).
    pub fn channels(&self) -> Vec<TvChannel> {
        let mut out: Vec<TvChannel> = self.datasets.keys().map(|&(_, c)| c).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Sensors present.
    pub fn sensors(&self) -> Vec<SensorKind> {
        let mut out: Vec<SensorKind> = self.datasets.keys().map(|&(s, _)| s).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// One (sensor, channel) series.
    pub fn dataset(&self, sensor: SensorKind, channel: TvChannel) -> Option<&ChannelDataset> {
        self.datasets.get(&(sensor, channel))
    }

    /// Ground-truth labels for a channel: the spectrum-analyzer series run
    /// through Algorithm 1 ("spectrum analyzer data is used only for
    /// validation, not labeling", §2.2 — baselines and Waldo never see it).
    ///
    /// # Panics
    ///
    /// Panics (naming the channel and the series actually collected) if
    /// the analyzer did not ride along or the channel was not driven.
    pub fn ground_truth(&self, channel: TvChannel) -> &ChannelDataset {
        self.dataset(SensorKind::SpectrumAnalyzer, channel).unwrap_or_else(|| {
            panic!(
                "no spectrum-analyzer ground truth for {channel}: the campaign holds \
                 sensors {:?} over channels {:?}",
                self.sensors(),
                self.channels()
            )
        })
    }

    /// Re-labels one series with a different labeler (e.g. with the antenna
    /// correction factor) without re-driving the campaign.
    ///
    /// # Panics
    ///
    /// Panics (naming the sensor, channel, and what was collected) if the
    /// requested series is absent.
    pub fn relabel(
        &self,
        sensor: SensorKind,
        channel: TvChannel,
        labeler: &Labeler,
    ) -> Vec<Safety> {
        let ds = self.dataset(sensor, channel).unwrap_or_else(|| {
            panic!(
                "series ({sensor:?}, {channel}) was not collected: the campaign holds \
                 sensors {:?} over channels {:?}",
                self.sensors(),
                self.channels()
            )
        });
        let readings: Vec<_> =
            ds.measurements().iter().map(|m| (m.location, m.observation.rss_dbm)).collect();
        labeler.label(&readings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waldo_rf::world::WorldBuilder;

    fn small_campaign() -> &'static Campaign {
        static CAMPAIGN: std::sync::OnceLock<Campaign> = std::sync::OnceLock::new();
        CAMPAIGN.get_or_init(build_small_campaign)
    }

    fn build_small_campaign() -> Campaign {
        let world = WorldBuilder::new().seed(11).build();
        // 300 readings spread over the full ~500 km route (the default
        // 150 m spacing only makes sense with the full 5282 readings).
        CampaignBuilder::new(&world)
            .readings_per_channel(300)
            .spacing_m(2_000.0)
            .factory_calibration()
            .seed(11)
            .collect()
    }

    #[test]
    fn collects_every_sensor_channel_pair() {
        let c = small_campaign();
        assert_eq!(c.channels().len(), 9);
        assert_eq!(c.sensors().len(), 3);
        for s in c.sensors() {
            for ch in c.channels() {
                let ds = c.dataset(s, ch).unwrap();
                assert_eq!(ds.len(), 300);
                assert_eq!(ds.sensor(), s);
                assert_eq!(ds.channel(), ch);
            }
        }
    }

    #[test]
    fn sensors_share_locations() {
        let c = small_campaign();
        let ch = c.channels()[0];
        let rtl = c.dataset(SensorKind::RtlSdr, ch).unwrap();
        let sa = c.dataset(SensorKind::SpectrumAnalyzer, ch).unwrap();
        for (a, b) in rtl.measurements().iter().zip(sa.measurements()) {
            assert_eq!(a.location, b.location);
            assert_eq!(a.true_rss_dbm, b.true_rss_dbm);
        }
    }

    #[test]
    fn occupied_channels_label_fully_not_safe() {
        let c = small_campaign();
        for n in [27u8, 39] {
            let ch = TvChannel::new(n).unwrap();
            let truth = c.ground_truth(ch);
            assert!(truth.not_safe_fraction() > 0.999, "{ch}: {}", truth.not_safe_fraction());
        }
    }

    #[test]
    fn evaluation_channels_have_mixed_labels() {
        let c = small_campaign();
        for ch in TvChannel::EVALUATION {
            let truth = c.ground_truth(ch);
            let f = truth.not_safe_fraction();
            assert!((0.02..=0.98).contains(&f), "{ch}: fraction {f}");
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let world = WorldBuilder::new().seed(4).build();
        let a = CampaignBuilder::new(&world)
            .readings_per_channel(50)
            .factory_calibration()
            .seed(4)
            .collect();
        let b = CampaignBuilder::new(&world)
            .readings_per_channel(50)
            .factory_calibration()
            .seed(4)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn relabel_with_correction_increases_not_safe() {
        let c = small_campaign();
        let ch = TvChannel::new(21).unwrap();
        let plain = c.ground_truth(ch).not_safe_fraction();
        let corrected =
            c.relabel(SensorKind::SpectrumAnalyzer, ch, &Labeler::new().antenna_correction_db(7.4));
        let frac =
            corrected.iter().filter(|l| l.is_not_safe()).count() as f64 / corrected.len() as f64;
        assert!(frac >= plain, "correction cannot reduce protection");
        assert!(frac > 0.95, "ch21 should become (nearly) fully protected: {frac}");
    }

    #[test]
    #[should_panic(expected = "more than 20 m")]
    fn tight_spacing_panics() {
        let world = WorldBuilder::new().build();
        let _ = CampaignBuilder::new(&world).spacing_m(10.0);
    }

    #[test]
    fn parallel_collection_matches_serial_bit_for_bit() {
        let world = WorldBuilder::new().seed(6).build();
        let build = || {
            CampaignBuilder::new(&world)
                .readings_per_channel(40)
                .spacing_m(2_000.0)
                .factory_calibration()
                .seed(6)
                .collect()
        };
        let serial = waldo_par::with_workers(1, build);
        for workers in [2usize, 4] {
            let parallel = waldo_par::with_workers(workers, build);
            assert_eq!(serial, parallel, "worker count {workers} changed the campaign");
        }
    }

    #[test]
    #[should_panic(expected = "no spectrum-analyzer ground truth")]
    fn ground_truth_without_analyzer_panics_descriptively() {
        let world = WorldBuilder::new().seed(2).build();
        let c = CampaignBuilder::new(&world)
            .sensors(vec![SensorModel::rtl_sdr()])
            .readings_per_channel(25)
            .spacing_m(2_000.0)
            .factory_calibration()
            .collect();
        let _ = c.ground_truth(c.channels()[0]);
    }

    #[test]
    #[should_panic(expected = "was not collected")]
    fn relabel_missing_series_panics_descriptively() {
        let world = WorldBuilder::new().seed(2).build();
        let c = CampaignBuilder::new(&world)
            .sensors(vec![SensorModel::rtl_sdr()])
            .readings_per_channel(25)
            .spacing_m(2_000.0)
            .factory_calibration()
            .collect();
        let _ = c.relabel(SensorKind::UsrpB200, c.channels()[0], &Labeler::new());
    }
}
