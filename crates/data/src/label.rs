//! Algorithm 1: contour labeling of collected measurements.
//!
//! > for all Node n in Dataset: if Power(n) > −84 dBm, SetNotSafe(n) and
//! > SetNotSafe(n′) for every n′ within 6 km.
//!
//! The rule is deliberately biased toward incumbent protection: one hot
//! reading poisons its whole 6 km neighbourhood, while an erroneously cold
//! reading is rescued by its non-noisy neighbours (§2.1).

use waldo_geo::{GridIndex, Point};
use waldo_rf::{DECODABLE_DBM, PROTECTION_RADIUS_M};

use crate::Safety;

/// Configurable Algorithm-1 labeler.
///
/// # Examples
///
/// ```
/// use waldo_data::Labeler;
/// use waldo_geo::Point;
///
/// let readings = vec![
///     (Point::new(0.0, 0.0), -60.0),      // hot
///     (Point::new(3_000.0, 0.0), -100.0), // cold but within 6 km of hot
///     (Point::new(20_000.0, 0.0), -100.0) // cold and far away
/// ];
/// let labels = Labeler::new().label(&readings);
/// assert!(labels[0].is_not_safe());
/// assert!(labels[1].is_not_safe());
/// assert!(!labels[2].is_not_safe());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Labeler {
    threshold_dbm: f64,
    radius_m: f64,
    correction_db: f64,
}

impl Default for Labeler {
    fn default() -> Self {
        Self::new()
    }
}

impl Labeler {
    /// The paper's configuration: −84 dBm threshold, 6 km protection
    /// radius, no antenna correction.
    pub fn new() -> Self {
        Self { threshold_dbm: DECODABLE_DBM, radius_m: PROTECTION_RADIUS_M, correction_db: 0.0 }
    }

    /// Overrides the decodability threshold (the paper notes
    /// conservativeness "can be controlled by decreasing the threshold").
    pub fn threshold_dbm(mut self, t: f64) -> Self {
        assert!(t.is_finite(), "threshold must be finite");
        self.threshold_dbm = t;
        self
    }

    /// Overrides the protection radius (later FCC orders reduced 6 km to
    /// 4 km and finally 1.7 km; the discussion section tracks this).
    ///
    /// # Panics
    ///
    /// Panics unless positive.
    pub fn radius_m(mut self, r: f64) -> Self {
        assert!(r > 0.0, "radius must be positive");
        self.radius_m = r;
        self
    }

    /// Adds a uniform antenna-correction factor (dB) to every reading
    /// before thresholding — ≈ 7.4 dB compensates the 2 m mast (§2.1).
    pub fn antenna_correction_db(mut self, db: f64) -> Self {
        assert!(db.is_finite(), "correction must be finite");
        self.correction_db = db;
        self
    }

    /// Labels `(location, rss_dbm)` readings per Algorithm 1.
    pub fn label(&self, readings: &[(Point, f64)]) -> Vec<Safety> {
        let _t = waldo_prof::scope("label");
        let mut not_safe = vec![false; readings.len()];
        // Index every reading once; then each hot reading marks its
        // neighbourhood. Bucket size = radius keeps the scan at ≤ 9 cells;
        // the 1 m clamp stops a degenerate sub-metre radius from exploding
        // the bucket count (pinned by `tiny_radius_clamps_bucket_size`).
        let mut index: GridIndex<usize> = GridIndex::new(self.radius_m.max(1.0));
        for (i, &(p, _)) in readings.iter().enumerate() {
            index.insert(p, i);
        }
        for &(p, rss) in readings.iter() {
            if rss + self.correction_db > self.threshold_dbm {
                for (_, &j) in index.within(p, self.radius_m) {
                    not_safe[j] = true;
                }
            }
        }
        not_safe.into_iter().map(Safety::from_not_safe).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_reading_poisons_its_disk() {
        let readings = vec![
            (Point::new(0.0, 0.0), -80.0),
            (Point::new(5_999.0, 0.0), -120.0),
            (Point::new(6_001.0, 0.0), -120.0),
        ];
        let labels = Labeler::new().label(&readings);
        assert!(labels[0].is_not_safe());
        assert!(labels[1].is_not_safe());
        assert!(!labels[2].is_not_safe());
    }

    #[test]
    fn threshold_is_strict_greater() {
        let readings = vec![(Point::new(0.0, 0.0), -84.0)];
        assert!(!Labeler::new().label(&readings)[0].is_not_safe());
        let readings = vec![(Point::new(0.0, 0.0), -83.999)];
        assert!(Labeler::new().label(&readings)[0].is_not_safe());
    }

    #[test]
    fn correction_factor_shifts_the_threshold() {
        let readings = vec![(Point::new(0.0, 0.0), -90.0)];
        assert!(!Labeler::new().label(&readings)[0].is_not_safe());
        let corrected = Labeler::new().antenna_correction_db(7.4).label(&readings);
        assert!(corrected[0].is_not_safe());
    }

    #[test]
    fn adding_a_hot_reading_is_monotone() {
        // Labels can only move safe → not-safe as readings are added.
        let mut readings = vec![
            (Point::new(0.0, 0.0), -100.0),
            (Point::new(4_000.0, 0.0), -100.0),
            (Point::new(12_000.0, 0.0), -100.0),
        ];
        let before = Labeler::new().label(&readings);
        readings.push((Point::new(2_000.0, 0.0), -50.0));
        let after = Labeler::new().label(&readings);
        for i in 0..before.len() {
            assert!(!before[i].is_not_safe() || after[i].is_not_safe(), "label {i} regressed");
        }
        assert!(after[0].is_not_safe() && after[1].is_not_safe());
        assert!(!after[2].is_not_safe());
    }

    #[test]
    fn custom_radius_respected() {
        let readings = vec![(Point::new(0.0, 0.0), -70.0), (Point::new(2_000.0, 0.0), -120.0)];
        let tight = Labeler::new().radius_m(1_700.0).label(&readings);
        assert!(!tight[1].is_not_safe());
        let wide = Labeler::new().radius_m(6_000.0).label(&readings);
        assert!(wide[1].is_not_safe());
    }

    #[test]
    fn chains_do_not_propagate() {
        // A poisoned-but-cold reading must NOT poison its own disk: only
        // readings above threshold radiate.
        let readings = vec![
            (Point::new(0.0, 0.0), -70.0),
            (Point::new(5_000.0, 0.0), -120.0),
            (Point::new(10_000.0, 0.0), -120.0),
        ];
        let labels = Labeler::new().label(&readings);
        assert!(labels[1].is_not_safe());
        assert!(!labels[2].is_not_safe(), "poisoning must not chain");
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(Labeler::new().label(&[]).is_empty());
    }

    #[test]
    fn tiny_radius_clamps_bucket_size() {
        // A sub-metre protection radius must not blow up the grid: the
        // `max(1.0)` clamp in `label` pins the bucket size at 1 m, and the
        // labeling must stay correct (each reading only poisons points
        // within the tiny radius — in practice, itself and co-located
        // readings). Points 0/1 are 0.5 mm apart (inside 1 mm radius),
        // point 2 is 10 m away (outside), point 3 is cold.
        use rand::{Rng, SeedableRng};
        let readings = vec![
            (Point::new(0.0, 0.0), -70.0),
            (Point::new(0.0005, 0.0), -120.0),
            (Point::new(10.0, 0.0), -120.0),
            (Point::new(5_000.0, 0.0), -120.0),
        ];
        let labels = Labeler::new().radius_m(0.001).label(&readings);
        assert!(labels[0].is_not_safe());
        assert!(labels[1].is_not_safe(), "co-located reading inside tiny radius");
        assert!(!labels[2].is_not_safe(), "10 m away is outside a 1 mm radius");
        assert!(!labels[3].is_not_safe());

        // And against brute force on a dense random cloud, where the
        // un-clamped bucket count would be astronomically large.
        let mut rng = rand::rngs::StdRng::seed_from_u64(47);
        let cloud: Vec<(Point, f64)> = (0..300)
            .map(|_| {
                (
                    Point::new(rng.gen_range(0.0..5.0), rng.gen_range(0.0..5.0)),
                    rng.gen_range(-120.0..-60.0),
                )
            })
            .collect();
        let radius = 0.25;
        let fast = Labeler::new().radius_m(radius).label(&cloud);
        for (i, &(p, _)) in cloud.iter().enumerate() {
            let expect = cloud.iter().any(|&(q, r)| r > -84.0 && q.distance(p) <= radius);
            assert_eq!(fast[i].is_not_safe(), expect, "reading {i}");
        }
    }

    #[test]
    fn matches_brute_force_on_random_input() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let readings: Vec<(Point, f64)> = (0..400)
            .map(|_| {
                (
                    Point::new(rng.gen_range(0.0..30_000.0), rng.gen_range(0.0..20_000.0)),
                    rng.gen_range(-120.0..-60.0),
                )
            })
            .collect();
        let fast = Labeler::new().label(&readings);
        // Brute force O(n²).
        for (i, &(p, _)) in readings.iter().enumerate() {
            let expect = readings.iter().any(|&(q, r)| r > -84.0 && q.distance(p) <= 6_000.0);
            assert_eq!(fast[i].is_not_safe(), expect, "reading {i}");
        }
    }
}
