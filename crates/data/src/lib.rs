//! Measurement-campaign substrate: the war-driving data pipeline of §2.1.
//!
//! Reproduces the paper's collection methodology end to end:
//!
//! * [`CampaignBuilder`] drives every sensor along the same ~800 km route
//!   through the simulated world, collecting 5282 location-tagged readings
//!   per channel per sensor, spaced > 20 m apart.
//! * [`Labeler`] is Algorithm 1 verbatim: a reading above −84 dBm marks
//!   itself *and everything within 6 km* as not safe; everything else is
//!   safe. An optional uniform antenna-correction factor (≈ 7.4 dB for the
//!   2 m mast) can be added before thresholding.
//! * [`ChannelDataset`] stores one (sensor, channel) measurement series and
//!   converts it into an ML dataset with a chosen feature set.

mod campaign;
mod label;
mod record;

pub use campaign::{Campaign, CampaignBuilder};
pub use label::Labeler;
pub use record::{ChannelDataset, Measurement, Safety};
