use serde::{Deserialize, Serialize};
use waldo_geo::Point;
use waldo_iq::FeatureSet;
use waldo_ml::{Dataset, DatasetError};
use waldo_rf::TvChannel;
use waldo_sensors::{Observation, SensorKind};

/// Whether a location is safe for white-space operation on a channel.
///
/// `NotSafe` is the positive class throughout the system (protecting the
/// incumbent is the side regulators care about).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Safety {
    /// Free for opportunistic use.
    Safe,
    /// Within the protected contour (or its 6 km buffer).
    NotSafe,
}

impl Safety {
    /// `true` when not safe (the boolean convention of the ML layer).
    pub fn is_not_safe(self) -> bool {
        matches!(self, Safety::NotSafe)
    }

    /// Constructs from the ML layer's boolean convention.
    pub fn from_not_safe(not_safe: bool) -> Self {
        if not_safe {
            Safety::NotSafe
        } else {
            Safety::Safe
        }
    }
}

impl std::fmt::Display for Safety {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Safety::Safe => f.write_str("safe"),
            Safety::NotSafe => f.write_str("not safe"),
        }
    }
}

/// One location-tagged spectrum measurement (GPS + calibrated observation),
/// plus the simulator's hidden ground truth for analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Measurement location in the local frame.
    pub location: Point,
    /// Distance along the collection drive, metres.
    pub odometer_m: f64,
    /// The calibrated sensor output.
    pub observation: Observation,
    /// The simulator's true channel power at this point (never exposed to
    /// Waldo or the baselines; used only for analysis plots).
    pub true_rss_dbm: f64,
}

/// The measurement series of one (sensor, channel) pair, with labels once
/// [`crate::Labeler`] has run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelDataset {
    channel: TvChannel,
    sensor: SensorKind,
    measurements: Vec<Measurement>,
    labels: Vec<Safety>,
}

impl ChannelDataset {
    /// Bundles measurements with their labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != measurements.len()`.
    pub fn new(
        channel: TvChannel,
        sensor: SensorKind,
        measurements: Vec<Measurement>,
        labels: Vec<Safety>,
    ) -> Self {
        assert_eq!(measurements.len(), labels.len(), "labels must align with measurements");
        Self { channel, sensor, measurements, labels }
    }

    /// The channel.
    pub fn channel(&self) -> TvChannel {
        self.channel
    }

    /// The sensor that collected this series.
    pub fn sensor(&self) -> SensorKind {
        self.sensor
    }

    /// The measurements, in drive order.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// The Algorithm-1 labels, parallel to the measurements.
    pub fn labels(&self) -> &[Safety] {
        &self.labels
    }

    /// Number of readings.
    pub fn len(&self) -> usize {
        self.measurements.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.measurements.is_empty()
    }

    /// Fraction of readings labeled not-safe.
    pub fn not_safe_fraction(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().filter(|l| l.is_not_safe()).count() as f64 / self.labels.len() as f64
    }

    /// Labels as the ML layer's booleans (`true` = not safe).
    pub fn label_bools(&self) -> Vec<bool> {
        self.labels.iter().map(|l| l.is_not_safe()).collect()
    }

    /// Builds the classifier input row for one measurement: location in km
    /// (for conditioning) followed by the selected signal features.
    pub fn feature_row(m: &Measurement, set: &FeatureSet) -> Vec<f64> {
        let mut row = vec![m.location.x / 1000.0, m.location.y / 1000.0];
        row.extend(m.observation.features.project(set));
        row
    }

    /// Converts the series into an ML dataset with location (always) plus
    /// the signal features in `set`.
    ///
    /// # Errors
    ///
    /// Propagates [`DatasetError`] (non-finite features, which would mean a
    /// broken sensor pipeline).
    pub fn to_ml_dataset(&self, set: &FeatureSet) -> Result<Dataset, DatasetError> {
        let rows = self.measurements.iter().map(|m| Self::feature_row(m, set)).collect();
        Dataset::from_rows(rows, self.label_bools())
    }

    /// A copy restricted to the given indices (order preserved).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn subset(&self, indices: &[usize]) -> ChannelDataset {
        ChannelDataset {
            channel: self.channel,
            sensor: self.sensor,
            measurements: indices.iter().map(|&i| self.measurements[i]).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
        }
    }

    /// Replaces the labels (used when re-labeling with an antenna
    /// correction factor).
    ///
    /// # Panics
    ///
    /// Panics if the length differs.
    pub fn with_labels(mut self, labels: Vec<Safety>) -> Self {
        assert_eq!(labels.len(), self.measurements.len(), "labels must align");
        self.labels = labels;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waldo_iq::{FeatureKind, FeatureVector};

    fn measurement(x: f64, rss: f64) -> Measurement {
        Measurement {
            location: Point::new(x, 0.0),
            odometer_m: x,
            observation: waldo_sensors::Observation {
                rss_dbm: rss,
                features: FeatureVector {
                    rss_db: rss,
                    cft_db: rss - 11.0,
                    aft_db: rss - 12.0,
                    quadrature_imbalance_db: 0.0,
                    iq_kurtosis: 0.0,
                    edge_bin_db: -100.0,
                },
                raw_pilot_db: rss - 12.0,
            },
            true_rss_dbm: rss,
        }
    }

    fn dataset() -> ChannelDataset {
        ChannelDataset::new(
            TvChannel::new(30).unwrap(),
            SensorKind::RtlSdr,
            vec![measurement(0.0, -90.0), measurement(1000.0, -70.0)],
            vec![Safety::Safe, Safety::NotSafe],
        )
    }

    #[test]
    fn safety_conversions() {
        assert!(Safety::NotSafe.is_not_safe());
        assert!(!Safety::Safe.is_not_safe());
        assert_eq!(Safety::from_not_safe(true), Safety::NotSafe);
        assert_eq!(Safety::from_not_safe(false), Safety::Safe);
        assert_eq!(Safety::Safe.to_string(), "safe");
    }

    #[test]
    fn ml_dataset_has_location_plus_features() {
        let ds = dataset();
        let ml = ds.to_ml_dataset(&FeatureSet::first_n(2)).unwrap();
        assert_eq!(ml.dim(), 4); // x, y, RSS, CFT
        assert_eq!(ml.len(), 2);
        assert_eq!(ml.labels(), &[false, true]);
        assert_eq!(ml.rows()[1][0], 1.0); // km
        assert_eq!(ml.rows()[1][2], -70.0); // RSS feature
    }

    #[test]
    fn location_only_dataset_is_two_dimensional() {
        let ml = dataset().to_ml_dataset(&FeatureSet::location_only()).unwrap();
        assert_eq!(ml.dim(), 2);
    }

    #[test]
    fn custom_feature_order_respected() {
        let set = FeatureSet::custom(vec![FeatureKind::Aft]);
        let ml = dataset().to_ml_dataset(&set).unwrap();
        assert_eq!(ml.rows()[0][2], -102.0); // AFT = rss − 12
    }

    #[test]
    fn subset_and_fraction() {
        let ds = dataset();
        assert_eq!(ds.not_safe_fraction(), 0.5);
        let sub = ds.subset(&[1]);
        assert_eq!(sub.len(), 1);
        assert_eq!(sub.not_safe_fraction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_labels_panic() {
        let ds = dataset();
        let _ = ds.with_labels(vec![Safety::Safe]);
    }
}
