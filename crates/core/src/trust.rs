//! Securing crowd-sourced uploads (§3.4).
//!
//! The paper points at Fatemieh et al. (DySPAN'10): detect malicious
//! contributions by correlating nearby readings from different
//! contributors with expected signal-propagation behaviour. This module
//! implements that approach in two layers:
//!
//! * [`TrustPolicy::batch_is_plausible`] — *internal consistency*: a batch
//!   claiming wildly different power at nearly the same spot, or physically
//!   impossible spatial gradients, is rejected outright.
//! * [`TrustPolicy::score_against_pool`] — *cross-contributor
//!   consistency*: each uploaded reading is compared to the consensus of
//!   pooled readings nearby; a batch whose deviations are systematically
//!   one-sided (the signature of an attacker trying to carve out or deny
//!   spectrum) scores poorly.

use waldo_data::Measurement;
use waldo_geo::GridIndex;
use waldo_ml::stats::{mean, std_dev};

/// Upload vetting policy.
///
/// # Examples
///
/// ```
/// use waldo::trust::TrustPolicy;
///
/// let policy = TrustPolicy::default();
/// assert!(policy.batch_is_plausible(&[]) == false); // empty batches say nothing
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrustPolicy {
    /// Maximum plausible RSS spread (dB) among readings within
    /// `colocation_m` of each other.
    pub max_colocated_spread_db: f64,
    /// Distance below which readings are considered co-located.
    pub colocation_m: f64,
    /// Maximum plausible |dRSS/d distance| in dB per metre (signals do not
    /// change faster than deep shadowing edges allow).
    pub max_gradient_db_per_m: f64,
    /// Neighbourhood radius for cross-contributor consensus.
    pub consensus_radius_m: f64,
    /// Mean |deviation| from consensus (dB) above which a batch is flagged.
    pub max_consensus_deviation_db: f64,
}

impl Default for TrustPolicy {
    fn default() -> Self {
        Self {
            max_colocated_spread_db: 12.0,
            colocation_m: 30.0,
            max_gradient_db_per_m: 0.35,
            consensus_radius_m: 1_000.0,
            max_consensus_deviation_db: 12.0,
        }
    }
}

impl TrustPolicy {
    /// Internal-consistency check: `false` for empty batches, co-located
    /// contradictions, or impossible spatial gradients.
    pub fn batch_is_plausible(&self, batch: &[Measurement]) -> bool {
        if batch.is_empty() {
            return false;
        }
        for (i, a) in batch.iter().enumerate() {
            for b in &batch[i + 1..] {
                let d = a.location.distance(b.location);
                let drss = (a.observation.rss_dbm - b.observation.rss_dbm).abs();
                if d <= self.colocation_m {
                    if drss > self.max_colocated_spread_db {
                        return false;
                    }
                } else if drss / d > self.max_gradient_db_per_m {
                    return false;
                }
            }
        }
        true
    }

    /// Cross-contributor score: mean |deviation| (dB) of the batch from the
    /// consensus (mean RSS of pooled readings within
    /// [`consensus_radius_m`](Self::consensus_radius_m)). Readings with no
    /// neighbours contribute nothing. Returns `None` when no reading has a
    /// neighbourhood to compare against.
    pub fn score_against_pool(&self, batch: &[Measurement], pool: &[Measurement]) -> Option<f64> {
        let mut index = GridIndex::new(self.consensus_radius_m.max(1.0));
        for (i, m) in pool.iter().enumerate() {
            index.insert(m.location, i);
        }
        let mut deviations = Vec::new();
        for m in batch {
            let neighbours: Vec<f64> = index
                .within(m.location, self.consensus_radius_m)
                .map(|(_, &i)| pool[i].observation.rss_dbm)
                .collect();
            if neighbours.is_empty() {
                continue;
            }
            deviations.push((m.observation.rss_dbm - mean(&neighbours)).abs());
        }
        if deviations.is_empty() {
            None
        } else {
            Some(mean(&deviations))
        }
    }

    /// Full verdict: internally plausible *and* (when a consensus exists)
    /// within the deviation budget.
    pub fn accepts(&self, batch: &[Measurement], pool: &[Measurement]) -> bool {
        if !self.batch_is_plausible(batch) {
            return false;
        }
        match self.score_against_pool(batch, pool) {
            Some(score) => score <= self.max_consensus_deviation_db,
            None => true, // no data to contradict: accept provisionally
        }
    }

    /// Convenience: RSS spread (population std) of a batch, the quantity
    /// the updater's α′ criterion also inspects.
    pub fn batch_spread_db(batch: &[Measurement]) -> f64 {
        let rss: Vec<f64> = batch.iter().map(|m| m.observation.rss_dbm).collect();
        std_dev(&rss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waldo_geo::Point;
    use waldo_iq::FeatureVector;
    use waldo_sensors::Observation;

    fn m(x: f64, y: f64, rss: f64) -> Measurement {
        Measurement {
            location: Point::new(x, y),
            odometer_m: 0.0,
            observation: Observation {
                rss_dbm: rss,
                features: FeatureVector {
                    rss_db: rss,
                    cft_db: rss - 11.3,
                    aft_db: rss - 12.5,
                    quadrature_imbalance_db: 0.0,
                    iq_kurtosis: 0.0,
                    edge_bin_db: -110.0,
                },
                raw_pilot_db: rss - 11.3,
            },
            true_rss_dbm: rss,
        }
    }

    #[test]
    fn consistent_batch_passes() {
        let batch: Vec<Measurement> =
            (0..10).map(|i| m(i as f64 * 100.0, 0.0, -80.0 - i as f64 * 0.5)).collect();
        assert!(TrustPolicy::default().batch_is_plausible(&batch));
    }

    #[test]
    fn colocated_contradiction_fails() {
        let batch = vec![m(0.0, 0.0, -60.0), m(5.0, 0.0, -100.0)];
        assert!(!TrustPolicy::default().batch_is_plausible(&batch));
    }

    #[test]
    fn impossible_gradient_fails() {
        // 40 dB over 60 m = 0.67 dB/m — faster than any shadowing edge.
        let batch = vec![m(0.0, 0.0, -60.0), m(60.0, 0.0, -100.0)];
        assert!(!TrustPolicy::default().batch_is_plausible(&batch));
    }

    #[test]
    fn empty_batch_fails() {
        assert!(!TrustPolicy::default().batch_is_plausible(&[]));
    }

    #[test]
    fn consensus_scores_honest_and_lying_batches_apart() {
        let policy = TrustPolicy::default();
        // Pool: a consistent -85 dBm neighbourhood.
        let pool: Vec<Measurement> =
            (0..50).map(|i| m((i % 10) as f64 * 150.0, (i / 10) as f64 * 150.0, -85.0)).collect();
        let honest: Vec<Measurement> = (0..5).map(|i| m(i as f64 * 120.0, 80.0, -86.0)).collect();
        let liar: Vec<Measurement> = (0..5).map(|i| m(i as f64 * 120.0, 80.0, -60.0)).collect();
        let honest_score = policy.score_against_pool(&honest, &pool).unwrap();
        let liar_score = policy.score_against_pool(&liar, &pool).unwrap();
        assert!(honest_score < 3.0, "honest {honest_score}");
        assert!(liar_score > 20.0, "liar {liar_score}");
        assert!(policy.accepts(&honest, &pool));
        assert!(!policy.accepts(&liar, &pool));
    }

    #[test]
    fn batch_with_no_neighbourhood_is_accepted_provisionally() {
        let policy = TrustPolicy::default();
        let pool: Vec<Measurement> = vec![m(0.0, 0.0, -85.0)];
        let far: Vec<Measurement> = vec![m(30_000.0, 19_000.0, -70.0)];
        assert_eq!(policy.score_against_pool(&far, &pool), None);
        assert!(policy.accepts(&far, &pool));
    }

    #[test]
    fn spread_helper_matches_std() {
        let batch = vec![m(0.0, 0.0, -80.0), m(1_000.0, 0.0, -90.0)];
        assert!((TrustPolicy::batch_spread_db(&batch) - 5.0).abs() < 1e-12);
    }
}
