//! Waldo: local and low-cost white-space detection (ICDCS 2017).
//!
//! Waldo combines the centrally coordinated, location-based nature of a
//! spectrum database with the realistic local view of spectrum sensing. A
//! central repository collects crowd-sourced low-cost measurements, labels
//! them with the FCC contour rule (Algorithm 1), partitions the area into
//! *localities* (k-means), and trains a compact classifier per locality on
//! **location + signal features** (RSS, CFT, AFT). A mobile white-space
//! device downloads the model for its area and decides locally, smoothing
//! noisy hardware until a 90 % confidence interval converges.
//!
//! The crate is organized by the paper's §3 architecture:
//!
//! * [`ModelConstructor`] — §3.2: localities identification + per-locality
//!   classifier training (SVM / Naive Bayes / decision tree).
//! * [`WaldoModel`] — the downloadable model descriptor (the paper's 4 kB
//!   NB / 40 kB SVM artifact).
//! * [`WhiteSpaceDetector`] — §3.3: the online smoothing/outlier/confidence
//!   pipeline around the model.
//! * [`ModelUpdater`] — §3.4: growing the training set as devices upload
//!   readings.
//! * [`coverage`] — rasterized safe/not-safe maps for comparing systems
//!   spatially (the Fig 1/Fig 3 geography).
//! * [`repository`] — the server side of §3.1: versioned per-channel model
//!   slots, location-keyed downloads, trust-gated uploads.
//! * [`trust`] — §3.4's secure crowdsourcing: internal plausibility and
//!   cross-contributor consensus checks on uploads.
//! * [`baseline`] — every system the paper compares against: spectrum
//!   databases, V-Scope-style measurement-augmented databases, k-NN
//!   interpolation, and threshold-only spectrum sensing.
//! * [`eval`] — the cross-validation harness behind Figures 12–16 and
//!   Table 1.
//! * [`device`] — §5: the phone deployment pipeline (responsiveness and
//!   CPU overhead of Figures 17–18).
//!
//! # Examples
//!
//! ```no_run
//! use waldo::{Assessor, ModelConstructor, WaldoConfig};
//! use waldo_data::CampaignBuilder;
//! use waldo_rf::world::WorldBuilder;
//! use waldo_rf::TvChannel;
//! use waldo_sensors::SensorKind;
//!
//! let world = WorldBuilder::new().seed(1).build();
//! let campaign = CampaignBuilder::new(&world)
//!     .readings_per_channel(1000)
//!     .spacing_m(600.0)
//!     .collect();
//! let ds = campaign
//!     .dataset(SensorKind::RtlSdr, TvChannel::new(47).unwrap())
//!     .unwrap();
//! let model = ModelConstructor::new(WaldoConfig::default()).fit(ds).unwrap();
//! let m = &ds.measurements()[0];
//! let _safety = model.assess(m.location, &m.observation);
//! ```

pub mod baseline;
mod constructor;
pub mod coverage;
mod detector;
pub mod device;
pub mod eval;
mod model;
pub mod repository;
pub mod trust;
mod updater;
pub mod wire;

pub use constructor::{ClassifierKind, ModelConstructor, TrainError, WaldoConfig};
pub use detector::{DetectorOutcome, WhiteSpaceDetector};
pub use device::{DecisionAuditLog, DecisionRecord, StaleModelGuard};
pub use model::WaldoModel;
pub use updater::ModelUpdater;

/// Anything that can decide whether a location is safe for white-space use
/// given a fresh local observation. Implemented by [`WaldoModel`] and every
/// baseline, so the evaluation harness can compare them uniformly.
pub trait Assessor {
    /// Decides for one location + observation.
    fn assess(
        &self,
        location: waldo_geo::Point,
        observation: &waldo_sensors::Observation,
    ) -> waldo_data::Safety;

    /// Short display name for result tables.
    fn name(&self) -> String;
}
