//! The phone deployment pipeline (§5): responsiveness and CPU overhead.
//!
//! The Android prototype connects an RTL-SDR over USB-OTG, scans each
//! channel by feeding 256-sample captures into the
//! [`WhiteSpaceDetector`](crate::WhiteSpaceDetector) until the 90 % CI
//! converges, repeats every 60 s, and downloads the model per area. This
//! module simulates the *radio timing* (captures arrive every
//! `capture_period_s`) while measuring the *compute cost* for real — the
//! feature extraction, detector update, and classification all actually
//! run, and wall-clock time is measured around them, which is what Fig 18
//! reports.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use waldo_data::Safety;
use waldo_geo::Point;
use waldo_iq::window::Window;
use waldo_iq::FeatureVector;
use waldo_sensors::{Calibration, Observation, SensorModel};

use crate::{Assessor, DetectorOutcome, WaldoModel, WhiteSpaceDetector};

/// Timing configuration of the phone pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhoneConfig {
    /// Seconds between frame-averaged readings reaching the app (24 × 256
    /// samples at 2.4 Msps is ~2.6 ms of air time; USB-OTG batching and
    /// driver overhead stretch it to ~12.5 ms on the RFAnalyzer stack).
    pub capture_period_s: f64,
    /// The α sensitivity parameter handed to the detector, dB.
    pub alpha_db: f64,
    /// Scan repetition interval (FCC requires rechecking every 60 s).
    pub scan_interval_s: f64,
    /// Hard cap on captures per channel before giving up (mobility case).
    pub max_captures: usize,
}

impl Default for PhoneConfig {
    fn default() -> Self {
        Self { capture_period_s: 0.0125, alpha_db: 0.5, scan_interval_s: 60.0, max_captures: 400 }
    }
}

/// Outcome of sensing one channel once.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceRun {
    /// Whether the CI converged before the capture cap.
    pub converged: bool,
    /// The decision (forced at the cap when not converged).
    pub safety: Safety,
    /// Captures consumed.
    pub captures: usize,
    /// Radio time consumed: captures × capture period, seconds.
    pub radio_time_s: f64,
    /// Real CPU time spent in feature extraction + detection, seconds.
    pub cpu_time_s: f64,
}

/// The phone-side white-space scanner.
#[derive(Debug)]
pub struct PhoneScanner {
    config: PhoneConfig,
    sensor: SensorModel,
    calibration: Calibration,
    rng: StdRng,
}

impl PhoneScanner {
    /// Creates a scanner around a sensor (factory calibration, as the
    /// phone receives calibration constants with the app).
    pub fn new(config: PhoneConfig, sensor: SensorModel, seed: u64) -> Self {
        let calibration = Calibration::factory(&sensor);
        Self { config, sensor, calibration, rng: StdRng::seed_from_u64(seed) }
    }

    /// The timing configuration.
    pub fn config(&self) -> PhoneConfig {
        self.config
    }

    /// Senses one channel at a stationary location whose true channel power
    /// is `true_rss_dbm`, running the detector until convergence or the
    /// cap. The I/Q → features → detector path executes for real; its
    /// wall-clock cost is measured and reported.
    pub fn sense_channel(
        &mut self,
        model: &WaldoModel,
        location: Point,
        true_rss_dbm: Option<f64>,
    ) -> ConvergenceRun {
        self.sense_channel_moving(model, |_| (location, true_rss_dbm))
    }

    /// Mobile variant: `state_at(capture_index)` supplies the (possibly
    /// changing) location and true RSS per capture — the paper's mobile
    /// experiments move the device while sensing.
    pub fn sense_channel_moving<F>(&mut self, model: &WaldoModel, state_at: F) -> ConvergenceRun
    where
        F: FnMut(usize) -> (Point, Option<f64>),
    {
        self.sense_with_trajectory(model, state_at, None)
    }

    /// Like [`sense_channel`](Self::sense_channel), but writes a
    /// [`DecisionRecord`] into `log` — channel, routing locality, model
    /// epoch, readings used, CI trajectory, and (when a `guard` is given)
    /// whether the stale-model rule downgraded the decision. The returned
    /// run carries the *gated* decision, so callers acting on it inherit
    /// the conservative answer.
    #[allow(clippy::too_many_arguments)]
    pub fn sense_channel_audited(
        &mut self,
        model: &WaldoModel,
        location: Point,
        true_rss_dbm: Option<f64>,
        channel: u8,
        model_epoch: u64,
        guard: Option<&StaleModelGuard>,
        log: &mut DecisionAuditLog,
    ) -> ConvergenceRun {
        let mut trajectory = Vec::new();
        let run =
            self.sense_with_trajectory(model, |_| (location, true_rss_dbm), Some(&mut trajectory));
        let gated = guard.map_or(run.safety, |g| g.gate_decision(run.safety));
        log.push(DecisionRecord {
            seq: 0,
            channel,
            locality: model.locality_for(location),
            model_epoch,
            readings_used: run.captures,
            ci_trajectory_db: trajectory,
            decided: run.safety,
            gated,
            converged: run.converged,
        });
        ConvergenceRun { safety: gated, ..run }
    }

    fn sense_with_trajectory<F>(
        &mut self,
        model: &WaldoModel,
        mut state_at: F,
        mut trajectory: Option<&mut Vec<f64>>,
    ) -> ConvergenceRun
    where
        F: FnMut(usize) -> (Point, Option<f64>),
    {
        let mut detector = WhiteSpaceDetector::new(model.clone(), self.config.alpha_db)
            .max_readings(self.config.max_captures);
        let mut cpu = 0.0f64;
        let mut captures = 0usize;
        loop {
            let (location, rss) = state_at(captures);
            // Radio side: one frame-averaged reading (synthesis stands in
            // for the dongle; not billed as CPU).
            let batch = self.sensor.capture_reading_batch(rss, &mut self.rng);

            // Compute side, measured for real: feature extraction, pilot
            // estimation, calibration, detector update, classification.
            let start = Instant::now();
            let extraction = FeatureVector::extract_from_batch(&batch, Window::Hann);
            let raw_pilot = extraction.pilot_db;
            let rss_dbm = self.calibration.to_dbm(raw_pilot) + 12.0;
            let shift = self.calibration.to_dbm(0.0);
            let observation = Observation {
                rss_dbm,
                features: extraction.features.shifted_db(shift),
                raw_pilot_db: raw_pilot,
            };
            let outcome = detector.push(location, &observation);
            cpu += start.elapsed().as_secs_f64();
            captures += 1;

            if let Some(track) = trajectory.as_deref_mut() {
                if let DetectorOutcome::NeedMoreReadings { ci_span_db: Some(s) } = outcome {
                    // Bounded tail: the last CI_TRAJECTORY_CAP spans show
                    // the convergence approach without unbounded growth.
                    if track.len() >= CI_TRAJECTORY_CAP {
                        track.remove(0);
                    }
                    track.push(s);
                }
            }

            match outcome {
                DetectorOutcome::Converged { safety, readings_used } => {
                    return ConvergenceRun {
                        converged: readings_used < self.config.max_captures,
                        safety,
                        captures,
                        radio_time_s: captures as f64 * self.config.capture_period_s,
                        cpu_time_s: cpu,
                    };
                }
                DetectorOutcome::NeedMoreReadings { .. }
                    if captures >= self.config.max_captures =>
                {
                    // The detector itself forces a decision at the cap; this
                    // arm is a belt-and-braces guard.
                    return ConvergenceRun {
                        converged: false,
                        safety: Safety::NotSafe,
                        captures,
                        radio_time_s: captures as f64 * self.config.capture_period_s,
                        cpu_time_s: cpu,
                    };
                }
                DetectorOutcome::NeedMoreReadings { .. } => {}
            }
        }
    }

    /// One full scan over `channels` (a list of `(location, true RSS)`
    /// states), returning per-channel runs plus the peak CPU utilization
    /// (busy fraction while actively scanning) and the average over the
    /// whole `scan_interval_s` duty cycle — the two quantities §5 reports
    /// (Fig 18 and the 2.35 % average).
    pub fn scan(&mut self, model: &WaldoModel, channels: &[(Point, Option<f64>)]) -> ScanReport {
        let runs: Vec<ConvergenceRun> =
            channels.iter().map(|&(loc, rss)| self.sense_channel(model, loc, rss)).collect();
        let radio: f64 = runs.iter().map(|r| r.radio_time_s).sum();
        let cpu: f64 = runs.iter().map(|r| r.cpu_time_s).sum();
        let peak = if radio > 0.0 { (cpu / radio).min(1.0) } else { 0.0 };
        let avg = cpu / self.config.scan_interval_s.max(radio);
        ScanReport {
            runs,
            busy_time_s: radio,
            cpu_time_s: cpu,
            peak_cpu_fraction: peak,
            duty_cycle_cpu_fraction: avg,
        }
    }
}

/// The §5 vacant-channel cache: "clearly vacant channels, with no
/// operational station anywhere in the area, can be cached and not
/// scanned by Waldo". A channel that has decided *safe* for
/// `skip_after` consecutive scans is skipped for `ttl_scans` scans before
/// being re-checked; any *not-safe* decision evicts it immediately.
#[derive(Debug, Clone, Default)]
pub struct ChannelCache {
    entries: std::collections::BTreeMap<u8, CacheEntry>,
    skip_after: u32,
    ttl_scans: u32,
}

#[derive(Debug, Clone, Copy, Default)]
struct CacheEntry {
    consecutive_safe: u32,
    skips_remaining: u32,
}

impl ChannelCache {
    /// Creates a cache that skips after 3 consecutive safe decisions, for
    /// 10 scans at a time.
    pub fn new() -> Self {
        Self { entries: std::collections::BTreeMap::new(), skip_after: 3, ttl_scans: 10 }
    }

    /// Overrides the consecutive-safe threshold.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn skip_after(mut self, n: u32) -> Self {
        assert!(n > 0, "must observe at least one safe decision");
        self.skip_after = n;
        self
    }

    /// Overrides how many scans a cached channel is skipped for.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn ttl_scans(mut self, n: u32) -> Self {
        assert!(n > 0, "ttl must be at least one scan");
        self.ttl_scans = n;
        self
    }

    /// Whether the scanner may skip `channel` this scan. Calling this
    /// consumes one skip credit when it returns `true`.
    pub fn should_skip(&mut self, channel: u8) -> bool {
        if let Some(e) = self.entries.get_mut(&channel) {
            if e.skips_remaining > 0 {
                e.skips_remaining -= 1;
                return true;
            }
        }
        false
    }

    /// Records a scan decision for `channel`.
    pub fn record(&mut self, channel: u8, safety: Safety) {
        let e = self.entries.entry(channel).or_default();
        if safety.is_not_safe() {
            *e = CacheEntry::default();
            return;
        }
        e.consecutive_safe += 1;
        if e.consecutive_safe >= self.skip_after && e.skips_remaining == 0 {
            e.skips_remaining = self.ttl_scans;
            // Granting a skip cycle spends the streak: once the cycle's TTL
            // runs out the channel must again observe `skip_after`
            // consecutive safe scans before it may be skipped — otherwise a
            // single safe scan would re-enter the skip state forever.
            e.consecutive_safe = 0;
        }
    }

    /// Channels currently in the skip state.
    pub fn cached_channels(&self) -> Vec<u8> {
        self.entries.iter().filter(|(_, e)| e.skips_remaining > 0).map(|(&c, _)| c).collect()
    }
}

/// The stale-model grace policy: a device cut off from the constructor
/// keeps deciding locally from its cached model — but only within a TTL.
/// Once the model is older than the TTL, the paper's conservative rule
/// applies and *everything* assesses not-safe: serving stale safety claims
/// risks interfering with a licensed transmitter that appeared since the
/// model was built, and a false "occupied" merely wastes a channel.
///
/// The guard tracks the model's age from the moment it was installed
/// ([`new`](Self::new) / [`refresh`](Self::refresh)); callers that know
/// the transfer happened earlier can [`backdate`](Self::backdate) it.
#[derive(Debug, Clone)]
pub struct StaleModelGuard {
    model: WaldoModel,
    ttl: Duration,
    fetched: Instant,
    backdated: Duration,
}

impl StaleModelGuard {
    /// Wraps a freshly downloaded `model` with a time-to-live.
    pub fn new(model: WaldoModel, ttl: Duration) -> Self {
        Self { model, ttl, fetched: Instant::now(), backdated: Duration::ZERO }
    }

    /// Installs a newly downloaded model and restarts the clock.
    pub fn refresh(&mut self, model: WaldoModel) {
        self.model = model;
        self.mark_refreshed();
    }

    /// Restarts the clock without replacing the model (e.g. the server
    /// confirmed the cached epoch is still current).
    pub fn mark_refreshed(&mut self) {
        self.fetched = Instant::now();
        self.backdated = Duration::ZERO;
    }

    /// Ages the model by `by` (on top of elapsed wall time). Lets callers
    /// account for transfer delay — and lets tests and chaos drivers push a
    /// guard over its TTL deterministically.
    pub fn backdate(&mut self, by: Duration) {
        self.backdated += by;
    }

    /// Current age of the wrapped model.
    pub fn age(&self) -> Duration {
        self.fetched.elapsed() + self.backdated
    }

    /// Whether the model has outlived its TTL.
    pub fn is_stale(&self) -> bool {
        self.age() > self.ttl
    }

    /// The configured TTL.
    pub fn ttl(&self) -> Duration {
        self.ttl
    }

    /// The wrapped model (for direct use while fresh; going through
    /// [`assess`](Self::assess) / [`gate_decision`](Self::gate_decision)
    /// keeps the staleness rule applied).
    pub fn model(&self) -> &WaldoModel {
        &self.model
    }

    /// Assesses an observation through the TTL rule: the model's answer
    /// while fresh, unconditionally [`Safety::NotSafe`] once stale.
    pub fn assess(&self, location: Point, observation: &Observation) -> Safety {
        self.gate_decision(self.model.assess(location, observation))
    }

    /// Applies the TTL rule to a decision made elsewhere (e.g. a
    /// [`WhiteSpaceDetector`] convergence over the same model): passes it
    /// through while fresh, degrades it to [`Safety::NotSafe`] once stale.
    pub fn gate_decision(&self, decided: Safety) -> Safety {
        if self.is_stale() {
            Safety::NotSafe
        } else {
            decided
        }
    }
}

/// Per-record cap on retained CI-trajectory samples (the *last* N spans,
/// i.e. the convergence tail).
pub const CI_TRAJECTORY_CAP: usize = 32;

/// One audited white-space decision: everything needed to reconstruct
/// *why* a device transmitted (or refused to) after the fact — the
/// regulator-facing half of the observability story.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// Monotonic sequence number, assigned by the log (starts at 1;
    /// survives ring eviction, so gaps at the front reveal drops).
    pub seq: u64,
    /// TV channel the decision is about.
    pub channel: u8,
    /// Locality index that routed the classification
    /// ([`WaldoModel::locality_for`]).
    pub locality: usize,
    /// Epoch of the model used (0 when unknown, e.g. a locally built
    /// model that never travelled through the distribution layer).
    pub model_epoch: u64,
    /// Readings consumed before the decision.
    pub readings_used: usize,
    /// Trailing 90 % CI spans (dB) observed while converging, capped at
    /// [`CI_TRAJECTORY_CAP`] samples. Empty when the detector decided
    /// before a span was computable.
    pub ci_trajectory_db: Vec<f64>,
    /// The raw decision from the detector/model.
    pub decided: Safety,
    /// The decision after the stale-model gate.
    pub gated: Safety,
    /// Whether the detector converged (vs being forced at the cap).
    pub converged: bool,
}

impl DecisionRecord {
    /// Whether the stale-model guard downgraded this decision.
    pub fn downgraded(&self) -> bool {
        self.gated != self.decided
    }
}

/// A bounded ring buffer of [`DecisionRecord`]s. Old records are evicted
/// (and counted, never silently lost) once capacity is reached, so a
/// long-running device keeps a fixed-size audit tail plus exact totals.
#[derive(Debug, Clone)]
pub struct DecisionAuditLog {
    records: std::collections::VecDeque<DecisionRecord>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    downgrades: u64,
}

impl DecisionAuditLog {
    /// Creates a log retaining at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "an audit log must retain at least one record");
        Self {
            records: std::collections::VecDeque::with_capacity(capacity),
            capacity,
            next_seq: 1,
            dropped: 0,
            downgrades: 0,
        }
    }

    /// Appends a record (its `seq` field is assigned by the log) and
    /// returns the assigned sequence number, evicting the oldest record
    /// when full.
    pub fn push(&mut self, mut record: DecisionRecord) -> u64 {
        record.seq = self.next_seq;
        self.next_seq += 1;
        if record.downgraded() {
            self.downgrades += 1;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
        self.next_seq - 1
    }

    /// Maximum records retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records ever pushed (retained + dropped).
    pub fn total(&self) -> u64 {
        self.next_seq - 1
    }

    /// Records evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Decisions the stale-model gate downgraded, over the log's whole
    /// lifetime (not just the retained window).
    pub fn downgrades(&self) -> u64 {
        self.downgrades
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &DecisionRecord> {
        self.records.iter()
    }

    /// The most recent record.
    pub fn latest(&self) -> Option<&DecisionRecord> {
        self.records.back()
    }

    /// Clones the retained records out, oldest first — the export surface
    /// for reports and post-mortems.
    pub fn export(&self) -> Vec<DecisionRecord> {
        self.records.iter().cloned().collect()
    }
}

/// IEEE 802.22 requires in-service sensing to complete within 2 seconds;
/// the paper measures its 30-channel scan at 5.89 s (2.9× over).
pub const IEEE_802_22_BUDGET_S: f64 = 2.0;

/// Result of one full multi-channel scan.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanReport {
    /// Per-channel convergence runs.
    pub runs: Vec<ConvergenceRun>,
    /// Total radio-active time, seconds.
    pub busy_time_s: f64,
    /// Total measured CPU time, seconds.
    pub cpu_time_s: f64,
    /// CPU fraction while actively scanning (Fig 18's "peak periods").
    pub peak_cpu_fraction: f64,
    /// CPU fraction normalized over the 60 s scan interval (the 2.35 %
    /// number).
    pub duty_cycle_cpu_fraction: f64,
}

impl ScanReport {
    /// Whether the scan's radio-active time fits the IEEE 802.22 2-second
    /// guideline (§5 reports the paper's prototype at 2.9× over budget).
    pub fn meets_802_22(&self) -> bool {
        self.busy_time_s <= IEEE_802_22_BUDGET_S
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClassifierKind, ModelConstructor, WaldoConfig};
    use waldo_data::{ChannelDataset, Measurement};
    use waldo_iq::FeatureVector;
    use waldo_rf::TvChannel;
    use waldo_sensors::SensorKind;

    fn model() -> WaldoModel {
        let mut measurements = Vec::new();
        let mut labels = Vec::new();
        for i in 0..300 {
            let x = (i as f64 / 300.0) * 30_000.0;
            let not_safe = x > 15_000.0;
            let rss = if not_safe { -70.0 } else { -92.0 } + ((i % 5) as f64 - 2.0) * 0.4;
            measurements.push(Measurement {
                location: Point::new(x, ((i * 3) % 20) as f64 * 1_000.0),
                odometer_m: 0.0,
                observation: Observation {
                    rss_dbm: rss,
                    features: FeatureVector {
                        rss_db: rss,
                        cft_db: rss - 11.3,
                        aft_db: rss - 12.5,
                        quadrature_imbalance_db: 0.0,
                        iq_kurtosis: 0.0,
                        edge_bin_db: -110.0,
                    },
                    raw_pilot_db: rss - 11.3,
                },
                true_rss_dbm: rss,
            });
            labels.push(Safety::from_not_safe(not_safe));
        }
        let ds = ChannelDataset::new(
            TvChannel::new(30).unwrap(),
            SensorKind::RtlSdr,
            measurements,
            labels,
        );
        ModelConstructor::new(WaldoConfig::default().classifier(ClassifierKind::NaiveBayes))
            .fit(&ds)
            .unwrap()
    }

    #[test]
    fn stationary_sensing_converges_quickly() {
        let mut phone = PhoneScanner::new(PhoneConfig::default(), SensorModel::rtl_sdr(), 1);
        let run = phone.sense_channel(&model(), Point::new(25_000.0, 10_000.0), Some(-70.0));
        assert!(run.converged);
        assert!(run.safety.is_not_safe());
        assert!(run.captures < 50, "took {} captures", run.captures);
        assert!(run.cpu_time_s > 0.0);
        assert!(run.radio_time_s < 2.0, "radio time {}", run.radio_time_s);
    }

    #[test]
    fn mobile_sensing_struggles_to_converge() {
        // Driving across the coverage boundary: RSS swings by tens of dB,
        // the CI never closes, and the run hits the cap (the paper's
        // "large percentage of no convergence" mobile observation).
        let mut phone = PhoneScanner::new(
            PhoneConfig { max_captures: 120, ..PhoneConfig::default() },
            SensorModel::rtl_sdr(),
            2,
        );
        let m = model();
        let run = phone.sense_channel_moving(&m, |i| {
            // Weaving back and forth across the coverage boundary: the RSS
            // swings by 22 dB between consecutive captures.
            let x = 13_500.0 + ((i * 2_000) % 4_000) as f64;
            let rss = if x > 15_000.0 { -70.0 } else { -92.0 };
            (Point::new(x, 10_000.0), Some(rss))
        });
        assert!(!run.converged, "mobile run should hit the cap");
        assert_eq!(run.captures, 120);
    }

    #[test]
    fn larger_alpha_converges_in_fewer_captures() {
        let captures = |alpha: f64| {
            let mut phone = PhoneScanner::new(
                PhoneConfig { alpha_db: alpha, ..PhoneConfig::default() },
                SensorModel::usrp_b200(), // noisier readings stress α
                3,
            );
            phone.sense_channel(&model(), Point::new(25_000.0, 10_000.0), Some(-70.0)).captures
        };
        assert!(captures(5.0) <= captures(0.5));
    }

    #[test]
    fn channel_cache_skips_after_consecutive_safe_decisions() {
        let mut cache = ChannelCache::new().skip_after(2).ttl_scans(3);
        assert!(!cache.should_skip(40));
        cache.record(40, Safety::Safe);
        assert!(!cache.should_skip(40));
        cache.record(40, Safety::Safe);
        // Two consecutive safes: skip for the next three scans.
        assert!(cache.should_skip(40));
        assert_eq!(cache.cached_channels(), vec![40]);
        assert!(cache.should_skip(40));
        assert!(cache.should_skip(40));
        assert!(!cache.should_skip(40), "ttl exhausted");
    }

    #[test]
    fn skip_cycle_requires_a_fresh_streak() {
        // Regression: granting a skip cycle used to leave `consecutive_safe`
        // at its accumulated value, so after the TTL ran out a single safe
        // scan re-entered the skip state instead of requiring `skip_after`
        // consecutive ones.
        let mut cache = ChannelCache::new().skip_after(2).ttl_scans(1);
        cache.record(40, Safety::Safe);
        cache.record(40, Safety::Safe);
        assert!(cache.should_skip(40));
        assert!(!cache.should_skip(40), "ttl exhausted");
        cache.record(40, Safety::Safe);
        assert!(!cache.should_skip(40), "one safe scan must not re-grant a skip cycle");
        cache.record(40, Safety::Safe);
        assert!(cache.should_skip(40), "a full fresh streak re-grants the cycle");
    }

    #[test]
    fn channel_cache_evicts_on_not_safe() {
        let mut cache = ChannelCache::new().skip_after(1).ttl_scans(5);
        cache.record(40, Safety::Safe);
        assert!(cache.should_skip(40));
        cache.record(40, Safety::NotSafe);
        assert!(!cache.should_skip(40));
        assert!(cache.cached_channels().is_empty());
    }

    #[test]
    fn stale_model_guard_degrades_to_not_safe() {
        let m = model();
        let quiet_spot = Point::new(5_000.0, 10_000.0);
        let quiet_obs = Observation {
            rss_dbm: -92.0,
            features: FeatureVector {
                rss_db: -92.0,
                cft_db: -92.0 - 11.3,
                aft_db: -92.0 - 12.5,
                quadrature_imbalance_db: 0.0,
                iq_kurtosis: 0.0,
                edge_bin_db: -110.0,
            },
            raw_pilot_db: -92.0 - 11.3,
        };
        assert_eq!(m.assess(quiet_spot, &quiet_obs), Safety::Safe, "fixture sanity");

        let mut guard = StaleModelGuard::new(m, Duration::from_secs(3600));
        assert!(!guard.is_stale());
        assert_eq!(guard.assess(quiet_spot, &quiet_obs), Safety::Safe);
        assert_eq!(guard.gate_decision(Safety::Safe), Safety::Safe);

        // Push the guard over its TTL: everything degrades to not-safe.
        guard.backdate(Duration::from_secs(3601));
        assert!(guard.is_stale());
        assert_eq!(guard.assess(quiet_spot, &quiet_obs), Safety::NotSafe);
        assert_eq!(guard.gate_decision(Safety::Safe), Safety::NotSafe);
        assert_eq!(guard.gate_decision(Safety::NotSafe), Safety::NotSafe);

        // A refresh restores fresh behaviour (and clears the backdating).
        let m2 = guard.model().clone();
        guard.refresh(m2);
        assert!(!guard.is_stale());
        assert_eq!(guard.assess(quiet_spot, &quiet_obs), Safety::Safe);

        // mark_refreshed restarts the clock without swapping the model.
        guard.backdate(Duration::from_secs(7200));
        assert!(guard.is_stale());
        guard.mark_refreshed();
        assert!(!guard.is_stale());
    }

    fn record(decided: Safety, gated: Safety) -> DecisionRecord {
        DecisionRecord {
            seq: 0,
            channel: 30,
            locality: 0,
            model_epoch: 1,
            readings_used: 10,
            ci_trajectory_db: vec![2.0, 1.0, 0.4],
            decided,
            gated,
            converged: true,
        }
    }

    #[test]
    fn audit_log_bounds_retention_and_keeps_exact_totals() {
        let mut log = DecisionAuditLog::new(3);
        assert!(log.is_empty());
        for _ in 0..5 {
            log.push(record(Safety::Safe, Safety::Safe));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.capacity(), 3);
        assert_eq!(log.total(), 5);
        assert_eq!(log.dropped(), 2);
        // Sequence numbers are monotonic and survive eviction: the
        // retained tail is 3, 4, 5.
        let seqs: Vec<u64> = log.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5]);
        assert_eq!(log.latest().unwrap().seq, 5);
        assert_eq!(log.export().len(), 3);
    }

    #[test]
    fn audit_log_counts_downgrades_across_evictions() {
        let mut log = DecisionAuditLog::new(2);
        log.push(record(Safety::Safe, Safety::NotSafe));
        log.push(record(Safety::Safe, Safety::Safe));
        log.push(record(Safety::NotSafe, Safety::NotSafe));
        // The downgraded record was evicted, but the counter remembers.
        assert!(log.records().all(|r| !r.downgraded()));
        assert_eq!(log.downgrades(), 1);
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn audited_sensing_records_the_decision_trail() {
        let m = model();
        // A tight α forces the CI to iterate, so the trajectory gets
        // samples (the default α can converge right at the minimum-reading
        // gate, before any span is recorded).
        let config = PhoneConfig { alpha_db: 0.15, max_captures: 400, ..PhoneConfig::default() };
        let mut phone = PhoneScanner::new(config, SensorModel::rtl_sdr(), 1);
        let mut log = DecisionAuditLog::new(16);
        let loud = Point::new(25_000.0, 10_000.0);
        let run = phone.sense_channel_audited(&m, loud, Some(-70.0), 30, 7, None, &mut log);
        assert!(run.safety.is_not_safe());

        let rec = log.latest().expect("the run was logged");
        assert_eq!((rec.seq, rec.channel, rec.model_epoch), (1, 30, 7));
        assert_eq!(rec.locality, m.locality_for(loud), "routing locality recorded");
        assert_eq!(rec.readings_used, run.captures);
        assert_eq!(rec.decided, run.safety);
        assert!(!rec.downgraded(), "no guard, no downgrade");
        assert_eq!(rec.converged, run.converged);
        assert!(rec.ci_trajectory_db.len() <= CI_TRAJECTORY_CAP, "trajectory stays bounded");
        assert!(!rec.ci_trajectory_db.is_empty(), "a multi-reading convergence leaves a CI trail");
    }

    #[test]
    fn audited_sensing_applies_and_records_the_stale_gate() {
        let m = model();
        let mut phone = PhoneScanner::new(PhoneConfig::default(), SensorModel::rtl_sdr(), 5);
        let mut log = DecisionAuditLog::new(16);
        let quiet = Point::new(5_000.0, 10_000.0);

        let mut guard = StaleModelGuard::new(m.clone(), Duration::from_secs(3600));
        let fresh =
            phone.sense_channel_audited(&m, quiet, Some(-92.0), 30, 1, Some(&guard), &mut log);
        assert_eq!(fresh.safety, Safety::Safe, "fresh guard passes the decision through");
        assert!(!log.latest().unwrap().downgraded());

        guard.backdate(Duration::from_secs(7200));
        let stale =
            phone.sense_channel_audited(&m, quiet, Some(-92.0), 30, 1, Some(&guard), &mut log);
        assert_eq!(stale.safety, Safety::NotSafe, "the returned run carries the gated answer");
        let rec = log.latest().unwrap();
        assert_eq!(rec.decided, Safety::Safe);
        assert_eq!(rec.gated, Safety::NotSafe);
        assert!(rec.downgraded());
        assert_eq!(log.downgrades(), 1);
    }

    #[test]
    fn locality_routing_matches_prediction_routing() {
        let m = model();
        // locality_for must agree with the centroid nearest to the point
        // in km space — the same routing predict_row uses.
        for &(x, y) in &[(1_000.0, 1_000.0), (15_000.0, 10_000.0), (29_000.0, 19_000.0)] {
            let p = Point::new(x, y);
            let locality = m.locality_for(p);
            assert!(locality < m.locality_count());
            let km = [x / 1000.0, y / 1000.0];
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (i, c) in m.centroids().iter().enumerate() {
                let d = (c[0] - km[0]).powi(2) + (c[1] - km[1]).powi(2);
                if d < best_d {
                    best_d = d;
                    best = i;
                }
            }
            assert_eq!(locality, best);
        }
    }

    #[test]
    fn scan_budget_check_matches_report() {
        let fast = ScanReport {
            runs: vec![],
            busy_time_s: 1.5,
            cpu_time_s: 0.01,
            peak_cpu_fraction: 0.1,
            duty_cycle_cpu_fraction: 0.001,
        };
        assert!(fast.meets_802_22());
        let slow = ScanReport { busy_time_s: 5.89, ..fast.clone() };
        assert!(!slow.meets_802_22());
    }

    #[test]
    fn scan_reports_cpu_fractions() {
        let mut phone = PhoneScanner::new(PhoneConfig::default(), SensorModel::rtl_sdr(), 4);
        let m = model();
        let channels: Vec<(Point, Option<f64>)> =
            (0..5).map(|i| (Point::new(25_000.0, 10_000.0), Some(-70.0 - i as f64))).collect();
        let report = phone.scan(&m, &channels);
        assert_eq!(report.runs.len(), 5);
        assert!(report.peak_cpu_fraction > 0.0 && report.peak_cpu_fraction <= 1.0);
        assert!(report.duty_cycle_cpu_fraction <= report.peak_cpu_fraction);
        assert!(report.cpu_time_s < report.busy_time_s, "compute must be cheaper than radio");
    }
}
