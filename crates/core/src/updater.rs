//! The Model Updater (§3.4): bootstrapping and continuously improving the
//! central model as devices upload the readings behind their local
//! decisions.

use waldo_data::{ChannelDataset, Labeler, Measurement};
use waldo_ml::stats::std_dev;

use crate::{ModelConstructor, TrainError, WaldoModel};

/// The Global Model Updater: a growing pool of location-tagged readings
/// that is re-labeled (Algorithm 1 runs centrally on the *pooled* data) and
/// re-trained on demand.
///
/// Uploads are filtered by a noise criterion α′: a batch whose RSS spread
/// exceeds it is rejected, mirroring the paper's "readings that exhibit
/// noise level that meet some criteria α′".
///
/// # Examples
///
/// ```no_run
/// # let (ds, constructor): (waldo_data::ChannelDataset, waldo::ModelConstructor) = todo!();
/// use waldo::ModelUpdater;
///
/// let mut updater = ModelUpdater::new(constructor, waldo_data::Labeler::new());
/// updater.ingest(ds.measurements()).unwrap();
/// let model = updater.retrain().unwrap();
/// # let _ = model;
/// ```
#[derive(Debug, Clone)]
pub struct ModelUpdater {
    constructor: ModelConstructor,
    labeler: Labeler,
    pool: Vec<Measurement>,
    noise_criterion_db: f64,
    rejected_batches: usize,
}

impl ModelUpdater {
    /// Creates an updater with an α′ of 3 dB.
    pub fn new(constructor: ModelConstructor, labeler: Labeler) -> Self {
        Self {
            constructor,
            labeler,
            pool: Vec::new(),
            noise_criterion_db: 3.0,
            rejected_batches: 0,
        }
    }

    /// Overrides the α′ upload noise criterion (dB of RSS spread a batch
    /// may exhibit).
    ///
    /// # Panics
    ///
    /// Panics unless positive.
    pub fn noise_criterion_db(mut self, db: f64) -> Self {
        assert!(db > 0.0, "criterion must be positive");
        self.noise_criterion_db = db;
        self
    }

    /// Readings currently pooled.
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// The pooled readings (the consensus base for upload vetting).
    pub fn pool(&self) -> &[Measurement] {
        &self.pool
    }

    /// Batches rejected by the noise criterion so far.
    pub fn rejected_batches(&self) -> usize {
        self.rejected_batches
    }

    /// Ingests a batch of trusted measurements (war-driving bootstrap) —
    /// never filtered.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Empty`] for an empty batch.
    pub fn ingest(&mut self, batch: &[Measurement]) -> Result<(), TrainError> {
        if batch.is_empty() {
            return Err(TrainError::Empty);
        }
        self.pool.extend_from_slice(batch);
        Ok(())
    }

    /// Ingests a device upload: accepted only when the batch RSS spread is
    /// within α′ (a device that could not converge should not teach the
    /// model). Returns whether the batch was accepted.
    pub fn ingest_device_upload(&mut self, batch: &[Measurement]) -> bool {
        if batch.is_empty() {
            return false;
        }
        let rss: Vec<f64> = batch.iter().map(|m| m.observation.rss_dbm).collect();
        if std_dev(&rss) > self.noise_criterion_db {
            self.rejected_batches += 1;
            return false;
        }
        self.pool.extend_from_slice(batch);
        true
    }

    /// Relabels the pooled readings (Algorithm 1 over the *whole* pool) and
    /// retrains the model.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] if the pool is empty or too small.
    pub fn retrain(&self) -> Result<WaldoModel, TrainError> {
        if self.pool.is_empty() {
            return Err(TrainError::Empty);
        }
        let readings: Vec<_> =
            self.pool.iter().map(|m| (m.location, m.observation.rss_dbm)).collect();
        let labels = self.labeler.label(&readings);
        // The dataset wrapper's channel/sensor fields are metadata only;
        // the updater pools readings from many devices, so it tags the set
        // with neutral values.
        let ds = ChannelDataset::new(
            waldo_rf::TvChannel::new(2).expect("2 is a valid channel tag"),
            waldo_sensors::SensorKind::RtlSdr,
            self.pool.clone(),
            labels,
        );
        self.constructor.fit(&ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClassifierKind, WaldoConfig};
    use waldo_geo::Point;
    use waldo_iq::FeatureVector;
    use waldo_sensors::Observation;

    fn measurement(x: f64, rss: f64) -> Measurement {
        Measurement {
            location: Point::new(x, 0.0),
            odometer_m: x,
            observation: Observation {
                rss_dbm: rss,
                features: FeatureVector {
                    rss_db: rss,
                    cft_db: rss - 11.3,
                    aft_db: rss - 12.5,
                    quadrature_imbalance_db: 0.0,
                    iq_kurtosis: 0.0,
                    edge_bin_db: -110.0,
                },
                raw_pilot_db: rss - 11.3,
            },
            true_rss_dbm: rss,
        }
    }

    fn updater() -> ModelUpdater {
        ModelUpdater::new(
            ModelConstructor::new(
                WaldoConfig::default().classifier(ClassifierKind::NaiveBayes).localities(1),
            ),
            Labeler::new(),
        )
    }

    fn bootstrap_batch() -> Vec<Measurement> {
        // West cold, east hot (the east end is > 6 km from the west end so
        // poisoning stays local).
        (0..200)
            .map(|i| {
                let x = i as f64 * 100.0;
                let rss = if x > 14_000.0 { -70.0 } else { -100.0 };
                measurement(x, rss + (i % 3) as f64 * 0.3)
            })
            .collect()
    }

    #[test]
    fn bootstrap_then_retrain() {
        let mut u = updater();
        u.ingest(&bootstrap_batch()).unwrap();
        assert_eq!(u.pool_len(), 200);
        let model = u.retrain().unwrap();
        use crate::Assessor;
        let hot = measurement(19_000.0, -70.0);
        assert!(model.assess(hot.location, &hot.observation).is_not_safe());
    }

    #[test]
    fn noise_criterion_rejects_spread_batches() {
        let mut u = updater();
        let noisy: Vec<Measurement> =
            (0..20).map(|i| measurement(i as f64, -90.0 + (i % 2) as f64 * 20.0)).collect();
        assert!(!u.ingest_device_upload(&noisy));
        assert_eq!(u.rejected_batches(), 1);
        assert_eq!(u.pool_len(), 0);

        let quiet: Vec<Measurement> =
            (0..20).map(|i| measurement(i as f64, -90.0 + (i % 2) as f64 * 0.5)).collect();
        assert!(u.ingest_device_upload(&quiet));
        assert_eq!(u.pool_len(), 20);
    }

    #[test]
    fn uploads_refine_labels_through_relabeling() {
        let mut u = updater();
        u.ingest(&bootstrap_batch()).unwrap();
        // A device discovers a hot spot in the formerly cold west: after
        // relabeling, the west end must flip to not-safe.
        let upload: Vec<Measurement> =
            (0..10).map(|i| measurement(1_000.0 + i as f64 * 10.0, -60.0)).collect();
        assert!(u.ingest_device_upload(&upload));
        let model = u.retrain().unwrap();
        use crate::Assessor;
        let west = measurement(1_000.0, -100.0);
        assert!(model.assess(west.location, &west.observation).is_not_safe());
    }

    #[test]
    fn empty_operations_error() {
        let mut u = updater();
        assert!(u.ingest(&[]).is_err());
        assert!(!u.ingest_device_upload(&[]));
        assert!(u.retrain().is_err());
    }
}
