//! Compact versioned binary wire format for [`WaldoModel`].
//!
//! The JSON descriptor ([`WaldoModel::to_descriptor`]) is the
//! human-auditable artifact whose size §5 reports; this module is the
//! *distribution* encoding the `waldo-serve` layer ships to devices. It is
//! byte-oriented, little-endian, and deliberately flat:
//!
//! ```text
//! prelude   := magic "WLDM" | version u8 | feature count u8 | feature tag u8…
//!              | k u32 | dim u8 | centroid f64 × (k·dim)
//! model     := prelude | locality count u32 | (payload len u32 | payload)…
//! payload   := cluster tag u8 | cluster body        (one per locality)
//! ```
//!
//! Floats travel as IEEE-754 bit patterns, so encode → decode is exact: the
//! decoded model is `==` the original (prediction caches are rebuilt by the
//! `from_parts` constructors, never shipped). Per-locality payloads are
//! self-contained by design — the epoch/delta protocol diffs and transfers
//! them individually, identified by their [`fnv1a64`] digest.

use waldo_iq::{FeatureKind, FeatureSet};
use waldo_ml::kmeans::Clustering;
use waldo_ml::logistic::LogisticModel;
use waldo_ml::nb::{ClassMoments, GaussianNb};
use waldo_ml::svm::{Kernel, SvmModel};
use waldo_ml::tree::{DecisionTree, FlatNode};
use waldo_ml::StandardScaler;

use crate::model::{ClusterModel, WaldoModel};

/// First bytes of every encoded prelude.
pub const MAGIC: [u8; 4] = *b"WLDM";

/// Current wire-format version. Decoders reject anything newer.
pub const VERSION: u8 = 1;

/// Typed decode failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the structure was complete.
    Truncated,
    /// The prelude does not start with [`MAGIC`].
    BadMagic,
    /// The encoder's version is newer than this decoder understands.
    UnsupportedVersion(u8),
    /// An enum tag byte was out of range.
    BadTag {
        /// Which enum the tag belongs to.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// Structurally invalid content (dimension mismatches, bad tree shape,
    /// payload/centroid count disagreement, …).
    Malformed(&'static str),
    /// Bytes remained after the structure was fully decoded.
    TrailingBytes,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "input truncated"),
            WireError::BadMagic => write!(f, "bad magic (not a Waldo model)"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadTag { what, tag } => write!(f, "bad {what} tag {tag}"),
            WireError::Malformed(why) => write!(f, "malformed payload: {why}"),
            WireError::TrailingBytes => write!(f, "trailing bytes after model"),
        }
    }
}

impl std::error::Error for WireError {}

/// FNV-1a 64-bit digest — the stable content identity used by the
/// epoch/delta protocol to decide whether a locality payload changed.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Primitive writers/readers (shared with waldo-serve's framing).

/// Appends a `u16`, little-endian.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32`, little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64`, little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bit pattern, little-endian.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Sequential little-endian reader over a byte slice. Every accessor
/// returns [`WireError::Truncated`] instead of panicking on short input.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, at: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    /// Takes the next `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().expect("len checked")))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("len checked")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("len checked")))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads `n` consecutive `f64`s.
    pub fn f64_vec(&mut self, n: usize) -> Result<Vec<f64>, WireError> {
        // Bound allocation by what the buffer can actually hold, so a
        // corrupt length prefix cannot trigger a huge reservation.
        if self.remaining() < n.saturating_mul(8) {
            return Err(WireError::Truncated);
        }
        (0..n).map(|_| self.f64()).collect()
    }

    /// Succeeds only if every byte has been consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

// ---------------------------------------------------------------------------
// Feature tags.

fn feature_tag(kind: FeatureKind) -> u8 {
    match kind {
        FeatureKind::Rss => 0,
        FeatureKind::Cft => 1,
        FeatureKind::Aft => 2,
        FeatureKind::QuadratureImbalance => 3,
        FeatureKind::IqKurtosis => 4,
        FeatureKind::EdgeBin => 5,
    }
}

fn feature_from_tag(tag: u8) -> Result<FeatureKind, WireError> {
    Ok(match tag {
        0 => FeatureKind::Rss,
        1 => FeatureKind::Cft,
        2 => FeatureKind::Aft,
        3 => FeatureKind::QuadratureImbalance,
        4 => FeatureKind::IqKurtosis,
        5 => FeatureKind::EdgeBin,
        other => return Err(WireError::BadTag { what: "feature", tag: other }),
    })
}

// ---------------------------------------------------------------------------
// Prelude: magic + version + features + centroids.

/// Encodes the model prelude: the routing information (feature set and
/// k-means centroids) every client needs regardless of which locality
/// payloads it downloads.
pub fn encode_prelude(features: &FeatureSet, centroids: &[Vec<f64>]) -> Vec<u8> {
    assert!(centroids.len() <= u32::MAX as usize, "locality count overflows u32");
    assert!(features.kinds().len() <= u8::MAX as usize, "feature count overflows u8");
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(features.kinds().len() as u8);
    for &kind in features.kinds() {
        out.push(feature_tag(kind));
    }
    put_u32(&mut out, centroids.len() as u32);
    let dim = centroids.first().map_or(0, Vec::len);
    assert!(dim <= u8::MAX as usize, "centroid dimension overflows u8");
    out.push(dim as u8);
    for c in centroids {
        assert_eq!(c.len(), dim, "centroid dimension mismatch");
        for &v in c {
            put_f64(&mut out, v);
        }
    }
    out
}

/// Decodes a prelude produced by [`encode_prelude`], leaving the reader
/// positioned after it.
pub fn decode_prelude(r: &mut Reader<'_>) -> Result<(FeatureSet, Vec<Vec<f64>>), WireError> {
    if r.bytes(4)? != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let n_features = r.u8()? as usize;
    let mut kinds = Vec::with_capacity(n_features);
    for _ in 0..n_features {
        kinds.push(feature_from_tag(r.u8()?)?);
    }
    let k = r.u32()? as usize;
    if k == 0 {
        return Err(WireError::Malformed("zero localities"));
    }
    let dim = r.u8()? as usize;
    if dim == 0 {
        return Err(WireError::Malformed("zero-dimensional centroids"));
    }
    let mut centroids = Vec::with_capacity(k.min(r.remaining() / (dim * 8)).max(1));
    for _ in 0..k {
        centroids.push(r.f64_vec(dim)?);
    }
    Ok((FeatureSet::custom(kinds), centroids))
}

// ---------------------------------------------------------------------------
// Per-locality cluster payloads.

const TAG_CONSTANT: u8 = 0;
const TAG_SVM: u8 = 1;
const TAG_NB: u8 = 2;
const TAG_TREE: u8 = 3;
const TAG_LOGISTIC: u8 = 4;

const KERNEL_LINEAR: u8 = 0;
const KERNEL_RBF: u8 = 1;

fn encode_scaler(out: &mut Vec<u8>, scaler: &StandardScaler) {
    assert!(scaler.dim() <= u16::MAX as usize, "scaler dimension overflows u16");
    put_u16(out, scaler.dim() as u16);
    for &m in scaler.means() {
        put_f64(out, m);
    }
    for &s in scaler.stds() {
        put_f64(out, s);
    }
}

fn decode_scaler(r: &mut Reader<'_>) -> Result<StandardScaler, WireError> {
    let dim = r.u16()? as usize;
    let means = r.f64_vec(dim)?;
    let stds = r.f64_vec(dim)?;
    Ok(StandardScaler::from_parts(means, stds))
}

fn encode_moments(out: &mut Vec<u8>, m: &ClassMoments) {
    put_u64(out, m.count() as u64);
    put_u16(out, m.means().len() as u16);
    for &v in m.means() {
        put_f64(out, v);
    }
    for &v in m.vars() {
        put_f64(out, v);
    }
}

fn decode_moments(r: &mut Reader<'_>) -> Result<ClassMoments, WireError> {
    let count = r.u64()? as usize;
    let dim = r.u16()? as usize;
    let means = r.f64_vec(dim)?;
    let vars = r.f64_vec(dim)?;
    Ok(ClassMoments::from_parts(count, means, vars))
}

/// The payload a client substitutes for a locality it has not downloaded
/// (out of its fetch scope): a constant **not-safe** classifier — the
/// conservative call for territory the device holds no model for.
pub fn conservative_payload() -> Vec<u8> {
    vec![TAG_CONSTANT, 1]
}

fn encode_cluster(cluster: &ClusterModel) -> Vec<u8> {
    let mut out = Vec::new();
    match cluster {
        ClusterModel::Constant(not_safe) => {
            out.push(TAG_CONSTANT);
            out.push(u8::from(*not_safe));
        }
        ClusterModel::Svm { scaler, model } => {
            out.push(TAG_SVM);
            encode_scaler(&mut out, scaler);
            match model.kernel() {
                Kernel::Linear => out.push(KERNEL_LINEAR),
                Kernel::Rbf { gamma } => {
                    out.push(KERNEL_RBF);
                    put_f64(&mut out, gamma);
                }
            }
            let support = model.support_vectors();
            let dim = support.first().map_or(0, Vec::len);
            put_u32(&mut out, support.len() as u32);
            put_u16(&mut out, dim as u16);
            put_f64(&mut out, model.bias());
            for &c in model.coefficients() {
                put_f64(&mut out, c);
            }
            for sv in support {
                for &v in sv {
                    put_f64(&mut out, v);
                }
            }
        }
        ClusterModel::Nb { scaler, model } => {
            out.push(TAG_NB);
            encode_scaler(&mut out, scaler);
            put_f64(&mut out, model.log_prior_pos());
            put_f64(&mut out, model.log_prior_neg());
            encode_moments(&mut out, model.positive());
            encode_moments(&mut out, model.negative());
        }
        ClusterModel::Tree { scaler, model } => {
            out.push(TAG_TREE);
            encode_scaler(&mut out, scaler);
            let flat = model.flatten();
            put_u32(&mut out, flat.len() as u32);
            for node in flat {
                match node {
                    FlatNode::Leaf { not_safe } => {
                        out.push(0);
                        out.push(u8::from(not_safe));
                    }
                    FlatNode::Split { feature, threshold } => {
                        out.push(1);
                        put_u32(&mut out, feature as u32);
                        put_f64(&mut out, threshold);
                    }
                }
            }
        }
        ClusterModel::Logistic { scaler, model } => {
            out.push(TAG_LOGISTIC);
            encode_scaler(&mut out, scaler);
            put_u16(&mut out, model.weights().len() as u16);
            for &w in model.weights() {
                put_f64(&mut out, w);
            }
            put_f64(&mut out, model.bias());
        }
    }
    out
}

fn decode_cluster(r: &mut Reader<'_>) -> Result<ClusterModel, WireError> {
    Ok(match r.u8()? {
        TAG_CONSTANT => ClusterModel::Constant(r.u8()? != 0),
        TAG_SVM => {
            let scaler = decode_scaler(r)?;
            let kernel = match r.u8()? {
                KERNEL_LINEAR => Kernel::Linear,
                KERNEL_RBF => Kernel::Rbf { gamma: r.f64()? },
                other => return Err(WireError::BadTag { what: "kernel", tag: other }),
            };
            let n_sv = r.u32()? as usize;
            let dim = r.u16()? as usize;
            let bias = r.f64()?;
            let coef = r.f64_vec(n_sv)?;
            let mut support = Vec::with_capacity(n_sv.min(r.remaining() / 8 + 1));
            for _ in 0..n_sv {
                support.push(r.f64_vec(dim)?);
            }
            ClusterModel::Svm { scaler, model: SvmModel::from_parts(kernel, support, coef, bias) }
        }
        TAG_NB => {
            let scaler = decode_scaler(r)?;
            let log_prior_pos = r.f64()?;
            let log_prior_neg = r.f64()?;
            let pos = decode_moments(r)?;
            let neg = decode_moments(r)?;
            if pos.means().len() != neg.means().len() {
                return Err(WireError::Malformed("NB class dimension mismatch"));
            }
            ClusterModel::Nb {
                scaler,
                model: GaussianNb::from_parts(log_prior_pos, log_prior_neg, pos, neg),
            }
        }
        TAG_TREE => {
            let scaler = decode_scaler(r)?;
            let n_nodes = r.u32()? as usize;
            let mut flat = Vec::with_capacity(n_nodes.min(r.remaining() / 2 + 1));
            for _ in 0..n_nodes {
                flat.push(match r.u8()? {
                    0 => FlatNode::Leaf { not_safe: r.u8()? != 0 },
                    1 => FlatNode::Split { feature: r.u32()? as usize, threshold: r.f64()? },
                    other => return Err(WireError::BadTag { what: "tree node", tag: other }),
                });
            }
            let model = DecisionTree::from_flat(&flat)
                .ok_or(WireError::Malformed("tree node list is not one complete tree"))?;
            ClusterModel::Tree { scaler, model }
        }
        TAG_LOGISTIC => {
            let scaler = decode_scaler(r)?;
            let dim = r.u16()? as usize;
            let weights = r.f64_vec(dim)?;
            let bias = r.f64()?;
            ClusterModel::Logistic { scaler, model: LogisticModel::from_parts(weights, bias) }
        }
        other => Err(WireError::BadTag { what: "cluster", tag: other })?,
    })
}

// ---------------------------------------------------------------------------
// Whole-model API.

impl WaldoModel {
    /// Encodes the full model in the binary wire format.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = encode_prelude(&self.features, self.clustering.centroids());
        put_u32(&mut out, self.clusters.len() as u32);
        for cluster in &self.clusters {
            let payload = encode_cluster(cluster);
            put_u32(&mut out, payload.len() as u32);
            out.extend_from_slice(&payload);
        }
        out
    }

    /// Decodes a model encoded by [`to_wire`](Self::to_wire).
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on any malformed, truncated, or
    /// version-incompatible input.
    pub fn from_wire(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let (features, centroids) = decode_prelude(&mut r)?;
        let n = r.u32()? as usize;
        if n != centroids.len() {
            return Err(WireError::Malformed("locality count != centroid count"));
        }
        let mut payloads = Vec::with_capacity(n);
        for _ in 0..n {
            let len = r.u32()? as usize;
            payloads.push(r.bytes(len)?.to_vec());
        }
        r.finish()?;
        Self::from_locality_parts(features, centroids, &payloads)
    }

    /// The per-locality payloads the delta protocol diffs and ships, in
    /// locality order. Each payload is a self-contained encoded classifier;
    /// its [`fnv1a64`] digest identifies its content across epochs.
    pub fn locality_payloads(&self) -> Vec<Vec<u8>> {
        self.clusters.iter().map(encode_cluster).collect()
    }

    /// Reassembles a model from a decoded prelude plus one payload per
    /// locality — the client-side final step of both full and delta
    /// fetches.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] if payload and centroid counts disagree or any
    /// payload is malformed.
    pub fn from_locality_parts(
        features: FeatureSet,
        centroids: Vec<Vec<f64>>,
        payloads: &[Vec<u8>],
    ) -> Result<Self, WireError> {
        if payloads.len() != centroids.len() {
            return Err(WireError::Malformed("payload count != centroid count"));
        }
        if centroids.is_empty() {
            return Err(WireError::Malformed("zero localities"));
        }
        let mut clusters = Vec::with_capacity(payloads.len());
        for payload in payloads {
            let mut r = Reader::new(payload);
            clusters.push(decode_cluster(&mut r)?);
            r.finish()?;
        }
        Ok(Self { features, clustering: Clustering::from_centroids(centroids), clusters })
    }
}

// ---------------------------------------------------------------------------
// Crowd-sourced reading batches (the upload direction of the wire).

/// First bytes of every encoded reading batch.
pub const BATCH_MAGIC: [u8; 4] = *b"WLDR";

/// Current reading-batch wire version. Decoders reject anything newer.
pub const BATCH_VERSION: u8 = 1;

/// Encoded size of one reading: location (2), RSS (1), features (6).
const READING_F64S: usize = 9;

/// A batch of location-tagged readings one device uploads in one request.
///
/// The `batch_id` is minted by the *client* (not the server) so a retry
/// after a short write re-sends the identical identity and the ingest WAL
/// can deduplicate it — the idempotency contract of the upload path.
///
/// ```text
/// batch   := magic "WLDR" | version u8 | batch_id u64 | channel u8
///          | reading count u32 | reading…
/// reading := x_m f64 | y_m f64 | rss_dbm f64 | feature f64 × 6
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReadingBatch {
    /// Client-minted identity; retries reuse it (idempotent ingestion).
    pub batch_id: u64,
    /// TV channel the readings observe.
    pub channel: u8,
    /// The readings, in capture order.
    pub readings: Vec<waldo_sensors::ReadingSample>,
}

impl ReadingBatch {
    /// Encodes the batch in the binary wire format.
    pub fn encode(&self) -> Vec<u8> {
        assert!(self.readings.len() <= u32::MAX as usize, "reading count overflows u32");
        let mut out = Vec::with_capacity(18 + self.readings.len() * READING_F64S * 8);
        out.extend_from_slice(&BATCH_MAGIC);
        out.push(BATCH_VERSION);
        put_u64(&mut out, self.batch_id);
        out.push(self.channel);
        put_u32(&mut out, self.readings.len() as u32);
        for r in &self.readings {
            put_f64(&mut out, r.location.x);
            put_f64(&mut out, r.location.y);
            put_f64(&mut out, r.rss_dbm);
            for v in [
                r.features.rss_db,
                r.features.cft_db,
                r.features.aft_db,
                r.features.quadrature_imbalance_db,
                r.features.iq_kurtosis,
                r.features.edge_bin_db,
            ] {
                put_f64(&mut out, v);
            }
        }
        out
    }

    /// FNV-1a-64 digest of the encoded batch — the content identity the
    /// ingest store uses for checksums and segment manifests.
    pub fn digest(&self) -> u64 {
        fnv1a64(&self.encode())
    }

    /// Decodes a batch from the front of `r`, leaving the reader
    /// positioned after it (the serve protocol embeds batches inside
    /// request frames).
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncated, version-skewed, or otherwise
    /// malformed input. Allocation is bounded by the reader's remaining
    /// bytes, so a corrupt count cannot trigger a huge reservation.
    pub fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        if r.bytes(4)? != BATCH_MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = r.u8()?;
        if version != BATCH_VERSION {
            return Err(WireError::UnsupportedVersion(version));
        }
        let batch_id = r.u64()?;
        let channel = r.u8()?;
        let n = r.u32()? as usize;
        if r.remaining() < n.saturating_mul(READING_F64S * 8) {
            return Err(WireError::Truncated);
        }
        let mut readings = Vec::with_capacity(n);
        for _ in 0..n {
            let x = r.f64()?;
            let y = r.f64()?;
            let rss_dbm = r.f64()?;
            let features = waldo_iq::FeatureVector {
                rss_db: r.f64()?,
                cft_db: r.f64()?,
                aft_db: r.f64()?,
                quadrature_imbalance_db: r.f64()?,
                iq_kurtosis: r.f64()?,
                edge_bin_db: r.f64()?,
            };
            readings.push(waldo_sensors::ReadingSample {
                location: waldo_geo::Point::new(x, y),
                rss_dbm,
                features,
            });
        }
        Ok(Self { batch_id, channel, readings })
    }

    /// Decodes a standalone encoded batch, requiring every byte consumed.
    ///
    /// # Errors
    ///
    /// Same as [`decode_from`](Self::decode_from), plus
    /// [`WireError::TrailingBytes`] for a batch with a suffix.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let batch = Self::decode_from(&mut r)?;
        r.finish()?;
        Ok(batch)
    }
}

// ---------------------------------------------------------------------------
// Replication channel state (the follower-sync direction of the wire).

/// First bytes of every encoded replication channel state.
pub const REPL_MAGIC: [u8; 4] = *b"WRPL";

/// Current replication wire version. Decoders reject anything newer and
/// accept anything older: v1 predates `trace_id`, which decodes as 0.
pub const REPL_VERSION: u8 = 2;

/// One locality slot as replicated between servers: the change-epoch and
/// digest always travel so a follower can mirror the leader's delta
/// bookkeeping verbatim; the payload travels only when it changed since
/// the follower's `have_epoch` (`None` = keep your copy).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplSlot {
    /// Epoch at which this payload last changed on the leader.
    pub epoch: u64,
    /// FNV-1a-64 digest of the payload (travels even when the payload
    /// does not, so an "unchanged" claim is verifiable).
    pub digest: u64,
    /// Centroid `[x_km, y_km]` used for locality scoping.
    pub centroid: [f64; 2],
    /// The encoded classifier, included iff it changed since the
    /// requester's `have_epoch`.
    pub payload: Option<Vec<u8>>,
}

const REPL_SLOT_SENT: u8 = 0;
const REPL_SLOT_UNCHANGED: u8 = 1;

/// A channel's full replication state as one leader publishes it to a
/// follower: epoch, prelude, and every locality slot (delta-encoded
/// against the follower's `have_epoch`). Unlike a device fetch response,
/// this carries per-slot change-epochs and centroids, so a follower
/// installing it serves byte-identical delta fetches to the leader —
/// which is what makes client failover between replicas seamless.
///
/// ```text
/// state := magic "WRPL" | version u8 | channel u8 | epoch u64
///        | trace_id u64 (v2+)
///        | prelude len u32 | prelude | slot count u32 | slot…
/// slot  := epoch u64 | digest u64 | cx f64 | cy f64
///        | 0 u8 | payload len u32 | payload      (sent)
///        | 1 u8                                  (unchanged since have_epoch)
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReplChannelState {
    /// TV channel this state belongs to.
    pub channel: u8,
    /// The leader's current epoch for the channel.
    pub epoch: u64,
    /// Trace ID of the request chain whose publish produced `epoch` (the
    /// uploader's request ID carried through the refit, or a minted one
    /// for internally-originated publishes). 0 = unknown — a v1 peer or a
    /// publish that predates trace propagation. Followers mirror it
    /// verbatim, so spans on every replica join the originating trace.
    pub trace_id: u64,
    /// Encoded prelude (features + centroids), always included.
    pub prelude: Vec<u8>,
    /// Per-locality slots, in locality order.
    pub slots: Vec<ReplSlot>,
}

impl ReplChannelState {
    /// Encodes the state in the binary wire format.
    pub fn encode(&self) -> Vec<u8> {
        assert!(self.slots.len() <= u32::MAX as usize, "slot count overflows u32");
        assert!(self.prelude.len() <= u32::MAX as usize, "prelude overflows u32");
        let mut out = Vec::with_capacity(22 + self.prelude.len() + self.slots.len() * 64);
        out.extend_from_slice(&REPL_MAGIC);
        out.push(REPL_VERSION);
        out.push(self.channel);
        put_u64(&mut out, self.epoch);
        put_u64(&mut out, self.trace_id);
        put_u32(&mut out, self.prelude.len() as u32);
        out.extend_from_slice(&self.prelude);
        put_u32(&mut out, self.slots.len() as u32);
        for slot in &self.slots {
            put_u64(&mut out, slot.epoch);
            put_u64(&mut out, slot.digest);
            put_f64(&mut out, slot.centroid[0]);
            put_f64(&mut out, slot.centroid[1]);
            match &slot.payload {
                Some(payload) => {
                    out.push(REPL_SLOT_SENT);
                    put_u32(&mut out, payload.len() as u32);
                    out.extend_from_slice(payload);
                }
                None => out.push(REPL_SLOT_UNCHANGED),
            }
        }
        out
    }

    /// Decodes a state from the front of `r`, leaving the reader
    /// positioned after it (the serve protocol embeds it in a response
    /// frame after the status byte).
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncated, version-skewed, or otherwise
    /// malformed input. Allocation is bounded by the reader's remaining
    /// bytes, so a corrupt count cannot trigger a huge reservation.
    pub fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        if r.bytes(4)? != REPL_MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = r.u8()?;
        if version > REPL_VERSION {
            return Err(WireError::UnsupportedVersion(version));
        }
        let channel = r.u8()?;
        let epoch = r.u64()?;
        let trace_id = if version >= 2 { r.u64()? } else { 0 };
        let prelude_len = r.u32()? as usize;
        let prelude = r.bytes(prelude_len)?.to_vec();
        let n = r.u32()? as usize;
        // Each slot is at least 33 bytes; bound the reservation by that.
        if r.remaining() < n.saturating_mul(33) {
            return Err(WireError::Truncated);
        }
        let mut slots = Vec::with_capacity(n);
        for _ in 0..n {
            let slot_epoch = r.u64()?;
            let digest = r.u64()?;
            let centroid = [r.f64()?, r.f64()?];
            let payload = match r.u8()? {
                REPL_SLOT_SENT => {
                    let len = r.u32()? as usize;
                    Some(r.bytes(len)?.to_vec())
                }
                REPL_SLOT_UNCHANGED => None,
                tag => return Err(WireError::BadTag { what: "replication slot", tag }),
            };
            if slot_epoch > epoch {
                return Err(WireError::Malformed("slot epoch beyond channel epoch"));
            }
            slots.push(ReplSlot { epoch: slot_epoch, digest, centroid, payload });
        }
        Ok(Self { channel, epoch, trace_id, prelude, slots })
    }

    /// Decodes a standalone encoded state, requiring every byte consumed.
    ///
    /// # Errors
    ///
    /// Same as [`decode_from`](Self::decode_from), plus
    /// [`WireError::TrailingBytes`] for a suffix.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let state = Self::decode_from(&mut r)?;
        r.finish()?;
        Ok(state)
    }

    /// Checks every included payload against its advertised digest —
    /// the install-time guard a follower runs before trusting replicated
    /// bytes.
    pub fn digests_match(&self) -> bool {
        self.slots.iter().all(|s| match &s.payload {
            Some(p) => fnv1a64(p) == s.digest,
            None => true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClassifierKind, ModelConstructor, WaldoConfig};
    use waldo_data::{ChannelDataset, Measurement, Safety};
    use waldo_geo::Point;
    use waldo_iq::FeatureVector;
    use waldo_rf::TvChannel;
    use waldo_sensors::{Observation, SensorKind};

    fn dataset(n: usize) -> ChannelDataset {
        let mut measurements = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let x = (i as f64 / n as f64) * 30_000.0;
            let y = ((i * 7) % 20) as f64 * 1_000.0;
            let not_safe = x > 15_000.0;
            let rss = if not_safe { -70.0 } else { -95.0 } + ((i % 5) as f64 - 2.0);
            measurements.push(Measurement {
                location: Point::new(x, y),
                odometer_m: i as f64 * 100.0,
                observation: Observation {
                    rss_dbm: rss,
                    features: FeatureVector {
                        rss_db: rss,
                        cft_db: rss - 11.3,
                        aft_db: rss - 12.5,
                        quadrature_imbalance_db: 0.0,
                        iq_kurtosis: 0.0,
                        edge_bin_db: -110.0,
                    },
                    raw_pilot_db: rss - 11.3,
                },
                true_rss_dbm: rss,
            });
            labels.push(Safety::from_not_safe(not_safe));
        }
        ChannelDataset::new(TvChannel::new(30).unwrap(), SensorKind::RtlSdr, measurements, labels)
    }

    fn model(kind: ClassifierKind, localities: usize) -> WaldoModel {
        ModelConstructor::new(WaldoConfig::default().classifier(kind).localities(localities))
            .fit(&dataset(400))
            .unwrap()
    }

    #[test]
    fn roundtrip_all_classifier_kinds() {
        for kind in [
            ClassifierKind::Svm,
            ClassifierKind::NaiveBayes,
            ClassifierKind::DecisionTree,
            ClassifierKind::Logistic,
        ] {
            let m = model(kind, 3);
            let bytes = m.to_wire();
            let back = WaldoModel::from_wire(&bytes).unwrap();
            assert_eq!(m, back, "{kind} round-trip");
            // Bit-exact decisions, not just descriptor equality.
            let row = [20.0, 5.0, -70.0, -81.3];
            assert_eq!(m.predict_row(&row), back.predict_row(&row));
        }
    }

    #[test]
    fn wire_is_smaller_than_json_descriptor() {
        let m = model(ClassifierKind::Svm, 3);
        assert!(
            m.to_wire().len() < m.descriptor_bytes() / 2,
            "wire {} vs json {}",
            m.to_wire().len(),
            m.descriptor_bytes()
        );
    }

    #[test]
    fn decode_rejects_corruption() {
        let m = model(ClassifierKind::NaiveBayes, 2);
        let bytes = m.to_wire();

        assert_eq!(WaldoModel::from_wire(&[]), Err(WireError::Truncated));
        assert_eq!(WaldoModel::from_wire(b"nop"), Err(WireError::Truncated));
        assert_eq!(WaldoModel::from_wire(b"XXXX\x01\x00"), Err(WireError::BadMagic));

        let mut wrong_version = bytes.clone();
        wrong_version[4] = VERSION + 1;
        assert_eq!(
            WaldoModel::from_wire(&wrong_version),
            Err(WireError::UnsupportedVersion(VERSION + 1))
        );

        let mut truncated = bytes.clone();
        truncated.truncate(bytes.len() - 3);
        assert!(WaldoModel::from_wire(&truncated).is_err());

        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(WaldoModel::from_wire(&trailing), Err(WireError::TrailingBytes));

        let mut bad_feature = bytes;
        bad_feature[6] = 99; // first feature tag
        assert_eq!(
            WaldoModel::from_wire(&bad_feature),
            Err(WireError::BadTag { what: "feature", tag: 99 })
        );
    }

    #[test]
    fn locality_payloads_reassemble() {
        let m = model(ClassifierKind::Svm, 4);
        let payloads = m.locality_payloads();
        assert_eq!(payloads.len(), 4);
        let back = WaldoModel::from_locality_parts(
            m.features().clone(),
            m.clustering.centroids().to_vec(),
            &payloads,
        )
        .unwrap();
        assert_eq!(m, back);

        // Count mismatch is rejected.
        assert_eq!(
            WaldoModel::from_locality_parts(
                m.features().clone(),
                m.clustering.centroids().to_vec(),
                &payloads[..3],
            ),
            Err(WireError::Malformed("payload count != centroid count"))
        );
    }

    #[test]
    fn conservative_payload_decodes_to_not_safe() {
        let m = model(ClassifierKind::Svm, 3);
        let mut payloads = m.locality_payloads();
        payloads[0] = conservative_payload();
        let back = WaldoModel::from_locality_parts(
            m.features().clone(),
            m.centroids().to_vec(),
            &payloads,
        )
        .unwrap();
        // Any reading routed to the replaced locality is called not-safe.
        let centroid = &m.centroids()[0];
        let row = [centroid[0], centroid[1], -95.0, -106.3];
        assert!(back.predict_row(&row).is_not_safe());
    }

    fn sample_batch(batch_id: u64, n: usize) -> ReadingBatch {
        let readings = (0..n)
            .map(|i| waldo_sensors::ReadingSample {
                location: Point::new(i as f64 * 100.0, i as f64 * -50.0),
                rss_dbm: -90.0 + i as f64,
                features: FeatureVector {
                    rss_db: -90.0 + i as f64,
                    cft_db: -101.3 + i as f64,
                    aft_db: -102.5,
                    quadrature_imbalance_db: 0.25,
                    iq_kurtosis: -0.1,
                    edge_bin_db: -110.0,
                },
            })
            .collect();
        ReadingBatch { batch_id, channel: 30, readings }
    }

    #[test]
    fn reading_batch_roundtrip() {
        for n in [0usize, 1, 7, 120] {
            let batch = sample_batch(0xfeed_0000 + n as u64, n);
            let bytes = batch.encode();
            assert_eq!(ReadingBatch::decode(&bytes), Ok(batch.clone()));
            // Re-encoding is byte-stable, so the digest is a content identity.
            assert_eq!(ReadingBatch::decode(&bytes).unwrap().encode(), bytes);
            assert_eq!(batch.digest(), fnv1a64(&bytes));
        }
    }

    #[test]
    fn reading_batch_decode_rejects_corruption() {
        let bytes = sample_batch(7, 3).encode();
        assert_eq!(ReadingBatch::decode(&[]), Err(WireError::Truncated));
        assert_eq!(ReadingBatch::decode(b"XXXX\x01"), Err(WireError::BadMagic));

        let mut wrong_version = bytes.clone();
        wrong_version[4] = BATCH_VERSION + 1;
        assert_eq!(
            ReadingBatch::decode(&wrong_version),
            Err(WireError::UnsupportedVersion(BATCH_VERSION + 1))
        );

        // Any truncation point fails with a typed error, never a panic.
        for cut in 0..bytes.len() {
            assert!(ReadingBatch::decode(&bytes[..cut]).is_err(), "prefix {cut} decoded");
        }

        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(ReadingBatch::decode(&trailing), Err(WireError::TrailingBytes));

        // A corrupt count cannot over-allocate: it is bounded by the
        // remaining bytes and rejected as truncated.
        let mut huge_count = bytes;
        huge_count[14..18].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(ReadingBatch::decode(&huge_count), Err(WireError::Truncated));
    }

    #[test]
    fn reading_batch_embeds_in_a_larger_frame() {
        let batch = sample_batch(21, 4);
        let mut framed = batch.encode();
        framed.extend_from_slice(b"suffix");
        let mut r = Reader::new(&framed);
        assert_eq!(ReadingBatch::decode_from(&mut r).unwrap(), batch);
        assert_eq!(r.bytes(6).unwrap(), b"suffix");
    }

    fn sample_repl_state(have_epoch: u64) -> ReplChannelState {
        let m = model(ClassifierKind::NaiveBayes, 3);
        let payloads = m.locality_payloads();
        let slots = payloads
            .into_iter()
            .enumerate()
            .map(|(i, payload)| {
                let epoch = (i as u64 % 2) + 1; // slots changed at epochs 1 and 2
                ReplSlot {
                    epoch,
                    digest: fnv1a64(&payload),
                    centroid: [m.centroids()[i][0], m.centroids()[i][1]],
                    payload: (epoch > have_epoch).then_some(payload),
                }
            })
            .collect();
        ReplChannelState {
            channel: 30,
            epoch: 2,
            trace_id: 77,
            prelude: encode_prelude(m.features(), m.centroids()),
            slots,
        }
    }

    #[test]
    fn repl_state_roundtrip_is_identity_and_byte_stable() {
        for have_epoch in [0u64, 1, 2] {
            let state = sample_repl_state(have_epoch);
            let bytes = state.encode();
            let back = ReplChannelState::decode(&bytes).unwrap();
            assert_eq!(back, state);
            assert_eq!(back.encode(), bytes);
            assert!(back.digests_match());
        }
    }

    #[test]
    fn repl_state_decode_rejects_corruption() {
        let bytes = sample_repl_state(0).encode();
        assert_eq!(ReplChannelState::decode(&[]), Err(WireError::Truncated));
        assert_eq!(ReplChannelState::decode(b"XXXX\x01\x1e"), Err(WireError::BadMagic));

        let mut wrong_version = bytes.clone();
        wrong_version[4] = REPL_VERSION + 1;
        assert_eq!(
            ReplChannelState::decode(&wrong_version),
            Err(WireError::UnsupportedVersion(REPL_VERSION + 1))
        );

        for cut in 0..bytes.len() {
            assert!(ReplChannelState::decode(&bytes[..cut]).is_err(), "prefix {cut} decoded");
        }

        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(ReplChannelState::decode(&trailing), Err(WireError::TrailingBytes));

        // A corrupt slot count is bounded by the remaining bytes.
        let state = sample_repl_state(0);
        let count_at = 4 + 1 + 1 + 8 + 8 + 4 + state.prelude.len();
        let mut huge_count = bytes.clone();
        huge_count[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(ReplChannelState::decode(&huge_count), Err(WireError::Truncated));

        // A flipped payload byte is caught by the digest guard.
        let mut flipped = bytes;
        let last = flipped.len() - 1;
        flipped[last] ^= 0x10;
        if let Ok(decoded) = ReplChannelState::decode(&flipped) {
            assert!(!decoded.digests_match());
        }
    }

    #[test]
    fn repl_state_v1_decodes_with_zero_trace_id() {
        // A v1 peer's encoding: same layout minus the trace_id u64 that
        // v2 inserted after the channel epoch.
        let state = sample_repl_state(0);
        let v2 = state.encode();
        let mut v1 = Vec::with_capacity(v2.len() - 8);
        v1.extend_from_slice(&v2[..4 + 1 + 1 + 8]); // magic | version | channel | epoch
        v1.extend_from_slice(&v2[4 + 1 + 1 + 8 + 8..]); // skip trace_id
        v1[4] = 1;
        let back = ReplChannelState::decode(&v1).unwrap();
        assert_eq!(back.trace_id, 0, "v1 has no trace id");
        assert_eq!(back, ReplChannelState { trace_id: 0, ..state });
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        // Reference FNV-1a vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        let m = model(ClassifierKind::NaiveBayes, 3);
        let payloads = m.locality_payloads();
        let digests: Vec<u64> = payloads.iter().map(|p| fnv1a64(p)).collect();
        // Same content, same digest.
        assert_eq!(digests, m.locality_payloads().iter().map(|p| fnv1a64(p)).collect::<Vec<_>>());
        // Different localities have different content here.
        assert!(digests.windows(2).any(|w| w[0] != w[1]));
    }
}
