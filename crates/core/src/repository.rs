//! The central spectrum repository (§3.1's server side).
//!
//! Waldo's database differs from a conventional spectrum database in what
//! it serves: instead of answering one location query at a time, it hands
//! out a *model descriptor* covering a whole area, and it accepts
//! measurement uploads that keep the models fresh. This module is that
//! server: per-channel model slots, a download API keyed by location, an
//! upload path guarded by the trust checker of [`crate::trust`], and
//! version numbers so devices know when to refresh.

use std::collections::BTreeMap;

use waldo_data::{Labeler, Measurement};
use waldo_geo::{Point, Region};
use waldo_rf::TvChannel;

use crate::trust::TrustPolicy;
use crate::{ModelConstructor, ModelUpdater, TrainError, WaldoModel};

/// A versioned model for one channel over one service area.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSlot {
    model: WaldoModel,
    version: u64,
}

impl ModelSlot {
    /// The current model.
    pub fn model(&self) -> &WaldoModel {
        &self.model
    }

    /// Monotonic version, bumped on every retrain.
    pub fn version(&self) -> u64 {
        self.version
    }
}

/// Errors from repository operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepositoryError {
    /// The requested location falls outside the service area.
    OutOfArea,
    /// No model has been published for the channel yet.
    NoModel,
    /// The upload failed the trust policy.
    UntrustedUpload,
    /// Retraining failed (propagated from the constructor).
    Train(TrainError),
}

impl std::fmt::Display for RepositoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepositoryError::OutOfArea => write!(f, "location is outside the service area"),
            RepositoryError::NoModel => write!(f, "no model published for this channel"),
            RepositoryError::UntrustedUpload => {
                write!(f, "upload rejected by the trust policy")
            }
            RepositoryError::Train(e) => write!(f, "retraining failed: {e}"),
        }
    }
}

impl std::error::Error for RepositoryError {}

/// The central Waldo spectrum repository for one service area.
///
/// # Examples
///
/// ```no_run
/// # let (region, ds): (waldo_geo::Region, waldo_data::ChannelDataset) = todo!();
/// use waldo::repository::SpectrumRepository;
/// use waldo::{ModelConstructor, WaldoConfig};
///
/// let mut repo = SpectrumRepository::new(region, ModelConstructor::new(WaldoConfig::default()));
/// repo.bootstrap(ds.channel(), ds.measurements()).unwrap();
/// let download = repo.download(ds.channel(), ds.measurements()[0].location).unwrap();
/// println!("got model version {}", download.version);
/// ```
#[derive(Debug)]
pub struct SpectrumRepository {
    area: Region,
    constructor: ModelConstructor,
    labeler: Labeler,
    trust: TrustPolicy,
    updaters: BTreeMap<TvChannel, ModelUpdater>,
    slots: BTreeMap<TvChannel, ModelSlot>,
    rejected_uploads: usize,
}

/// A model download: the serialized descriptor plus its version.
#[derive(Debug, Clone, PartialEq)]
pub struct Download {
    /// Serialized [`WaldoModel`] descriptor (what goes over the air).
    pub descriptor: Vec<u8>,
    /// Version to compare against a cached copy.
    pub version: u64,
}

impl SpectrumRepository {
    /// Creates a repository serving `area` with the given model
    /// constructor, the standard Algorithm-1 labeler, and the default
    /// trust policy.
    pub fn new(area: Region, constructor: ModelConstructor) -> Self {
        Self {
            area,
            constructor,
            labeler: Labeler::new(),
            trust: TrustPolicy::default(),
            updaters: BTreeMap::new(),
            slots: BTreeMap::new(),
            rejected_uploads: 0,
        }
    }

    /// Overrides the labeler (antenna correction, protection radius).
    pub fn with_labeler(mut self, labeler: Labeler) -> Self {
        self.labeler = labeler;
        self
    }

    /// Overrides the trust policy for uploads.
    pub fn with_trust_policy(mut self, trust: TrustPolicy) -> Self {
        self.trust = trust;
        self
    }

    /// The service area.
    pub fn area(&self) -> Region {
        self.area
    }

    /// Channels with a published model.
    pub fn published_channels(&self) -> Vec<TvChannel> {
        self.slots.keys().copied().collect()
    }

    /// Uploads rejected by the trust policy so far.
    pub fn rejected_uploads(&self) -> usize {
        self.rejected_uploads
    }

    /// Bootstraps a channel from trusted war-driving measurements and
    /// publishes its first model (§3.4: "initially rely on trusted
    /// entities that perform war driving").
    ///
    /// # Errors
    ///
    /// Returns [`RepositoryError::Train`] if the data cannot train a model.
    pub fn bootstrap(
        &mut self,
        channel: TvChannel,
        measurements: &[Measurement],
    ) -> Result<u64, RepositoryError> {
        let updater = self
            .updaters
            .entry(channel)
            .or_insert_with(|| ModelUpdater::new(self.constructor.clone(), self.labeler));
        updater.ingest(measurements).map_err(RepositoryError::Train)?;
        Self::republish(updater, &mut self.slots, channel)
    }

    /// Accepts a device upload for a channel: the batch must pass the
    /// trust policy (cross-checked against the pooled readings) and the
    /// updater's noise criterion; accepted uploads trigger a retrain.
    ///
    /// # Errors
    ///
    /// [`RepositoryError::NoModel`] before bootstrap,
    /// [`RepositoryError::UntrustedUpload`] when rejected.
    pub fn upload(
        &mut self,
        channel: TvChannel,
        batch: &[Measurement],
    ) -> Result<u64, RepositoryError> {
        let updater = self.updaters.get_mut(&channel).ok_or(RepositoryError::NoModel)?;
        // Internal plausibility AND cross-contributor consensus against
        // the pooled readings (the Fatemieh-style check of §3.4).
        if !self.trust.accepts(batch, updater.pool()) {
            self.rejected_uploads += 1;
            return Err(RepositoryError::UntrustedUpload);
        }
        if !updater.ingest_device_upload(batch) {
            self.rejected_uploads += 1;
            return Err(RepositoryError::UntrustedUpload);
        }
        Self::republish(updater, &mut self.slots, channel)
    }

    fn republish(
        updater: &ModelUpdater,
        slots: &mut BTreeMap<TvChannel, ModelSlot>,
        channel: TvChannel,
    ) -> Result<u64, RepositoryError> {
        let model = updater.retrain().map_err(RepositoryError::Train)?;
        let version = slots.get(&channel).map_or(1, |s| s.version + 1);
        slots.insert(channel, ModelSlot { model, version });
        Ok(version)
    }

    /// Serves the model descriptor for `channel` to a device at
    /// `location` — the Local Model Parameters Updater's server side.
    ///
    /// # Errors
    ///
    /// [`RepositoryError::OutOfArea`] outside the service area,
    /// [`RepositoryError::NoModel`] before bootstrap.
    pub fn download(
        &self,
        channel: TvChannel,
        location: Point,
    ) -> Result<Download, RepositoryError> {
        if !self.area.contains(location) {
            return Err(RepositoryError::OutOfArea);
        }
        let slot = self.slots.get(&channel).ok_or(RepositoryError::NoModel)?;
        Ok(Download { descriptor: slot.model.to_descriptor(), version: slot.version })
    }

    /// Whether a device holding `cached_version` needs to re-download.
    pub fn needs_refresh(&self, channel: TvChannel, cached_version: u64) -> bool {
        self.slots.get(&channel).is_some_and(|s| s.version > cached_version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClassifierKind, WaldoConfig};
    use waldo_iq::FeatureVector;
    use waldo_sensors::Observation;

    fn measurement(x: f64, y: f64, rss: f64) -> Measurement {
        Measurement {
            location: Point::new(x, y),
            odometer_m: 0.0,
            observation: Observation {
                rss_dbm: rss,
                features: FeatureVector {
                    rss_db: rss,
                    cft_db: rss - 11.3,
                    aft_db: rss - 12.5,
                    quadrature_imbalance_db: 0.0,
                    iq_kurtosis: 0.0,
                    edge_bin_db: -110.0,
                },
                raw_pilot_db: rss - 11.3,
            },
            true_rss_dbm: rss,
        }
    }

    fn bootstrap_data() -> Vec<Measurement> {
        (0..300)
            .map(|i| {
                let x = i as f64 * 100.0;
                let rss = if x > 15_000.0 { -70.0 } else { -100.0 } + (i % 3) as f64 * 0.2;
                measurement(x, (i % 20) as f64 * 500.0, rss)
            })
            .collect()
    }

    fn repo() -> SpectrumRepository {
        let area = Region::new(Point::new(0.0, 0.0), Point::new(35_000.0, 20_000.0)).unwrap();
        SpectrumRepository::new(
            area,
            ModelConstructor::new(
                WaldoConfig::default().classifier(ClassifierKind::NaiveBayes).localities(1),
            ),
        )
    }

    fn channel() -> TvChannel {
        TvChannel::new(30).unwrap()
    }

    #[test]
    fn bootstrap_publish_download_roundtrip() {
        let mut r = repo();
        let v = r.bootstrap(channel(), &bootstrap_data()).unwrap();
        assert_eq!(v, 1);
        let dl = r.download(channel(), Point::new(1_000.0, 1_000.0)).unwrap();
        assert_eq!(dl.version, 1);
        let model = WaldoModel::from_descriptor(&dl.descriptor).unwrap();
        use crate::Assessor;
        let hot = measurement(20_000.0, 5_000.0, -70.0);
        assert!(model.assess(hot.location, &hot.observation).is_not_safe());
    }

    #[test]
    fn download_gates() {
        let mut r = repo();
        assert_eq!(
            r.download(channel(), Point::new(1.0, 1.0)).unwrap_err(),
            RepositoryError::NoModel
        );
        r.bootstrap(channel(), &bootstrap_data()).unwrap();
        assert_eq!(
            r.download(channel(), Point::new(-5_000.0, 0.0)).unwrap_err(),
            RepositoryError::OutOfArea
        );
    }

    #[test]
    fn uploads_bump_the_version_and_refresh_flag() {
        let mut r = repo();
        r.bootstrap(channel(), &bootstrap_data()).unwrap();
        assert!(!r.needs_refresh(channel(), 1));
        // A batch consistent with the pooled consensus (the east is hot at
        // ≈ −70 dBm in the bootstrap data).
        let batch: Vec<Measurement> =
            (0..12).map(|i| measurement(20_000.0 + i as f64 * 30.0, 500.0, -70.3)).collect();
        let v = r.upload(channel(), &batch).unwrap();
        assert_eq!(v, 2);
        assert!(r.needs_refresh(channel(), 1));
    }

    #[test]
    fn implausible_uploads_are_rejected() {
        let mut r = repo();
        r.bootstrap(channel(), &bootstrap_data()).unwrap();
        // Wildly spread readings fail the noise criterion / trust policy.
        let noisy: Vec<Measurement> = (0..12)
            .map(|i| measurement(2_000.0, 500.0, if i % 2 == 0 { -60.0 } else { -110.0 }))
            .collect();
        assert_eq!(r.upload(channel(), &noisy).unwrap_err(), RepositoryError::UntrustedUpload);
        assert_eq!(r.rejected_uploads(), 1);
    }

    #[test]
    fn internally_consistent_lies_fail_the_consensus_check() {
        let mut r = repo();
        r.bootstrap(channel(), &bootstrap_data()).unwrap();
        // A smooth, self-consistent batch claiming the quiet west
        // (−100 dBm in the pool) is hot: internally plausible, but the
        // cross-contributor consensus refutes it.
        let liar: Vec<Measurement> =
            (0..12).map(|i| measurement(2_000.0 + i as f64 * 120.0, 500.0, -60.0)).collect();
        assert_eq!(r.upload(channel(), &liar).unwrap_err(), RepositoryError::UntrustedUpload);
    }

    #[test]
    fn upload_before_bootstrap_errors() {
        let mut r = repo();
        let batch = vec![measurement(1.0, 1.0, -70.0)];
        assert_eq!(r.upload(channel(), &batch).unwrap_err(), RepositoryError::NoModel);
    }
}
