//! The White Space Detector (§3.3): turning a stream of noisy low-cost
//! captures into one stable decision.
//!
//! The pipeline is exactly the paper's: smooth by averaging, drop outliers
//! outside the 5th–95th percentile, and only decide once the span of the
//! 90 % confidence interval of the readings falls below the sensitivity
//! parameter α (dB). For mobile operation the paper suggests NOR-ing the
//! decisions at the 5th and 95th percentile (conservative: either extreme
//! saying "not safe" wins); [`WhiteSpaceDetector::assess_percentile_nored`]
//! implements that.

use waldo_data::Safety;
use waldo_geo::Point;
use waldo_iq::FeatureVector;
use waldo_ml::stats::{mean_confidence_interval, percentile};
use waldo_sensors::Observation;

use crate::{Assessor, WaldoModel};

/// The result of feeding one more reading into the detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DetectorOutcome {
    /// The confidence interval is still wider than α — keep sensing.
    NeedMoreReadings {
        /// Current 90 % CI span of the RSS readings (dB), if computable.
        ci_span_db: Option<f64>,
    },
    /// The readings converged and the model decided.
    Converged {
        /// The decision.
        safety: Safety,
        /// Readings consumed (including filtered outliers).
        readings_used: usize,
    },
}

/// Online white-space detector around a downloaded [`WaldoModel`].
///
/// # Examples
///
/// ```no_run
/// # fn model() -> waldo::WaldoModel { unimplemented!() }
/// use waldo::{DetectorOutcome, WhiteSpaceDetector};
/// # let (location, observation): (waldo_geo::Point, waldo_sensors::Observation) = todo!();
/// let mut det = WhiteSpaceDetector::new(model(), 0.5);
/// match det.push(location, &observation) {
///     DetectorOutcome::Converged { safety, readings_used } => {
///         println!("decided {safety} after {readings_used} readings");
///     }
///     DetectorOutcome::NeedMoreReadings { .. } => {}
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WhiteSpaceDetector {
    model: WaldoModel,
    alpha_db: f64,
    min_readings: usize,
    max_readings: usize,
    location: Option<Point>,
    /// Total readings pushed since the last reset. Tracked separately from
    /// the window length because the windows are trimmed to `max_readings`.
    pushed: usize,
    rss_window: Vec<f64>,
    feature_window: Vec<FeatureVector>,
    /// Bit-identical trailing run length at or above which CI convergence
    /// is withheld (a stuck sensor reports a perfectly repeated value,
    /// which narrows the CI without carrying information). 0 disables.
    stuck_limit: usize,
    /// Length of the current trailing run of bit-identical RSS readings.
    stuck_run: usize,
    last_rss_bits: Option<u64>,
}

impl WhiteSpaceDetector {
    /// Creates a detector with sensitivity parameter `alpha_db` (the span
    /// the 90 % CI must shrink below; the paper sweeps 0.5–5 dB).
    ///
    /// # Panics
    ///
    /// Panics unless `alpha_db > 0`.
    pub fn new(model: WaldoModel, alpha_db: f64) -> Self {
        assert!(alpha_db > 0.0, "alpha must be positive");
        Self {
            model,
            alpha_db,
            min_readings: 4,
            max_readings: 2_000,
            location: None,
            pushed: 0,
            rss_window: Vec::new(),
            feature_window: Vec::new(),
            stuck_limit: 16,
            stuck_run: 0,
            last_rss_bits: None,
        }
    }

    /// The sensitivity parameter α in dB.
    pub fn alpha_db(&self) -> f64 {
        self.alpha_db
    }

    /// Readings accumulated since the last reset (the retained window is
    /// capped at `max_readings`, but this counts every push).
    pub fn readings_seen(&self) -> usize {
        self.pushed
    }

    /// Overrides the hard cap on readings before a forced decision
    /// (default 2000; the paper observes mobile runs that never converge).
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn max_readings(mut self, n: usize) -> Self {
        assert!(n > 0, "cap must be positive");
        self.max_readings = n;
        self
    }

    /// Overrides the stuck-sensor guard: a trailing run of `n` or more
    /// bit-identical RSS readings withholds CI convergence (the repeated
    /// value narrows the interval without carrying information, so a stuck
    /// sensor would otherwise *converge faster* — falsely). The cap still
    /// forces a decision at `max_readings`. Default 16; 0 disables.
    pub fn stuck_run_limit(mut self, n: usize) -> Self {
        self.stuck_limit = n;
        self
    }

    /// Length of the current trailing run of bit-identical RSS readings.
    pub fn stuck_run(&self) -> usize {
        self.stuck_run
    }

    /// Clears the window (e.g. after moving to a new location or channel).
    pub fn reset(&mut self) {
        self.location = None;
        self.pushed = 0;
        self.rss_window.clear();
        self.feature_window.clear();
        self.stuck_run = 0;
        self.last_rss_bits = None;
    }

    /// Feeds one reading; returns the decision once the CI converges.
    ///
    /// Readings are associated with the *latest* pushed location (the
    /// detector models a device dwelling at roughly one spot; callers
    /// handling mobility should `reset` on large jumps or use the NOR
    /// variant).
    pub fn push(&mut self, location: Point, observation: &Observation) -> DetectorOutcome {
        let _t = waldo_obs::timed("detector_push");
        self.location = Some(location);
        self.pushed += 1;
        self.rss_window.push(observation.rss_dbm);
        self.feature_window.push(observation.features);
        let bits = observation.rss_dbm.to_bits();
        self.stuck_run = if self.last_rss_bits == Some(bits) { self.stuck_run + 1 } else { 1 };
        self.last_rss_bits = Some(bits);
        // A long dwell must not grow memory without bound: keep only the
        // newest `max_readings` readings (older ones can no longer change
        // the forced decision anyway).
        if self.rss_window.len() > self.max_readings {
            let excess = self.rss_window.len() - self.max_readings;
            self.rss_window.drain(..excess);
            self.feature_window.drain(..excess);
        }

        // The cap takes priority over everything else — including the
        // minimum-readings gate and a degenerate window whose confidence
        // interval is undefined — so a device can never scan forever.
        let forced = self.pushed >= self.max_readings;
        if self.pushed < self.min_readings && !forced {
            return DetectorOutcome::NeedMoreReadings { ci_span_db: None };
        }

        let retained = self.retained_indices();
        let rss: Vec<f64> = retained.iter().map(|&i| self.rss_window[i]).collect();
        let ci = mean_confidence_interval(&rss, 0.90);
        let span = ci.map(|c| c.span());
        // A stuck sensor repeats one value bit-for-bit; that narrows the CI
        // without new information, so convergence is withheld for the run
        // (the cap still forces a decision).
        let stuck = self.stuck_limit > 0 && self.stuck_run >= self.stuck_limit;
        match span {
            Some(s) if s <= self.alpha_db && !stuck => {
                let safety = self.decide(&retained);
                DetectorOutcome::Converged { safety, readings_used: self.pushed }
            }
            // Forced decision at the cap, whether or not the interval is
            // even computable (e.g. a degenerate retained set).
            _ if forced => {
                let safety = self.decide(&retained);
                DetectorOutcome::Converged { safety, readings_used: self.pushed }
            }
            other => DetectorOutcome::NeedMoreReadings { ci_span_db: other },
        }
    }

    /// Indices inside the 5th–95th percentile band of the RSS window.
    fn retained_indices(&self) -> Vec<usize> {
        let lo = percentile(&self.rss_window, 5.0);
        let hi = percentile(&self.rss_window, 95.0);
        let kept: Vec<usize> = (0..self.rss_window.len())
            .filter(|&i| (lo..=hi).contains(&self.rss_window[i]))
            .collect();
        if kept.is_empty() {
            (0..self.rss_window.len()).collect()
        } else {
            kept
        }
    }

    fn averaged_features(&self, retained: &[usize]) -> FeatureVector {
        let n = retained.len() as f64;
        let mut acc = FeatureVector {
            rss_db: 0.0,
            cft_db: 0.0,
            aft_db: 0.0,
            quadrature_imbalance_db: 0.0,
            iq_kurtosis: 0.0,
            edge_bin_db: 0.0,
        };
        for &i in retained {
            let f = self.feature_window[i];
            acc.rss_db += f.rss_db / n;
            acc.cft_db += f.cft_db / n;
            acc.aft_db += f.aft_db / n;
            acc.quadrature_imbalance_db += f.quadrature_imbalance_db / n;
            acc.iq_kurtosis += f.iq_kurtosis / n;
            acc.edge_bin_db += f.edge_bin_db / n;
        }
        acc
    }

    fn decide(&self, retained: &[usize]) -> Safety {
        let location = self.location.expect("decide is only called after a push");
        let features = self.averaged_features(retained);
        let rss = retained.iter().map(|&i| self.rss_window[i]).sum::<f64>() / retained.len() as f64;
        let obs = Observation { rss_dbm: rss, features, raw_pilot_db: rss - 12.0 };
        self.model.assess(location, &obs)
    }

    /// The mobile-mode decision rule of §5: evaluate the model at the 5th
    /// and the 95th percentile of the collected readings and NOR the
    /// decisions — if either extreme says *not safe*, the answer is not
    /// safe. Usable before CI convergence.
    ///
    /// Returns `None` until [`min_readings`](Self::push) have arrived.
    pub fn assess_percentile_nored(&self) -> Option<Safety> {
        if self.rss_window.len() < self.min_readings {
            return None;
        }
        let location = self.location?;
        let decide_at = |q: f64| {
            let rss = percentile(&self.rss_window, q);
            // Shift the averaged features to the percentile RSS level.
            let retained = self.retained_indices();
            let base = self.averaged_features(&retained);
            let mean_rss =
                retained.iter().map(|&i| self.rss_window[i]).sum::<f64>() / retained.len() as f64;
            let features = base.shifted_db(rss - mean_rss);
            let obs = Observation { rss_dbm: rss, features, raw_pilot_db: rss - 12.0 };
            self.model.assess(location, &obs)
        };
        let low = decide_at(5.0);
        let high = decide_at(95.0);
        Some(if low.is_not_safe() || high.is_not_safe() { Safety::NotSafe } else { Safety::Safe })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClassifierKind, ModelConstructor, WaldoConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use waldo_data::{ChannelDataset, Measurement};
    use waldo_rf::TvChannel;
    use waldo_sensors::SensorKind;

    fn observation(rss: f64) -> Observation {
        Observation {
            rss_dbm: rss,
            features: FeatureVector {
                rss_db: rss,
                cft_db: rss - 11.3,
                aft_db: rss - 12.5,
                quadrature_imbalance_db: 0.0,
                iq_kurtosis: 0.0,
                edge_bin_db: -110.0,
            },
            raw_pilot_db: rss - 11.3,
        }
    }

    /// East = not safe (strong), west = safe (weak).
    fn model() -> WaldoModel {
        let mut measurements = Vec::new();
        let mut labels = Vec::new();
        for i in 0..400 {
            let x = (i as f64 / 400.0) * 30_000.0;
            let not_safe = x > 15_000.0;
            let rss = if not_safe { -70.0 } else { -95.0 } + ((i % 5) as f64 - 2.0);
            measurements.push(Measurement {
                location: Point::new(x, ((i * 3) % 20) as f64 * 1_000.0),
                odometer_m: 0.0,
                observation: observation(rss),
                true_rss_dbm: rss,
            });
            labels.push(waldo_data::Safety::from_not_safe(not_safe));
        }
        let ds = ChannelDataset::new(
            TvChannel::new(30).unwrap(),
            SensorKind::RtlSdr,
            measurements,
            labels,
        );
        ModelConstructor::new(WaldoConfig::default().classifier(ClassifierKind::NaiveBayes))
            .fit(&ds)
            .unwrap()
    }

    #[test]
    fn converges_on_stable_readings() {
        let mut det = WhiteSpaceDetector::new(model(), 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let loc = Point::new(25_000.0, 10_000.0); // hot territory
        for i in 0..200 {
            let rss = -70.0 + 0.2 * rng.gen_range(-1.0..1.0);
            match det.push(loc, &observation(rss)) {
                DetectorOutcome::Converged { safety, readings_used } => {
                    assert!(safety.is_not_safe());
                    assert!(readings_used >= 4);
                    assert!(readings_used <= i + 1);
                    return;
                }
                DetectorOutcome::NeedMoreReadings { .. } => {}
            }
        }
        panic!("never converged on stable input");
    }

    #[test]
    fn noisier_input_takes_longer() {
        let runs = |sigma: f64, seed: u64| -> usize {
            let mut det = WhiteSpaceDetector::new(model(), 0.5);
            let mut rng = StdRng::seed_from_u64(seed);
            let loc = Point::new(5_000.0, 10_000.0);
            for i in 1..=5_000 {
                let rss = -95.0 + sigma * waldo_iq::synth::standard_normal(&mut rng);
                if let DetectorOutcome::Converged { .. } = det.push(loc, &observation(rss)) {
                    return i;
                }
            }
            5_000
        };
        // Any single seed can tie (both converge at the minimum reading
        // count), so compare totals across a handful of seeds.
        let quiet: usize = (0..8).map(|s| runs(0.2, 7 + s)).sum();
        let noisy: usize = (0..8).map(|s| runs(2.0, 7 + s)).sum();
        assert!(noisy > quiet, "noisy {noisy} should exceed quiet {quiet}");
    }

    #[test]
    fn outliers_are_filtered() {
        let mut det = WhiteSpaceDetector::new(model(), 1.0);
        let loc = Point::new(5_000.0, 10_000.0); // safe territory
                                                 // Mostly quiet readings with occasional absurd spikes; the
                                                 // percentile filter must keep the spikes from dominating.
        let mut outcome = None;
        for i in 0..400 {
            let rss = if i % 25 == 25 - 1 { -30.0 } else { -95.0 + (i % 3) as f64 * 0.1 };
            if let DetectorOutcome::Converged { safety, .. } = det.push(loc, &observation(rss)) {
                outcome = Some(safety);
                break;
            }
        }
        let safety = outcome.expect("filtered stream must converge");
        assert!(!safety.is_not_safe(), "spikes leaked through the filter");
    }

    #[test]
    fn smaller_alpha_needs_more_readings() {
        let count = |alpha: f64| -> usize {
            let mut det = WhiteSpaceDetector::new(model(), alpha);
            let mut rng = StdRng::seed_from_u64(3);
            let loc = Point::new(25_000.0, 5_000.0);
            for i in 1..=20_000 {
                let rss = -70.0 + 2.0 * waldo_iq::synth::standard_normal(&mut rng);
                if let DetectorOutcome::Converged { .. } = det.push(loc, &observation(rss)) {
                    return i;
                }
            }
            20_000
        };
        assert!(count(0.2) > count(4.0));
    }

    #[test]
    fn reset_clears_state() {
        let mut det = WhiteSpaceDetector::new(model(), 0.5);
        let loc = Point::new(1_000.0, 1_000.0);
        for _ in 0..3 {
            det.push(loc, &observation(-95.0));
        }
        assert_eq!(det.readings_seen(), 3);
        det.reset();
        assert_eq!(det.readings_seen(), 0);
    }

    #[test]
    fn max_readings_forces_a_decision() {
        let mut det = WhiteSpaceDetector::new(model(), 0.01).max_readings(20);
        let mut rng = StdRng::seed_from_u64(5);
        let loc = Point::new(25_000.0, 5_000.0);
        for i in 1..=20 {
            let rss = -70.0 + 5.0 * waldo_iq::synth::standard_normal(&mut rng);
            if let DetectorOutcome::Converged { readings_used, .. } =
                det.push(loc, &observation(rss))
            {
                assert_eq!(readings_used, 20);
                assert_eq!(i, 20);
                return;
            }
        }
        panic!("cap did not force a decision");
    }

    #[test]
    fn forced_convergence_with_degenerate_window() {
        // Regression: a constant-RSS (zero-variance) window below the
        // minimum-readings gate has no computable confidence interval, and
        // the pre-fix match let the `forced` case fall into
        // `NeedMoreReadings` — the detector scanned forever. The cap must
        // force a decision at exactly `max_readings`.
        let mut det = WhiteSpaceDetector::new(model(), 0.5).max_readings(3);
        let loc = Point::new(25_000.0, 10_000.0);
        for i in 1..=3 {
            match det.push(loc, &observation(-70.0)) {
                DetectorOutcome::Converged { safety, readings_used } => {
                    assert_eq!(i, 3, "converged before the cap");
                    assert_eq!(readings_used, 3);
                    assert!(safety.is_not_safe());
                    return;
                }
                DetectorOutcome::NeedMoreReadings { .. } => {
                    assert!(i < 3, "cap did not force a decision at max_readings");
                }
            }
        }
        panic!("never converged at the cap");
    }

    #[test]
    fn cap_of_one_decides_on_an_undefined_interval() {
        // With a single retained reading the 90 % CI does not exist (span
        // is `None`); the forced arm must still convert it into a decision.
        let mut det = WhiteSpaceDetector::new(model(), 0.5).max_readings(1);
        match det.push(Point::new(25_000.0, 10_000.0), &observation(-70.0)) {
            DetectorOutcome::Converged { safety, readings_used } => {
                assert_eq!(readings_used, 1);
                assert!(safety.is_not_safe());
            }
            DetectorOutcome::NeedMoreReadings { .. } => {
                panic!("undefined CI stalled the forced decision")
            }
        }
    }

    #[test]
    fn long_dwell_does_not_grow_the_window() {
        // A caller that ignores `Converged` and keeps dwelling must not
        // accumulate unbounded readings.
        let mut det = WhiteSpaceDetector::new(model(), 0.000_1).max_readings(50);
        let loc = Point::new(25_000.0, 10_000.0);
        for i in 0..500 {
            let outcome = det.push(loc, &observation(-70.0 + (i % 7) as f64));
            if i + 1 >= 50 {
                assert!(
                    matches!(outcome, DetectorOutcome::Converged { readings_used, .. }
                        if readings_used == i + 1),
                    "past the cap every push must force a decision"
                );
            }
        }
        assert_eq!(det.readings_seen(), 500);
        assert!(det.rss_window.len() <= 50, "window grew to {}", det.rss_window.len());
        assert!(det.feature_window.len() <= 50);
    }

    #[test]
    fn nored_decision_is_conservative() {
        let mut det = WhiteSpaceDetector::new(model(), 0.5).max_readings(100_000);
        let loc = Point::new(16_000.0, 10_000.0); // near the boundary
                                                  // Bimodal readings straddling the decision boundary: the NOR rule
                                                  // must come out not-safe.
        for i in 0..60 {
            let rss = if i % 2 == 0 { -95.0 } else { -70.0 };
            det.push(loc, &observation(rss));
        }
        let nored = det.assess_percentile_nored().unwrap();
        assert!(nored.is_not_safe());
    }

    #[test]
    fn nored_needs_minimum_readings() {
        let mut det = WhiteSpaceDetector::new(model(), 0.5);
        assert!(det.assess_percentile_nored().is_none());
        det.push(Point::new(0.0, 0.0), &observation(-95.0));
        assert!(det.assess_percentile_nored().is_none());
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn zero_alpha_panics() {
        let _ = WhiteSpaceDetector::new(model(), 0.0);
    }

    #[test]
    fn stuck_sensor_run_blocks_false_convergence_until_the_cap() {
        // Degradation regression: a healthy-noisy phase (CI too wide to
        // converge) followed by a stuck sensor repeating one value. The
        // repeats would shrink the CI below α within a handful of readings;
        // the stuck guard must withhold that false convergence until the
        // cap forces a conservative decision, while an unguarded control
        // detector demonstrates the failure mode being prevented.
        let model = model();
        let loc = Point::new(25_000.0, 10_000.0);
        let mut rng = StdRng::seed_from_u64(11);
        let noisy: Vec<f64> =
            (0..10).map(|_| -70.0 + 3.0 * waldo_iq::synth::standard_normal(&mut rng)).collect();

        let run = |stuck_limit: usize| -> usize {
            let mut det = WhiteSpaceDetector::new(model.clone(), 0.5)
                .max_readings(100)
                .stuck_run_limit(stuck_limit);
            for (i, &rss) in noisy.iter().enumerate() {
                if let DetectorOutcome::Converged { .. } = det.push(loc, &observation(rss)) {
                    return i + 1;
                }
            }
            for i in noisy.len()..200 {
                if let DetectorOutcome::Converged { safety, readings_used } =
                    det.push(loc, &observation(-70.0))
                {
                    assert!(safety.is_not_safe());
                    assert_eq!(readings_used, i + 1);
                    return i + 1;
                }
            }
            panic!("never converged even at the cap");
        };

        let unguarded = run(0);
        let guarded = run(8);
        assert!(
            unguarded < 100,
            "control: without the guard the stuck run converges early ({unguarded})"
        );
        assert_eq!(guarded, 100, "the guard must hold out until the cap forces the decision");
    }

    #[test]
    fn stuck_run_resets_when_the_sensor_recovers() {
        let mut det = WhiteSpaceDetector::new(model(), 0.5).stuck_run_limit(4);
        let loc = Point::new(25_000.0, 10_000.0);
        for _ in 0..6 {
            det.push(loc, &observation(-70.0));
        }
        assert_eq!(det.stuck_run(), 6);
        det.push(loc, &observation(-70.25));
        assert_eq!(det.stuck_run(), 1, "a fresh value ends the run");
        det.reset();
        assert_eq!(det.stuck_run(), 0);
    }

    #[test]
    fn dropped_readings_delay_but_never_prevent_convergence() {
        // Degradation regression: dropped readings mean the detector sees a
        // subsequence of the sensor stream. Fewer samples can only keep the
        // CI wide for longer — the lossy run must never converge earlier
        // (in wall-clock readings) than the lossless one — and the cap
        // still guarantees an eventual decision.
        let model = model();
        let loc = Point::new(25_000.0, 10_000.0);
        for seed in [3u64, 17, 29, 71] {
            let mut rng = StdRng::seed_from_u64(seed);
            let stream: Vec<f64> = (0..400)
                .map(|_| -70.0 + 1.5 * waldo_iq::synth::standard_normal(&mut rng))
                .collect();

            let converge_at = |drop_run: bool| -> usize {
                let mut det = WhiteSpaceDetector::new(model.clone(), 0.5).max_readings(400);
                for (i, &rss) in stream.iter().enumerate() {
                    // A burst of consecutive drops mid-run: readings 20..60
                    // never reach the detector.
                    if drop_run && (20..60).contains(&i) {
                        continue;
                    }
                    if let DetectorOutcome::Converged { safety, .. } =
                        det.push(loc, &observation(rss))
                    {
                        assert!(safety.is_not_safe());
                        return i + 1;
                    }
                }
                panic!("seed {seed}: never converged despite the cap");
            };

            let lossless = converge_at(false);
            let lossy = converge_at(true);
            assert!(
                lossy >= lossless,
                "seed {seed}: dropping readings must not accelerate convergence \
                 (lossy {lossy} < lossless {lossless})"
            );
        }
    }
}
