//! Evaluation harness (§4): 10-fold cross validation, assessor scoring,
//! and the training-fraction sweep. The `repro` binary drives these to
//! regenerate Figures 12–16 and Table 1.

use waldo_data::{ChannelDataset, Safety};
use waldo_ml::model_selection::{train_test_split, KFold};
use waldo_ml::ConfusionMatrix;

use crate::{Assessor, ModelConstructor, WaldoConfig};

/// Runs the paper's 10-fold cross validation of a Waldo configuration on
/// one labeled dataset: train on 90 %, test on 10 %, rotate, and merge the
/// confusion counts.
///
/// Folds are independent (each trains from its own split with the same
/// seeded config), so they fan out across the [`waldo_par`] worker pool;
/// the per-fold confusion counts are integers merged in fold order, so the
/// result is bit-identical to a serial run at any worker count.
///
/// # Panics
///
/// Panics if the dataset is smaller than the fold count or a fold fails to
/// train (which cannot happen on the campaign datasets).
pub fn cross_validate(
    ds: &ChannelDataset,
    config: &WaldoConfig,
    folds: usize,
    seed: u64,
) -> ConfusionMatrix {
    let _t = waldo_prof::scope("cv");
    let constructor = ModelConstructor::new(config.clone());
    let splits = KFold::new(folds, seed).splits(ds.len());
    let fold_cms = waldo_par::par_map(&splits, |split| {
        let train = ds.subset(&split.train);
        let model = constructor.fit(&train).expect("campaign folds always train");
        let mut cm = ConfusionMatrix::default();
        for &i in &split.test {
            let m = &ds.measurements()[i];
            let pred = model.assess(m.location, &m.observation);
            cm.record(ds.labels()[i].is_not_safe(), pred.is_not_safe());
        }
        cm
    });
    let mut cm = ConfusionMatrix::default();
    for fold in &fold_cms {
        cm.merge(fold);
    }
    cm
}

/// Scores any [`Assessor`] against a labeled dataset: each measurement is
/// presented (location + observation) and the prediction compared to
/// `truth` (defaults to the dataset's own Algorithm-1 labels).
pub fn evaluate_assessor(
    assessor: &dyn Assessor,
    ds: &ChannelDataset,
    truth: Option<&[Safety]>,
) -> ConfusionMatrix {
    let truth = truth.unwrap_or_else(|| ds.labels());
    assert_eq!(truth.len(), ds.len(), "truth labels must align with the dataset");
    let mut cm = ConfusionMatrix::default();
    for (m, t) in ds.measurements().iter().zip(truth) {
        let pred = assessor.assess(m.location, &m.observation);
        cm.record(t.is_not_safe(), pred.is_not_safe());
    }
    cm
}

/// The training-fraction sweep of Fig 14: hold out a fixed random 10 % as
/// the test set, then train on growing fractions of the remainder and
/// score each model on the same held-out set.
///
/// Returns `(fraction_of_training_data, confusion)` per requested fraction.
///
/// # Panics
///
/// Panics if any fraction is outside `(0, 1]` or the dataset is too small.
pub fn training_fraction_sweep(
    ds: &ChannelDataset,
    config: &WaldoConfig,
    fractions: &[f64],
    seed: u64,
) -> Vec<(f64, ConfusionMatrix)> {
    assert!(fractions.iter().all(|f| *f > 0.0 && *f <= 1.0), "fractions must lie in (0, 1]");
    let constructor = ModelConstructor::new(config.clone());
    let split = train_test_split(ds.len(), 0.10, seed);
    let test = ds.subset(&split.test);

    fractions
        .iter()
        .map(|&frac| {
            let take = ((split.train.len() as f64) * frac).round().max(1.0) as usize;
            let train = ds.subset(&split.train[..take.min(split.train.len())]);
            let model = constructor.fit(&train).expect("fractions keep enough samples");
            let mut cm = ConfusionMatrix::default();
            for (m, t) in test.measurements().iter().zip(test.labels()) {
                let pred = model.assess(m.location, &m.observation);
                cm.record(t.is_not_safe(), pred.is_not_safe());
            }
            (frac, cm)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClassifierKind;
    use waldo_data::Measurement;
    use waldo_geo::Point;
    use waldo_iq::FeatureVector;
    use waldo_rf::TvChannel;
    use waldo_sensors::{Observation, SensorKind};

    fn observation(rss: f64) -> Observation {
        Observation {
            rss_dbm: rss,
            features: FeatureVector {
                rss_db: rss,
                cft_db: rss - 11.3,
                aft_db: rss - 12.5,
                quadrature_imbalance_db: 0.0,
                iq_kurtosis: 0.0,
                edge_bin_db: -110.0,
            },
            raw_pilot_db: rss - 11.3,
        }
    }

    /// Cleanly separable synthetic channel with mild label noise.
    fn dataset(n: usize, noise_every: usize) -> ChannelDataset {
        let mut measurements = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let x = (i as f64 / n as f64) * 30_000.0;
            let geo_not_safe = x > 15_000.0;
            // Pure label noise: the signal stays consistent with geometry,
            // only the label flips (an unlearnable contradiction).
            let mut not_safe = geo_not_safe;
            if noise_every > 0 && i % noise_every == noise_every - 1 {
                not_safe = !not_safe;
            }
            let rss = if geo_not_safe { -70.0 } else { -95.0 } + ((i % 7) as f64 - 3.0) * 0.4;
            measurements.push(Measurement {
                location: Point::new(x, ((i * 13) % 20) as f64 * 1_000.0),
                odometer_m: i as f64,
                observation: observation(rss),
                true_rss_dbm: rss,
            });
            labels.push(Safety::from_not_safe(not_safe));
        }
        ChannelDataset::new(TvChannel::new(30).unwrap(), SensorKind::RtlSdr, measurements, labels)
    }

    fn nb_config() -> WaldoConfig {
        WaldoConfig::default().classifier(ClassifierKind::NaiveBayes).localities(1)
    }

    #[test]
    fn cross_validation_scores_separable_data_well() {
        let ds = dataset(300, 0);
        let cm = cross_validate(&ds, &nb_config(), 10, 1);
        assert_eq!(cm.total(), 300);
        assert!(cm.error_rate() < 0.05, "error {cm}");
    }

    #[test]
    fn label_noise_raises_cv_error() {
        let clean = cross_validate(&dataset(300, 0), &nb_config(), 10, 1);
        let noisy = cross_validate(&dataset(300, 6), &nb_config(), 10, 1);
        assert!(noisy.error_rate() > clean.error_rate());
    }

    #[test]
    fn evaluate_assessor_against_external_truth() {
        let ds = dataset(200, 0);
        let model = ModelConstructor::new(nb_config()).fit(&ds).expect("separable data trains");
        // Perfect against its own labels…
        let own = evaluate_assessor(&model, &ds, None);
        assert!(own.error_rate() < 0.03, "{own}");
        // …and exactly complemented against inverted truth.
        let inverted: Vec<Safety> =
            ds.labels().iter().map(|l| Safety::from_not_safe(!l.is_not_safe())).collect();
        let vs_inverted = evaluate_assessor(&model, &ds, Some(&inverted));
        assert!((own.error_rate() + vs_inverted.error_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_training_data_helps() {
        // Multiple localities make training size matter: a 5 % slice leaves
        // some localities single-class (constant models), while the full set
        // trains every locality properly. Average endpoints across split
        // seeds so no single unlucky hold-out decides the verdict.
        let ds = dataset(400, 0);
        let config = nb_config().localities(4);
        let (mut first_sum, mut last_sum) = (0.0, 0.0);
        for seed in 7..13 {
            let sweep = training_fraction_sweep(&ds, &config, &[0.05, 0.25, 0.5, 1.0], seed);
            assert_eq!(sweep.len(), 4);
            first_sum += sweep.first().unwrap().1.error_rate();
            last_sum += sweep.last().unwrap().1.error_rate();
            // Each step scores the same held-out set.
            assert!(sweep.iter().all(|(_, cm)| cm.total() == sweep[0].1.total()));
        }
        assert!(last_sum <= first_sum, "mean error went {first_sum} → {last_sum}");
    }

    #[test]
    #[should_panic(expected = "fractions must lie")]
    fn zero_fraction_panics() {
        let ds = dataset(100, 0);
        let _ = training_fraction_sweep(&ds, &nb_config(), &[0.0], 0);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn misaligned_truth_panics() {
        let ds = dataset(50, 0);
        let model = ModelConstructor::new(nb_config()).fit(&ds).unwrap();
        let _ = evaluate_assessor(&model, &ds, Some(&[Safety::Safe]));
    }
}
