//! The downloadable Waldo model: localities plus one compact classifier per
//! locality.

use serde::{Deserialize, Serialize};
use waldo_data::Safety;
use waldo_geo::Point;
use waldo_iq::FeatureSet;
use waldo_ml::kmeans::Clustering;
use waldo_ml::logistic::LogisticModel;
use waldo_ml::nb::GaussianNb;
use waldo_ml::svm::SvmModel;
use waldo_ml::tree::DecisionTree;
use waldo_ml::{Classifier, StandardScaler};
use waldo_sensors::Observation;

use crate::Assessor;

/// One locality's trained classifier (or a constant when the locality is
/// single-class — the paper notes all-safe/all-not-safe clusters make the
/// model "binary" and more efficient).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum ClusterModel {
    /// Locality is entirely one class.
    Constant(bool),
    /// SVM over standardized features.
    Svm { scaler: StandardScaler, model: SvmModel },
    /// Gaussian NB over standardized features.
    Nb { scaler: StandardScaler, model: GaussianNb },
    /// CART decision tree (kept for the paper's overfitting ablation).
    Tree { scaler: StandardScaler, model: DecisionTree },
    /// Logistic regression (the most compact descriptor).
    Logistic { scaler: StandardScaler, model: LogisticModel },
}

impl ClusterModel {
    fn predict_not_safe(&self, row: &[f64]) -> bool {
        match self {
            ClusterModel::Constant(v) => *v,
            ClusterModel::Svm { scaler, model } => model.predict(&scaler.transform(row)),
            ClusterModel::Nb { scaler, model } => model.predict(&scaler.transform(row)),
            ClusterModel::Tree { scaler, model } => model.predict(&scaler.transform(row)),
            ClusterModel::Logistic { scaler, model } => model.predict(&scaler.transform(row)),
        }
    }

    fn parameter_count(&self) -> usize {
        match self {
            ClusterModel::Constant(_) => 1,
            ClusterModel::Svm { scaler, model } => {
                scaler.parameter_count() + model.parameter_count()
            }
            ClusterModel::Nb { scaler, model } => {
                scaler.parameter_count() + model.parameter_count()
            }
            // Trees do not expose a flat parameter count; approximate with
            // leaves (each leaf ≈ one threshold + one label upstream).
            ClusterModel::Tree { scaler, model } => {
                scaler.parameter_count() + 2 * model.leaf_count()
            }
            ClusterModel::Logistic { scaler, model } => {
                scaler.parameter_count() + model.parameter_count()
            }
        }
    }
}

/// A trained Waldo white-space detection model for one channel over one
/// area: the artifact a WSD downloads from the spectrum database.
///
/// Input rows are `[x_km, y_km, signal features…]` in the same layout as
/// [`waldo_data::ChannelDataset::feature_row`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaldoModel {
    pub(crate) features: FeatureSet,
    pub(crate) clustering: Clustering,
    pub(crate) clusters: Vec<ClusterModel>,
}

impl WaldoModel {
    /// The signal features the model consumes (location is always implied).
    pub fn features(&self) -> &FeatureSet {
        &self.features
    }

    /// Number of localities.
    pub fn locality_count(&self) -> usize {
        self.clusters.len()
    }

    /// The locality centroids (`[x_km, y_km]` each) that route readings to
    /// per-locality classifiers — what a distribution server uses for
    /// locality-scoped fetches.
    pub fn centroids(&self) -> &[Vec<f64>] {
        self.clustering.centroids()
    }

    /// The locality index that would classify a reading at `location` —
    /// the same centroid routing [`predict_row`](Self::predict_row) and
    /// [`assess`](crate::Assessor::assess) use. Exposed for the decision
    /// audit log and locality-scoped tooling.
    pub fn locality_for(&self, location: Point) -> usize {
        self.clustering.assign(&[location.x / 1000.0, location.y / 1000.0])
    }

    /// Number of single-class ("binary") localities.
    pub fn constant_locality_count(&self) -> usize {
        self.clusters.iter().filter(|c| matches!(c, ClusterModel::Constant(_))).count()
    }

    /// Predicts from a raw feature row (`[x_km, y_km, features…]`).
    ///
    /// # Panics
    ///
    /// Panics if the row dimension does not match the model's feature set.
    pub fn predict_row(&self, row: &[f64]) -> Safety {
        assert_eq!(
            row.len(),
            2 + self.features.len(),
            "row layout must be [x_km, y_km, features…]"
        );
        let locality = self.clustering.assign(&row[..2]);
        Safety::from_not_safe(self.clusters[locality].predict_not_safe(row))
    }

    /// Total scalar parameters across localities (compactness metric; the
    /// serialized JSON descriptor in [`descriptor_bytes`] is the artifact
    /// whose size §5 reports).
    ///
    /// [`descriptor_bytes`]: Self::descriptor_bytes
    pub fn parameter_count(&self) -> usize {
        let centroid_params: usize = self.clustering.centroids().iter().map(Vec::len).sum();
        centroid_params + self.clusters.iter().map(ClusterModel::parameter_count).sum::<usize>()
    }

    /// Serializes the model descriptor (what a WSD downloads) and returns
    /// its size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails, which would indicate a broken
    /// `serde` derive rather than a runtime condition.
    pub fn descriptor_bytes(&self) -> usize {
        serde_json::to_vec(self).expect("model descriptors always serialize").len()
    }

    /// Round-trips a descriptor (download simulation).
    ///
    /// # Errors
    ///
    /// Returns a `serde_json` error if the descriptor is corrupt.
    pub fn from_descriptor(bytes: &[u8]) -> Result<Self, serde_json::Error> {
        serde_json::from_slice(bytes)
    }

    /// Serializes the descriptor to bytes.
    ///
    /// # Panics
    ///
    /// Panics only on a broken `serde` derive.
    pub fn to_descriptor(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("model descriptors always serialize")
    }
}

impl Assessor for WaldoModel {
    fn assess(&self, location: Point, observation: &Observation) -> Safety {
        let mut row = vec![location.x / 1000.0, location.y / 1000.0];
        row.extend(observation.features.project(&self.features));
        self.predict_row(&row)
    }

    fn name(&self) -> String {
        format!("Waldo({} features, k={})", self.features.len() + 1, self.locality_count())
    }
}
