//! Spatial coverage maps: rasterizing a detection system's safe/not-safe
//! view over the study region.
//!
//! The paper communicates its geography with maps (the war-driving path of
//! Fig 3, the pocket geometry of Fig 1). [`CoverageMap`] grids the region,
//! asks any decision function for each cell, and reports availability
//! statistics plus an ASCII rendering — the harness and examples use it to
//! *show* where Waldo finds spectrum that a database wastes.

use serde::{Deserialize, Serialize};
use waldo_data::Safety;
use waldo_geo::{Point, Region};

/// A rasterized safe/not-safe map over a region.
///
/// # Examples
///
/// ```
/// use waldo::coverage::CoverageMap;
/// use waldo_data::Safety;
/// use waldo_geo::{Point, Region};
///
/// let region = Region::new(Point::new(0.0, 0.0), Point::new(10_000.0, 10_000.0)).unwrap();
/// // East half occupied.
/// let map = CoverageMap::from_fn(region, 1_000.0, |p| {
///     Safety::from_not_safe(p.x > 5_000.0)
/// });
/// assert!((map.safe_fraction() - 0.5).abs() < 0.11);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageMap {
    region: Region,
    cell_m: f64,
    cols: usize,
    rows: usize,
    /// Row-major from the south-west corner; `true` = not safe.
    cells: Vec<bool>,
}

impl CoverageMap {
    /// Rasterizes `decide` over `region` with square cells of `cell_m`
    /// metres (each cell is sampled at its centre).
    ///
    /// # Panics
    ///
    /// Panics unless `cell_m > 0`.
    pub fn from_fn<F: FnMut(Point) -> Safety>(region: Region, cell_m: f64, mut decide: F) -> Self {
        assert!(cell_m > 0.0, "cell size must be positive");
        let cols = (region.width_m() / cell_m).ceil() as usize;
        let rows = (region.height_m() / cell_m).ceil() as usize;
        let mut cells = Vec::with_capacity(cols * rows);
        for r in 0..rows {
            for c in 0..cols {
                let p = Point::new(
                    region.min().x + (c as f64 + 0.5) * cell_m,
                    region.min().y + (r as f64 + 0.5) * cell_m,
                );
                cells.push(decide(region.clamp(p)).is_not_safe());
            }
        }
        Self { region, cell_m, cols, rows, cells }
    }

    /// The mapped region.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Grid dimensions `(cols, rows)`.
    pub fn dimensions(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// The decision at the cell containing `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` lies outside the region.
    pub fn at(&self, p: Point) -> Safety {
        assert!(self.region.contains(p), "point lies outside the mapped region");
        let c = (((p.x - self.region.min().x) / self.cell_m) as usize).min(self.cols - 1);
        let r = (((p.y - self.region.min().y) / self.cell_m) as usize).min(self.rows - 1);
        Safety::from_not_safe(self.cells[r * self.cols + c])
    }

    /// Fraction of cells deemed safe (the availability the paper's
    /// efficiency metric protects).
    pub fn safe_fraction(&self) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        self.cells.iter().filter(|&&ns| !ns).count() as f64 / self.cells.len() as f64
    }

    /// Cell-wise disagreement with another map over the same grid —
    /// e.g. "where does the database waste spectrum Waldo finds".
    ///
    /// # Panics
    ///
    /// Panics if the grids differ.
    pub fn disagreement(&self, other: &CoverageMap) -> f64 {
        assert_eq!((self.cols, self.rows), (other.cols, other.rows), "maps must share a grid");
        self.cells.iter().zip(&other.cells).filter(|(a, b)| a != b).count() as f64
            / self.cells.len() as f64
    }

    /// ASCII rendering, north at the top: `.` safe, `#` not safe.
    pub fn to_ascii(&self) -> String {
        let mut out = String::with_capacity((self.cols + 1) * self.rows);
        for r in (0..self.rows).rev() {
            for c in 0..self.cols {
                out.push(if self.cells[r * self.cols + c] { '#' } else { '.' });
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> Region {
        Region::new(Point::new(0.0, 0.0), Point::new(10_000.0, 5_000.0)).unwrap()
    }

    #[test]
    fn grid_covers_the_region() {
        let map = CoverageMap::from_fn(region(), 1_000.0, |_| Safety::Safe);
        assert_eq!(map.dimensions(), (10, 5));
        assert_eq!(map.safe_fraction(), 1.0);
    }

    #[test]
    fn east_west_split_maps_correctly() {
        let map = CoverageMap::from_fn(region(), 500.0, |p| Safety::from_not_safe(p.x > 5_000.0));
        assert!(!map.at(Point::new(1_000.0, 1_000.0)).is_not_safe());
        assert!(map.at(Point::new(9_000.0, 1_000.0)).is_not_safe());
        assert!((map.safe_fraction() - 0.5).abs() < 0.06);
    }

    #[test]
    fn ascii_renders_north_up() {
        let map = CoverageMap::from_fn(region(), 1_000.0, |p| {
            Safety::from_not_safe(p.y > 2_500.0) // north occupied
        });
        let ascii = map.to_ascii();
        let lines: Vec<&str> = ascii.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].chars().all(|c| c == '#'), "top row is north: {}", lines[0]);
        assert!(lines[4].chars().all(|c| c == '.'), "bottom row is south");
    }

    #[test]
    fn disagreement_counts_differing_cells() {
        let a = CoverageMap::from_fn(region(), 1_000.0, |_| Safety::Safe);
        let b = CoverageMap::from_fn(region(), 1_000.0, |p| Safety::from_not_safe(p.x > 5_000.0));
        assert_eq!(a.disagreement(&a), 0.0);
        assert!((a.disagreement(&b) - 0.5).abs() < 0.06);
    }

    #[test]
    #[should_panic(expected = "share a grid")]
    fn mismatched_grids_panic() {
        let a = CoverageMap::from_fn(region(), 1_000.0, |_| Safety::Safe);
        let b = CoverageMap::from_fn(region(), 500.0, |_| Safety::Safe);
        let _ = a.disagreement(&b);
    }

    #[test]
    #[should_panic(expected = "outside the mapped region")]
    fn out_of_region_lookup_panics() {
        let map = CoverageMap::from_fn(region(), 1_000.0, |_| Safety::Safe);
        let _ = map.at(Point::new(-1.0, 0.0));
    }
}
