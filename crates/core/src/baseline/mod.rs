//! Every detection approach the paper compares Waldo against (§4.4,
//! Table 2):
//!
//! * [`SpectrumDatabase`] — the FCC-style database: a registry of incumbent
//!   transmitters plus a generic propagation model. Very safe, very
//!   inefficient (overprotection), moderate operational overhead.
//! * [`VScope`] — the measurement-augmented database family: k-means
//!   clusters of local measurements with a per-cluster fitted log-distance
//!   propagation model (Zhang et al., MobiCom'14).
//! * [`KnnDatabase`] — the interpolation flavour of the same family
//!   (Achtzehn et al., Ying et al.): classify by the labels of the nearest
//!   measurements.
//! * [`IdwDatabase`] — the statistical-interpolation flavour: interpolate
//!   the RSS surface itself (inverse-distance weighting standing in for
//!   Kriging) and threshold it at the contour.
//! * [`SensingOnly`] — pure local spectrum sensing at a threshold; at the
//!   FCC's −114 dBm it needs hardware low-cost sensors do not have, so on
//!   their readings it degenerates to "everything is occupied".

mod idw;
mod knn_db;
mod sensing;
mod spectrum_db;
mod vscope;

pub use idw::{IdwDatabase, IdwError};
pub use knn_db::KnnDatabase;
pub use sensing::SensingOnly;
pub use spectrum_db::SpectrumDatabase;
pub use vscope::{VScope, VScopeError};

/// A qualitative row of the paper's Table 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QualitativeProfile {
    /// Approach name.
    pub approach: &'static str,
    /// Where its information comes from.
    pub information_source: &'static str,
    /// Safety rating.
    pub safety: &'static str,
    /// Efficiency rating.
    pub efficiency: &'static str,
    /// Operational overhead rating.
    pub overhead: &'static str,
}

/// The four rows of Table 2, in the paper's column order.
pub fn qualitative_comparison() -> Vec<QualitativeProfile> {
    vec![
        QualitativeProfile {
            approach: "Spectrum sensing",
            information_source: "Local information",
            safety: "Very High",
            efficiency: "Moderate",
            overhead: "High",
        },
        QualitativeProfile {
            approach: "Spectrum databases",
            information_source: "Universal models",
            safety: "Very High",
            efficiency: "Low",
            overhead: "Moderate",
        },
        QualitativeProfile {
            approach: "Measurement-augmented DB",
            information_source: "Locally constructed models",
            safety: "High",
            efficiency: "High",
            overhead: "Moderate",
        },
        QualitativeProfile {
            approach: "Waldo",
            information_source: "Local information + locally constructed models",
            safety: "High",
            efficiency: "Very high",
            overhead: "Low",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_two_has_four_approaches() {
        let rows = qualitative_comparison();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[3].approach, "Waldo");
        assert_eq!(rows[3].overhead, "Low");
        assert!(rows.iter().all(|r| !r.safety.is_empty() && !r.efficiency.is_empty()));
    }
}
