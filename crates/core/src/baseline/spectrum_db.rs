//! The conventional spectrum database (Google/SpectrumBridge class).

use serde::{Deserialize, Serialize};
use waldo_data::Safety;
use waldo_geo::Point;
use waldo_rf::pathloss::PathLossModel;
use waldo_rf::{Transmitter, TvChannel, DECODABLE_DBM, PROTECTION_RADIUS_M};
use waldo_sensors::Observation;

use crate::Assessor;

/// An FCC-style spectrum database for one channel: the incumbent registry
/// plus a generic propagation model. A location is not safe when it falls
/// within any transmitter's predicted protected contour plus the 6 km
/// separation buffer. No measurement ever reaches it — that is the point.
///
/// # Examples
///
/// ```
/// use waldo::baseline::SpectrumDatabase;
/// use waldo_geo::Point;
/// use waldo_rf::{Transmitter, TvChannel};
///
/// let ch = TvChannel::new(30).unwrap();
/// let tx = Transmitter::new(ch, Point::new(0.0, 0.0), 70.0, 300.0);
/// let db = SpectrumDatabase::new(ch, vec![tx]);
/// assert!(db.is_protected(Point::new(1_000.0, 0.0))); // at the mast
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpectrumDatabase {
    channel: TvChannel,
    transmitters: Vec<Transmitter>,
    model: PathLossModel,
    threshold_dbm: f64,
    buffer_m: f64,
    protection_margin_db: f64,
}

impl SpectrumDatabase {
    /// Builds a database from the incumbent registry with the generic
    /// planning-curve model, the −84 dBm contour, and the 6 km buffer.
    ///
    /// # Panics
    ///
    /// Panics if any transmitter is on a different channel.
    pub fn new(channel: TvChannel, transmitters: Vec<Transmitter>) -> Self {
        assert!(
            transmitters.iter().all(|t| t.channel() == channel),
            "registry entries must match the database channel"
        );
        Self {
            channel,
            transmitters,
            model: PathLossModel::ConservativeBroadcast,
            threshold_dbm: DECODABLE_DBM,
            buffer_m: PROTECTION_RADIUS_M,
            protection_margin_db: 4.0,
        }
    }

    /// Overrides the statistical protection margin (dB) the database adds
    /// below the decodability threshold. FCC contours are F(50,90)-style
    /// statistical curves: they protect until the *median* prediction falls
    /// well below decodability, so shadowing upsides stay covered. The
    /// 4 dB default approximates a high location quantile over the
    /// planning curve's residual uncertainty.
    ///
    /// # Panics
    ///
    /// Panics if negative.
    pub fn with_protection_margin_db(mut self, margin: f64) -> Self {
        assert!(margin >= 0.0, "margin must be non-negative");
        self.protection_margin_db = margin;
        self
    }

    /// Overrides the propagation model (ablation hook).
    pub fn with_model(mut self, model: PathLossModel) -> Self {
        self.model = model;
        self
    }

    /// The channel this database answers for.
    pub fn channel(&self) -> TvChannel {
        self.channel
    }

    /// Predicted protected-contour radius for one transmitter, metres
    /// (before the buffer).
    pub fn contour_radius_m(&self, tx: &Transmitter) -> f64 {
        self.model.contour_distance_m(
            tx.erp_dbm(),
            self.channel.center_mhz(),
            tx.height_m(),
            2.0,
            self.threshold_dbm - self.protection_margin_db,
        )
    }

    /// Whether `p` falls inside any predicted contour + buffer.
    pub fn is_protected(&self, p: Point) -> bool {
        self.transmitters
            .iter()
            .any(|tx| tx.location().distance(p) <= self.contour_radius_m(tx) + self.buffer_m)
    }
}

impl Assessor for SpectrumDatabase {
    fn assess(&self, location: Point, _observation: &Observation) -> Safety {
        Safety::from_not_safe(self.is_protected(location))
    }

    fn name(&self) -> String {
        "SpectrumDB".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waldo_rf::pathloss::PathLossModel;

    fn db() -> SpectrumDatabase {
        let ch = TvChannel::new(30).unwrap();
        let tx = Transmitter::new(ch, Point::new(0.0, 0.0), 67.8, 300.0);
        SpectrumDatabase::new(ch, vec![tx])
    }

    #[test]
    fn protection_shrinks_with_distance() {
        let db = db();
        assert!(db.is_protected(Point::new(5_000.0, 0.0)));
        assert!(!db.is_protected(Point::new(200_000.0, 0.0)));
    }

    #[test]
    fn buffer_extends_the_contour() {
        let db = db();
        let tx = db.transmitters[0];
        let r = db.contour_radius_m(&tx);
        assert!(db.is_protected(Point::new(r + 5_999.0, 0.0)));
        assert!(!db.is_protected(Point::new(r + 6_001.0, 0.0)));
    }

    #[test]
    fn generic_model_overpredicts_street_level_truth() {
        // The database's predicted contour must over-reach the street-level
        // truth contour — the overprotection the paper quantifies in Fig 4.
        let db = db();
        let tx = db.transmitters[0];
        let truth =
            PathLossModel::street_level_urban(db.channel().center_mhz(), tx.height_m(), 2.0);
        let d_truth = truth.contour_distance_m(
            tx.erp_dbm(),
            db.channel().center_mhz(),
            tx.height_m(),
            2.0,
            -84.0,
        );
        let d_db = db.contour_radius_m(&tx);
        assert!(d_db > 1.3 * d_truth, "db {d_db} vs truth {d_truth}");
    }

    #[test]
    fn empty_registry_protects_nothing() {
        let ch = TvChannel::new(30).unwrap();
        let db = SpectrumDatabase::new(ch, vec![]);
        assert!(!db.is_protected(Point::new(0.0, 0.0)));
    }

    #[test]
    #[should_panic(expected = "match the database channel")]
    fn wrong_channel_registry_panics() {
        let ch30 = TvChannel::new(30).unwrap();
        let ch15 = TvChannel::new(15).unwrap();
        let tx = Transmitter::new(ch15, Point::new(0.0, 0.0), 60.0, 300.0);
        let _ = SpectrumDatabase::new(ch30, vec![tx]);
    }
}
