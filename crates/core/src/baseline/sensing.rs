//! Threshold-only local spectrum sensing.

use serde::{Deserialize, Serialize};
use waldo_data::Safety;
use waldo_geo::Point;
use waldo_rf::SENSING_THRESHOLD_DBM;
use waldo_sensors::Observation;

use crate::Assessor;

/// Pure spectrum sensing: a channel is not safe whenever the local reading
/// exceeds a threshold. The FCC requires −114 dBm for standalone sensing —
/// 30 dB below decodability — precisely because a single local reading can
/// sit in a hidden-node null. Low-cost sensors cannot reach that floor
/// (their vacant-channel readings already sit near −86/−91 dBm), so on
/// their output this baseline collapses to "everything occupied".
///
/// # Examples
///
/// ```
/// use waldo::baseline::SensingOnly;
///
/// let fcc = SensingOnly::fcc();
/// assert_eq!(fcc.threshold_dbm(), -114.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensingOnly {
    threshold_dbm: f64,
}

impl SensingOnly {
    /// The FCC's −114 dBm sensing rule.
    pub fn fcc() -> Self {
        Self { threshold_dbm: SENSING_THRESHOLD_DBM }
    }

    /// A custom threshold (e.g. −84 dBm "optimistic sensing").
    ///
    /// # Panics
    ///
    /// Panics if not finite.
    pub fn with_threshold(threshold_dbm: f64) -> Self {
        assert!(threshold_dbm.is_finite(), "threshold must be finite");
        Self { threshold_dbm }
    }

    /// The active threshold.
    pub fn threshold_dbm(&self) -> f64 {
        self.threshold_dbm
    }
}

impl Assessor for SensingOnly {
    fn assess(&self, _location: Point, observation: &Observation) -> Safety {
        Safety::from_not_safe(observation.rss_dbm > self.threshold_dbm)
    }

    fn name(&self) -> String {
        format!("Sensing({} dBm)", self.threshold_dbm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use waldo_sensors::{Calibration, SensorModel};

    fn observe(sensor: &SensorModel, rss: Option<f64>, seed: u64) -> Observation {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Observation::measure(sensor, &Calibration::factory(sensor), rss, &mut rng)
    }

    #[test]
    fn threshold_splits_decisions() {
        let s = SensingOnly::with_threshold(-84.0);
        let sa = SensorModel::spectrum_analyzer();
        let hot = observe(&sa, Some(-60.0), 1);
        let cold = observe(&sa, Some(-110.0), 2);
        assert!(s.assess(Point::default(), &hot).is_not_safe());
        assert!(!s.assess(Point::default(), &cold).is_not_safe());
    }

    #[test]
    fn fcc_threshold_on_low_cost_hardware_declares_everything_occupied() {
        // The infeasibility argument of §1: an RTL-SDR's vacant-channel
        // reading (~−86 dBm) is far above −114 dBm, so sensing-only marks
        // even silent channels as occupied.
        let s = SensingOnly::fcc();
        let rtl = SensorModel::rtl_sdr();
        for seed in 0..20 {
            let vacant = observe(&rtl, None, seed);
            assert!(s.assess(Point::default(), &vacant).is_not_safe());
        }
    }

    #[test]
    fn analyzer_can_use_the_fcc_threshold() {
        let s = SensingOnly::fcc();
        let sa = SensorModel::spectrum_analyzer();
        // A genuinely silent channel reads ≈ −102 dBm (floor + 12)… still
        // above −114: even the analyzer overprotects under sensing rules,
        // which is the 2× coverage overprotection the paper cites [30].
        let vacant = observe(&sa, None, 3);
        assert!(s.assess(Point::default(), &vacant).is_not_safe());
    }
}
