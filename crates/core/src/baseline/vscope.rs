//! V-Scope (Zhang et al., MobiCom'14): a measurement-augmented spectrum
//! database. The paper re-implements its two core modules — measurement
//! clustering and propagation-model fitting — and so does this baseline:
//! k-means over measurement locations, then a per-cluster log-distance
//! path-loss fit (`rss = p₀ − 10·n·log₁₀ d`) against the nearest
//! transmitter. Queries predict the RSS at the location with the local
//! fitted model and protect anything whose *predicted* level (plus the 6 km
//! buffer treated in the distance domain) clears the −84 dBm contour.
//!
//! The structural weakness Waldo exploits is visible right in the design:
//! the fitted model smooths over pockets — a location inside an obstacle
//! shadow still *predicts* hot because the cluster-level fit cannot see
//! point effects.

use serde::{Deserialize, Serialize};
use waldo_data::ChannelDataset;
use waldo_data::Safety;
use waldo_geo::Point;
use waldo_ml::kmeans::{Clustering, KMeans};
use waldo_ml::linreg::LinearRegression;
use waldo_rf::{Transmitter, TvChannel, DECODABLE_DBM, PROTECTION_RADIUS_M};
use waldo_sensors::Observation;

use crate::Assessor;

/// Errors from fitting the V-Scope model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VScopeError {
    /// No measurements.
    Empty,
    /// The channel has no registered transmitter to anchor distances on.
    NoTransmitter,
    /// Fewer measurements than clusters.
    TooFewForClusters,
}

impl std::fmt::Display for VScopeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VScopeError::Empty => write!(f, "no measurements to fit"),
            VScopeError::NoTransmitter => write!(f, "no transmitter to anchor the fit"),
            VScopeError::TooFewForClusters => write!(f, "fewer measurements than clusters"),
        }
    }
}

impl std::error::Error for VScopeError {}

/// One cluster's fitted log-distance model: `rss(d) = intercept + slope·log₁₀ d_km`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ClusterFit {
    intercept: f64,
    slope: f64,
}

impl ClusterFit {
    fn predict_rss(&self, d_m: f64) -> f64 {
        self.intercept + self.slope * (d_m.max(50.0) / 1000.0).log10()
    }
}

/// The fitted V-Scope baseline for one channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VScope {
    channel: TvChannel,
    transmitters: Vec<Transmitter>,
    clustering: Clustering,
    fits: Vec<ClusterFit>,
    threshold_dbm: f64,
    buffer_m: f64,
    protection_margin_db: f64,
}

impl VScope {
    /// Fits from a labeled channel dataset and the incumbent registry for
    /// the same channel, using `clusters` measurement clusters.
    ///
    /// # Errors
    ///
    /// Returns [`VScopeError`] on empty data, a missing transmitter, or
    /// fewer measurements than clusters.
    pub fn fit(
        ds: &ChannelDataset,
        transmitters: Vec<Transmitter>,
        clusters: usize,
        seed: u64,
    ) -> Result<Self, VScopeError> {
        if ds.is_empty() {
            return Err(VScopeError::Empty);
        }
        if transmitters.is_empty() {
            return Err(VScopeError::NoTransmitter);
        }
        if ds.len() < clusters {
            return Err(VScopeError::TooFewForClusters);
        }

        let locations: Vec<Vec<f64>> = ds
            .measurements()
            .iter()
            .map(|m| vec![m.location.x / 1000.0, m.location.y / 1000.0])
            .collect();
        let clustering = KMeans::new(clusters)
            .seed(seed)
            .fit(&locations)
            .expect("validated: len ≥ clusters ≥ 1");

        let nearest_tx_dist = |p: Point| -> f64 {
            transmitters.iter().map(|t| t.location().distance(p)).fold(f64::INFINITY, f64::min)
        };

        let mut fits = Vec::with_capacity(clusters);
        for c in 0..clusters {
            let pairs: Vec<(f64, f64)> = ds
                .measurements()
                .iter()
                .enumerate()
                .filter(|(i, _)| clustering.assignment()[*i] == c)
                .map(|(_, m)| {
                    let d_km = (nearest_tx_dist(m.location).max(50.0)) / 1000.0;
                    (d_km.log10(), m.observation.rss_dbm)
                })
                .collect();
            let fit = match LinearRegression::fit_simple(&pairs) {
                Ok(reg) => ClusterFit { intercept: reg.intercept(), slope: reg.coefficients()[0] },
                // Degenerate cluster (e.g. all at one distance): fall back
                // to a flat model at the cluster's mean RSS.
                Err(_) => {
                    let mean = pairs.iter().map(|p| p.1).sum::<f64>() / pairs.len().max(1) as f64;
                    ClusterFit { intercept: mean, slope: 0.0 }
                }
            };
            fits.push(fit);
        }
        Ok(Self {
            channel: ds.channel(),
            transmitters,
            clustering,
            fits,
            threshold_dbm: DECODABLE_DBM,
            buffer_m: PROTECTION_RADIUS_M,
            protection_margin_db: 3.0,
        })
    }

    /// Overrides the statistical protection margin added below the
    /// decodability threshold (default 3 dB: the fitted model predicts the
    /// *median*, so part of a shadowing quantile must be protected on top —
    /// the same compromise real measurement-augmented databases make).
    ///
    /// # Panics
    ///
    /// Panics if negative.
    pub fn with_protection_margin_db(mut self, margin: f64) -> Self {
        assert!(margin >= 0.0, "margin must be non-negative");
        self.protection_margin_db = margin;
        self
    }

    /// Predicted RSS at `p` from the local cluster's fitted model.
    pub fn predict_rss_dbm(&self, p: Point) -> f64 {
        let cluster = self.clustering.assign(&[p.x / 1000.0, p.y / 1000.0]);
        let d = self
            .transmitters
            .iter()
            .map(|t| t.location().distance(p))
            .fold(f64::INFINITY, f64::min);
        self.fits[cluster].predict_rss(d)
    }

    /// Whether the fitted model protects `p`: predicted RSS at the point —
    /// or at the buffer-shifted distance toward the transmitter — clears
    /// the contour threshold.
    pub fn is_protected(&self, p: Point) -> bool {
        let cluster = self.clustering.assign(&[p.x / 1000.0, p.y / 1000.0]);
        let d = self
            .transmitters
            .iter()
            .map(|t| t.location().distance(p))
            .fold(f64::INFINITY, f64::min);
        // 6 km closer to the transmitter: the separation buffer in the
        // distance domain.
        let d_buffered = (d - self.buffer_m).max(50.0);
        self.fits[cluster].predict_rss(d_buffered) > self.threshold_dbm - self.protection_margin_db
    }

    /// The fitted per-cluster path-loss exponents (−slope/10), for
    /// analysis.
    pub fn fitted_exponents(&self) -> Vec<f64> {
        self.fits.iter().map(|f| -f.slope / 10.0).collect()
    }
}

impl Assessor for VScope {
    fn assess(&self, location: Point, _observation: &Observation) -> Safety {
        Safety::from_not_safe(self.is_protected(location))
    }

    fn name(&self) -> String {
        format!("V-Scope(k={})", self.fits.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waldo_data::Measurement;
    use waldo_iq::FeatureVector;
    use waldo_sensors::SensorKind;

    /// Synthetic channel: one transmitter at the origin, clean log-distance
    /// decay with exponent 4 and intercept −30 dBm at 1 km.
    fn dataset(n: usize) -> (ChannelDataset, Vec<Transmitter>) {
        let ch = TvChannel::new(30).unwrap();
        let tx = Transmitter::new(ch, Point::new(0.0, 0.0), 70.0, 300.0);
        let mut measurements = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let d = 1_000.0 + (i as f64 / n as f64) * 29_000.0;
            let angle = (i as f64) * 0.7;
            let p = Point::new(d * angle.cos(), d * angle.sin());
            let rss = -30.0 - 40.0 * (d / 1000.0).log10();
            measurements.push(Measurement {
                location: p,
                odometer_m: 0.0,
                observation: Observation {
                    rss_dbm: rss,
                    features: FeatureVector {
                        rss_db: rss,
                        cft_db: rss - 11.3,
                        aft_db: rss - 12.5,
                        quadrature_imbalance_db: 0.0,
                        iq_kurtosis: 0.0,
                        edge_bin_db: -110.0,
                    },
                    raw_pilot_db: rss - 11.3,
                },
                true_rss_dbm: rss,
            });
            labels.push(Safety::from_not_safe(rss > -84.0));
        }
        (ChannelDataset::new(ch, SensorKind::SpectrumAnalyzer, measurements, labels), vec![tx])
    }

    #[test]
    fn recovers_the_true_exponent() {
        let (ds, txs) = dataset(400);
        let vs = VScope::fit(&ds, txs, 1, 0).unwrap();
        let n = vs.fitted_exponents()[0];
        assert!((n - 4.0).abs() < 0.05, "fitted exponent {n}");
        // And the intercept: predicted RSS at 1 km ≈ −30 dBm.
        let at_1km = vs.predict_rss_dbm(Point::new(1_000.0, 0.0));
        assert!((at_1km - -30.0).abs() < 0.5, "at 1 km: {at_1km}");
    }

    #[test]
    fn protects_inside_contour_frees_outside() {
        let (ds, txs) = dataset(400);
        let vs = VScope::fit(&ds, txs, 1, 0).unwrap();
        // True −84 contour: −30 − 40·log d = −84 → d = 22.4 km. With the
        // 3 dB protection margin the model guards to −87 dBm (26.7 km)
        // plus the 6 km buffer.
        assert!(vs.is_protected(Point::new(20_000.0, 0.0)));
        assert!(vs.is_protected(Point::new(31_000.0, 0.0))); // margin + buffer
        assert!(!vs.is_protected(Point::new(40_000.0, 0.0)));
    }

    #[test]
    fn cannot_see_pockets() {
        // Poke a 25 dB hole into the measurements near 10 km: the fitted
        // model still predicts hot there — the structural error Waldo
        // fixes.
        let (ds, txs) = dataset(400);
        let vs = VScope::fit(&ds, txs, 1, 0).unwrap();
        let pocket = Point::new(10_000.0, 0.0);
        // Truth-with-pocket would be −70 − 25 = −95 dBm → safe; V-Scope
        // predicts the smooth −70 dBm → protected.
        assert!(vs.is_protected(pocket));
        assert!(vs.predict_rss_dbm(pocket) > -75.0);
    }

    #[test]
    fn fit_errors() {
        let (ds, txs) = dataset(10);
        assert_eq!(VScope::fit(&ds, vec![], 1, 0).unwrap_err(), VScopeError::NoTransmitter);
        assert_eq!(VScope::fit(&ds, txs, 100, 0).unwrap_err(), VScopeError::TooFewForClusters);
    }

    #[test]
    fn multiple_clusters_fit_locally() {
        let (ds, txs) = dataset(600);
        let vs = VScope::fit(&ds, txs, 3, 1).unwrap();
        for n in vs.fitted_exponents() {
            assert!((n - 4.0).abs() < 0.4, "cluster exponent {n}");
        }
    }
}
