//! k-NN interpolation over labeled measurements: the
//! measurement-augmented-database flavour that classifies a query location
//! by the labels of the nearest collected readings (Achtzehn et al.,
//! Ying et al. — location-only, no signal features).

use serde::{Deserialize, Serialize};
use waldo_data::{ChannelDataset, Safety};
use waldo_geo::Point;
use waldo_ml::knn::{KnnClassifier, KnnError};
use waldo_ml::{Classifier, Dataset};
use waldo_sensors::Observation;

use crate::Assessor;

/// Location-only k-NN over the labeled campaign measurements.
///
/// # Examples
///
/// ```no_run
/// # let ds: waldo_data::ChannelDataset = unimplemented!();
/// use waldo::baseline::KnnDatabase;
///
/// let knn = KnnDatabase::fit(&ds, 5).unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnnDatabase {
    k: usize,
    knn: KnnClassifier,
}

impl KnnDatabase {
    /// Builds from a labeled dataset with `k` neighbours.
    ///
    /// # Errors
    ///
    /// Returns [`KnnError`] on an empty dataset or `k == 0`.
    pub fn fit(ds: &ChannelDataset, k: usize) -> Result<Self, KnnError> {
        let rows: Vec<Vec<f64>> = ds
            .measurements()
            .iter()
            .map(|m| vec![m.location.x / 1000.0, m.location.y / 1000.0])
            .collect();
        let ml = Dataset::from_rows(rows, ds.label_bools())
            .expect("locations are finite by construction");
        Ok(Self { k, knn: KnnClassifier::fit(k, &ml)? })
    }

    /// The neighbour count.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Assessor for KnnDatabase {
    fn assess(&self, location: Point, _observation: &Observation) -> Safety {
        Safety::from_not_safe(self.knn.predict(&[location.x / 1000.0, location.y / 1000.0]))
    }

    fn name(&self) -> String {
        format!("kNN-DB(k={})", self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waldo_data::Measurement;
    use waldo_iq::FeatureVector;
    use waldo_rf::TvChannel;
    use waldo_sensors::SensorKind;

    fn observation(rss: f64) -> Observation {
        Observation {
            rss_dbm: rss,
            features: FeatureVector {
                rss_db: rss,
                cft_db: rss - 11.3,
                aft_db: rss - 12.5,
                quadrature_imbalance_db: 0.0,
                iq_kurtosis: 0.0,
                edge_bin_db: -110.0,
            },
            raw_pilot_db: rss - 11.3,
        }
    }

    fn dataset() -> ChannelDataset {
        let mut measurements = Vec::new();
        let mut labels = Vec::new();
        for i in 0..100 {
            let x = i as f64 * 300.0;
            measurements.push(Measurement {
                location: Point::new(x, 0.0),
                odometer_m: x,
                observation: observation(-90.0),
                true_rss_dbm: -90.0,
            });
            labels.push(Safety::from_not_safe(x > 15_000.0));
        }
        ChannelDataset::new(TvChannel::new(30).unwrap(), SensorKind::RtlSdr, measurements, labels)
    }

    #[test]
    fn interpolates_labels_spatially() {
        let knn = KnnDatabase::fit(&dataset(), 5).unwrap();
        let obs = observation(-90.0);
        assert!(knn.assess(Point::new(25_000.0, 0.0), &obs).is_not_safe());
        assert!(!knn.assess(Point::new(5_000.0, 0.0), &obs).is_not_safe());
    }

    #[test]
    fn ignores_the_observation_entirely() {
        let knn = KnnDatabase::fit(&dataset(), 5).unwrap();
        let weak = observation(-120.0);
        let strong = observation(-40.0);
        let p = Point::new(25_000.0, 0.0);
        assert_eq!(knn.assess(p, &weak), knn.assess(p, &strong));
    }

    #[test]
    fn zero_k_errors() {
        assert!(KnnDatabase::fit(&dataset(), 0).is_err());
    }
}
