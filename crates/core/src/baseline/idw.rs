//! Inverse-distance-weighted RSS interpolation: the statistical-
//! interpolation flavour of the measurement-augmented-database family
//! (Ying et al., COMSNETS'15 revisit TV coverage estimation with exactly
//! such measurement-based interpolation; Achtzehn et al. use Kriging —
//! IDW is its standard lightweight stand-in).
//!
//! The database interpolates a *signal level* at the query point from
//! nearby measurements and thresholds it at the protected contour; like
//! V-Scope it never looks at the querying device's own reading.

use waldo_data::{ChannelDataset, Safety};
use waldo_geo::{GridIndex, Point};
use waldo_rf::DECODABLE_DBM;
use waldo_sensors::Observation;

use crate::Assessor;

/// Errors from building the interpolator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdwError {
    /// No measurements.
    Empty,
}

impl std::fmt::Display for IdwError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IdwError::Empty => write!(f, "no measurements to interpolate from"),
        }
    }
}

impl std::error::Error for IdwError {}

/// Inverse-distance-weighted RSS interpolation database.
///
/// # Examples
///
/// ```no_run
/// # let ds: waldo_data::ChannelDataset = unimplemented!();
/// use waldo::baseline::IdwDatabase;
///
/// let idw = IdwDatabase::fit(&ds).unwrap();
/// let rss = idw.interpolate_rss_dbm(waldo_geo::Point::new(1_000.0, 2_000.0));
/// # let _ = rss;
/// ```
#[derive(Debug, Clone)]
pub struct IdwDatabase {
    points: Vec<(Point, f64)>,
    index: GridIndex<usize>,
    power: f64,
    search_radius_m: f64,
    threshold_dbm: f64,
    margin_db: f64,
}

fn default_index() -> GridIndex<usize> {
    GridIndex::new(2_000.0)
}

impl PartialEq for IdwDatabase {
    fn eq(&self, other: &Self) -> bool {
        self.points == other.points
            && self.power == other.power
            && self.search_radius_m == other.search_radius_m
            && self.threshold_dbm == other.threshold_dbm
            && self.margin_db == other.margin_db
    }
}

impl IdwDatabase {
    /// Builds the interpolator from a channel dataset (weight exponent 2,
    /// 3 km search radius, −84 dBm contour with a 3 dB protection margin).
    ///
    /// # Errors
    ///
    /// Returns [`IdwError::Empty`] for an empty dataset.
    pub fn fit(ds: &ChannelDataset) -> Result<Self, IdwError> {
        if ds.is_empty() {
            return Err(IdwError::Empty);
        }
        let points: Vec<(Point, f64)> =
            ds.measurements().iter().map(|m| (m.location, m.observation.rss_dbm)).collect();
        let mut index = default_index();
        for (i, &(p, _)) in points.iter().enumerate() {
            index.insert(p, i);
        }
        Ok(Self {
            points,
            index,
            power: 2.0,
            search_radius_m: 3_000.0,
            threshold_dbm: DECODABLE_DBM,
            margin_db: 3.0,
        })
    }

    /// Interpolated RSS at `p` (dBm): inverse-distance-squared weighted
    /// mean over measurements within the search radius, falling back to
    /// the single nearest measurement when the radius is empty. A query
    /// within 1 m of a measurement returns that measurement's value.
    pub fn interpolate_rss_dbm(&self, p: Point) -> f64 {
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for (q, &i) in self.index.within(p, self.search_radius_m) {
            let d = q.distance(p);
            if d < 1.0 {
                return self.points[i].1;
            }
            let w = 1.0 / d.powf(self.power);
            num += w * self.points[i].1;
            den += w;
        }
        if den > 0.0 {
            num / den
        } else {
            let (_, &i) =
                self.index.nearest(p).expect("construction guarantees at least one point");
            self.points[i].1
        }
    }

    /// Whether the interpolated level clears the (margin-protected)
    /// contour threshold.
    pub fn is_protected(&self, p: Point) -> bool {
        self.interpolate_rss_dbm(p) > self.threshold_dbm - self.margin_db
    }
}

impl Assessor for IdwDatabase {
    fn assess(&self, location: Point, _observation: &Observation) -> Safety {
        Safety::from_not_safe(self.is_protected(location))
    }

    fn name(&self) -> String {
        "IDW-DB".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waldo_data::Measurement;
    use waldo_iq::FeatureVector;
    use waldo_rf::TvChannel;
    use waldo_sensors::SensorKind;

    fn m(x: f64, rss: f64) -> Measurement {
        Measurement {
            location: Point::new(x, 0.0),
            odometer_m: x,
            observation: Observation {
                rss_dbm: rss,
                features: FeatureVector {
                    rss_db: rss,
                    cft_db: rss - 11.3,
                    aft_db: rss - 12.5,
                    quadrature_imbalance_db: 0.0,
                    iq_kurtosis: 0.0,
                    edge_bin_db: -110.0,
                },
                raw_pilot_db: rss - 11.3,
            },
            true_rss_dbm: rss,
        }
    }

    fn dataset() -> ChannelDataset {
        // East hot (−70), west cold (−100), smooth ramp between.
        let measurements: Vec<Measurement> = (0..200)
            .map(|i| {
                let x = i as f64 * 150.0;
                let rss = -100.0 + 30.0 * (x / 30_000.0).clamp(0.0, 1.0);
                m(x, rss)
            })
            .collect();
        let labels = measurements
            .iter()
            .map(|mm| Safety::from_not_safe(mm.observation.rss_dbm > -84.0))
            .collect();
        ChannelDataset::new(TvChannel::new(30).unwrap(), SensorKind::RtlSdr, measurements, labels)
    }

    #[test]
    fn interpolation_tracks_the_ramp() {
        let idw = IdwDatabase::fit(&dataset()).unwrap();
        let est = idw.interpolate_rss_dbm(Point::new(15_000.0, 200.0));
        assert!((est - -85.0).abs() < 1.5, "got {est}");
    }

    #[test]
    fn exact_measurement_points_return_their_value() {
        let idw = IdwDatabase::fit(&dataset()).unwrap();
        let est = idw.interpolate_rss_dbm(Point::new(0.0, 0.0));
        assert!((est - -100.0).abs() < 1e-9);
    }

    #[test]
    fn far_queries_fall_back_to_nearest() {
        let idw = IdwDatabase::fit(&dataset()).unwrap();
        // 20 km north of the transect: outside every search radius.
        let est = idw.interpolate_rss_dbm(Point::new(29_850.0, 20_000.0));
        assert!((est - -70.15).abs() < 0.5, "got {est}");
    }

    #[test]
    fn protection_follows_the_contour_with_margin() {
        let idw = IdwDatabase::fit(&dataset()).unwrap();
        // Interpolated −84 at x = 16 km; the 3 dB margin protects down to
        // −87 (x = 13 km).
        assert!(idw.is_protected(Point::new(20_000.0, 0.0)));
        assert!(idw.is_protected(Point::new(14_000.0, 0.0)));
        assert!(!idw.is_protected(Point::new(8_000.0, 0.0)));
    }

    #[test]
    fn ignores_the_observation() {
        let idw = IdwDatabase::fit(&dataset()).unwrap();
        let weak = dataset().measurements()[0].observation;
        let p = Point::new(25_000.0, 0.0);
        assert!(idw.assess(p, &weak).is_not_safe());
    }

    #[test]
    fn empty_dataset_errors() {
        let empty =
            ChannelDataset::new(TvChannel::new(30).unwrap(), SensorKind::RtlSdr, vec![], vec![]);
        assert_eq!(IdwDatabase::fit(&empty).unwrap_err(), IdwError::Empty);
    }
}
