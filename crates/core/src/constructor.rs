//! Model construction (§3.2): localities identification + per-locality
//! classifier training.

use serde::{Deserialize, Serialize};
use waldo_data::ChannelDataset;
use waldo_iq::FeatureSet;
use waldo_ml::kmeans::KMeans;
use waldo_ml::model_selection::stratified_cap;
use waldo_ml::nb::GaussianNbTrainer;
use waldo_ml::svm::SvmTrainer;
use waldo_ml::tree::DecisionTreeTrainer;
use waldo_ml::{Dataset, StandardScaler};

use crate::model::{ClusterModel, WaldoModel};

/// The classifier family trained per locality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClassifierKind {
    /// Support-vector machine (RBF); the paper's primary choice.
    Svm,
    /// Gaussian Naive Bayes; the compact alternative.
    NaiveBayes,
    /// CART decision tree; kept for the overfitting ablation the paper ran
    /// and rejected.
    DecisionTree,
    /// L2-regularized logistic regression — the "regression analysis"
    /// family of §3.2; the smallest descriptor of all.
    Logistic,
}

impl std::fmt::Display for ClassifierKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ClassifierKind::Svm => "SVM",
            ClassifierKind::NaiveBayes => "NB",
            ClassifierKind::DecisionTree => "DT",
            ClassifierKind::Logistic => "LR",
        };
        f.write_str(name)
    }
}

/// Configuration for [`ModelConstructor`].
///
/// # Examples
///
/// ```
/// use waldo::{ClassifierKind, WaldoConfig};
/// use waldo_iq::FeatureSet;
///
/// let cfg = WaldoConfig::default()
///     .classifier(ClassifierKind::NaiveBayes)
///     .features(FeatureSet::first_n(2))
///     .localities(3);
/// assert_eq!(cfg.locality_count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaldoConfig {
    classifier: ClassifierKind,
    features: FeatureSet,
    localities: usize,
    svm_train_cap: usize,
    svm_c: f64,
    svm_gamma_factor: f64,
    seed: u64,
}

impl Default for WaldoConfig {
    /// The paper's headline configuration: SVM, location + RSS + CFT (the
    /// two-signal-feature setup of Table 1), three localities.
    fn default() -> Self {
        Self {
            classifier: ClassifierKind::Svm,
            features: FeatureSet::first_n(2),
            localities: 3,
            svm_train_cap: 900,
            svm_c: 10.0,
            svm_gamma_factor: 0.5,
            seed: 0,
        }
    }
}

impl WaldoConfig {
    /// Sets the classifier family.
    pub fn classifier(mut self, kind: ClassifierKind) -> Self {
        self.classifier = kind;
        self
    }

    /// Sets the signal-feature set (location is always included).
    pub fn features(mut self, features: FeatureSet) -> Self {
        self.features = features;
        self
    }

    /// Sets the number of localities (k-means clusters). `1` disables
    /// partitioning.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn localities(mut self, k: usize) -> Self {
        assert!(k > 0, "need at least one locality");
        self.localities = k;
        self
    }

    /// Caps SVM training samples per locality via stratified subsampling
    /// (SMO is quadratic; 900 default keeps a full 10-fold sweep tractable
    /// while leaving accuracy unchanged on this data).
    ///
    /// # Panics
    ///
    /// Panics if below 10.
    pub fn svm_train_cap(mut self, cap: usize) -> Self {
        assert!(cap >= 10, "cap too small to train on");
        self.svm_train_cap = cap;
        self
    }

    /// SVM soft-margin penalty (default 10).
    ///
    /// # Panics
    ///
    /// Panics unless positive.
    pub fn svm_c(mut self, c: f64) -> Self {
        assert!(c > 0.0, "C must be positive");
        self.svm_c = c;
        self
    }

    /// RBF width γ over standardized features (default 0.5). γ is held
    /// constant as features are appended so that per-dimension resolution
    /// — in particular location resolution — does not dilute with the
    /// feature count.
    ///
    /// # Panics
    ///
    /// Panics unless positive.
    pub fn svm_gamma_factor(mut self, f: f64) -> Self {
        assert!(f > 0.0, "gamma factor must be positive");
        self.svm_gamma_factor = f;
        self
    }

    /// Seed for clustering and subsampling.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The configured classifier family.
    pub fn classifier_kind(&self) -> ClassifierKind {
        self.classifier
    }

    /// The configured feature set.
    pub fn feature_set(&self) -> &FeatureSet {
        &self.features
    }

    /// The configured locality count.
    pub fn locality_count(&self) -> usize {
        self.localities
    }
}

/// Errors from model construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainError {
    /// No measurements to train on.
    Empty,
    /// Fewer measurements than localities.
    TooFewForLocalities,
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Empty => write!(f, "no labeled measurements to train on"),
            TrainError::TooFewForLocalities => {
                write!(f, "fewer measurements than requested localities")
            }
        }
    }
}

impl std::error::Error for TrainError {}

/// The Model Constructor module: turns a labeled [`ChannelDataset`] into a
/// downloadable [`WaldoModel`].
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConstructor {
    config: WaldoConfig,
}

impl ModelConstructor {
    /// Creates a constructor with `config`.
    pub fn new(config: WaldoConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &WaldoConfig {
        &self.config
    }

    /// Trains a model from a labeled dataset.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] if the dataset is empty or smaller than the
    /// locality count.
    pub fn fit(&self, ds: &ChannelDataset) -> Result<WaldoModel, TrainError> {
        let ml = ds.to_ml_dataset(&self.config.features).map_err(|_| TrainError::Empty)?;
        self.fit_dataset(&ml)
    }

    /// Trains from a pre-assembled ML dataset whose rows follow the
    /// `[x_km, y_km, features…]` layout.
    ///
    /// # Errors
    ///
    /// Same as [`fit`](Self::fit).
    pub fn fit_dataset(&self, ml: &Dataset) -> Result<WaldoModel, TrainError> {
        let _t = waldo_prof::scope("model_fit");
        if ml.is_empty() {
            return Err(TrainError::Empty);
        }
        if ml.len() < self.config.localities {
            return Err(TrainError::TooFewForLocalities);
        }

        // Localities identification: cluster on location only.
        let locations: Vec<Vec<f64>> = ml.rows().iter().map(|r| r[..2].to_vec()).collect();
        let clustering = KMeans::new(self.config.localities)
            .seed(self.config.seed)
            .fit(&locations)
            .expect("validated above: len ≥ k ≥ 1");

        // Locality training is embarrassingly parallel: each cluster trains
        // from its own seeded trainer state, so the fan-out is bit-identical
        // to a serial loop regardless of worker count.
        let memberships: Vec<Vec<usize>> = (0..self.config.localities)
            .map(|c| (0..ml.len()).filter(|&i| clustering.assignment()[i] == c).collect())
            .collect();
        let clusters = waldo_par::par_map(&memberships, |indices| self.fit_cluster(ml, indices));
        // The per-training-point assignment scales with the campaign (up to
        // ~142k entries), not the model; devices only route by centroid, so
        // the downloadable descriptor ships without it.
        let clustering = clustering.without_assignment();
        Ok(WaldoModel { features: self.config.features.clone(), clustering, clusters })
    }

    /// Retrains only the localities in `changed`, keeping `base`'s
    /// clustering — and therefore its locality geometry and routing —
    /// fixed. This is the ingestion plane's incremental refit: after new
    /// crowd-sourced readings land, only the localities whose reading set
    /// actually changed pay a training pass; every other locality keeps its
    /// exact trained parameters (and so its payload bytes and digest, which
    /// is what lets the serve catalog's publish diff leave their
    /// change-epochs alone).
    ///
    /// `ml` must hold the *full* labeled reading set (base campaign plus
    /// uploads) in `base`'s row layout — Algorithm 1's 6 km poisoning rule
    /// is non-local, so labels are always recomputed globally even though
    /// training is not.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Empty`] for an empty dataset.
    ///
    /// # Panics
    ///
    /// Panics if a changed index is out of range or `ml`'s row width does
    /// not match `base`'s feature layout.
    pub fn refit_localities(
        &self,
        base: &WaldoModel,
        ml: &Dataset,
        changed: &[usize],
    ) -> Result<WaldoModel, TrainError> {
        let _t = waldo_prof::scope("model_refit");
        if ml.is_empty() {
            return Err(TrainError::Empty);
        }
        assert_eq!(ml.dim(), 2 + base.features.len(), "dataset does not match the base layout");
        let k = base.clusters.len();
        let mut order: Vec<usize> = changed.to_vec();
        order.sort_unstable();
        order.dedup();
        assert!(order.iter().all(|&c| c < k), "changed locality out of range");

        // Route every row through the *fixed* centroids, then retrain only
        // the changed localities (in parallel, like the full fit).
        let memberships: Vec<Vec<usize>> = order
            .iter()
            .map(|&c| {
                (0..ml.len()).filter(|&i| base.clustering.assign(&ml.rows()[i][..2]) == c).collect()
            })
            .collect();
        let retrained = waldo_par::par_map(&memberships, |indices| self.fit_cluster(ml, indices));
        let mut clusters = base.clusters.clone();
        for (&c, cluster) in order.iter().zip(retrained) {
            clusters[c] = cluster;
        }
        Ok(WaldoModel {
            features: base.features.clone(),
            clustering: base.clustering.clone(),
            clusters,
        })
    }

    fn fit_cluster(&self, ml: &Dataset, indices: &[usize]) -> ClusterModel {
        let sub = ml.subset(indices);
        if sub.is_empty() {
            // An empty locality defaults to not-safe: the conservative call
            // for territory nobody has measured.
            return ClusterModel::Constant(true);
        }
        if !sub.has_both_classes() {
            return ClusterModel::Constant(sub.labels()[0]);
        }
        let scaler = StandardScaler::fit(&sub);
        let scaled = scaler.transform_dataset(&sub);
        match self.config.classifier {
            ClassifierKind::Svm => {
                let capped = scaled.subset(&stratified_cap(
                    &scaled,
                    self.config.svm_train_cap,
                    self.config.seed,
                ));
                let gamma = self.config.svm_gamma_factor;
                let trainer = SvmTrainer::new()
                    .c(self.config.svm_c)
                    .kernel(waldo_ml::svm::Kernel::Rbf { gamma })
                    .seed(self.config.seed);
                match trainer.fit(&capped) {
                    Ok(model) => ClusterModel::Svm { scaler, model },
                    Err(_) => ClusterModel::Constant(majority(&sub)),
                }
            }
            ClassifierKind::NaiveBayes => match GaussianNbTrainer::new().fit(&scaled) {
                Ok(model) => ClusterModel::Nb { scaler, model },
                Err(_) => ClusterModel::Constant(majority(&sub)),
            },
            ClassifierKind::DecisionTree => match DecisionTreeTrainer::new().fit(&scaled) {
                Ok(model) => ClusterModel::Tree { scaler, model },
                Err(_) => ClusterModel::Constant(majority(&sub)),
            },
            ClassifierKind::Logistic => {
                match waldo_ml::logistic::LogisticTrainer::new().fit(&scaled) {
                    Ok(model) => ClusterModel::Logistic { scaler, model },
                    Err(_) => ClusterModel::Constant(majority(&sub)),
                }
            }
        }
    }
}

fn majority(ds: &Dataset) -> bool {
    ds.positives() * 2 >= ds.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use waldo_data::{ChannelDataset, Measurement, Safety};
    use waldo_geo::Point;
    use waldo_iq::FeatureVector;
    use waldo_rf::TvChannel;
    use waldo_sensors::{Observation, SensorKind};

    /// A synthetic "channel": not-safe in the east (x > 15 km), where RSS
    /// is also higher — so location alone works, and features agree.
    fn synthetic_dataset(n: usize) -> ChannelDataset {
        let mut measurements = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let x = (i as f64 / n as f64) * 30_000.0;
            let y = ((i * 7) % 20) as f64 * 1_000.0;
            let not_safe = x > 15_000.0;
            let rss = if not_safe { -70.0 } else { -95.0 } + ((i % 5) as f64 - 2.0);
            measurements.push(Measurement {
                location: Point::new(x, y),
                odometer_m: i as f64 * 100.0,
                observation: Observation {
                    rss_dbm: rss,
                    features: FeatureVector {
                        rss_db: rss,
                        cft_db: rss - 11.3,
                        aft_db: rss - 12.5,
                        quadrature_imbalance_db: 0.0,
                        iq_kurtosis: 0.0,
                        edge_bin_db: -110.0,
                    },
                    raw_pilot_db: rss - 11.3,
                },
                true_rss_dbm: rss,
            });
            labels.push(Safety::from_not_safe(not_safe));
        }
        ChannelDataset::new(TvChannel::new(30).unwrap(), SensorKind::RtlSdr, measurements, labels)
    }

    #[test]
    fn fits_and_predicts_synthetic_channel() {
        let ds = synthetic_dataset(400);
        for kind in [ClassifierKind::Svm, ClassifierKind::NaiveBayes, ClassifierKind::DecisionTree]
        {
            let model =
                ModelConstructor::new(WaldoConfig::default().classifier(kind)).fit(&ds).unwrap();
            let mut correct = 0;
            for (m, l) in ds.measurements().iter().zip(ds.labels()) {
                if model.assess_row_matches(m, *l) {
                    correct += 1;
                }
            }
            let acc = correct as f64 / ds.len() as f64;
            assert!(acc > 0.95, "{kind}: accuracy {acc}");
        }
    }

    impl crate::WaldoModel {
        fn assess_row_matches(&self, m: &Measurement, label: Safety) -> bool {
            use crate::Assessor;
            self.assess(m.location, &m.observation) == label
        }
    }

    #[test]
    fn single_class_clusters_become_constants() {
        let ds = synthetic_dataset(300);
        // Many localities over a hard east/west split: most clusters are
        // single-class.
        let model = ModelConstructor::new(WaldoConfig::default().localities(6)).fit(&ds).unwrap();
        assert!(model.constant_locality_count() >= 2, "expected binary localities");
        assert_eq!(model.locality_count(), 6);
    }

    #[test]
    fn errors_on_degenerate_inputs() {
        let empty = synthetic_dataset(0);
        let c = ModelConstructor::new(WaldoConfig::default());
        assert!(c.fit(&empty).is_err());
        let tiny = synthetic_dataset(2);
        assert_eq!(
            ModelConstructor::new(WaldoConfig::default().localities(5)).fit(&tiny),
            Err(TrainError::TooFewForLocalities)
        );
    }

    #[test]
    fn descriptor_roundtrip_preserves_predictions() {
        let ds = synthetic_dataset(300);
        let model = ModelConstructor::new(WaldoConfig::default()).fit(&ds).unwrap();
        let bytes = model.to_descriptor();
        assert_eq!(bytes.len(), model.descriptor_bytes());
        let restored = crate::WaldoModel::from_descriptor(&bytes).unwrap();
        assert_eq!(model, restored);
    }

    #[test]
    fn nb_descriptor_is_smaller_than_svm() {
        // The paper reports ~4 kB (NB) vs ~40 kB (SVM) descriptors.
        let ds = synthetic_dataset(600);
        let svm = ModelConstructor::new(
            WaldoConfig::default().classifier(ClassifierKind::Svm).localities(1),
        )
        .fit(&ds)
        .unwrap();
        let nb = ModelConstructor::new(
            WaldoConfig::default().classifier(ClassifierKind::NaiveBayes).localities(1),
        )
        .fit(&ds)
        .unwrap();
        // On this cleanly separable toy set the SVM keeps few support
        // vectors; on the real campaign data the gap reaches the paper's
        // ~10x (see the model-size experiment). Here we only pin the
        // ordering.
        assert!(
            nb.descriptor_bytes() < svm.descriptor_bytes(),
            "NB {} vs SVM {}",
            nb.descriptor_bytes(),
            svm.descriptor_bytes()
        );
    }

    #[test]
    fn refit_retrains_only_changed_localities() {
        let ds = synthetic_dataset(400);
        let constructor = ModelConstructor::new(WaldoConfig::default().localities(3).seed(5));
        let base = constructor.fit(&ds).unwrap();
        let ml = ds.to_ml_dataset(constructor.config().feature_set()).unwrap();

        // Refitting on the unchanged dataset reproduces the base payloads
        // exactly for untouched localities (training is deterministic).
        let refit = constructor.refit_localities(&base, &ml, &[1]).unwrap();
        assert_eq!(refit.centroids(), base.centroids(), "clustering must stay fixed");
        let before = base.locality_payloads();
        let after = refit.locality_payloads();
        assert_eq!(before[0], after[0]);
        assert_eq!(before[2], after[2]);

        // Flip the labels of the rows routed to locality 1 and refit: only
        // locality 1's payload may change.
        let flipped: Vec<bool> = ml
            .rows()
            .iter()
            .zip(ml.labels())
            .map(|(r, &l)| if base.clustering.assign(&r[..2]) == 1 { !l } else { l })
            .collect();
        let flipped_ml = waldo_ml::Dataset::from_rows(ml.rows().to_vec(), flipped).unwrap();
        let refit = constructor.refit_localities(&base, &flipped_ml, &[1]).unwrap();
        let after = refit.locality_payloads();
        assert_eq!(before[0], after[0]);
        assert_eq!(before[2], after[2]);
        assert_ne!(before[1], after[1], "the changed locality must retrain");
    }

    #[test]
    fn refit_rejects_empty_dataset() {
        let ds = synthetic_dataset(60);
        let constructor = ModelConstructor::new(WaldoConfig::default());
        let base = constructor.fit(&ds).unwrap();
        let empty = waldo_ml::Dataset::from_rows(Vec::new(), Vec::new()).unwrap();
        assert_eq!(constructor.refit_localities(&base, &empty, &[0]), Err(TrainError::Empty));
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = synthetic_dataset(300);
        let a = ModelConstructor::new(WaldoConfig::default().seed(3)).fit(&ds).unwrap();
        let b = ModelConstructor::new(WaldoConfig::default().seed(3)).fit(&ds).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "row layout")]
    fn wrong_row_dimension_panics() {
        let ds = synthetic_dataset(300);
        let model = ModelConstructor::new(WaldoConfig::default()).fit(&ds).unwrap();
        let _ = model.predict_row(&[1.0, 2.0]);
    }
}
