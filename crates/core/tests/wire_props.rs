//! Property tests for the binary model wire format: encode→decode must be
//! the identity for trained SVM and NB models at arbitrary locality counts,
//! and the decoded model must classify bit-identically to the original.

use proptest::prelude::*;
use waldo::wire::{fnv1a64, ReadingBatch, ReplChannelState, ReplSlot};
use waldo::{ClassifierKind, ModelConstructor, WaldoConfig, WaldoModel};
use waldo_data::{ChannelDataset, Measurement, Safety};
use waldo_geo::Point;
use waldo_iq::FeatureVector;
use waldo_rf::TvChannel;
use waldo_sensors::{Observation, ReadingSample, SensorKind};

/// A tiny east/west dataset, parameterized so different seeds yield
/// different boundaries (and therefore different trained parameters).
fn dataset(n: usize, boundary_m: f64) -> ChannelDataset {
    let mut measurements = Vec::new();
    let mut labels = Vec::new();
    for i in 0..n {
        let x = (i as f64 / n as f64) * 30_000.0;
        let y = ((i * 7) % 20) as f64 * 1_000.0;
        let not_safe = x > boundary_m;
        let rss = if not_safe { -70.0 } else { -95.0 } + ((i % 5) as f64 - 2.0);
        measurements.push(Measurement {
            location: Point::new(x, y),
            odometer_m: i as f64 * 100.0,
            observation: Observation {
                rss_dbm: rss,
                features: FeatureVector {
                    rss_db: rss,
                    cft_db: rss - 11.3,
                    aft_db: rss - 12.5,
                    quadrature_imbalance_db: 0.0,
                    iq_kurtosis: 0.0,
                    edge_bin_db: -110.0,
                },
                raw_pilot_db: rss - 11.3,
            },
            true_rss_dbm: rss,
        });
        labels.push(Safety::from_not_safe(not_safe));
    }
    ChannelDataset::new(TvChannel::new(30).unwrap(), SensorKind::RtlSdr, measurements, labels)
}

fn train(kind: ClassifierKind, localities: usize, seed: u64, boundary_m: f64) -> WaldoModel {
    let config = WaldoConfig::default().classifier(kind).localities(localities).seed(seed);
    ModelConstructor::new(config).fit(&dataset(160, boundary_m)).expect("synthetic data trains")
}

fn probe_rows(model: &WaldoModel) -> Vec<Vec<f64>> {
    let width = 2 + model.features().len();
    (0..40)
        .map(|i| {
            let mut row = vec![0.0; width];
            row[0] = (i as f64 * 0.7) % 30.0;
            row[1] = (i as f64 * 1.3) % 20.0;
            for (j, v) in row.iter_mut().enumerate().skip(2) {
                *v = -100.0 + (i * 3 + j) as f64 * 1.7;
            }
            row
        })
        .collect()
}

/// A reading batch whose contents are a pure function of `seeds` — the
/// same inputs always re-produce byte-identical encodings.
fn sample_batch(batch_id: u64, channel: u8, seeds: &[u32]) -> ReadingBatch {
    let readings = seeds
        .iter()
        .map(|&s| {
            let v = f64::from(s % 1009);
            ReadingSample {
                location: Point::new(v * 37.0 - 15_000.0, v * 11.0 - 8_000.0),
                rss_dbm: -110.0 + v * 0.05,
                features: FeatureVector {
                    rss_db: -110.0 + v * 0.05,
                    cft_db: -121.0 + v * 0.05,
                    aft_db: -122.0 + v * 0.05,
                    quadrature_imbalance_db: 0.001 * v,
                    iq_kurtosis: 2.0 + 0.001 * v,
                    edge_bin_db: -130.0,
                },
            }
        })
        .collect();
    ReadingBatch { batch_id, channel, readings }
}

/// One representative encoded model, built once: corruption tests sample
/// hundreds of cases and retraining per case would dominate the run.
fn encoded_model() -> &'static [u8] {
    use std::sync::OnceLock;
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| train(ClassifierKind::Svm, 3, 7, 15_000.0).to_wire())
}

/// A replication channel state whose contents are a pure function of the
/// inputs: per-slot payload bytes derive from `seeds`, change-epochs cycle
/// below `epoch`, and payloads are delta-elided against `have_epoch`.
fn sample_repl_state(channel: u8, epoch: u64, have_epoch: u64, seeds: &[u32]) -> ReplChannelState {
    let slots = seeds
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            let payload: Vec<u8> =
                (0..(s % 96) as usize + 1).map(|j| (s as u8).wrapping_add(j as u8)).collect();
            let slot_epoch = (i as u64 % epoch.max(1)) + 1;
            ReplSlot {
                epoch: slot_epoch.min(epoch),
                digest: fnv1a64(&payload),
                centroid: [f64::from(s % 211) * 0.3, f64::from(s % 97) * -0.7],
                payload: (slot_epoch.min(epoch) > have_epoch).then_some(payload),
            }
        })
        .collect();
    ReplChannelState {
        channel,
        epoch,
        trace_id: u64::from(channel) * 31 + epoch,
        prelude: vec![1, 2, 3, 4, 5],
        slots,
    }
}

/// One representative encoded replication state, built once, with every
/// payload present (`have_epoch = 0`) so corruption sweeps cover the
/// payload bytes too.
fn encoded_repl_state() -> &'static [u8] {
    use std::sync::OnceLock;
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| sample_repl_state(30, 5, 0, &[11, 222, 3333, 44_444, 555_555]).encode())
}

proptest! {
    #[test]
    fn wire_roundtrip_is_identity_for_svm_and_nb(
        svm in any::<bool>(),
        localities in 1usize..6,
        seed in 0u64..1000,
        boundary_km in 8.0f64..22.0,
    ) {
        let kind = if svm { ClassifierKind::Svm } else { ClassifierKind::NaiveBayes };
        let model = train(kind, localities, seed, boundary_km * 1_000.0);
        prop_assert_eq!(model.locality_count(), localities);

        let bytes = model.to_wire();
        let decoded = WaldoModel::from_wire(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &model);
        for row in probe_rows(&model) {
            prop_assert_eq!(decoded.predict_row(&row), model.predict_row(&row));
        }
        // Re-encoding the decoded model must be byte-stable.
        prop_assert_eq!(decoded.to_wire(), bytes);
    }

    #[test]
    fn locality_parts_reassemble_the_model(
        svm in any::<bool>(),
        localities in 1usize..6,
        seed in 0u64..1000,
    ) {
        let kind = if svm { ClassifierKind::Svm } else { ClassifierKind::NaiveBayes };
        let model = train(kind, localities, seed, 15_000.0);
        let payloads = model.locality_payloads();
        prop_assert_eq!(payloads.len(), model.locality_count());
        let rebuilt = WaldoModel::from_locality_parts(
            model.features().clone(),
            model.centroids().to_vec(),
            &payloads,
        )
        .expect("own payloads reassemble");
        prop_assert_eq!(rebuilt, model);
    }

    /// Cutting a valid frame short at any point must surface as a typed
    /// [`waldo::wire::WireError`], never a panic: a fault-injected transport
    /// can hand the decoder exactly these prefixes.
    #[test]
    fn truncated_model_frames_decode_to_typed_errors(cut in 0.0f64..1.0) {
        let bytes = encoded_model();
        let keep = ((bytes.len() as f64) * cut) as usize;
        prop_assert!(keep < bytes.len());
        let err = WaldoModel::from_wire(&bytes[..keep]);
        prop_assert!(err.is_err(), "prefix of {keep}/{} bytes decoded Ok", bytes.len());
    }

    /// Flipping any bit of a valid frame must not panic. The decoder may
    /// reject it (typed error) or, for payload bytes, produce a different
    /// but well-formed model whose re-encoding also must not panic.
    #[test]
    fn bit_flips_in_model_frames_never_panic(
        pos in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let bytes = encoded_model();
        let mut corrupted = bytes.to_vec();
        let at = ((bytes.len() as f64) * pos) as usize;
        corrupted[at] ^= 1u8 << bit;
        if let Ok(model) = WaldoModel::from_wire(&corrupted) {
            let _ = model.to_wire();
        }
    }

    /// Decoding is total over arbitrary byte strings: garbage in, typed
    /// error (or a coincidentally valid model) out — never a panic.
    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = WaldoModel::from_wire(&bytes);
    }

    /// Encode→decode is the identity for reading batches at arbitrary
    /// IDs, channels, and contents (the upload path's unit of transfer).
    #[test]
    fn reading_batch_roundtrip_is_identity(
        batch_id in any::<u64>(),
        channel in any::<u8>(),
        seeds in prop::collection::vec(any::<u32>(), 0..40),
    ) {
        let batch = sample_batch(batch_id, channel, &seeds);
        let bytes = batch.encode();
        let decoded = ReadingBatch::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &batch);
        prop_assert_eq!(decoded.encode(), bytes);
        prop_assert_eq!(decoded.digest(), batch.digest());
    }

    /// Truncating an encoded batch anywhere must yield a typed error.
    #[test]
    fn truncated_reading_batches_decode_to_typed_errors(
        seeds in prop::collection::vec(any::<u32>(), 1..20),
        cut in 0.0f64..1.0,
    ) {
        let bytes = sample_batch(42, 30, &seeds).encode();
        let keep = ((bytes.len() as f64) * cut) as usize;
        prop_assert!(keep < bytes.len());
        prop_assert!(ReadingBatch::decode(&bytes[..keep]).is_err());
    }

    /// Bit flips and arbitrary bytes must never panic the batch decoder.
    #[test]
    fn corrupted_reading_batches_never_panic(
        seeds in prop::collection::vec(any::<u32>(), 0..20),
        pos in 0.0f64..1.0,
        bit in 0u32..8,
        garbage in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut bytes = sample_batch(7, 30, &seeds).encode();
        let at = (((bytes.len() - 1) as f64) * pos) as usize;
        bytes[at] ^= 1u8 << bit;
        if let Ok(batch) = ReadingBatch::decode(&bytes) {
            let _ = batch.encode();
        }
        let _ = ReadingBatch::decode(&garbage);
    }

    /// Encode→decode is the identity for replication channel states at
    /// arbitrary channels, epochs, delta baselines, and slot contents —
    /// the follower-sync path's unit of transfer.
    #[test]
    fn repl_state_roundtrip_is_identity(
        channel in any::<u8>(),
        epoch in 1u64..50,
        have_frac in 0.0f64..1.5,
        seeds in prop::collection::vec(any::<u32>(), 1..24),
    ) {
        let have_epoch = ((epoch as f64) * have_frac) as u64;
        let state = sample_repl_state(channel, epoch, have_epoch, &seeds);
        let bytes = state.encode();
        let decoded = ReplChannelState::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &state);
        prop_assert_eq!(decoded.encode(), bytes);
        prop_assert!(decoded.digests_match());
    }

    /// Truncating an encoded replication state anywhere must yield a
    /// typed error, never a panic.
    #[test]
    fn truncated_repl_states_decode_to_typed_errors(cut in 0.0f64..1.0) {
        let bytes = encoded_repl_state();
        let keep = ((bytes.len() as f64) * cut) as usize;
        prop_assert!(keep < bytes.len());
        prop_assert!(ReplChannelState::decode(&bytes[..keep]).is_err());
    }

    /// Bit flips and arbitrary bytes must never panic the replication
    /// decoder; a flip that still decodes must re-encode without panicking
    /// and remain digest-checkable.
    #[test]
    fn corrupted_repl_states_never_panic(
        pos in 0.0f64..1.0,
        bit in 0u32..8,
        garbage in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut bytes = encoded_repl_state().to_vec();
        let at = (((bytes.len() - 1) as f64) * pos) as usize;
        bytes[at] ^= 1u8 << bit;
        if let Ok(state) = ReplChannelState::decode(&bytes) {
            let _ = state.encode();
            let _ = state.digests_match();
        }
        let _ = ReplChannelState::decode(&garbage);
    }
}
