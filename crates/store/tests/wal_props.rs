//! Crash-recovery property tests for the reading WAL and compaction
//! (ISSUE 8 satellite): arbitrary truncation points and bit flips in the
//! tail must never panic replay, the recovered prefix must be
//! byte-identical to a record-boundary prefix of what was written, and
//! compaction must be deterministic for a given record set.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use waldo::wire::ReadingBatch;
use waldo_geo::Point;
use waldo_iq::FeatureVector;
use waldo_sensors::ReadingSample;
use waldo_store::{ReadingLog, SegmentStore};

fn temp_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("waldo-walprop-{}-{tag}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn sample(seed: u64) -> ReadingSample {
    let v = (seed % 97) as f64;
    ReadingSample {
        location: Point::new(v * 311.0 - 15_000.0, v * 173.0 - 8_000.0),
        rss_dbm: -110.0 + v * 0.5,
        features: FeatureVector {
            rss_db: -110.0 + v * 0.5,
            cft_db: -121.0 + v * 0.5,
            aft_db: -122.0 + v * 0.5,
            quadrature_imbalance_db: 0.01 * v,
            iq_kurtosis: 2.0 + 0.01 * v,
            edge_bin_db: -130.0,
        },
    }
}

fn batch(id: u64, readings: usize) -> ReadingBatch {
    ReadingBatch {
        batch_id: id,
        channel: 30,
        readings: (0..readings as u64)
            .map(|i| sample(id.wrapping_mul(31).wrapping_add(i)))
            .collect(),
    }
}

/// Writes `sizes.len()` batches and returns (wal path, file bytes, byte
/// offset of each record boundary including 0 and EOF).
fn written_log(dir: &std::path::Path, sizes: &[usize]) -> (PathBuf, Vec<u8>, Vec<usize>) {
    let path = dir.join("readings.wal");
    let mut boundaries = vec![0usize];
    {
        let mut log = ReadingLog::open(&path).unwrap();
        for (i, &n) in sizes.iter().enumerate() {
            log.append(&batch(i as u64 + 1, n)).unwrap();
            boundaries.push(log.bytes() as usize);
        }
    }
    let bytes = fs::read(&path).unwrap();
    assert_eq!(bytes.len(), *boundaries.last().unwrap());
    (path, bytes, boundaries)
}

proptest! {
    /// Truncating the log at any byte offset and replaying must recover
    /// exactly the batches whose records lie wholly before the cut, and
    /// leave the file byte-identical to that record-boundary prefix.
    #[test]
    fn truncation_at_any_offset_recovers_the_whole_prefix(
        sizes in prop::collection::vec(0usize..6, 1..6),
        cut in 0.0f64..1.0,
    ) {
        let dir = temp_path("cut");
        let (path, bytes, boundaries) = written_log(&dir, &sizes);
        let keep = ((bytes.len() as f64) * cut) as usize;
        fs::write(&path, &bytes[..keep]).unwrap();

        let log = ReadingLog::open(&path).unwrap();
        let whole = boundaries.iter().filter(|&&b| b > 0 && b <= keep).count();
        prop_assert_eq!(log.replay_report().batches, whole);
        prop_assert_eq!(log.batches().len(), whole);
        for (i, b) in log.batches().iter().enumerate() {
            prop_assert_eq!(b, &batch(i as u64 + 1, sizes[i]));
        }
        let prefix_end = boundaries[whole];
        prop_assert_eq!(
            fs::read(&path).unwrap(),
            bytes[..prefix_end].to_vec(),
            "recovered file must be the exact record-boundary prefix"
        );
        prop_assert_eq!(log.replay_report().truncated_bytes, (keep - prefix_end) as u64);
    }

    /// Flipping any bit anywhere in the file must never panic replay, and
    /// the file after replay must again be a record-boundary prefix of the
    /// original (the tear is truncated, everything before it preserved).
    #[test]
    fn bit_flips_never_panic_and_leave_a_clean_prefix(
        sizes in prop::collection::vec(0usize..6, 1..5),
        pos in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let dir = temp_path("flip");
        let (path, bytes, boundaries) = written_log(&dir, &sizes);
        let mut corrupted = bytes.clone();
        let at = (((bytes.len() - 1) as f64) * pos) as usize;
        corrupted[at] ^= 1u8 << bit;
        fs::write(&path, &corrupted).unwrap();

        let log = ReadingLog::open(&path).unwrap();
        // The flip lands inside some record; every record before it must
        // survive verbatim, everything from it on must be gone.
        let damaged = boundaries.iter().filter(|&&b| b <= at).count() - 1;
        prop_assert_eq!(log.replay_report().batches, damaged);
        prop_assert_eq!(fs::read(&path).unwrap(), bytes[..boundaries[damaged]].to_vec());
        for (i, b) in log.batches().iter().enumerate() {
            prop_assert_eq!(b, &batch(i as u64 + 1, sizes[i]));
        }
    }

    /// Appending after a torn-tail recovery must produce a log that
    /// replays cleanly: recovery leaves a sound record boundary.
    #[test]
    fn appends_after_recovery_replay_cleanly(
        sizes in prop::collection::vec(0usize..5, 1..4),
        cut in 0.0f64..1.0,
    ) {
        let dir = temp_path("resume");
        let (path, bytes, _) = written_log(&dir, &sizes);
        let keep = ((bytes.len() as f64) * cut) as usize;
        fs::write(&path, &bytes[..keep]).unwrap();

        let recovered = {
            let mut log = ReadingLog::open(&path).unwrap();
            log.append(&batch(1000, 3)).unwrap();
            log.batches().to_vec()
        };
        let log = ReadingLog::open(&path).unwrap();
        prop_assert_eq!(log.replay_report().truncated_bytes, 0);
        prop_assert_eq!(log.batches(), &recovered[..]);
        prop_assert!(log.contains_batch(1000));
    }

    /// Compaction is a pure function of the record set: any arrival
    /// permutation checkpoints to identical manifests and segment bytes.
    #[test]
    fn compaction_is_deterministic_over_arrival_order(
        sizes in prop::collection::vec(1usize..5, 1..5),
        rot in 0usize..5,
    ) {
        let locality_of = |s: &ReadingSample| usize::from(s.location.x >= 0.0);
        let batches: Vec<ReadingBatch> =
            sizes.iter().enumerate().map(|(i, &n)| batch(i as u64 + 1, n)).collect();
        let mut rotated = batches.clone();
        rotated.rotate_left(rot % batches.len().max(1));

        let dir_a = temp_path("det-a");
        let dir_b = temp_path("det-b");
        let mut a = SegmentStore::open(&dir_a).unwrap();
        let mut b = SegmentStore::open(&dir_b).unwrap();
        a.checkpoint(&batches, locality_of).unwrap();
        b.checkpoint(&rotated, locality_of).unwrap();
        prop_assert_eq!(a.manifest(), b.manifest());
        for (loc, meta) in &a.manifest().segments {
            prop_assert_eq!(
                fs::read(dir_a.join(&meta.file)).unwrap(),
                fs::read(dir_b.join(&b.manifest().segments[loc].file)).unwrap()
            );
        }
    }
}
