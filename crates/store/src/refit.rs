//! The incremental refit engine: segment-digest diff → relabel → retrain
//! only what changed.
//!
//! Labels are global, training is local. Algorithm 1's 6 km poisoning rule
//! means one new strong reading can flip labels kilometres away, so every
//! refit relabels the *entire* reading set (base campaign plus all stored
//! uploads). Training, however, is per locality, and the clustering is
//! held fixed across refits — so only localities whose segment digest
//! moved since the last refit pay a training pass. Untouched localities
//! keep their exact trained parameters, which keeps their serialized
//! payload bytes identical and lets the serve catalog's publish diff leave
//! their change-epochs alone (delta fetches then ship only what retrained).

use std::collections::BTreeMap;

use waldo::{ModelConstructor, TrainError, WaldoModel};
use waldo_data::{ChannelDataset, Labeler};
use waldo_geo::Point;
use waldo_ml::Dataset;
use waldo_sensors::ReadingSample;

use crate::SegmentStore;

/// What one refit pass did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefitReport {
    /// Localities retrained this pass.
    pub changed_localities: Vec<usize>,
    /// Uploaded readings folded into the training set (across all
    /// localities, not just changed ones — labels are global).
    pub uploaded_readings: usize,
    /// Total training rows (base campaign + uploads).
    pub total_rows: usize,
}

/// Tracks segment digests across checkpoints and retrains changed
/// localities, keeping the base model's clustering fixed.
#[derive(Debug)]
pub struct RefitEngine {
    constructor: ModelConstructor,
    labeler: Labeler,
    base: ChannelDataset,
    model: WaldoModel,
    last_digests: BTreeMap<usize, u64>,
}

impl RefitEngine {
    /// Creates an engine around an already-fitted `model`. `base` is the
    /// campaign dataset the model was fitted from (its labels are
    /// recomputed per refit, so stale labels are fine); `labeler` must be
    /// the same rule used to label the base campaign.
    pub fn new(
        constructor: ModelConstructor,
        labeler: Labeler,
        base: ChannelDataset,
        model: WaldoModel,
    ) -> Self {
        Self { constructor, labeler, base, model, last_digests: BTreeMap::new() }
    }

    /// The current model (base fit, or the latest refit).
    pub fn model(&self) -> &WaldoModel {
        &self.model
    }

    /// Routes a reading to its locality under the current model — the
    /// closure checkpoints need.
    pub fn locality_of(&self, sample: &ReadingSample) -> usize {
        self.model.locality_for(sample.location)
    }

    /// Diffs `store`'s manifest against the digests seen at the last
    /// refit and retrains exactly the changed localities. Returns
    /// `Ok(None)` when no segment moved (nothing to do), `Ok(Some)` with
    /// the refreshed model otherwise.
    ///
    /// # Errors
    ///
    /// [`crate::StoreError`] reading segments back; [`TrainError`] from
    /// the constructor (never [`TrainError::Empty`] in practice, since the
    /// base campaign is non-empty).
    pub fn refit(
        &mut self,
        store: &SegmentStore,
    ) -> Result<Option<(WaldoModel, RefitReport)>, RefitError> {
        let _t = waldo_prof::scope("store_refit");
        let manifest = store.manifest();
        let changed: Vec<usize> = manifest
            .segments
            .iter()
            .filter(|(loc, meta)| self.last_digests.get(loc) != Some(&meta.digest))
            .map(|(&loc, _)| loc)
            .collect();
        if changed.is_empty() {
            return Ok(None);
        }

        let uploads = store.all_readings()?;
        let ml = self.training_dataset(&uploads);
        let total_rows = ml.len();
        let model = self.constructor.refit_localities(&self.model, &ml, &changed)?;
        self.model = model.clone();
        self.last_digests =
            manifest.segments.iter().map(|(&loc, meta)| (loc, meta.digest)).collect();
        Ok(Some((
            model,
            RefitReport {
                changed_localities: changed,
                uploaded_readings: uploads.len(),
                total_rows,
            },
        )))
    }

    /// Builds the combined, freshly-labeled training dataset: base
    /// campaign rows followed by upload rows, all relabeled together so
    /// the 6 km rule sees the union.
    fn training_dataset(&self, uploads: &[ReadingSample]) -> Dataset {
        let mut points: Vec<(Point, f64)> =
            self.base.measurements().iter().map(|m| (m.location, m.observation.rss_dbm)).collect();
        points.extend(uploads.iter().map(|s| (s.location, s.rss_dbm)));
        let labels = self.labeler.label(&points);

        let set = self.constructor.config().feature_set();
        let mut rows: Vec<Vec<f64>> =
            self.base.measurements().iter().map(|m| ChannelDataset::feature_row(m, set)).collect();
        rows.extend(uploads.iter().map(|s| {
            let mut row = vec![s.location.x / 1000.0, s.location.y / 1000.0];
            row.extend(s.features.project(set));
            row
        }));
        let labels = labels.iter().map(|l| l.is_not_safe()).collect();
        Dataset::from_rows(rows, labels).expect("rows are fixed-width and finite")
    }
}

/// Errors from a refit pass.
#[derive(Debug)]
pub enum RefitError {
    /// Reading segments back failed.
    Store(crate::StoreError),
    /// Training failed.
    Train(TrainError),
}

impl std::fmt::Display for RefitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefitError::Store(e) => write!(f, "refit store access: {e}"),
            RefitError::Train(e) => write!(f, "refit training: {e}"),
        }
    }
}

impl std::error::Error for RefitError {}

impl From<crate::StoreError> for RefitError {
    fn from(e: crate::StoreError) -> Self {
        RefitError::Store(e)
    }
}

impl From<TrainError> for RefitError {
    fn from(e: TrainError) -> Self {
        RefitError::Train(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use waldo::wire::ReadingBatch;
    use waldo::WaldoConfig;
    use waldo_data::{Measurement, Safety};
    use waldo_iq::FeatureVector;
    use waldo_rf::TvChannel;
    use waldo_sensors::{Observation, SensorKind};

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("waldo-refit-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn features_for(rss: f64) -> FeatureVector {
        FeatureVector {
            rss_db: rss,
            cft_db: rss - 11.3,
            aft_db: rss - 12.5,
            quadrature_imbalance_db: 0.0,
            iq_kurtosis: 2.0,
            edge_bin_db: -110.0,
        }
    }

    /// East half hot (not safe), west half quiet, like the constructor's
    /// synthetic channel.
    fn base_dataset(n: usize) -> ChannelDataset {
        let mut measurements = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let x = (i as f64 / n as f64) * 30_000.0;
            let y = ((i * 7) % 20) as f64 * 1_000.0;
            let rss = if x > 15_000.0 { -70.0 } else { -100.0 } + ((i % 5) as f64 - 2.0);
            measurements.push(Measurement {
                location: Point::new(x, y),
                odometer_m: i as f64 * 100.0,
                observation: Observation {
                    rss_dbm: rss,
                    features: features_for(rss),
                    raw_pilot_db: rss - 11.3,
                },
                true_rss_dbm: rss,
            });
            labels.push(Safety::from_not_safe(x > 15_000.0));
        }
        ChannelDataset::new(TvChannel::new(30).unwrap(), SensorKind::RtlSdr, measurements, labels)
    }

    fn engine(n: usize) -> RefitEngine {
        let constructor = ModelConstructor::new(WaldoConfig::default().localities(3).seed(2));
        let base = base_dataset(n);
        let model = constructor.fit(&base).unwrap();
        RefitEngine::new(constructor, Labeler::new(), base, model)
    }

    #[test]
    fn no_segment_change_means_no_refit() {
        let mut eng = engine(200);
        let store = SegmentStore::open(temp_dir("idle")).unwrap();
        assert!(eng.refit(&store).unwrap().is_none());
    }

    #[test]
    fn uploads_retrain_only_their_locality_and_flip_the_decision() {
        let mut eng = engine(300);
        let mut store = SegmentStore::open(temp_dir("flip")).unwrap();

        // A quiet western spot the base model calls safe.
        let spot = Point::new(2_000.0, 4_000.0);
        let target = eng.model().locality_for(spot);
        let before_payloads = eng.model().locality_payloads();

        // Phones report a strong transmitter there: not safe by Algorithm 1.
        let readings: Vec<ReadingSample> = (0..40)
            .map(|i| ReadingSample {
                location: Point::new(
                    spot.x + (i % 7) as f64 * 150.0,
                    spot.y + (i / 7) as f64 * 150.0,
                ),
                rss_dbm: -60.0,
                features: features_for(-60.0),
            })
            .collect();
        let batch = ReadingBatch { batch_id: 1, channel: 30, readings };
        store.checkpoint(std::slice::from_ref(&batch), |s| eng.locality_of(s)).unwrap();

        let (model, report) = eng.refit(&store).unwrap().expect("digest moved");
        assert_eq!(report.changed_localities, vec![target]);
        assert_eq!(report.uploaded_readings, 40);
        assert_eq!(report.total_rows, 340);

        let after_payloads = model.locality_payloads();
        for loc in 0..3 {
            if loc == target {
                assert_ne!(before_payloads[loc], after_payloads[loc]);
            } else {
                assert_eq!(
                    before_payloads[loc], after_payloads[loc],
                    "untouched locality {loc} must keep its payload bytes"
                );
            }
        }

        // The refreshed model now calls the spot not-safe.
        use waldo::Assessor;
        let obs =
            Observation { rss_dbm: -60.0, features: features_for(-60.0), raw_pilot_db: -71.3 };
        assert!(model.assess(spot, &obs).is_not_safe());

        // A second refit with no new checkpoint is a no-op.
        assert!(eng.refit(&store).unwrap().is_none());
    }
}
