//! The reading write-ahead log: durable, append-only, idempotent.
//!
//! One record per accepted upload batch:
//!
//! ```text
//! len: u32 LE | checksum: u64 LE (FNV-1a of payload) | payload
//! ```
//!
//! where `payload` is the batch's [`ReadingBatch::encode`] bytes. Replay
//! scans from the start and stops at the first record that is short,
//! oversized, fails its checksum, or fails to decode — everything from
//! that point on is a *torn tail* (a crash mid-write) and is truncated so
//! the next append starts from a clean record boundary. Records before the
//! tear are untouched: the recovered prefix is byte-identical to what was
//! previously acknowledged.
//!
//! Idempotency: the log remembers every batch ID it has ever accepted
//! (including IDs later compacted out by [`SegmentStore`]'s checkpoint,
//! which persists them in the manifest), so a client retrying after a lost
//! ack gets [`AppendOutcome::Duplicate`] instead of a second ingest.

use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use waldo::wire::{fnv1a64, ReadingBatch};

use crate::StoreError;

/// Upper bound on one WAL record's payload; a corrupt length prefix must
/// not trigger a multi-gigabyte allocation during replay.
pub const MAX_WAL_RECORD_BYTES: usize = 16 << 20;

/// `len u32 | checksum u64` preceding every payload.
const RECORD_HEADER_BYTES: usize = 12;

/// What [`ReadingLog::append`] did with a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendOutcome {
    /// First sighting: the batch is on disk (and synced, per the sync
    /// policy) and counted.
    Appended,
    /// The batch ID was already accepted — nothing written. The caller
    /// should still acknowledge success to the client: this is the retry
    /// path working as intended.
    Duplicate,
}

/// What replay found when the log was opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayReport {
    /// Intact batches recovered.
    pub batches: usize,
    /// Total readings across recovered batches.
    pub readings: usize,
    /// Bytes dropped from the torn tail (0 for a clean shutdown).
    pub truncated_bytes: u64,
    /// Records skipped because their batch ID repeated an earlier record.
    pub duplicates_skipped: usize,
}

/// The durable append-only upload log. See the module docs for the record
/// format and recovery semantics.
#[derive(Debug)]
pub struct ReadingLog {
    file: File,
    path: PathBuf,
    seen: HashSet<u64>,
    batches: Vec<ReadingBatch>,
    bytes: u64,
    sync_every: usize,
    pending: usize,
    replay: ReplayReport,
}

impl ReadingLog {
    /// Opens (creating if absent) the log at `path`, replaying existing
    /// records and truncating any torn tail.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failure. Corruption is not
    /// an error: it is truncated and reported via [`replay_report`].
    ///
    /// [`replay_report`]: Self::replay_report
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, StoreError> {
        let _t = waldo_prof::scope("wal_replay");
        let path = path.as_ref().to_path_buf();
        // Existing contents are the whole point of a WAL: open keep-contents
        // (truncate(false)) and replay them below.
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;

        let mut seen = HashSet::new();
        let mut batches = Vec::new();
        let mut replay = ReplayReport::default();
        let mut valid = 0usize;
        let mut cursor = 0usize;
        while raw.len() - cursor >= RECORD_HEADER_BYTES {
            let len =
                u32::from_le_bytes(raw[cursor..cursor + 4].try_into().expect("4 bytes")) as usize;
            if len > MAX_WAL_RECORD_BYTES || raw.len() - cursor - RECORD_HEADER_BYTES < len {
                break; // oversized or short: torn tail
            }
            let checksum =
                u64::from_le_bytes(raw[cursor + 4..cursor + 12].try_into().expect("8 bytes"));
            let payload = &raw[cursor + RECORD_HEADER_BYTES..cursor + RECORD_HEADER_BYTES + len];
            if fnv1a64(payload) != checksum {
                break; // bit flip in the tail
            }
            let Ok(batch) = ReadingBatch::decode(payload) else {
                break; // checksummed but undecodable: treat as a tear
            };
            cursor += RECORD_HEADER_BYTES + len;
            valid = cursor;
            if seen.insert(batch.batch_id) {
                replay.batches += 1;
                replay.readings += batch.readings.len();
                batches.push(batch);
            } else {
                replay.duplicates_skipped += 1;
            }
        }
        replay.truncated_bytes = (raw.len() - valid) as u64;
        if replay.truncated_bytes > 0 {
            file.set_len(valid as u64)?;
            file.sync_all()?;
        }

        // Reopen in append mode so writes always land at the (possibly
        // truncated) end.
        let file = OpenOptions::new().append(true).create(true).open(&path)?;
        Ok(Self {
            file,
            path,
            seen,
            batches,
            bytes: valid as u64,
            sync_every: 1,
            pending: 0,
            replay,
        })
    }

    /// Sets the fsync batching factor: sync after every `n`th appended
    /// record instead of every record. `1` (the default) is the durable
    /// ack contract; larger values trade durability of the last `n − 1`
    /// records for throughput and are meant for bulk loads.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sync_every(mut self, n: usize) -> Self {
        assert!(n > 0, "sync batching factor must be at least 1");
        self.sync_every = n;
        self
    }

    /// Appends one batch, deduplicating by batch ID.
    ///
    /// On [`AppendOutcome::Appended`] the record is written and — when the
    /// sync policy says so — fsynced before returning, so the caller may
    /// acknowledge the upload. [`AppendOutcome::Duplicate`] writes nothing.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failure; the batch is not
    /// counted as accepted in that case.
    pub fn append(&mut self, batch: &ReadingBatch) -> Result<AppendOutcome, StoreError> {
        let _t = waldo_prof::scope("wal_append");
        if self.seen.contains(&batch.batch_id) {
            return Ok(AppendOutcome::Duplicate);
        }
        let payload = batch.encode();
        let mut record = Vec::with_capacity(RECORD_HEADER_BYTES + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        record.extend_from_slice(&payload);
        self.file.write_all(&record)?;
        self.pending += 1;
        if self.pending >= self.sync_every {
            self.sync()?;
        }
        self.bytes += record.len() as u64;
        self.seen.insert(batch.batch_id);
        self.batches.push(batch.clone());
        Ok(AppendOutcome::Appended)
    }

    /// Forces any unsynced appends to disk. A no-op when nothing is
    /// pending.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failure.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if self.pending > 0 {
            self.file.sync_all()?;
            self.pending = 0;
        }
        Ok(())
    }

    /// The batches currently in the log (replayed plus appended), in
    /// arrival order — the uncompacted working set a checkpoint drains.
    pub fn batches(&self) -> &[ReadingBatch] {
        &self.batches
    }

    /// Whether a batch ID has ever been accepted (including IDs already
    /// compacted into segments, if seeded via [`remember`]).
    ///
    /// [`remember`]: Self::remember
    pub fn contains_batch(&self, batch_id: u64) -> bool {
        self.seen.contains(&batch_id)
    }

    /// Seeds the dedupe set with IDs accepted in earlier incarnations —
    /// the manifest's absorbed set — so compaction does not reopen the
    /// retry window.
    pub fn remember<I: IntoIterator<Item = u64>>(&mut self, ids: I) {
        self.seen.extend(ids);
    }

    /// Drops the in-memory batch set and truncates the file after a
    /// successful checkpoint has made the records redundant. Accepted
    /// batch IDs are retained for dedupe.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failure.
    pub fn truncate_after_checkpoint(&mut self) -> Result<(), StoreError> {
        self.file.set_len(0)?;
        self.file.sync_all()?;
        self.pending = 0;
        self.bytes = 0;
        self.batches.clear();
        Ok(())
    }

    /// Number of uncompacted batches.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// Whether the log holds no uncompacted batches.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// Bytes of valid records on disk.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// What replay found when this log was opened.
    pub fn replay_report(&self) -> &ReplayReport {
        &self.replay
    }

    /// The backing file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use waldo_geo::Point;
    use waldo_iq::FeatureVector;
    use waldo_sensors::ReadingSample;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("waldo-wal-{}-{}", std::process::id(), name));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("readings.wal")
    }

    fn sample(i: usize) -> ReadingSample {
        let v = i as f64;
        ReadingSample {
            location: Point::new(v * 10.0, v * -5.0),
            rss_dbm: -80.0 - v,
            features: FeatureVector {
                rss_db: -80.0 - v,
                cft_db: -91.0 - v,
                aft_db: -92.0 - v,
                quadrature_imbalance_db: 0.1 * v,
                iq_kurtosis: 2.0,
                edge_bin_db: -110.0,
            },
        }
    }

    fn batch(id: u64, n: usize) -> ReadingBatch {
        ReadingBatch { batch_id: id, channel: 30, readings: (0..n).map(sample).collect() }
    }

    #[test]
    fn append_then_reopen_replays_everything() {
        let path = temp_path("reopen");
        {
            let mut log = ReadingLog::open(&path).unwrap();
            for id in 0..5u64 {
                assert_eq!(log.append(&batch(id, 3)).unwrap(), AppendOutcome::Appended);
            }
        }
        let log = ReadingLog::open(&path).unwrap();
        assert_eq!(
            *log.replay_report(),
            ReplayReport { batches: 5, readings: 15, truncated_bytes: 0, duplicates_skipped: 0 }
        );
        assert_eq!(log.batches().len(), 5);
        assert_eq!(log.batches()[2], batch(2, 3));
        assert!(log.contains_batch(4));
        assert!(!log.contains_batch(5));
    }

    #[test]
    fn duplicate_batch_ids_are_not_reingested() {
        let path = temp_path("dup");
        let mut log = ReadingLog::open(&path).unwrap();
        assert_eq!(log.append(&batch(7, 2)).unwrap(), AppendOutcome::Appended);
        let bytes_after_first = log.bytes();
        assert_eq!(log.append(&batch(7, 2)).unwrap(), AppendOutcome::Duplicate);
        assert_eq!(log.bytes(), bytes_after_first, "duplicates must write nothing");
        assert_eq!(log.len(), 1);

        // The retry window survives a restart.
        drop(log);
        let mut log = ReadingLog::open(&path).unwrap();
        assert_eq!(log.append(&batch(7, 2)).unwrap(), AppendOutcome::Duplicate);
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_preserved() {
        let path = temp_path("torn");
        {
            let mut log = ReadingLog::open(&path).unwrap();
            log.append(&batch(1, 4)).unwrap();
            log.append(&batch(2, 4)).unwrap();
        }
        let clean = fs::read(&path).unwrap();
        // Simulate a crash mid-write: half a third record.
        let mut torn = clean.clone();
        torn.extend_from_slice(&[9, 0, 0, 0, 1, 2, 3]);
        fs::write(&path, &torn).unwrap();

        let log = ReadingLog::open(&path).unwrap();
        assert_eq!(log.replay_report().batches, 2);
        assert_eq!(log.replay_report().truncated_bytes, 7);
        assert_eq!(fs::read(&path).unwrap(), clean, "recovered prefix must be byte-identical");
    }

    #[test]
    fn checksum_failure_truncates_from_the_flip() {
        let path = temp_path("flip");
        {
            let mut log = ReadingLog::open(&path).unwrap();
            log.append(&batch(1, 2)).unwrap();
            log.append(&batch(2, 2)).unwrap();
        }
        let clean = fs::read(&path).unwrap();
        let first_record_end = {
            let len = u32::from_le_bytes(clean[..4].try_into().unwrap()) as usize;
            RECORD_HEADER_BYTES + len
        };
        let mut flipped = clean.clone();
        *flipped.last_mut().unwrap() ^= 0x40; // corrupt the second record's payload
        fs::write(&path, &flipped).unwrap();

        let log = ReadingLog::open(&path).unwrap();
        assert_eq!(log.replay_report().batches, 1);
        assert_eq!(fs::read(&path).unwrap(), clean[..first_record_end]);
        assert!(log.contains_batch(1));
        assert!(!log.contains_batch(2), "the torn batch was never acknowledged");
    }

    #[test]
    fn oversized_length_prefix_does_not_allocate() {
        let path = temp_path("oversize");
        {
            let mut log = ReadingLog::open(&path).unwrap();
            log.append(&batch(1, 1)).unwrap();
        }
        let mut raw = fs::read(&path).unwrap();
        let prefix = raw.clone();
        raw.extend_from_slice(&u32::MAX.to_le_bytes());
        raw.extend_from_slice(&[0u8; 16]);
        fs::write(&path, &raw).unwrap();
        let log = ReadingLog::open(&path).unwrap();
        assert_eq!(log.replay_report().batches, 1);
        assert_eq!(fs::read(&path).unwrap(), prefix);
    }

    #[test]
    fn sync_batching_defers_fsync_but_not_writes() {
        let path = temp_path("batched");
        let mut log = ReadingLog::open(&path).unwrap().sync_every(4);
        for id in 0..3u64 {
            log.append(&batch(id, 1)).unwrap();
        }
        assert_eq!(log.pending, 3, "below the batching factor nothing synced yet");
        log.append(&batch(3, 1)).unwrap();
        assert_eq!(log.pending, 0, "the fourth append crossed the factor");
        log.append(&batch(4, 1)).unwrap();
        log.sync().unwrap();
        assert_eq!(log.pending, 0);
    }

    #[test]
    fn truncate_after_checkpoint_keeps_dedupe() {
        let path = temp_path("checkpointed");
        let mut log = ReadingLog::open(&path).unwrap();
        log.append(&batch(1, 2)).unwrap();
        log.append(&batch(2, 2)).unwrap();
        log.truncate_after_checkpoint().unwrap();
        assert!(log.is_empty());
        assert_eq!(log.bytes(), 0);
        assert_eq!(fs::metadata(&path).unwrap().len(), 0);
        assert_eq!(log.append(&batch(1, 2)).unwrap(), AppendOutcome::Duplicate);

        // A fresh process learns the absorbed IDs from the manifest.
        let mut reopened = ReadingLog::open(&path).unwrap();
        assert_eq!(reopened.replay_report().batches, 0);
        reopened.remember([1, 2]);
        assert_eq!(reopened.append(&batch(2, 2)).unwrap(), AppendOutcome::Duplicate);
        assert_eq!(reopened.append(&batch(3, 2)).unwrap(), AppendOutcome::Appended);
    }
}
