//! Checkpoint/compaction: immutable per-locality segments plus a manifest.
//!
//! A checkpoint drains the WAL's accumulated batches into one file per
//! *locality* (the model's k-means cell — the unit the refit layer
//! retrains). Segment files are immutable: a checkpoint that adds readings
//! to a locality writes a brand-new file under the next sequence number
//! and retires the old one, so a locality's manifest digest changes iff
//! its reading set changed. That digest diff is the entire refit trigger.
//!
//! The manifest is the atomicity point: it is written to a temp file,
//! fsynced, then renamed over `MANIFEST`. A crash anywhere during a
//! checkpoint leaves either the old manifest (new segment files are
//! unreferenced garbage, re-created next time) or the new one — never a
//! half-checkpoint. The manifest also persists the set of *absorbed* batch
//! IDs so the WAL's dedupe window survives compaction across restarts.
//!
//! Determinism: batches are folded in ascending batch-ID order and
//! readings keep their in-batch order, so the same record set always
//! compacts to byte-identical segments regardless of arrival order.

use std::collections::{BTreeMap, BTreeSet};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use waldo::wire::{fnv1a64, put_f64, put_u16, put_u32, put_u64, Reader, ReadingBatch};
use waldo_geo::Point;
use waldo_iq::FeatureVector;
use waldo_sensors::ReadingSample;

use crate::StoreError;

/// Segment file magic.
const SEGMENT_MAGIC: [u8; 4] = *b"WLSG";
/// Manifest file magic.
const MANIFEST_MAGIC: [u8; 4] = *b"WLMF";
/// On-disk format version for both files.
const FORMAT_VERSION: u8 = 1;
/// The manifest's file name inside the store directory.
const MANIFEST_NAME: &str = "MANIFEST";
/// f64 fields per serialized reading: x, y, rss, six features.
const READING_F64S: usize = 9;

/// One locality's immutable segment, as referenced by the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Segment file name within the store directory.
    pub file: String,
    /// FNV-1a digest of the whole segment file — the refit trigger.
    pub digest: u64,
    /// Readings in the segment.
    pub readings: u32,
}

/// The store's root metadata: which segment serves each locality and which
/// batch IDs have been absorbed by compaction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// Monotone checkpoint counter; also the sequence number stamped into
    /// segment file names.
    pub checkpoint_seq: u64,
    /// Batch IDs already folded into segments (dedupe survives WAL
    /// truncation through this set).
    pub absorbed: BTreeSet<u64>,
    /// Live segment per locality.
    pub segments: BTreeMap<usize, SegmentMeta>,
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MANIFEST_MAGIC);
        out.push(FORMAT_VERSION);
        put_u64(&mut out, self.checkpoint_seq);
        put_u32(&mut out, self.absorbed.len() as u32);
        for &id in &self.absorbed {
            put_u64(&mut out, id);
        }
        put_u32(&mut out, self.segments.len() as u32);
        for (&locality, meta) in &self.segments {
            put_u32(&mut out, locality as u32);
            put_u64(&mut out, meta.digest);
            put_u32(&mut out, meta.readings);
            put_u16(&mut out, meta.file.len() as u16);
            out.extend_from_slice(meta.file.as_bytes());
        }
        let checksum = fnv1a64(&out);
        put_u64(&mut out, checksum);
        out
    }

    fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        if bytes.len() < 8 {
            return Err(StoreError::Corrupt("manifest shorter than its checksum"));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let checksum = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
        if fnv1a64(body) != checksum {
            return Err(StoreError::Corrupt("manifest checksum mismatch"));
        }
        let mut r = Reader::new(body);
        let fail = |_| StoreError::Corrupt("manifest structure");
        if r.bytes(4).map_err(fail)? != MANIFEST_MAGIC {
            return Err(StoreError::Corrupt("manifest magic"));
        }
        if r.u8().map_err(fail)? != FORMAT_VERSION {
            return Err(StoreError::Corrupt("manifest version"));
        }
        let mut m = Manifest { checkpoint_seq: r.u64().map_err(fail)?, ..Manifest::default() };
        let absorbed = r.u32().map_err(fail)?;
        for _ in 0..absorbed {
            m.absorbed.insert(r.u64().map_err(fail)?);
        }
        let segments = r.u32().map_err(fail)?;
        for _ in 0..segments {
            let locality = r.u32().map_err(fail)? as usize;
            let digest = r.u64().map_err(fail)?;
            let readings = r.u32().map_err(fail)?;
            let name_len = r.u16().map_err(fail)? as usize;
            let name = r.bytes(name_len).map_err(fail)?;
            let file = std::str::from_utf8(name)
                .map_err(|_| StoreError::Corrupt("segment name not UTF-8"))?
                .to_string();
            m.segments.insert(locality, SegmentMeta { file, digest, readings });
        }
        r.finish().map_err(|_| StoreError::Corrupt("manifest trailing bytes"))?;
        Ok(m)
    }
}

/// What one checkpoint did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointReport {
    /// The checkpoint's sequence number.
    pub seq: u64,
    /// Batches folded in.
    pub batches: usize,
    /// Readings folded in.
    pub readings: usize,
    /// Localities whose segment (and digest) changed.
    pub changed_localities: Vec<usize>,
}

/// The on-disk segment store: a directory holding `MANIFEST` plus one
/// immutable segment file per locality.
#[derive(Debug)]
pub struct SegmentStore {
    dir: PathBuf,
    manifest: Manifest,
}

impl SegmentStore {
    /// Opens (creating if absent) the store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure; [`StoreError::Corrupt`]
    /// if an existing manifest fails validation (the manifest is renamed
    /// into place atomically, so this indicates external damage, not a
    /// crash).
    pub fn open<P: AsRef<Path>>(dir: P) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let manifest_path = dir.join(MANIFEST_NAME);
        let manifest = match fs::read(&manifest_path) {
            Ok(bytes) => Manifest::decode(&bytes)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Manifest::default(),
            Err(e) => return Err(e.into()),
        };
        Ok(Self { dir, manifest })
    }

    /// The current manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Folds `batches` into per-locality segments, routing each reading
    /// through `locality_of`, and atomically publishes the new manifest.
    /// Batches whose ID is already absorbed are skipped (idempotent
    /// re-checkpoint after a crash between manifest rename and WAL
    /// truncation).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure — the old manifest stays
    /// authoritative in that case.
    pub fn checkpoint<F>(
        &mut self,
        batches: &[ReadingBatch],
        locality_of: F,
    ) -> Result<CheckpointReport, StoreError>
    where
        F: Fn(&ReadingSample) -> usize,
    {
        let _t = waldo_prof::scope("store_checkpoint");
        // Deterministic fold order: ascending batch ID, in-batch order.
        let mut fresh: Vec<&ReadingBatch> =
            batches.iter().filter(|b| !self.manifest.absorbed.contains(&b.batch_id)).collect();
        fresh.sort_by_key(|b| b.batch_id);
        fresh.dedup_by_key(|b| b.batch_id);

        let mut added: BTreeMap<usize, Vec<ReadingSample>> = BTreeMap::new();
        let mut reading_count = 0usize;
        for b in &fresh {
            for s in &b.readings {
                added.entry(locality_of(s)).or_default().push(*s);
                reading_count += 1;
            }
        }

        let seq = self.manifest.checkpoint_seq + 1;
        let mut next = self.manifest.clone();
        next.checkpoint_seq = seq;
        next.absorbed.extend(fresh.iter().map(|b| b.batch_id));
        let mut changed = Vec::new();
        let mut retired = Vec::new();
        for (&locality, new_readings) in &added {
            let mut readings = match self.manifest.segments.get(&locality) {
                Some(meta) => {
                    retired.push(meta.file.clone());
                    self.read_segment(locality, meta)?
                }
                None => Vec::new(),
            };
            readings.extend_from_slice(new_readings);
            let file = format!("seg-{locality:04}-{seq:08}.wls");
            let digest = self.write_segment(locality, &file, &readings)?;
            next.segments
                .insert(locality, SegmentMeta { file, digest, readings: readings.len() as u32 });
            changed.push(locality);
        }

        self.publish_manifest(&next)?;
        self.manifest = next;
        // Retired segments are garbage once the manifest no longer points
        // at them; removal is best-effort.
        for file in retired {
            let _ = fs::remove_file(self.dir.join(file));
        }
        Ok(CheckpointReport {
            seq,
            batches: fresh.len(),
            readings: reading_count,
            changed_localities: changed,
        })
    }

    /// Reads one locality's full reading set back (empty if the locality
    /// has no segment yet).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure, [`StoreError::Corrupt`]
    /// if the file does not match its manifest entry.
    pub fn locality_readings(&self, locality: usize) -> Result<Vec<ReadingSample>, StoreError> {
        match self.manifest.segments.get(&locality) {
            Some(meta) => self.read_segment(locality, meta),
            None => Ok(Vec::new()),
        }
    }

    /// All stored readings across localities, in (locality, fold-order)
    /// order — the global set the labeler needs.
    ///
    /// # Errors
    ///
    /// Same as [`locality_readings`](Self::locality_readings).
    pub fn all_readings(&self) -> Result<Vec<ReadingSample>, StoreError> {
        let mut out = Vec::new();
        for &locality in self.manifest.segments.keys() {
            out.extend(self.locality_readings(locality)?);
        }
        Ok(out)
    }

    /// Total readings across all segments, from the manifest alone.
    pub fn reading_count(&self) -> usize {
        self.manifest.segments.values().map(|m| m.readings as usize).sum()
    }

    fn write_segment(
        &self,
        locality: usize,
        file: &str,
        readings: &[ReadingSample],
    ) -> Result<u64, StoreError> {
        let mut out = Vec::with_capacity(13 + readings.len() * READING_F64S * 8);
        out.extend_from_slice(&SEGMENT_MAGIC);
        out.push(FORMAT_VERSION);
        put_u32(&mut out, locality as u32);
        put_u32(&mut out, readings.len() as u32);
        for s in readings {
            put_f64(&mut out, s.location.x);
            put_f64(&mut out, s.location.y);
            put_f64(&mut out, s.rss_dbm);
            let f = &s.features;
            for v in [
                f.rss_db,
                f.cft_db,
                f.aft_db,
                f.quadrature_imbalance_db,
                f.iq_kurtosis,
                f.edge_bin_db,
            ] {
                put_f64(&mut out, v);
            }
        }
        let mut fh =
            OpenOptions::new().write(true).create(true).truncate(true).open(self.dir.join(file))?;
        fh.write_all(&out)?;
        fh.sync_all()?;
        Ok(fnv1a64(&out))
    }

    fn read_segment(
        &self,
        locality: usize,
        meta: &SegmentMeta,
    ) -> Result<Vec<ReadingSample>, StoreError> {
        let mut bytes = Vec::new();
        File::open(self.dir.join(&meta.file))?.read_to_end(&mut bytes)?;
        if fnv1a64(&bytes) != meta.digest {
            return Err(StoreError::Corrupt("segment digest mismatch"));
        }
        let fail = |_| StoreError::Corrupt("segment structure");
        let mut r = Reader::new(&bytes);
        if r.bytes(4).map_err(fail)? != SEGMENT_MAGIC {
            return Err(StoreError::Corrupt("segment magic"));
        }
        if r.u8().map_err(fail)? != FORMAT_VERSION {
            return Err(StoreError::Corrupt("segment version"));
        }
        if r.u32().map_err(fail)? as usize != locality {
            return Err(StoreError::Corrupt("segment locality mismatch"));
        }
        let count = r.u32().map_err(fail)? as usize;
        if count != meta.readings as usize {
            return Err(StoreError::Corrupt("segment reading count mismatch"));
        }
        let mut readings = Vec::with_capacity(count);
        for _ in 0..count {
            let x = r.f64().map_err(fail)?;
            let y = r.f64().map_err(fail)?;
            let rss_dbm = r.f64().map_err(fail)?;
            let mut f = [0.0f64; 6];
            for v in &mut f {
                *v = r.f64().map_err(fail)?;
            }
            readings.push(ReadingSample {
                location: Point::new(x, y),
                rss_dbm,
                features: FeatureVector {
                    rss_db: f[0],
                    cft_db: f[1],
                    aft_db: f[2],
                    quadrature_imbalance_db: f[3],
                    iq_kurtosis: f[4],
                    edge_bin_db: f[5],
                },
            });
        }
        r.finish().map_err(|_| StoreError::Corrupt("segment trailing bytes"))?;
        Ok(readings)
    }

    fn publish_manifest(&self, manifest: &Manifest) -> Result<(), StoreError> {
        let tmp = self.dir.join(format!("{MANIFEST_NAME}.tmp"));
        let target = self.dir.join(MANIFEST_NAME);
        let mut fh = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
        fh.write_all(&manifest.encode())?;
        fh.sync_all()?;
        drop(fh);
        fs::rename(&tmp, &target)?;
        // Make the rename itself durable.
        if let Ok(dir) = File::open(&self.dir) {
            let _ = dir.sync_all();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("waldo-seg-{}-{}", std::process::id(), name));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample(x: f64) -> ReadingSample {
        ReadingSample {
            location: Point::new(x, x / 2.0),
            rss_dbm: -85.0,
            features: FeatureVector {
                rss_db: -85.0,
                cft_db: -96.0,
                aft_db: -97.0,
                quadrature_imbalance_db: 0.0,
                iq_kurtosis: 2.0,
                edge_bin_db: -110.0,
            },
        }
    }

    fn batch(id: u64, xs: &[f64]) -> ReadingBatch {
        ReadingBatch {
            batch_id: id,
            channel: 30,
            readings: xs.iter().map(|&x| sample(x)).collect(),
        }
    }

    // Route by sign of x: two localities.
    fn locality_of(s: &ReadingSample) -> usize {
        usize::from(s.location.x >= 0.0)
    }

    #[test]
    fn checkpoint_roundtrips_readings_by_locality() {
        let dir = temp_dir("roundtrip");
        let mut store = SegmentStore::open(&dir).unwrap();
        let report =
            store.checkpoint(&[batch(1, &[-5.0, 3.0]), batch(2, &[7.0])], locality_of).unwrap();
        assert_eq!(report.seq, 1);
        assert_eq!(report.batches, 2);
        assert_eq!(report.readings, 3);
        assert_eq!(report.changed_localities, vec![0, 1]);
        assert_eq!(store.locality_readings(0).unwrap(), vec![sample(-5.0)]);
        assert_eq!(store.locality_readings(1).unwrap(), vec![sample(3.0), sample(7.0)]);
        assert_eq!(store.reading_count(), 3);

        // Reopen: the manifest is the source of truth.
        let reopened = SegmentStore::open(&dir).unwrap();
        assert_eq!(reopened.manifest(), store.manifest());
        assert_eq!(reopened.all_readings().unwrap().len(), 3);
    }

    #[test]
    fn untouched_localities_keep_their_digest() {
        let dir = temp_dir("digests");
        let mut store = SegmentStore::open(&dir).unwrap();
        store.checkpoint(&[batch(1, &[-5.0, 3.0])], locality_of).unwrap();
        let before = store.manifest().segments.clone();

        let report = store.checkpoint(&[batch(2, &[8.0])], locality_of).unwrap();
        assert_eq!(report.changed_localities, vec![1]);
        let after = &store.manifest().segments;
        assert_eq!(after[&0].digest, before[&0].digest, "locality 0 saw no new readings");
        assert_ne!(after[&1].digest, before[&1].digest, "locality 1 grew");
        assert_eq!(after[&1].readings, 2);
    }

    #[test]
    fn compaction_is_deterministic_regardless_of_arrival_order() {
        let dir_a = temp_dir("det-a");
        let dir_b = temp_dir("det-b");
        let mut a = SegmentStore::open(&dir_a).unwrap();
        let mut b = SegmentStore::open(&dir_b).unwrap();
        let batches = [batch(3, &[1.0]), batch(1, &[2.0, -4.0]), batch(2, &[5.0])];
        let mut reversed = batches.clone().to_vec();
        reversed.reverse();
        a.checkpoint(&batches, locality_of).unwrap();
        b.checkpoint(&reversed, locality_of).unwrap();
        assert_eq!(a.manifest(), b.manifest());
        for loc in [0usize, 1] {
            assert_eq!(
                fs::read(dir_a.join(&a.manifest().segments[&loc].file)).unwrap(),
                fs::read(dir_b.join(&b.manifest().segments[&loc].file)).unwrap(),
                "segment bytes must not depend on arrival order"
            );
        }
    }

    #[test]
    fn absorbed_batches_are_skipped_on_recheckpoint() {
        let dir = temp_dir("absorbed");
        let mut store = SegmentStore::open(&dir).unwrap();
        store.checkpoint(&[batch(1, &[1.0])], locality_of).unwrap();
        let before = store.manifest().segments.clone();
        // Crash-window replay: the same batch comes around again.
        let report = store.checkpoint(&[batch(1, &[1.0]), batch(2, &[2.0])], locality_of).unwrap();
        assert_eq!(report.batches, 1, "batch 1 is already absorbed");
        assert_eq!(store.manifest().segments[&1].readings, 2);
        assert_ne!(store.manifest().segments[&1].digest, before[&1].digest);
        assert!(store.manifest().absorbed.contains(&1));
        assert!(store.manifest().absorbed.contains(&2));
    }

    #[test]
    fn corrupt_manifest_is_refused_not_misread() {
        let dir = temp_dir("corrupt");
        let mut store = SegmentStore::open(&dir).unwrap();
        store.checkpoint(&[batch(1, &[1.0])], locality_of).unwrap();
        let path = dir.join(MANIFEST_NAME);
        let mut bytes = fs::read(&path).unwrap();
        bytes[6] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(SegmentStore::open(&dir), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn empty_checkpoint_is_a_noop() {
        let dir = temp_dir("noop");
        let mut store = SegmentStore::open(&dir).unwrap();
        let report = store.checkpoint(&[], locality_of).unwrap();
        assert_eq!(report.readings, 0);
        assert!(report.changed_localities.is_empty());
        assert_eq!(store.manifest().checkpoint_seq, 1, "the sequence still advances");
    }
}
