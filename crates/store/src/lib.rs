//! The ingestion store: the durable half of the paper's crowd-sourcing
//! loop (§3.1/§3.4 — phones upload readings, the central repository
//! retrains, devices download refreshed models).
//!
//! Three layers, each usable on its own:
//!
//! * [`ReadingLog`] — an append-only write-ahead log of upload batches.
//!   Records are length-prefixed and checksummed; replay truncates a torn
//!   tail instead of failing, and batch IDs are remembered so a client
//!   retry after a lost ack never double-ingests.
//! * [`SegmentStore`] — checkpoint/compaction of replayed batches into
//!   immutable per-locality segment files plus an atomically-rewritten
//!   manifest. A locality's segment digest changes iff its reading set
//!   changed, which is exactly the signal the refit layer diffs.
//! * [`RefitEngine`] — the incremental trainer: relabels the full reading
//!   set (Algorithm 1's 6 km poisoning rule is non-local) but retrains
//!   only the localities whose segment digest moved since the last refit,
//!   so steady-state uploads cost one locality's training pass, not k.
//!
//! Durability contract: [`ReadingLog::append`] does not return until the
//! record is on disk (fsync batching is opt-in via
//! [`ReadingLog::sync_every`]), so any acknowledged batch survives a kill
//! and is recovered by replay on the next open.

mod refit;
mod segment;
mod wal;

pub use refit::{RefitEngine, RefitError, RefitReport};
pub use segment::{CheckpointReport, Manifest, SegmentMeta, SegmentStore};
pub use wal::{AppendOutcome, ReadingLog, ReplayReport, MAX_WAL_RECORD_BYTES};

/// Errors from the store layers.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A manifest or segment file failed structural validation.
    Corrupt(&'static str),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(what) => write!(f, "store corruption: {what}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}
