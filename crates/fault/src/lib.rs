//! Deterministic fault injection for the distribution and detection paths.
//!
//! The paper's claim is that a white-space device keeps deciding *locally*
//! while its link to the central constructor misbehaves. This crate makes
//! that misbehaviour reproducible: seeded fault *schedules* that drive
//! three seams —
//!
//! * **transport** — [`FaultStream`] wraps the serve client/server sockets
//!   and injects connection refusals, mid-frame drops, partial writes,
//!   single-bit corruption, and read stalls ([`TransportFaults`]);
//! * **server** — the accept-loop backpressure (connection cap, per-frame
//!   progress deadline) in `waldo-serve` is exercised under these streams;
//! * **sensor** — [`SensorFaults`] perturbs the RSS stream fed into the
//!   detector with stuck-at runs, dropped readings, and noise bursts.
//!
//! # Determinism
//!
//! Every decision is drawn from a seeded xoshiro stream (the vendored
//! `rand`), and decisions are only drawn at points whose call counts the
//! *caller* controls: once per connection attempt, once per `write` call,
//! once per sensor reading. Read-side behaviour never draws (kernel read
//! segmentation is not reproducible), so a given seed replays the identical
//! fault sequence across runs and worker counts. Independent entities
//! (clients, connections) derive their own streams with [`derive_seed`] /
//! [`TransportFaults::fork`], which keeps each sequence invariant under
//! concurrency.
//!
//! # Feature gating
//!
//! Without the `fault` cargo feature (the default) every decision method
//! returns "no fault", [`FaultStream`] is a transparent passthrough with no
//! policy state, and the serve/detect paths behave bit-identically to a
//! build that never heard of this crate.

use std::io::{Read, Write};
use std::time::Duration;

#[cfg(feature = "fault")]
use rand::rngs::StdRng;
#[cfg(feature = "fault")]
use rand::{Rng, SeedableRng};

/// Derives an independent fault-schedule seed for entity `index` of a
/// named seam (`salt`), so concurrent entities replay their own sequences
/// regardless of interleaving. SplitMix64 over an FNV-1a fold of the salt.
pub fn derive_seed(seed: u64, salt: &str, index: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in salt.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = seed ^ h.wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    // SplitMix64 finalizer: decorrelates adjacent (seed, index) pairs.
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Transport faults.

/// Per-operation fault probabilities for one transport schedule. All
/// probabilities default to zero (no faults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransportPlan {
    /// P(connection attempt is refused before the socket is opened).
    pub refuse_connect: f64,
    /// P(one bit of a written buffer is flipped), per `write` call.
    pub corrupt_byte: f64,
    /// P(only a prefix is written and the stream then dies), per `write`.
    pub short_write: f64,
    /// P(the connection aborts mid-frame after a partial write), per
    /// `write`.
    pub drop_mid_frame: f64,
    /// P(the next `read` on the stream stalls for [`stall`](Self::stall)),
    /// per `write`.
    pub read_stall: f64,
    /// How long an injected read stall sleeps.
    pub stall: Duration,
}

impl Default for TransportPlan {
    fn default() -> Self {
        Self {
            refuse_connect: 0.0,
            corrupt_byte: 0.0,
            short_write: 0.0,
            drop_mid_frame: 0.0,
            read_stall: 0.0,
            stall: Duration::ZERO,
        }
    }
}

/// Counts of transport faults a schedule has injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportEvents {
    /// Connection attempts refused.
    pub refused: u64,
    /// Writes with one bit flipped.
    pub corrupted: u64,
    /// Writes cut short (stream dead afterwards).
    pub short_writes: u64,
    /// Mid-frame connection aborts.
    pub dropped: u64,
    /// Read stalls scheduled.
    pub stalled: u64,
}

impl TransportEvents {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.refused + self.corrupted + self.short_writes + self.dropped + self.stalled
    }
}

/// What one `write` call should do. Crate-internal: [`FaultStream`]
/// translates it into I/O behaviour.
#[cfg(feature = "fault")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriteFault {
    None,
    /// Flip one bit of byte `at`, then write normally.
    Corrupt {
        at: usize,
    },
    /// Write only the first `keep` bytes, report them, and die.
    Short {
        keep: usize,
    },
    /// Write the first `keep` bytes, then abort the connection.
    Drop {
        keep: usize,
    },
    /// Write normally; the next `read` sleeps for the plan's stall.
    StallNextRead,
}

#[cfg(feature = "fault")]
mod transport_imp {
    use super::{StdRng, TransportEvents, TransportPlan, WriteFault};
    use rand::{Rng, SeedableRng};
    use std::sync::Mutex;

    #[derive(Debug)]
    pub(super) struct State {
        pub(super) seed: u64,
        pub(super) plan: TransportPlan,
        pub(super) inner: Mutex<Inner>,
    }

    #[derive(Debug)]
    pub(super) struct Inner {
        pub(super) rng: StdRng,
        pub(super) events: TransportEvents,
    }

    impl State {
        pub(super) fn new(seed: u64, plan: TransportPlan) -> Self {
            Self {
                seed,
                plan,
                inner: Mutex::new(Inner {
                    rng: StdRng::seed_from_u64(seed),
                    events: TransportEvents::default(),
                }),
            }
        }

        pub(super) fn connect_refused(&self) -> bool {
            let mut inner = self.inner.lock().expect("fault state poisoned");
            let refused =
                self.plan.refuse_connect > 0.0 && inner.rng.gen::<f64>() < self.plan.refuse_connect;
            if refused {
                inner.events.refused += 1;
            }
            refused
        }

        pub(super) fn write_fault(&self, len: usize) -> WriteFault {
            if len == 0 {
                return WriteFault::None;
            }
            let plan = &self.plan;
            let mut inner = self.inner.lock().expect("fault state poisoned");
            let u = inner.rng.gen::<f64>();
            let mut edge = plan.corrupt_byte;
            if u < edge {
                let at = inner.rng.gen_range(0..len);
                inner.events.corrupted += 1;
                return WriteFault::Corrupt { at };
            }
            edge += plan.short_write;
            if u < edge {
                let keep = inner.rng.gen_range(0..len);
                inner.events.short_writes += 1;
                return WriteFault::Short { keep };
            }
            edge += plan.drop_mid_frame;
            if u < edge {
                let keep = inner.rng.gen_range(0..len);
                inner.events.dropped += 1;
                return WriteFault::Drop { keep };
            }
            edge += plan.read_stall;
            if u < edge {
                inner.events.stalled += 1;
                return WriteFault::StallNextRead;
            }
            WriteFault::None
        }

        pub(super) fn events(&self) -> TransportEvents {
            self.inner.lock().expect("fault state poisoned").events
        }
    }
}

/// A seeded transport fault schedule. Cloning shares the underlying
/// decision stream and event counters, so one schedule can follow a client
/// across reconnects (each new socket continues the same sequence).
///
/// Without the `fault` feature this is an inert zero-sized handle.
#[derive(Debug, Clone)]
pub struct TransportFaults {
    #[cfg(feature = "fault")]
    state: std::sync::Arc<transport_imp::State>,
}

impl TransportFaults {
    /// Creates a schedule drawing from `seed` under `plan`.
    #[cfg_attr(not(feature = "fault"), allow(unused_variables))]
    pub fn new(seed: u64, plan: TransportPlan) -> Self {
        Self {
            #[cfg(feature = "fault")]
            state: std::sync::Arc::new(transport_imp::State::new(seed, plan)),
        }
    }

    /// Derives an independent schedule for entity `index` (same plan, seed
    /// derived via [`derive_seed`]). Fresh counters, fresh stream: the
    /// fork's sequence does not depend on draws made from `self`.
    #[cfg_attr(not(feature = "fault"), allow(unused_variables))]
    pub fn fork(&self, index: u64) -> Self {
        #[cfg(feature = "fault")]
        {
            TransportFaults::new(derive_seed(self.state.seed, "fork", index), self.state.plan)
        }
        #[cfg(not(feature = "fault"))]
        {
            TransportFaults::new(0, TransportPlan::default())
        }
    }

    /// Whether the next connection attempt should be refused (one decision
    /// draw). Always `false` without the `fault` feature.
    pub fn connect_refused(&self) -> bool {
        #[cfg(feature = "fault")]
        {
            self.state.connect_refused()
        }
        #[cfg(not(feature = "fault"))]
        {
            false
        }
    }

    /// Snapshot of the faults injected so far.
    pub fn events(&self) -> TransportEvents {
        #[cfg(feature = "fault")]
        {
            self.state.events()
        }
        #[cfg(not(feature = "fault"))]
        {
            TransportEvents::default()
        }
    }

    #[cfg(feature = "fault")]
    fn write_fault(&self, len: usize) -> WriteFault {
        self.state.write_fault(len)
    }

    #[cfg(feature = "fault")]
    fn stall(&self) -> Duration {
        self.state.plan.stall
    }
}

/// A fault-injecting wrapper around a byte stream. Created
/// [`transparent`](Self::transparent) it forwards every call untouched;
/// created [`with_faults`](Self::with_faults) (and with the `fault`
/// feature compiled in) it consults the schedule on every `write` and
/// executes scheduled stalls on `read`. Once a schedule kills the stream
/// (short write / mid-frame drop), every further operation fails with
/// `BrokenPipe` — the wrapper stays dead until discarded, mirroring a
/// genuinely broken socket.
#[derive(Debug)]
pub struct FaultStream<S> {
    inner: S,
    #[cfg(feature = "fault")]
    faults: Option<TransportFaults>,
    #[cfg(feature = "fault")]
    dead: bool,
    #[cfg(feature = "fault")]
    pending_stall: bool,
}

impl<S> FaultStream<S> {
    /// Wraps `inner` with no fault schedule: a pure passthrough.
    pub fn transparent(inner: S) -> Self {
        Self {
            inner,
            #[cfg(feature = "fault")]
            faults: None,
            #[cfg(feature = "fault")]
            dead: false,
            #[cfg(feature = "fault")]
            pending_stall: false,
        }
    }

    /// Wraps `inner` under `faults`. Without the `fault` feature the
    /// schedule is inert and this is equivalent to
    /// [`transparent`](Self::transparent).
    #[cfg_attr(not(feature = "fault"), allow(unused_variables))]
    pub fn with_faults(inner: S, faults: TransportFaults) -> Self {
        Self {
            inner,
            #[cfg(feature = "fault")]
            faults: Some(faults),
            #[cfg(feature = "fault")]
            dead: false,
            #[cfg(feature = "fault")]
            pending_stall: false,
        }
    }

    /// The wrapped stream (e.g. to adjust socket timeouts).
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped stream.
    pub fn get_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwraps the stream.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

#[cfg(feature = "fault")]
fn dead_stream_error() -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::BrokenPipe, "fault-injected dead stream")
}

impl<S: Read> Read for FaultStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        #[cfg(feature = "fault")]
        {
            if self.dead {
                return Err(dead_stream_error());
            }
            if self.pending_stall {
                self.pending_stall = false;
                if let Some(f) = &self.faults {
                    std::thread::sleep(f.stall());
                }
            }
        }
        self.inner.read(buf)
    }
}

impl<S: Write> Write for FaultStream<S> {
    #[cfg_attr(not(feature = "fault"), inline)]
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        #[cfg(feature = "fault")]
        {
            if self.dead {
                return Err(dead_stream_error());
            }
            if let Some(faults) = self.faults.clone() {
                match faults.write_fault(buf.len()) {
                    WriteFault::None => {}
                    WriteFault::StallNextRead => self.pending_stall = true,
                    WriteFault::Corrupt { at } => {
                        let mut copy = buf.to_vec();
                        copy[at] ^= 0x04;
                        return self.inner.write(&copy);
                    }
                    WriteFault::Short { keep } => {
                        self.dead = true;
                        if keep > 0 {
                            self.inner.write_all(&buf[..keep])?;
                            let _ = self.inner.flush();
                        }
                        // `Ok(0)` surfaces as `WriteZero` in the caller's
                        // `write_all` — still a transport error, as intended.
                        return Ok(keep);
                    }
                    WriteFault::Drop { keep } => {
                        self.dead = true;
                        if keep > 0 {
                            let _ = self.inner.write_all(&buf[..keep]);
                            let _ = self.inner.flush();
                        }
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::ConnectionAborted,
                            "fault-injected mid-frame drop",
                        ));
                    }
                }
            }
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        #[cfg(feature = "fault")]
        if self.dead {
            return Err(dead_stream_error());
        }
        self.inner.flush()
    }
}

// ---------------------------------------------------------------------------
// Sensor faults.

/// Per-reading fault probabilities for a sensor schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorPlan {
    /// P(a stuck-at run starts at this reading).
    pub stuck: f64,
    /// Length of a stuck-at run, readings (the trigger reading included).
    pub stuck_len: u32,
    /// P(this reading is dropped before reaching the detector).
    pub drop: f64,
    /// P(this reading carries a noise burst).
    pub burst: f64,
    /// Burst amplitude added to the true RSS, dB.
    pub burst_db: f64,
}

impl Default for SensorPlan {
    fn default() -> Self {
        Self { stuck: 0.0, stuck_len: 4, drop: 0.0, burst: 0.0, burst_db: 20.0 }
    }
}

/// What one sensor reading should do.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SensorFault {
    /// Deliver the reading unchanged.
    None,
    /// Repeat the previous delivered value (stuck sensor).
    Stuck,
    /// Drop the reading entirely.
    Drop,
    /// Add this many dB of burst noise to the reading.
    Burst(f64),
}

/// Counts of sensor faults a schedule has injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SensorEvents {
    /// Readings replaced by a stuck-at value.
    pub stuck: u64,
    /// Readings dropped.
    pub dropped: u64,
    /// Readings hit by a noise burst.
    pub bursts: u64,
}

impl SensorEvents {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.stuck + self.dropped + self.bursts
    }
}

/// A seeded sensor fault schedule: one decision per reading.
///
/// Without the `fault` feature [`next_fault`](Self::next_fault) always returns
/// [`SensorFault::None`].
#[derive(Debug, Clone)]
pub struct SensorFaults {
    #[cfg(feature = "fault")]
    rng: StdRng,
    #[cfg(feature = "fault")]
    plan: SensorPlan,
    #[cfg(feature = "fault")]
    stuck_remaining: u32,
    events: SensorEvents,
}

impl SensorFaults {
    /// Creates a schedule drawing from `seed` under `plan`.
    #[cfg_attr(not(feature = "fault"), allow(unused_variables))]
    pub fn new(seed: u64, plan: SensorPlan) -> Self {
        Self {
            #[cfg(feature = "fault")]
            rng: StdRng::seed_from_u64(seed),
            #[cfg(feature = "fault")]
            plan,
            #[cfg(feature = "fault")]
            stuck_remaining: 0,
            events: SensorEvents::default(),
        }
    }

    /// Draws the fault decision for the next reading.
    pub fn next_fault(&mut self) -> SensorFault {
        #[cfg(feature = "fault")]
        {
            if self.stuck_remaining > 0 {
                self.stuck_remaining -= 1;
                self.events.stuck += 1;
                return SensorFault::Stuck;
            }
            let u = self.rng.gen::<f64>();
            let mut edge = self.plan.stuck;
            if u < edge {
                self.stuck_remaining = self.plan.stuck_len.saturating_sub(1);
                self.events.stuck += 1;
                return SensorFault::Stuck;
            }
            edge += self.plan.drop;
            if u < edge {
                self.events.dropped += 1;
                return SensorFault::Drop;
            }
            edge += self.plan.burst;
            if u < edge {
                self.events.bursts += 1;
                return SensorFault::Burst(self.plan.burst_db);
            }
        }
        SensorFault::None
    }

    /// Snapshot of the faults injected so far.
    pub fn events(&self) -> SensorEvents {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_separates_salts_and_indices() {
        assert_ne!(derive_seed(42, "transport", 0), derive_seed(42, "transport", 1));
        assert_ne!(derive_seed(42, "transport", 0), derive_seed(42, "sensor", 0));
        assert_ne!(derive_seed(42, "transport", 0), derive_seed(43, "transport", 0));
        assert_eq!(derive_seed(42, "transport", 7), derive_seed(42, "transport", 7));
    }

    #[cfg(not(feature = "fault"))]
    #[test]
    fn without_the_feature_everything_is_inert() {
        let plan = TransportPlan {
            refuse_connect: 1.0,
            corrupt_byte: 1.0,
            short_write: 1.0,
            drop_mid_frame: 1.0,
            read_stall: 1.0,
            stall: Duration::from_secs(1),
        };
        let faults = TransportFaults::new(1, plan);
        assert!(!faults.connect_refused());
        assert_eq!(faults.events(), TransportEvents::default());

        let mut sensor = SensorFaults::new(
            1,
            SensorPlan { stuck: 1.0, drop: 1.0, burst: 1.0, ..SensorPlan::default() },
        );
        for _ in 0..32 {
            assert_eq!(sensor.next_fault(), SensorFault::None);
        }
        assert_eq!(sensor.events(), SensorEvents::default());

        // The stream forwards bytes untouched.
        let mut out = Vec::new();
        let mut stream = FaultStream::with_faults(&mut out, faults);
        stream.write_all(b"pristine").unwrap();
        stream.flush().unwrap();
        assert_eq!(out, b"pristine");
    }

    #[cfg(feature = "fault")]
    mod with_feature {
        use super::super::*;

        fn busy_plan() -> TransportPlan {
            TransportPlan {
                refuse_connect: 0.2,
                corrupt_byte: 0.15,
                short_write: 0.15,
                drop_mid_frame: 0.1,
                read_stall: 0.1,
                stall: Duration::ZERO,
            }
        }

        /// Replays a schedule as a comparable decision trace.
        fn transport_trace(faults: &TransportFaults, ops: usize) -> Vec<String> {
            (0..ops)
                .map(|i| {
                    if i % 5 == 0 {
                        format!("connect:{}", faults.connect_refused())
                    } else {
                        format!("{:?}", faults.write_fault(64))
                    }
                })
                .collect()
        }

        #[test]
        fn same_seed_replays_the_identical_transport_sequence() {
            let a = TransportFaults::new(7, busy_plan());
            let b = TransportFaults::new(7, busy_plan());
            assert_eq!(transport_trace(&a, 200), transport_trace(&b, 200));
            assert_eq!(a.events(), b.events());
            assert!(a.events().total() > 0, "a busy plan must fire");
        }

        #[test]
        fn forked_sequences_are_independent_of_sibling_draws() {
            // Fork 3's sequence must not depend on how much the parent or
            // other forks have drawn — that is what makes the aggregate
            // fault counts invariant under worker interleaving.
            let parent = TransportFaults::new(7, busy_plan());
            let quiet_fork = parent.fork(3);
            let quiet = transport_trace(&quiet_fork, 100);

            let parent = TransportFaults::new(7, busy_plan());
            let _ = transport_trace(&parent, 57);
            let busy_sibling = parent.fork(1);
            let _ = transport_trace(&busy_sibling, 31);
            let noisy_fork = parent.fork(3);
            assert_eq!(transport_trace(&noisy_fork, 100), quiet);
        }

        #[test]
        fn clones_share_one_stream_and_counters() {
            let a = TransportFaults::new(9, busy_plan());
            let b = a.clone();
            let merged: Vec<String> =
                transport_trace(&a, 50).into_iter().chain(transport_trace(&b, 50)).collect();
            let solo = TransportFaults::new(9, busy_plan());
            assert_eq!(merged, transport_trace(&solo, 100));
            assert_eq!(a.events(), b.events());
        }

        #[test]
        fn sensor_schedule_replays_and_runs_stick() {
            let plan =
                SensorPlan { stuck: 0.1, stuck_len: 3, drop: 0.1, burst: 0.1, burst_db: 25.0 };
            let mut a = SensorFaults::new(11, plan);
            let mut b = SensorFaults::new(11, plan);
            let seq_a: Vec<SensorFault> = (0..300).map(|_| a.next_fault()).collect();
            let seq_b: Vec<SensorFault> = (0..300).map(|_| b.next_fault()).collect();
            assert_eq!(seq_a, seq_b);
            let events = a.events();
            assert!(events.stuck > 0 && events.dropped > 0 && events.bursts > 0);
            // A stuck trigger holds for stuck_len consecutive readings.
            let first = seq_a.iter().position(|f| *f == SensorFault::Stuck).unwrap();
            assert!(seq_a[first..first + 3].iter().all(|f| *f == SensorFault::Stuck));
        }

        #[test]
        fn short_write_kills_the_stream() {
            let plan = TransportPlan { short_write: 1.0, ..TransportPlan::default() };
            let mut out = Vec::new();
            let mut stream = FaultStream::with_faults(&mut out, TransportFaults::new(1, plan));
            let err = stream.write_all(b"twelve bytes").unwrap_err();
            assert!(matches!(
                err.kind(),
                std::io::ErrorKind::BrokenPipe | std::io::ErrorKind::WriteZero
            ));
            assert!(stream.get_ref().len() < 12, "a short write must not deliver the whole buffer");
            assert!(stream.write(b"more").is_err(), "the stream stays dead");
            assert!(stream.flush().is_err());
        }

        #[test]
        fn corruption_flips_exactly_one_bit() {
            let plan = TransportPlan { corrupt_byte: 1.0, ..TransportPlan::default() };
            let mut out = Vec::new();
            let mut stream = FaultStream::with_faults(&mut out, TransportFaults::new(2, plan));
            let original = b"payload bytes under test";
            stream.write_all(original).unwrap();
            assert_eq!(out.len(), original.len());
            let flipped_bits: u32 =
                out.iter().zip(original.iter()).map(|(a, b)| (a ^ b).count_ones()).sum();
            assert_eq!(flipped_bits, 1, "exactly one bit must differ");
        }
    }
}
