//! Property-based tests of the geodesy substrate.

use proptest::prelude::*;
use waldo_geo::{GeoPoint, GridIndex, LocalFrame, Point};

fn arb_geo() -> impl Strategy<Value = GeoPoint> {
    (-80.0f64..80.0, -179.0f64..179.0).prop_map(|(lat, lon)| GeoPoint::new(lat, lon).unwrap())
}

fn arb_point() -> impl Strategy<Value = Point> {
    (-50_000.0f64..50_000.0, -50_000.0f64..50_000.0).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #[test]
    fn haversine_is_symmetric_and_nonnegative(a in arb_geo(), b in arb_geo()) {
        let ab = a.haversine_m(b);
        let ba = b.haversine_m(a);
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-6);
    }

    #[test]
    fn haversine_triangle_inequality(a in arb_geo(), b in arb_geo(), c in arb_geo()) {
        // Great-circle distances satisfy the triangle inequality.
        prop_assert!(a.haversine_m(c) <= a.haversine_m(b) + b.haversine_m(c) + 1e-6);
    }

    #[test]
    fn frame_projection_roundtrips(anchor in arb_geo(),
                                   x in -30_000.0f64..30_000.0,
                                   y in -30_000.0f64..30_000.0) {
        // Stay away from the poles where the equirectangular frame degrades.
        prop_assume!(anchor.lat_deg().abs() < 70.0);
        let frame = LocalFrame::new(anchor);
        let p = Point::new(x, y);
        let q = frame.project(frame.unproject(p));
        prop_assert!((q.x - x).abs() < 1e-6 && (q.y - y).abs() < 1e-6);
    }

    #[test]
    fn point_distance_is_a_metric(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert!(a.distance(a) == 0.0);
        prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-9);
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
    }

    #[test]
    fn grid_index_matches_brute_force(
        points in prop::collection::vec(arb_point(), 1..80),
        center in arb_point(),
        radius in 10.0f64..20_000.0,
    ) {
        let mut idx = GridIndex::new(1_000.0);
        for (i, &p) in points.iter().enumerate() {
            idx.insert(p, i);
        }
        let mut fast: Vec<usize> = idx.within(center, radius).map(|(_, &i)| i).collect();
        fast.sort_unstable();
        let brute: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance(center) <= radius)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(fast, brute);
    }

    #[test]
    fn grid_nearest_matches_brute_force(
        points in prop::collection::vec(arb_point(), 1..60),
        center in arb_point(),
    ) {
        let mut idx = GridIndex::new(2_500.0);
        for (i, &p) in points.iter().enumerate() {
            idx.insert(p, i);
        }
        let (_, &got) = idx.nearest(center).unwrap();
        let best = points
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.distance(center).total_cmp(&b.1.distance(center)))
            .map(|(i, _)| i)
            .unwrap();
        prop_assert!(
            (points[got].distance(center) - points[best].distance(center)).abs() < 1e-9
        );
    }
}
