use serde::{Deserialize, Serialize};
use std::fmt;

use crate::EARTH_RADIUS_M;

/// Error returned when constructing a [`GeoPoint`] from out-of-range values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidCoordinate {
    kind: Kind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Latitude,
    Longitude,
    NotFinite,
}

impl fmt::Display for InvalidCoordinate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            Kind::Latitude => write!(f, "latitude outside [-90, 90] degrees"),
            Kind::Longitude => write!(f, "longitude outside [-180, 180] degrees"),
            Kind::NotFinite => write!(f, "coordinate is not a finite number"),
        }
    }
}

impl std::error::Error for InvalidCoordinate {}

/// A WGS-84 geographic coordinate in decimal degrees.
///
/// Construction validates ranges, so every `GeoPoint` in the system is known
/// to be on the globe.
///
/// # Examples
///
/// ```
/// use waldo_geo::GeoPoint;
///
/// let p = GeoPoint::new(33.749, -84.388).unwrap();
/// assert_eq!(p.lat_deg(), 33.749);
/// assert!(GeoPoint::new(95.0, 0.0).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    lat_deg: f64,
    lon_deg: f64,
}

impl GeoPoint {
    /// Creates a point from latitude and longitude in decimal degrees.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidCoordinate`] if either value is non-finite, the
    /// latitude is outside `[-90, 90]`, or the longitude is outside
    /// `[-180, 180]`.
    pub fn new(lat_deg: f64, lon_deg: f64) -> Result<Self, InvalidCoordinate> {
        if !lat_deg.is_finite() || !lon_deg.is_finite() {
            return Err(InvalidCoordinate { kind: Kind::NotFinite });
        }
        if !(-90.0..=90.0).contains(&lat_deg) {
            return Err(InvalidCoordinate { kind: Kind::Latitude });
        }
        if !(-180.0..=180.0).contains(&lon_deg) {
            return Err(InvalidCoordinate { kind: Kind::Longitude });
        }
        Ok(Self { lat_deg, lon_deg })
    }

    /// Latitude in decimal degrees.
    pub fn lat_deg(self) -> f64 {
        self.lat_deg
    }

    /// Longitude in decimal degrees.
    pub fn lon_deg(self) -> f64 {
        self.lon_deg
    }

    /// Great-circle distance to `other` in metres, by the haversine formula.
    ///
    /// # Examples
    ///
    /// ```
    /// use waldo_geo::GeoPoint;
    ///
    /// let a = GeoPoint::new(33.749, -84.388).unwrap();
    /// let b = GeoPoint::new(33.749, -84.388).unwrap();
    /// assert_eq!(a.haversine_m(b), 0.0);
    /// ```
    pub fn haversine_m(self, other: GeoPoint) -> f64 {
        let lat1 = self.lat_deg.to_radians();
        let lat2 = other.lat_deg.to_radians();
        let dlat = (other.lat_deg - self.lat_deg).to_radians();
        let dlon = (other.lon_deg - self.lon_deg).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        let c = 2.0 * a.sqrt().clamp(0.0, 1.0).asin();
        EARTH_RADIUS_M * c
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.lat_deg, self.lon_deg)
    }
}

/// A point in a local metric east/north frame (metres).
///
/// Produced by [`LocalFrame::project`](crate::LocalFrame::project); all
/// simulator geometry (transmitters, obstacles, drive paths) lives in this
/// frame.
///
/// # Examples
///
/// ```
/// use waldo_geo::Point;
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// East offset from the frame anchor, metres.
    pub x: f64,
    /// North offset from the frame anchor, metres.
    pub y: f64,
}

impl Point {
    /// Creates a point at `(x, y)` metres.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other` in metres.
    pub fn distance(self, other: Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Squared Euclidean distance, avoiding the square root.
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Midpoint between `self` and `other`.
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Linear interpolation from `self` toward `other` by fraction `t`.
    ///
    /// `t = 0` yields `self`, `t = 1` yields `other`; values outside `[0, 1]`
    /// extrapolate along the same line.
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(self.x + (other.x - self.x) * t, self.y + (other.y - self.y) * t)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1} m, {:.1} m)", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_point_validates_ranges() {
        assert!(GeoPoint::new(33.7, -84.4).is_ok());
        assert!(GeoPoint::new(90.0, 180.0).is_ok());
        assert!(GeoPoint::new(-90.0, -180.0).is_ok());
        assert!(GeoPoint::new(90.01, 0.0).is_err());
        assert!(GeoPoint::new(0.0, 180.01).is_err());
        assert!(GeoPoint::new(f64::NAN, 0.0).is_err());
        assert!(GeoPoint::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn invalid_coordinate_messages_are_distinct() {
        let lat = GeoPoint::new(100.0, 0.0).unwrap_err().to_string();
        let lon = GeoPoint::new(0.0, 300.0).unwrap_err().to_string();
        let nan = GeoPoint::new(f64::NAN, 0.0).unwrap_err().to_string();
        assert!(lat.contains("latitude"));
        assert!(lon.contains("longitude"));
        assert!(nan.contains("finite"));
    }

    #[test]
    fn haversine_matches_known_distance() {
        // Atlanta downtown to Hartsfield-Jackson airport: roughly 13.2 km.
        let dt = GeoPoint::new(33.7490, -84.3880).unwrap();
        let atl = GeoPoint::new(33.6407, -84.4277).unwrap();
        let d = dt.haversine_m(atl);
        assert!((12_000.0..14_500.0).contains(&d), "got {d}");
    }

    #[test]
    fn haversine_is_symmetric_and_zero_on_self() {
        let a = GeoPoint::new(33.7, -84.4).unwrap();
        let b = GeoPoint::new(34.0, -84.0).unwrap();
        assert_eq!(a.haversine_m(a), 0.0);
        assert!((a.haversine_m(b) - b.haversine_m(a)).abs() < 1e-9);
    }

    #[test]
    fn point_distance_and_lerp() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(6.0, 8.0);
        assert_eq!(a.distance(b), 10.0);
        assert_eq!(a.distance_sq(b), 100.0);
        assert_eq!(a.midpoint(b), Point::new(3.0, 4.0));
        assert_eq!(a.lerp(b, 0.5), Point::new(3.0, 4.0));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn display_formats() {
        let g = GeoPoint::new(33.75, -84.39).unwrap();
        assert_eq!(g.to_string(), "(33.750000, -84.390000)");
        let p = Point::new(1.0, 2.0);
        assert_eq!(p.to_string(), "(1.0 m, 2.0 m)");
    }
}
