use serde::{Deserialize, Serialize};

use crate::{GeoPoint, Point, EARTH_RADIUS_M};

/// A local east/north metric frame anchored at a reference coordinate.
///
/// Uses the equirectangular approximation, which is accurate to well under
/// 0.1 % over the ~35 km extent of the study region — far below the 6 km
/// protection-radius granularity the paper's labeling rule works at.
///
/// # Examples
///
/// ```
/// use waldo_geo::{GeoPoint, LocalFrame, Point};
///
/// let anchor = GeoPoint::new(33.7490, -84.3880).unwrap();
/// let frame = LocalFrame::new(anchor);
/// let p = frame.project(anchor);
/// assert_eq!(p, Point::new(0.0, 0.0));
/// let back = frame.unproject(Point::new(1000.0, 2000.0));
/// let there = frame.project(back);
/// assert!((there.x - 1000.0).abs() < 1e-6);
/// assert!((there.y - 2000.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalFrame {
    anchor: GeoPoint,
    cos_lat: f64,
}

impl LocalFrame {
    /// Creates a frame anchored at `anchor`; `anchor` projects to the origin.
    pub fn new(anchor: GeoPoint) -> Self {
        Self { anchor, cos_lat: anchor.lat_deg().to_radians().cos() }
    }

    /// The anchor coordinate of this frame.
    pub fn anchor(&self) -> GeoPoint {
        self.anchor
    }

    /// Projects a geographic coordinate into the local frame (metres).
    pub fn project(&self, p: GeoPoint) -> Point {
        let dlat = (p.lat_deg() - self.anchor.lat_deg()).to_radians();
        let dlon = (p.lon_deg() - self.anchor.lon_deg()).to_radians();
        Point::new(EARTH_RADIUS_M * dlon * self.cos_lat, EARTH_RADIUS_M * dlat)
    }

    /// Inverse of [`project`](Self::project): maps a local point back to a
    /// geographic coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the resulting coordinate leaves the valid latitude/longitude
    /// range — that only happens for points thousands of kilometres outside
    /// the study region, which indicates a logic error upstream.
    pub fn unproject(&self, p: Point) -> GeoPoint {
        let lat = self.anchor.lat_deg() + (p.y / EARTH_RADIUS_M).to_degrees();
        let lon = self.anchor.lon_deg() + (p.x / (EARTH_RADIUS_M * self.cos_lat)).to_degrees();
        GeoPoint::new(lat, lon).expect("unprojected point left the valid coordinate range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> LocalFrame {
        LocalFrame::new(GeoPoint::new(33.7490, -84.3880).unwrap())
    }

    #[test]
    fn anchor_projects_to_origin() {
        let f = frame();
        assert_eq!(f.project(f.anchor()), Point::new(0.0, 0.0));
    }

    #[test]
    fn roundtrip_is_stable() {
        let f = frame();
        for &(x, y) in &[(0.0, 0.0), (35_000.0, 20_000.0), (-1234.5, 678.9), (1.0, -1.0)] {
            let p = f.unproject(Point::new(x, y));
            let q = f.project(p);
            assert!((q.x - x).abs() < 1e-6, "x: {} vs {}", q.x, x);
            assert!((q.y - y).abs() < 1e-6, "y: {} vs {}", q.y, y);
        }
    }

    #[test]
    fn local_distance_close_to_haversine() {
        let f = frame();
        let a = f.unproject(Point::new(0.0, 0.0));
        let b = f.unproject(Point::new(30_000.0, 15_000.0));
        let local = f.project(a).distance(f.project(b));
        let geo = a.haversine_m(b);
        let rel = (local - geo).abs() / geo;
        assert!(rel < 1e-3, "relative error {rel}");
    }

    #[test]
    fn east_axis_points_east() {
        let f = frame();
        let east = f.unproject(Point::new(1000.0, 0.0));
        assert!(east.lon_deg() > f.anchor().lon_deg());
        assert!((east.lat_deg() - f.anchor().lat_deg()).abs() < 1e-9);
    }
}
