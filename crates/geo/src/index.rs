use std::collections::HashMap;

use crate::Point;

/// A bucket-grid spatial index over points in the local frame.
///
/// Algorithm 1 in the paper marks every reading within 6 km of a hot reading
/// as not-safe. Done naively over the 5282 readings per channel this is an
/// O(n²) sweep per hot point; the grid index makes each radius query touch
/// only nearby buckets.
///
/// The index stores `(Point, T)` pairs; `T` is typically an index into the
/// caller's measurement table.
///
/// # Examples
///
/// ```
/// use waldo_geo::{GridIndex, Point};
///
/// let mut idx = GridIndex::new(1_000.0);
/// idx.insert(Point::new(0.0, 0.0), 0usize);
/// idx.insert(Point::new(500.0, 0.0), 1usize);
/// idx.insert(Point::new(10_000.0, 0.0), 2usize);
/// let near: Vec<usize> = idx.within(Point::new(0.0, 0.0), 600.0).map(|(_, &v)| v).collect();
/// assert_eq!(near.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    cell_m: f64,
    cells: HashMap<(i64, i64), Vec<(Point, T)>>,
    len: usize,
}

impl<T> GridIndex<T> {
    /// Creates an index with square buckets of side `cell_m` metres.
    ///
    /// # Panics
    ///
    /// Panics if `cell_m` is not strictly positive and finite.
    pub fn new(cell_m: f64) -> Self {
        assert!(cell_m.is_finite() && cell_m > 0.0, "cell size must be positive");
        Self { cell_m, cells: HashMap::new(), len: 0 }
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn key(&self, p: Point) -> (i64, i64) {
        ((p.x / self.cell_m).floor() as i64, (p.y / self.cell_m).floor() as i64)
    }

    /// Inserts a point with its payload.
    pub fn insert(&mut self, p: Point, value: T) {
        self.cells.entry(self.key(p)).or_default().push((p, value));
        self.len += 1;
    }

    /// Iterates over all `(point, &payload)` pairs within `radius_m` of
    /// `center` (inclusive).
    pub fn within(&self, center: Point, radius_m: f64) -> impl Iterator<Item = (Point, &T)> + '_ {
        let r2 = radius_m * radius_m;
        let span = (radius_m / self.cell_m).ceil() as i64;
        let (cx, cy) = self.key(center);
        (cx - span..=cx + span)
            .flat_map(move |ix| (cy - span..=cy + span).map(move |iy| (ix, iy)))
            .filter_map(move |key| self.cells.get(&key))
            .flatten()
            .filter(move |(p, _)| p.distance_sq(center) <= r2)
            .map(|(p, v)| (*p, v))
    }

    /// Returns the payload of the nearest stored point to `center`, or
    /// `None` if the index is empty.
    pub fn nearest(&self, center: Point) -> Option<(Point, &T)> {
        if self.is_empty() {
            return None;
        }
        // Expand Chebyshev ring by ring. Once a candidate is known, keep
        // expanding until every unvisited ring is provably farther: any
        // point in ring `r` lies at least `(r − 1)·cell` metres away, so we
        // can stop as soon as that bound exceeds the best distance found.
        let (cx, cy) = self.key(center);
        let mut best: Option<(f64, Point, &T)> = None;
        let mut ring = 0i64;
        loop {
            for ix in cx - ring..=cx + ring {
                for iy in cy - ring..=cy + ring {
                    if ix.abs_diff(cx).max(iy.abs_diff(cy)) != ring as u64 {
                        continue;
                    }
                    if let Some(bucket) = self.cells.get(&(ix, iy)) {
                        for (p, v) in bucket {
                            let d = p.distance_sq(center);
                            if best.as_ref().is_none_or(|(bd, _, _)| d < *bd) {
                                best = Some((d, *p, v));
                            }
                        }
                    }
                }
            }
            if let Some((best_sq, _, _)) = best {
                let next_ring_min_dist = ring as f64 * self.cell_m;
                if next_ring_min_dist * next_ring_min_dist > best_sq {
                    break;
                }
            }
            ring += 1;
            if ring > 10_000_000 {
                break; // safety net; unreachable for non-empty indices
            }
        }
        best.map(|(_, p, v)| (p, v))
    }

    /// Iterates over every stored `(point, &payload)` pair in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (Point, &T)> + '_ {
        self.cells.values().flatten().map(|(p, v)| (*p, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_panics() {
        let _ = GridIndex::<usize>::new(0.0);
    }

    #[test]
    fn within_respects_radius_boundary() {
        let mut idx = GridIndex::new(100.0);
        idx.insert(Point::new(0.0, 0.0), "origin");
        idx.insert(Point::new(100.0, 0.0), "exact");
        idx.insert(Point::new(100.1, 0.0), "outside");
        let hits: Vec<&str> = idx.within(Point::new(0.0, 0.0), 100.0).map(|(_, &v)| v).collect();
        assert!(hits.contains(&"origin"));
        assert!(hits.contains(&"exact"));
        assert!(!hits.contains(&"outside"));
    }

    #[test]
    fn within_crosses_cell_boundaries() {
        let mut idx = GridIndex::new(10.0);
        for i in 0..100 {
            idx.insert(Point::new(i as f64 * 7.3, (i % 13) as f64 * 5.1), i);
        }
        let center = Point::new(50.0, 10.0);
        let brute: Vec<i32> = (0..100)
            .filter(|&i| Point::new(i as f64 * 7.3, (i % 13) as f64 * 5.1).distance(center) <= 25.0)
            .collect();
        let mut got: Vec<i32> = idx.within(center, 25.0).map(|(_, &v)| v).collect();
        got.sort_unstable();
        assert_eq!(got, brute);
    }

    #[test]
    fn nearest_finds_global_minimum() {
        let mut idx = GridIndex::new(1000.0);
        idx.insert(Point::new(5000.0, 5000.0), 0);
        idx.insert(Point::new(900.0, 900.0), 1);
        idx.insert(Point::new(-3000.0, 0.0), 2);
        let (_, &v) = idx.nearest(Point::new(0.0, 0.0)).unwrap();
        assert_eq!(v, 1);
    }

    #[test]
    fn nearest_on_empty_is_none() {
        let idx = GridIndex::<u8>::new(10.0);
        assert!(idx.nearest(Point::new(0.0, 0.0)).is_none());
    }

    #[test]
    fn len_and_iter_account_for_all_points() {
        let mut idx = GridIndex::new(50.0);
        assert!(idx.is_empty());
        for i in 0..25 {
            idx.insert(Point::new(i as f64, i as f64), i);
        }
        assert_eq!(idx.len(), 25);
        assert_eq!(idx.iter().count(), 25);
    }
}
