use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{Point, Region};

/// One GPS fix along a [`DrivePath`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathSample {
    /// Location of the fix in the local frame.
    pub point: Point,
    /// Distance driven from the start of the route, metres.
    pub odometer_m: f64,
}

/// Builder for [`DrivePath`]; see that type for the route model.
///
/// # Examples
///
/// ```
/// use waldo_geo::{DrivePathBuilder, Point, Region};
///
/// let region = Region::new(Point::new(0.0, 0.0), Point::new(35_000.0, 20_000.0)).unwrap();
/// let path = DrivePathBuilder::new(region)
///     .lane_spacing_m(2_000.0)
///     .jitter_m(150.0)
///     .seed(7)
///     .build();
/// assert!(path.length_m() > 100_000.0);
/// ```
#[derive(Debug, Clone)]
pub struct DrivePathBuilder {
    region: Region,
    lane_spacing_m: f64,
    jitter_m: f64,
    waypoint_step_m: f64,
    seed: u64,
}

impl DrivePathBuilder {
    /// Starts a builder covering `region`.
    pub fn new(region: Region) -> Self {
        Self { region, lane_spacing_m: 1_750.0, jitter_m: 120.0, waypoint_step_m: 250.0, seed: 0 }
    }

    /// Distance between parallel sweep lanes (default 1 750 m).
    ///
    /// # Panics
    ///
    /// Panics if not strictly positive.
    pub fn lane_spacing_m(mut self, m: f64) -> Self {
        assert!(m > 0.0, "lane spacing must be positive");
        self.lane_spacing_m = m;
        self
    }

    /// Random lateral deviation applied to waypoints, making the route
    /// road-like instead of ruler-straight (default 120 m).
    pub fn jitter_m(mut self, m: f64) -> Self {
        assert!(m >= 0.0, "jitter must be non-negative");
        self.jitter_m = m;
        self
    }

    /// Spacing of jittered waypoints along each lane (default 250 m).
    pub fn waypoint_step_m(mut self, m: f64) -> Self {
        assert!(m > 0.0, "waypoint step must be positive");
        self.waypoint_step_m = m;
        self
    }

    /// RNG seed; identical seeds reproduce identical routes.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the route.
    pub fn build(&self) -> DrivePath {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        let r = self.region;
        let mut waypoints: Vec<Point> = Vec::new();

        // Horizontal lawnmower sweep: west→east, step north, east→west, …
        let lanes = (r.height_m() / self.lane_spacing_m).floor() as usize + 1;
        for lane in 0..lanes {
            let y = r.min().y + lane as f64 * self.lane_spacing_m;
            let y = y.min(r.max().y);
            let steps = (r.width_m() / self.waypoint_step_m).ceil() as usize;
            let eastbound = lane % 2 == 0;
            for s in 0..=steps {
                let f = s as f64 / steps as f64;
                let x = if eastbound {
                    r.min().x + f * r.width_m()
                } else {
                    r.max().x - f * r.width_m()
                };
                let jx = rng.gen_range(-self.jitter_m..=self.jitter_m);
                let jy = rng.gen_range(-self.jitter_m..=self.jitter_m);
                waypoints.push(r.clamp(Point::new(x + jx, y + jy)));
            }
        }

        let mut length = 0.0;
        for w in waypoints.windows(2) {
            length += w[0].distance(w[1]);
        }
        DrivePath { waypoints, length_m: length }
    }
}

/// A war-driving route through the study region.
///
/// Models the paper's ~800 km data-collection drive: a lawnmower sweep with
/// road-like jitter. [`DrivePath::samples`] yields GPS fixes with a fixed
/// along-route spacing; the paper requires readings on a channel to be more
/// than 20 m apart (shadowing decorrelates beyond ~20 m in urban areas, per
/// Gudmundson's model).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrivePath {
    waypoints: Vec<Point>,
    length_m: f64,
}

impl DrivePath {
    /// Total route length in metres.
    pub fn length_m(&self) -> f64 {
        self.length_m
    }

    /// The jittered waypoints defining the route.
    pub fn waypoints(&self) -> &[Point] {
        &self.waypoints
    }

    /// Returns the location at odometer distance `d` metres from the start,
    /// clamped to the route ends.
    pub fn at_odometer(&self, d: f64) -> Point {
        if self.waypoints.is_empty() {
            return Point::default();
        }
        let mut remaining = d.max(0.0);
        for w in self.waypoints.windows(2) {
            let seg = w[0].distance(w[1]);
            if remaining <= seg && seg > 0.0 {
                return w[0].lerp(w[1], remaining / seg);
            }
            remaining -= seg;
        }
        *self.waypoints.last().expect("non-empty")
    }

    /// Produces `count` samples spaced `spacing_m` apart along the route,
    /// starting at the route origin. If the route is shorter than
    /// `count * spacing_m` the samples wrap around to the start, modelling
    /// repeated collection drives (the paper gathered two sets months apart).
    ///
    /// # Panics
    ///
    /// Panics if `spacing_m` is not strictly positive or the path is empty.
    pub fn samples(&self, count: usize, spacing_m: f64) -> Vec<PathSample> {
        assert!(spacing_m > 0.0, "sample spacing must be positive");
        assert!(!self.waypoints.is_empty(), "cannot sample an empty path");
        (0..count)
            .map(|i| {
                let od = i as f64 * spacing_m;
                let wrapped = od % self.length_m.max(spacing_m);
                PathSample { point: self.at_odometer(wrapped), odometer_m: od }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> Region {
        Region::new(Point::new(0.0, 0.0), Point::new(35_000.0, 20_000.0)).unwrap()
    }

    fn path() -> DrivePath {
        DrivePathBuilder::new(region()).seed(42).build()
    }

    #[test]
    fn route_covers_hundreds_of_km() {
        // The paper's campaign drove ~800 km over the 700 km² region.
        let p = path();
        assert!(p.length_m() > 300_000.0, "length {}", p.length_m());
    }

    #[test]
    fn waypoints_stay_inside_region() {
        let p = path();
        let r = region();
        assert!(p.waypoints().iter().all(|&w| r.contains(w)));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = DrivePathBuilder::new(region()).seed(7).build();
        let b = DrivePathBuilder::new(region()).seed(7).build();
        assert_eq!(a, b);
        let c = DrivePathBuilder::new(region()).seed(8).build();
        assert_ne!(a, c);
    }

    #[test]
    fn odometer_interpolates_monotonically() {
        let p = path();
        assert_eq!(p.at_odometer(-5.0), p.waypoints()[0]);
        let far = p.at_odometer(p.length_m() + 10.0);
        assert_eq!(far, *p.waypoints().last().unwrap());
        // Successive odometer positions are close together.
        let a = p.at_odometer(1_000.0);
        let b = p.at_odometer(1_010.0);
        assert!(a.distance(b) <= 11.0);
    }

    #[test]
    fn samples_have_requested_spacing() {
        let p = path();
        let s = p.samples(100, 150.0);
        assert_eq!(s.len(), 100);
        for pair in s.windows(2) {
            assert!((pair[1].odometer_m - pair[0].odometer_m - 150.0).abs() < 1e-9);
            // Along-route spacing bounds crow-flies distance.
            assert!(pair[0].point.distance(pair[1].point) <= 150.0 + 1e-6);
        }
    }

    #[test]
    fn samples_wrap_on_short_routes() {
        let small = Region::new(Point::new(0.0, 0.0), Point::new(1_000.0, 500.0)).unwrap();
        let p = DrivePathBuilder::new(small).lane_spacing_m(400.0).jitter_m(0.0).seed(1).build();
        let n = 1000;
        let s = p.samples(n, 100.0);
        assert_eq!(s.len(), n);
        assert!(s.iter().all(|ps| small.contains(ps.point)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_spacing_panics() {
        path().samples(10, 0.0);
    }
}
