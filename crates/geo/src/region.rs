use serde::{Deserialize, Serialize};

use crate::Point;

/// An axis-aligned rectangular study region in the local frame.
///
/// The paper's campaign covers ~700 km² of metro Atlanta; the reproduction
/// uses a 35 km × 20 km region. `Region` is used to bound the simulated
/// world, clip drive paths, and size shadowing-field grids.
///
/// # Examples
///
/// ```
/// use waldo_geo::{Point, Region};
///
/// let r = Region::new(Point::new(0.0, 0.0), Point::new(35_000.0, 20_000.0)).unwrap();
/// assert_eq!(r.area_km2(), 700.0);
/// assert!(r.contains(Point::new(1.0, 1.0)));
/// assert!(!r.contains(Point::new(-1.0, 1.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Region {
    min: Point,
    max: Point,
}

/// Error returned when a [`Region`] would be empty or inverted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptyRegion;

impl std::fmt::Display for EmptyRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "region corners are inverted or degenerate")
    }
}

impl std::error::Error for EmptyRegion {}

impl Region {
    /// Creates a region from its minimum and maximum corners.
    ///
    /// # Errors
    ///
    /// Returns an error if `max` is not strictly greater than `min` on both
    /// axes.
    pub fn new(min: Point, max: Point) -> Result<Self, EmptyRegion> {
        if max.x <= min.x || max.y <= min.y {
            return Err(EmptyRegion);
        }
        Ok(Self { min, max })
    }

    /// Minimum (south-west) corner.
    pub fn min(&self) -> Point {
        self.min
    }

    /// Maximum (north-east) corner.
    pub fn max(&self) -> Point {
        self.max
    }

    /// Width (east extent) in metres.
    pub fn width_m(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (north extent) in metres.
    pub fn height_m(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area in square kilometres.
    pub fn area_km2(&self) -> f64 {
        self.width_m() * self.height_m() / 1e6
    }

    /// Centre of the region.
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Whether `p` lies inside the region (inclusive of the boundary).
    pub fn contains(&self, p: Point) -> bool {
        (self.min.x..=self.max.x).contains(&p.x) && (self.min.y..=self.max.y).contains(&p.y)
    }

    /// Clamps `p` to the nearest point inside the region.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(p.x.clamp(self.min.x, self.max.x), p.y.clamp(self.min.y, self.max.y))
    }

    /// The point at fractional position `(fx, fy)` within the region, where
    /// `(0, 0)` is the minimum corner and `(1, 1)` the maximum.
    pub fn at_fraction(&self, fx: f64, fy: f64) -> Point {
        Point::new(self.min.x + fx * self.width_m(), self.min.y + fy * self.height_m())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> Region {
        Region::new(Point::new(0.0, 0.0), Point::new(35_000.0, 20_000.0)).unwrap()
    }

    #[test]
    fn rejects_degenerate_corners() {
        assert!(Region::new(Point::new(0.0, 0.0), Point::new(0.0, 1.0)).is_err());
        assert!(Region::new(Point::new(0.0, 0.0), Point::new(1.0, 0.0)).is_err());
        assert!(Region::new(Point::new(2.0, 2.0), Point::new(1.0, 1.0)).is_err());
    }

    #[test]
    fn geometry_accessors() {
        let r = region();
        assert_eq!(r.width_m(), 35_000.0);
        assert_eq!(r.height_m(), 20_000.0);
        assert_eq!(r.area_km2(), 700.0);
        assert_eq!(r.center(), Point::new(17_500.0, 10_000.0));
    }

    #[test]
    fn contains_and_clamp() {
        let r = region();
        assert!(r.contains(r.center()));
        assert!(r.contains(r.min()));
        assert!(r.contains(r.max()));
        assert!(!r.contains(Point::new(35_000.1, 0.0)));
        assert_eq!(r.clamp(Point::new(-5.0, 25_000.0)), Point::new(0.0, 20_000.0));
        let inside = Point::new(10.0, 10.0);
        assert_eq!(r.clamp(inside), inside);
    }

    #[test]
    fn at_fraction_spans_region() {
        let r = region();
        assert_eq!(r.at_fraction(0.0, 0.0), r.min());
        assert_eq!(r.at_fraction(1.0, 1.0), r.max());
        assert_eq!(r.at_fraction(0.5, 0.5), r.center());
    }
}
