//! Geodesy substrate for the Waldo white-space reproduction.
//!
//! The paper's measurement campaign tags every spectrum reading with a GPS
//! coordinate and reasons about distances (the 6 km protection radius of
//! Algorithm 1, the > 20 m spacing between readings, the 700 km² coverage
//! area). This crate provides the small geodesy toolkit those computations
//! need:
//!
//! * [`GeoPoint`] — WGS-84 latitude/longitude with haversine distances.
//! * [`LocalFrame`] — an equirectangular east/north projection anchored at a
//!   reference point, adequate for metro-scale (< 100 km) areas.
//! * [`Point`] — a point in the local metric frame.
//! * [`Region`] — an axis-aligned study region in the local frame.
//! * [`GridIndex`] — a bucket-grid spatial index for radius queries
//!   (Algorithm 1 performs ~28 M pairwise checks without one).
//! * [`DrivePath`] — a war-driving route generator producing GPS fixes with
//!   a minimum spacing, mimicking the paper's 800 km drive.
//!
//! # Examples
//!
//! ```
//! use waldo_geo::{GeoPoint, LocalFrame};
//!
//! let atlanta = GeoPoint::new(33.7490, -84.3880).unwrap();
//! let marietta = GeoPoint::new(33.9526, -84.5499).unwrap();
//! let frame = LocalFrame::new(atlanta);
//! let d = frame.project(marietta).distance(frame.project(atlanta));
//! assert!((d - atlanta.haversine_m(marietta)).abs() < 300.0);
//! ```

mod frame;
mod index;
mod path;
mod point;
mod region;

pub use frame::LocalFrame;
pub use index::GridIndex;
pub use path::{DrivePath, DrivePathBuilder, PathSample};
pub use point::{GeoPoint, InvalidCoordinate, Point};
pub use region::Region;

/// Mean Earth radius in metres (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;
