//! Observability layer: log-bucketed latency histograms, structured JSONL
//! spans with request-ID propagation, and a runtime on/off switch.
//!
//! Everything here is feature-gated like `waldo-prof` and `waldo-fault`:
//! without the `obs` cargo feature the recording entry points compile to
//! no-ops, [`Timed`] and [`Span`] are zero-sized, and instrumented hot
//! paths pay nothing. With `obs` on, recording can additionally be toggled
//! at runtime via [`set_enabled`] — which is how the `gate --obs` overhead
//! check runs an off/on A/B comparison inside a single process.
//!
//! Three facilities:
//!
//! - **Histograms** ([`hist::Histogram`]): named log-bucketed latency
//!   distributions fed by [`timed`] guards; [`histogram_snapshot`] reads
//!   them all for the serve `Stats` endpoint and bench reports. With the
//!   `prof` feature, every [`timed`] guard *also* feeds the `waldo-prof`
//!   aggregate table, so prof's sum-only stage accounting keeps working
//!   at the call sites that upgraded to histograms.
//! - **Traces** ([`trace`]): JSONL spans/events to a pluggable sink, with
//!   parent IDs and a request ID carried from `ModelClient` through the
//!   wire header into the server's handler span.
//! - **Request IDs** ([`next_request_id`]): a process-wide counter that is
//!   *always* compiled in (it is just an atomic), because the serve wire
//!   protocol carries a request ID whether or not tracing is recording.
//! - **Time series** ([`series::MetricsRegistry`]): bounded ring-buffer
//!   series of counter deltas and gauge levels with a versioned wire form
//!   and an order-independent merge — what the serve metrics sampler
//!   exports over `OP_OBS_EXPORT` and the fleet aggregator stitches into
//!   one timeline.
//!
//! [`hist::Histogram`] and [`series::MetricsRegistry`] are also always
//! compiled: they are passive data structures the serve codecs need for
//! decoding snapshots even in default builds.

pub mod hist;
pub mod series;
pub mod trace;

pub use hist::Histogram;
pub use series::{MetricsRegistry, Point, Series, SeriesKind, SeriesWireError};
#[cfg(feature = "obs")]
pub use trace::SharedBuffer;
pub use trace::{event, flush_sink, set_sink, span, span_req, Span};

use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

/// Mints a process-unique request ID (monotonic from 1, never 0 — the
/// wire format uses 0 for "no request ID"). Available in all builds.
pub fn next_request_id() -> u64 {
    NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed)
}

/// Whether the `obs` feature is compiled in.
pub const fn compiled() -> bool {
    cfg!(feature = "obs")
}

#[cfg(feature = "obs")]
mod reg {
    use crate::hist::Histogram;
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, PoisonError};

    /// Runtime switch; defaults to on when the feature is compiled in.
    static ENABLED: AtomicBool = AtomicBool::new(true);

    /// Named histograms. One global mutex is fine here: the instrumented
    /// paths are hundreds of microseconds each, so an uncontended lock per
    /// sample is noise, and a single table makes concurrent count totals
    /// exact by construction.
    static HISTS: Mutex<BTreeMap<&'static str, Histogram>> = Mutex::new(BTreeMap::new());

    fn table() -> std::sync::MutexGuard<'static, BTreeMap<&'static str, Histogram>> {
        // Recover a poisoned table: losing post-mortem latency data to an
        // unrelated panic would defeat the point of observability.
        HISTS.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Turns runtime recording on or off (histograms *and* traces).
    pub fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::Release);
    }

    /// Whether recording is on right now.
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Acquire)
    }

    /// Records one duration sample into the named histogram.
    pub fn record_duration_ns(name: &'static str, ns: u64) {
        if !enabled() {
            return;
        }
        table().entry(name).or_default().record(ns);
    }

    /// All named histograms, sorted by name.
    pub fn histogram_snapshot() -> Vec<(&'static str, Histogram)> {
        table().iter().map(|(&name, hist)| (name, hist.clone())).collect()
    }

    /// Clears every histogram (brackets a measurement window).
    pub fn reset_histograms() {
        table().clear();
    }
}

#[cfg(not(feature = "obs"))]
mod reg {
    use crate::hist::Histogram;

    /// No-op (obs compiled out).
    pub fn set_enabled(_on: bool) {}

    /// Always false (obs compiled out).
    pub fn enabled() -> bool {
        false
    }

    /// No-op (obs compiled out).
    pub fn record_duration_ns(_name: &'static str, _ns: u64) {}

    /// Always empty (obs compiled out).
    pub fn histogram_snapshot() -> Vec<(&'static str, Histogram)> {
        Vec::new()
    }

    /// No-op (obs compiled out).
    pub fn reset_histograms() {}
}

pub use reg::{enabled, histogram_snapshot, record_duration_ns, reset_histograms, set_enabled};

#[cfg(any(feature = "obs", feature = "prof"))]
mod timed_imp {
    use std::time::Instant;

    /// RAII wall-clock timer; on drop feeds the obs histogram (under
    /// `obs`) and the waldo-prof aggregate table (under `prof`).
    #[must_use = "a timer records its duration when dropped"]
    pub struct Timed {
        name: &'static str,
        start: Instant,
    }

    /// Starts timing the named hot path.
    pub fn timed(name: &'static str) -> Timed {
        Timed { name, start: Instant::now() }
    }

    impl Drop for Timed {
        fn drop(&mut self) {
            let ns = self.start.elapsed().as_nanos() as u64;
            #[cfg(feature = "prof")]
            waldo_prof::record_ns(self.name, ns);
            #[cfg(feature = "obs")]
            crate::record_duration_ns(self.name, ns);
            #[cfg(not(feature = "prof"))]
            let _ = self.name;
            #[cfg(not(any(feature = "prof", feature = "obs")))]
            let _ = ns;
        }
    }
}

#[cfg(not(any(feature = "obs", feature = "prof")))]
mod timed_imp {
    /// Zero-sized stand-in for the RAII timer; dropping it does nothing.
    #[must_use = "a timer records its duration when dropped"]
    pub struct Timed(());

    /// No-op (obs and prof both compiled out).
    pub fn timed(_name: &'static str) -> Timed {
        Timed(())
    }
}

pub use timed_imp::{timed, Timed};

#[cfg(test)]
mod request_id_tests {
    use super::*;

    #[test]
    fn request_ids_are_unique_and_nonzero() {
        let a = next_request_id();
        let b = next_request_id();
        assert!(a != 0 && b != 0);
        assert!(b > a);
    }
}

#[cfg(all(test, not(feature = "obs")))]
mod disabled_tests {
    use super::*;

    #[test]
    fn compiles_out_to_nothing() {
        assert!(!compiled());
        assert!(!enabled());
        #[cfg(not(feature = "prof"))]
        assert_eq!(std::mem::size_of::<Timed>(), 0);
        assert_eq!(std::mem::size_of::<Span>(), 0);
        {
            let _t = timed("anything");
            let _s = span_req("anything", 1);
            event("anything", &[("k", "v")]);
            record_duration_ns("anything", 5);
        }
        assert!(histogram_snapshot().is_empty(), "disabled builds must record nothing");
    }
}

#[cfg(all(test, feature = "obs"))]
mod enabled_tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, PoisonError};

    /// The histogram table is process-wide; serialize tests touching it.
    static LOCK: Mutex<()> = Mutex::new(());

    fn exclusive() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn timed_feeds_the_named_histogram() {
        let _guard = exclusive();
        reset_histograms();
        set_enabled(true);
        for _ in 0..5 {
            let _t = timed("unit_path");
            std::hint::black_box(0u64);
        }
        let snap = histogram_snapshot();
        let (_, hist) = snap.iter().find(|(n, _)| *n == "unit_path").expect("path recorded");
        assert_eq!(hist.count(), 5);
        assert!(hist.max() >= hist.min());
    }

    #[test]
    fn runtime_disable_stops_recording() {
        let _guard = exclusive();
        reset_histograms();
        set_enabled(false);
        {
            let _t = timed("muted_path");
        }
        set_enabled(true);
        let snap = histogram_snapshot();
        assert!(!snap.iter().any(|(n, _)| *n == "muted_path"), "disabled runtime must not record");
    }

    #[test]
    fn table_survives_a_panicking_recorder() {
        let _guard = exclusive();
        reset_histograms();
        set_enabled(true);
        let _ = std::panic::catch_unwind(|| {
            let _t = timed("doomed_path");
            panic!("boom while timed");
        });
        // The guard recorded during unwind; the table must still be usable.
        record_duration_ns("after_panic", 7);
        let snap = histogram_snapshot();
        assert!(snap.iter().any(|(n, _)| *n == "doomed_path"));
        assert!(snap.iter().any(|(n, _)| *n == "after_panic"));
    }
}
