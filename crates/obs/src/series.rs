//! Bounded time-series metrics: named ring-buffer series of timestamped
//! samples, a compact versioned wire form, and an order-independent merge
//! — the fleet-observability layer's data model.
//!
//! A [`MetricsRegistry`] holds named [`Series`], each a bounded ring of
//! `(ts_ms, value)` [`Point`]s sorted by timestamp:
//!
//! * **Counter** series hold *deltas* — "requests served since the last
//!   sample" — so points from different sources combine by addition and a
//!   rate is just a windowed sum ([`Series::rate_per_s`]).
//! * **Gauge** series hold *levels* — active connections, catalog epoch,
//!   a histogram quantile snapshot — so coincident points combine by max
//!   (the conservative reading) and the latest point is the live value.
//!
//! Values are `u64` (counts, nanoseconds, epochs, bytes) rather than
//! floats, deliberately: saturating addition and max over non-negative
//! integers are exact, commutative, and associative, which makes
//! [`MetricsRegistry::merge`] order-independent — a fleet view assembled
//! leader-first equals one assembled follower-first, property-tested in
//! `tests/series_props.rs`. (Merge associativity additionally requires
//! the operands to agree on per-name kinds and on capacity, which the
//! fleet does by construction: every node runs the same sampler.)
//!
//! Timestamps are wall-clock milliseconds since the Unix epoch — unlike
//! span timestamps (which are offsets from a per-process monotonic
//! origin), series points must line up *across* nodes on one timeline.
//! Within a clock-skew bound that is what wall time gives; causal claims
//! still belong to traces, not series.

use std::collections::BTreeMap;

/// Wire-format version emitted by [`MetricsRegistry::encode`]. Decoders
/// refuse anything newer.
pub const SERIES_WIRE_VERSION: u8 = 1;

/// Magic prefix of the series wire form.
pub const SERIES_MAGIC: [u8; 4] = *b"WMTR";

/// Default per-series point bound.
pub const DEFAULT_SERIES_CAPACITY: usize = 512;

/// Hard cap on series count and per-series point count accepted by the
/// decoder, against absurd length claims in corrupted frames.
const MAX_WIRE_ITEMS: usize = 1 << 20;

/// How a series combines coincident points (and what its values mean).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SeriesKind {
    /// Per-interval deltas; coincident points add.
    Counter = 0,
    /// Sampled levels; coincident points keep the max.
    Gauge = 1,
}

impl SeriesKind {
    fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(SeriesKind::Counter),
            1 => Some(SeriesKind::Gauge),
            _ => None,
        }
    }
}

/// One timestamped sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Point {
    /// Wall-clock milliseconds since the Unix epoch.
    pub ts_ms: u64,
    /// Sample value (a delta for counters, a level for gauges).
    pub value: u64,
}

/// A bounded, timestamp-sorted ring of points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Series {
    kind: SeriesKind,
    /// Sorted by `ts_ms`, ascending, at most one point per timestamp.
    points: Vec<Point>,
}

impl Series {
    fn new(kind: SeriesKind) -> Self {
        Self { kind, points: Vec::new() }
    }

    /// The series' combination rule.
    #[must_use]
    pub fn kind(&self) -> SeriesKind {
        self.kind
    }

    /// The points, oldest first.
    #[must_use]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The newest point, if any.
    #[must_use]
    pub fn latest(&self) -> Option<Point> {
        self.points.last().copied()
    }

    /// Sum of values with `ts_ms > since_ms` (saturating). For a counter
    /// series this is "how much happened after `since_ms`".
    #[must_use]
    pub fn sum_since(&self, since_ms: u64) -> u64 {
        self.points
            .iter()
            .rev()
            .take_while(|p| p.ts_ms > since_ms)
            .fold(0u64, |acc, p| acc.saturating_add(p.value))
    }

    /// Counter rate over the trailing window ending at `now_ms`: windowed
    /// delta sum divided by the window length. 0 for an empty window.
    #[must_use]
    pub fn rate_per_s(&self, window_ms: u64, now_ms: u64) -> f64 {
        if window_ms == 0 {
            return 0.0;
        }
        let since = now_ms.saturating_sub(window_ms);
        self.sum_since(since) as f64 / (window_ms as f64 / 1e3)
    }

    /// Largest value with `ts_ms > since_ms`, if any point qualifies.
    #[must_use]
    pub fn max_since(&self, since_ms: u64) -> Option<u64> {
        self.points.iter().rev().take_while(|p| p.ts_ms > since_ms).map(|p| p.value).max()
    }

    /// Gauge derivative over the trailing window: `(last - first) / dt`
    /// in value units per second, `None` with fewer than two points in
    /// the window or a zero time span. Signed, so falling gauges (WAL
    /// backlog draining) read negative.
    #[must_use]
    pub fn delta_per_s(&self, window_ms: u64, now_ms: u64) -> Option<f64> {
        let since = now_ms.saturating_sub(window_ms);
        let windowed: Vec<&Point> = self.points.iter().filter(|p| p.ts_ms > since).collect();
        let (first, last) = match (windowed.first(), windowed.last()) {
            (Some(f), Some(l)) if f.ts_ms < l.ts_ms => (**f, **l),
            _ => return None,
        };
        let dt_s = (last.ts_ms - first.ts_ms) as f64 / 1e3;
        Some((last.value as f64 - first.value as f64) / dt_s)
    }

    /// Inserts one point, combining with an existing coincident point by
    /// the kind's rule, then drops oldest points past `capacity`.
    fn insert(&mut self, point: Point, capacity: usize) {
        match self.points.binary_search_by_key(&point.ts_ms, |p| p.ts_ms) {
            Ok(i) => {
                let existing = &mut self.points[i];
                existing.value = match self.kind {
                    SeriesKind::Counter => existing.value.saturating_add(point.value),
                    SeriesKind::Gauge => existing.value.max(point.value),
                };
            }
            Err(i) => self.points.insert(i, point),
        }
        if self.points.len() > capacity {
            let excess = self.points.len() - capacity;
            self.points.drain(..excess);
        }
    }
}

/// Typed decode failures of the series wire form. Decoding is total:
/// arbitrary bytes produce one of these, never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesWireError {
    /// The buffer ended before the structure it promised.
    Truncated,
    /// The magic prefix was not `WMTR`.
    BadMagic,
    /// The version byte is newer than this build understands.
    UnsupportedVersion(u8),
    /// An unknown series-kind code.
    BadKind(u8),
    /// A series name was not valid UTF-8.
    BadName,
    /// A length field claimed more items than the hard cap allows.
    LengthOverflow,
    /// Bytes remained after the advertised structure.
    TrailingBytes,
    /// Points were out of order or duplicated within one series.
    UnsortedPoints,
}

impl std::fmt::Display for SeriesWireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SeriesWireError::Truncated => f.write_str("series buffer truncated"),
            SeriesWireError::BadMagic => f.write_str("bad series magic"),
            SeriesWireError::UnsupportedVersion(v) => {
                write!(f, "unsupported series wire version {v}")
            }
            SeriesWireError::BadKind(k) => write!(f, "unknown series kind {k}"),
            SeriesWireError::BadName => f.write_str("series name is not UTF-8"),
            SeriesWireError::LengthOverflow => f.write_str("series length field too large"),
            SeriesWireError::TrailingBytes => f.write_str("trailing bytes after series"),
            SeriesWireError::UnsortedPoints => f.write_str("series points not strictly sorted"),
        }
    }
}

impl std::error::Error for SeriesWireError {}

/// A named collection of bounded series — one node's metrics, or a whole
/// fleet's after [`merge`](Self::merge)-ing per-node registries under
/// distinct name prefixes ([`prefixed`](Self::prefixed)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsRegistry {
    capacity: usize,
    series: BTreeMap<String, Series>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new(DEFAULT_SERIES_CAPACITY)
    }
}

impl MetricsRegistry {
    /// An empty registry whose series each hold at most `capacity` points
    /// (0 acts as 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self { capacity: capacity.max(1), series: BTreeMap::new() }
    }

    /// The per-series point bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of series.
    #[must_use]
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether the registry holds no series.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Records a counter delta ("`value` more since the last sample").
    pub fn record_counter(&mut self, name: &str, ts_ms: u64, value: u64) {
        self.record(name, SeriesKind::Counter, ts_ms, value);
    }

    /// Records a gauge level.
    pub fn record_gauge(&mut self, name: &str, ts_ms: u64, value: u64) {
        self.record(name, SeriesKind::Gauge, ts_ms, value);
    }

    fn record(&mut self, name: &str, kind: SeriesKind, ts_ms: u64, value: u64) {
        let capacity = self.capacity;
        self.series
            .entry(name.to_owned())
            .or_insert_with(|| Series::new(kind))
            .insert(Point { ts_ms, value }, capacity);
    }

    /// The named series, if recorded.
    #[must_use]
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.get(name)
    }

    /// All series, sorted by name.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Series)> {
        self.series.iter().map(|(name, s)| (name.as_str(), s))
    }

    /// A copy with every series name prefixed (`leader/serve.requests`) —
    /// how a fleet merge keeps per-node series distinct.
    #[must_use]
    pub fn prefixed(&self, prefix: &str) -> MetricsRegistry {
        let mut out = MetricsRegistry::new(self.capacity);
        for (name, series) in &self.series {
            out.series.insert(format!("{prefix}/{name}"), series.clone());
        }
        out
    }

    /// Folds `other` into `self`. Same-name series combine point-wise —
    /// coincident timestamps add (counters) or keep the max (gauges) —
    /// then truncate to the larger of the two capacities, keeping the
    /// newest points. If the two sides disagree on a series' kind, the
    /// merged series is a counter (the symmetric choice), which only
    /// happens when two nodes misuse one name.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        self.capacity = self.capacity.max(other.capacity);
        let capacity = self.capacity;
        for (name, theirs) in &other.series {
            match self.series.get_mut(name) {
                None => {
                    let mut adopted = theirs.clone();
                    if adopted.points.len() > capacity {
                        let excess = adopted.points.len() - capacity;
                        adopted.points.drain(..excess);
                    }
                    self.series.insert(name.clone(), adopted);
                }
                Some(ours) => {
                    if ours.kind != theirs.kind {
                        ours.kind = SeriesKind::Counter;
                    }
                    for &point in &theirs.points {
                        ours.insert(point, capacity);
                    }
                }
            }
        }
    }

    /// Encodes the registry into the compact versioned wire form
    /// (`WMTR | version | capacity u32 | series count u32 | series...`).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&SERIES_MAGIC);
        out.push(SERIES_WIRE_VERSION);
        out.extend_from_slice(&(self.capacity as u32).to_le_bytes());
        out.extend_from_slice(&(self.series.len() as u32).to_le_bytes());
        for (name, series) in &self.series {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.push(series.kind as u8);
            out.extend_from_slice(&(series.points.len() as u32).to_le_bytes());
            for p in &series.points {
                out.extend_from_slice(&p.ts_ms.to_le_bytes());
                out.extend_from_slice(&p.value.to_le_bytes());
            }
        }
        out
    }

    /// Decodes the wire form. Total over arbitrary bytes: truncation,
    /// corruption, and hostile length claims all surface as typed errors.
    ///
    /// # Errors
    ///
    /// Returns [`SeriesWireError`] on any malformed input; refuses
    /// versions newer than [`SERIES_WIRE_VERSION`].
    pub fn decode(bytes: &[u8]) -> Result<MetricsRegistry, SeriesWireError> {
        let mut r = SliceReader { bytes, at: 0 };
        if r.take(4)? != SERIES_MAGIC {
            return Err(SeriesWireError::BadMagic);
        }
        let version = r.u8()?;
        if version > SERIES_WIRE_VERSION {
            return Err(SeriesWireError::UnsupportedVersion(version));
        }
        let capacity = r.u32()? as usize;
        let series_count = r.u32()? as usize;
        if series_count > MAX_WIRE_ITEMS {
            return Err(SeriesWireError::LengthOverflow);
        }
        let mut out = MetricsRegistry::new(capacity);
        for _ in 0..series_count {
            let name_len = r.u16()? as usize;
            let name = std::str::from_utf8(r.take(name_len)?)
                .map_err(|_| SeriesWireError::BadName)?
                .to_owned();
            let kind_code = r.u8()?;
            let kind =
                SeriesKind::from_code(kind_code).ok_or(SeriesWireError::BadKind(kind_code))?;
            let point_count = r.u32()? as usize;
            if point_count > MAX_WIRE_ITEMS || point_count > out.capacity {
                return Err(SeriesWireError::LengthOverflow);
            }
            // Bound the allocation by what the buffer can actually hold.
            if r.remaining() < point_count.saturating_mul(16) {
                return Err(SeriesWireError::Truncated);
            }
            let mut points = Vec::with_capacity(point_count);
            let mut last_ts: Option<u64> = None;
            for _ in 0..point_count {
                let ts_ms = r.u64()?;
                let value = r.u64()?;
                if last_ts.is_some_and(|prev| prev >= ts_ms) {
                    return Err(SeriesWireError::UnsortedPoints);
                }
                last_ts = Some(ts_ms);
                points.push(Point { ts_ms, value });
            }
            out.series.insert(name, Series { kind, points });
        }
        if r.remaining() > 0 {
            return Err(SeriesWireError::TrailingBytes);
        }
        Ok(out)
    }
}

/// Minimal cursor over a byte slice (this crate is zero-dep by design,
/// so it cannot borrow `waldo::wire::Reader`).
struct SliceReader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> SliceReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SeriesWireError> {
        let end = self.at.checked_add(n).ok_or(SeriesWireError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SeriesWireError::Truncated);
        }
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    fn u8(&mut self) -> Result<u8, SeriesWireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, SeriesWireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, SeriesWireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, SeriesWireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

/// Wall-clock milliseconds since the Unix epoch — the series timestamp
/// base. Saturates at 0 if the clock reads before the epoch.
#[must_use]
pub fn wall_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_points_accumulate_and_rate_reads_the_window() {
        let mut reg = MetricsRegistry::new(16);
        reg.record_counter("req", 1_000, 5);
        reg.record_counter("req", 2_000, 7);
        reg.record_counter("req", 2_000, 3); // coincident: adds
        let s = reg.series("req").expect("recorded");
        assert_eq!(s.kind(), SeriesKind::Counter);
        assert_eq!(
            s.points(),
            &[Point { ts_ms: 1_000, value: 5 }, Point { ts_ms: 2_000, value: 10 }]
        );
        // Window covering only the second point.
        assert!((s.rate_per_s(1_000, 2_500) - 10.0).abs() < 1e-9);
        // Window covering both.
        assert!((s.rate_per_s(2_000, 2_500) - 7.5).abs() < 1e-9);
    }

    #[test]
    fn gauge_points_keep_the_max_and_latest_wins() {
        let mut reg = MetricsRegistry::new(16);
        reg.record_gauge("epoch", 1_000, 1);
        reg.record_gauge("epoch", 1_000, 3);
        reg.record_gauge("epoch", 2_000, 2);
        let s = reg.series("epoch").expect("recorded");
        assert_eq!(s.points()[0].value, 3);
        assert_eq!(s.latest(), Some(Point { ts_ms: 2_000, value: 2 }));
        assert_eq!(s.max_since(0), Some(3));
        assert_eq!(s.max_since(1_500), Some(2));
        assert_eq!(s.max_since(2_000), None);
    }

    #[test]
    fn capacity_drops_oldest_points() {
        let mut reg = MetricsRegistry::new(3);
        for i in 0..10u64 {
            reg.record_gauge("g", i * 100, i);
        }
        let s = reg.series("g").expect("recorded");
        assert_eq!(s.points().len(), 3);
        assert_eq!(s.points()[0].ts_ms, 700);
        assert_eq!(s.latest().map(|p| p.value), Some(9));
    }

    #[test]
    fn delta_per_s_reads_the_slope() {
        let mut reg = MetricsRegistry::new(16);
        reg.record_gauge("backlog", 1_000, 10);
        reg.record_gauge("backlog", 3_000, 4);
        let s = reg.series("backlog").expect("recorded");
        let slope = s.delta_per_s(10_000, 3_000).expect("two points in window");
        assert!((slope - (-3.0)).abs() < 1e-9, "slope {slope}");
        assert_eq!(s.delta_per_s(1_000, 3_000), None, "one point is no slope");
    }

    #[test]
    fn merge_is_commutative_on_a_known_pair() {
        let mut a = MetricsRegistry::new(8);
        a.record_counter("req", 1_000, 5);
        a.record_gauge("epoch", 1_000, 2);
        let mut b = MetricsRegistry::new(8);
        b.record_counter("req", 1_000, 7);
        b.record_counter("req", 2_000, 1);
        b.record_gauge("epoch", 1_000, 3);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.series("req").unwrap().points()[0].value, 12);
        assert_eq!(ab.series("epoch").unwrap().points()[0].value, 3);
    }

    #[test]
    fn prefixed_namespaces_every_series() {
        let mut a = MetricsRegistry::new(8);
        a.record_counter("req", 1_000, 5);
        let p = a.prefixed("leader");
        assert!(p.series("leader/req").is_some());
        assert!(p.series("req").is_none());
    }

    #[test]
    fn wire_round_trip_is_identity() {
        let mut reg = MetricsRegistry::new(32);
        reg.record_counter("serve.requests", 1_000, 41);
        reg.record_counter("serve.requests", 2_000, 2);
        reg.record_gauge("catalog.epoch.30", 2_000, 3);
        let back = MetricsRegistry::decode(&reg.encode()).expect("round trip");
        assert_eq!(back, reg);
    }

    #[test]
    fn decode_refuses_newer_versions_and_junk() {
        let mut bytes = MetricsRegistry::new(4).encode();
        bytes[4] = SERIES_WIRE_VERSION + 1;
        assert_eq!(
            MetricsRegistry::decode(&bytes),
            Err(SeriesWireError::UnsupportedVersion(SERIES_WIRE_VERSION + 1))
        );
        assert_eq!(MetricsRegistry::decode(b"nop"), Err(SeriesWireError::Truncated));
        assert_eq!(
            MetricsRegistry::decode(b"XXXX\x01\0\0\0\0\0\0\0\0"),
            Err(SeriesWireError::BadMagic)
        );
        let mut trailing = MetricsRegistry::new(4).encode();
        trailing.push(0);
        assert_eq!(MetricsRegistry::decode(&trailing), Err(SeriesWireError::TrailingBytes));
    }

    #[test]
    fn decode_rejects_hostile_length_claims_without_allocating() {
        // A point count far past the buffer must error, not OOM.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&SERIES_MAGIC);
        bytes.push(SERIES_WIRE_VERSION);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // capacity
        bytes.extend_from_slice(&1u32.to_le_bytes()); // one series
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.push(b'x');
        bytes.push(0); // counter
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd points
        assert!(matches!(
            MetricsRegistry::decode(&bytes),
            Err(SeriesWireError::LengthOverflow | SeriesWireError::Truncated)
        ));
    }
}
