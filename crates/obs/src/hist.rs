//! Log-linear latency histograms: bounded relative error, constant-time
//! recording, and lossless merging across threads.
//!
//! # Bucketing scheme
//!
//! Values below 64 get one bucket each (exact). Above that, each power of
//! two is split into [`SUB_BUCKETS`] linear sub-buckets, so the relative
//! width of any bucket is at most `1/64` (~1.6 %) — fine enough that a
//! quantile read off the bucket floor is within ~2 % of the true value,
//! which is inside the ±5 % overhead ceiling the obs gate enforces.
//!
//! Recording is one index computation plus one increment; histograms merge
//! by element-wise addition, so per-thread instances can be combined into
//! a global view without losing any quantile information beyond the bucket
//! resolution both sides already had.

/// Linear sub-buckets per power of two (and the size of the exact range).
pub const SUB_BUCKETS: u64 = 64;

/// Number of low bits resolved exactly (`2^LINEAR_BITS == SUB_BUCKETS`).
const LINEAR_BITS: u32 = 6;

/// Bucket index for a recorded value.
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        let top = 63 - v.leading_zeros();
        let octave = (top - LINEAR_BITS + 1) as usize;
        let sub = ((v >> (top - LINEAR_BITS)) & (SUB_BUCKETS - 1)) as usize;
        octave * SUB_BUCKETS as usize + sub
    }
}

/// Smallest value that lands in bucket `index` (the bucket's floor).
#[must_use]
pub fn bucket_floor(index: usize) -> u64 {
    let sub = SUB_BUCKETS as usize;
    if index < sub {
        index as u64
    } else {
        let octave = index / sub;
        let offset = (index % sub) as u128;
        // Saturate: the floor of a bucket past u64::MAX (reachable as
        // "one past the bucket of u64::MAX") clamps to u64::MAX.
        let floor = (u128::from(SUB_BUCKETS) + offset) << (octave - 1);
        floor.min(u128::from(u64::MAX)) as u64
    }
}

/// A mergeable log-bucketed histogram of `u64` samples (latencies in ns).
///
/// Tracks exact `count`, `sum`, `min`, and `max` alongside the buckets, so
/// mean and extremes are exact while quantiles carry only bucket-resolution
/// error.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Folds `other` into `self` (element-wise; lossless at bucket
    /// resolution).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, &src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact mean of the recorded samples (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The quantile at `p ∈ [0, 1]`, read off the containing bucket's floor
    /// and clamped into `[min, max]` — so `quantile(0.0) >= min`,
    /// `quantile(1.0) <= max`, and the result is monotone in `p`. Returns 0
    /// on an empty histogram.
    #[must_use]
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 1.0);
        // Rank of the sample the quantile asks for, 1-based.
        let target = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_floor(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The non-empty buckets as `(index, count)` pairs — the sparse form
    /// the serve stats endpoint puts on the wire.
    #[must_use]
    pub fn sparse_buckets(&self) -> Vec<(u32, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i as u32, n))
            .collect()
    }

    /// Rebuilds a histogram from its exact counters and sparse buckets
    /// (the inverse of [`sparse_buckets`](Self::sparse_buckets)); used by
    /// the stats wire decoder. Pairs with an out-of-range index are
    /// ignored defensively.
    #[must_use]
    pub fn from_parts(count: u64, sum: u64, min: u64, max: u64, sparse: &[(u32, u64)]) -> Self {
        let mut buckets = Vec::new();
        for &(idx, n) in sparse {
            let idx = idx as usize;
            if idx >= buckets.len() {
                buckets.resize(idx + 1, 0);
            }
            buckets[idx] += n;
        }
        Self { count, sum, min, max, buckets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_floor_are_consistent() {
        for v in (0..4096u64).chain([u64::MAX / 3, u64::MAX]) {
            let idx = bucket_index(v);
            let floor = bucket_floor(idx);
            assert!(floor <= v, "floor {floor} must not exceed value {v}");
            // The next bucket's floor must be strictly above the value
            // (except at u64::MAX, where the next floor saturates to it).
            assert!(bucket_floor(idx + 1) > v || v == u64::MAX, "value {v} escaped bucket {idx}");
        }
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        for v in [100u64, 1_000, 65_537, 1 << 30, (1 << 40) + 12345] {
            let floor = bucket_floor(bucket_index(v));
            let err = (v - floor) as f64 / v as f64;
            assert!(err <= 1.0 / 32.0, "relative error {err} too large for {v}");
        }
    }

    #[test]
    fn quantiles_of_a_known_distribution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        assert!((470..=500).contains(&p50), "p50 {p50}");
        assert!((960..=990).contains(&p99), "p99 {p99}");
        assert!(h.quantile(1.0) <= h.max());
        assert!(h.quantile(0.0) >= h.min());
    }

    #[test]
    fn merge_matches_recording_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in 0..500u64 {
            let v = v * 37 % 100_000;
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn sparse_round_trip() {
        let mut h = Histogram::new();
        for v in [0u64, 5, 63, 64, 999, 123_456_789] {
            h.record(v);
        }
        let back = Histogram::from_parts(h.count(), h.sum(), h.min(), h.max(), &h.sparse_buckets());
        assert_eq!(back, h);
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
