//! Structured JSONL spans and events with request-ID propagation.
//!
//! With the `obs` feature enabled and a sink installed via [`set_sink`],
//! every [`span`]/[`span_req`] guard writes one JSON line on drop carrying
//! its span ID, parent span ID (from a thread-local stack, so nesting is
//! captured automatically), request ID, start timestamp, and duration.
//! [`event`] writes point-in-time lines attributed to the innermost open
//! span. Without the feature every entry point is a no-op and [`Span`] is
//! zero-sized.
//!
//! Request IDs tie the two halves of a fetch together: `ModelClient` mints
//! one per logical request (via [`crate::next_request_id`]), sends it in
//! the wire header, and the server opens its handler span with the decoded
//! ID — so `grep '"req":17'` over a combined trace shows the client span,
//! the server span, and everything nested under either.
//!
//! Timestamps are nanoseconds since the first trace call in the process
//! (monotonic), not wall-clock — traces are for ordering and latency, not
//! for correlation across machines.

#[cfg(feature = "obs")]
mod imp {
    use std::cell::{Cell, RefCell};
    use std::io::Write;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock, PoisonError};
    use std::time::Instant;

    /// Pluggable trace destination. Kept behind its own flag so the span
    /// fast path can skip the mutex entirely when no sink is installed.
    static SINK: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);
    static HAS_SINK: AtomicBool = AtomicBool::new(false);
    static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

    fn origin() -> Instant {
        static ORIGIN: OnceLock<Instant> = OnceLock::new();
        *ORIGIN.get_or_init(Instant::now)
    }

    thread_local! {
        /// Open span IDs, innermost last; gives events and child spans
        /// their parent.
        static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
        /// Request ID in effect on this thread (0 = none).
        static CURRENT_REQ: Cell<u64> = const { Cell::new(0) };
    }

    /// Installs (or with `None`, removes) the process-wide trace sink.
    pub fn set_sink(sink: Option<Box<dyn Write + Send>>) {
        let mut slot = SINK.lock().unwrap_or_else(PoisonError::into_inner);
        HAS_SINK.store(sink.is_some(), Ordering::Release);
        *slot = sink;
    }

    /// Flushes the installed sink, if any.
    pub fn flush_sink() {
        let mut slot = SINK.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(w) = slot.as_mut() {
            let _ = w.flush();
        }
    }

    fn active() -> bool {
        crate::enabled() && HAS_SINK.load(Ordering::Acquire)
    }

    fn write_line(line: &str) {
        let mut slot = SINK.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(w) = slot.as_mut() {
            // A dead sink (closed pipe, full disk) must not take the
            // instrumented program down; drop it and keep running.
            if w.write_all(line.as_bytes()).and_then(|()| w.write_all(b"\n")).is_err() {
                HAS_SINK.store(false, Ordering::Release);
                *slot = None;
            }
        }
    }

    fn push_json_str(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn line_head(
        kind: &str,
        name: &str,
        span_id: u64,
        parent: u64,
        req: u64,
        ts_ns: u64,
    ) -> String {
        let mut line = String::with_capacity(128);
        line.push_str("{\"kind\":");
        push_json_str(&mut line, kind);
        line.push_str(",\"name\":");
        push_json_str(&mut line, name);
        line.push_str(&format!(",\"span\":{span_id}"));
        if parent != 0 {
            line.push_str(&format!(",\"parent\":{parent}"));
        }
        if req != 0 {
            line.push_str(&format!(",\"req\":{req}"));
        }
        line.push_str(&format!(",\"ts_ns\":{ts_ns}"));
        line
    }

    /// RAII guard for one traced span; writes its JSONL record on drop.
    ///
    /// An inert instance (tracing off at creation time) carries `id == 0`
    /// and does nothing on drop.
    #[must_use = "a span records its timing when dropped"]
    pub struct Span {
        id: u64,
        name: &'static str,
        parent: u64,
        req: u64,
        prev_req: u64,
        start_ns: u64,
        start: Instant,
    }

    /// Opens a span inheriting the thread's current request ID (if any).
    pub fn span(name: &'static str) -> Span {
        span_req(name, 0)
    }

    /// Opens a span under request `req_id`; nested spans and events on
    /// this thread inherit the ID until the guard drops. `req_id == 0`
    /// means "inherit whatever is current".
    pub fn span_req(name: &'static str, req_id: u64) -> Span {
        if !active() {
            return Span {
                id: 0,
                name,
                parent: 0,
                req: 0,
                prev_req: 0,
                start_ns: 0,
                start: origin(),
            };
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied().unwrap_or(0);
            s.push(id);
            parent
        });
        let prev_req = CURRENT_REQ.with(|r| {
            let prev = r.get();
            if req_id != 0 {
                r.set(req_id);
            }
            prev
        });
        let req = if req_id != 0 { req_id } else { prev_req };
        let start = Instant::now();
        let start_ns = start.duration_since(origin()).as_nanos() as u64;
        Span { id, name, parent, req, prev_req, start_ns, start }
    }

    impl Span {
        /// This span's ID (0 when tracing was off at creation).
        pub fn id(&self) -> u64 {
            self.id
        }
    }

    impl Drop for Span {
        fn drop(&mut self) {
            if self.id == 0 {
                return;
            }
            let dur_ns = self.start.elapsed().as_nanos() as u64;
            SPAN_STACK.with(|s| {
                let mut s = s.borrow_mut();
                // Well-nested by RAII; pop back to (and including) our ID
                // defensively in case an inner guard was leaked.
                while let Some(top) = s.pop() {
                    if top == self.id {
                        break;
                    }
                }
            });
            CURRENT_REQ.with(|r| r.set(self.prev_req));
            let mut line =
                line_head("span", self.name, self.id, self.parent, self.req, self.start_ns);
            line.push_str(&format!(",\"dur_ns\":{dur_ns}}}"));
            write_line(&line);
        }
    }

    /// Writes a point-in-time event attributed to the innermost open span
    /// and the current request ID. `fields` become a flat `"f"` object.
    pub fn event(name: &str, fields: &[(&str, &str)]) {
        if !active() {
            return;
        }
        let parent = SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
        let req = CURRENT_REQ.with(Cell::get);
        let ts_ns = origin().elapsed().as_nanos() as u64;
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let mut line = line_head("event", name, id, parent, req, ts_ns);
        if !fields.is_empty() {
            line.push_str(",\"f\":{");
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                push_json_str(&mut line, k);
                line.push(':');
                push_json_str(&mut line, v);
            }
            line.push('}');
        }
        line.push('}');
        write_line(&line);
    }

    /// An in-memory `Write` sink that can be cloned before installation so
    /// tests (and `serve_load --trace -`) can read back what was traced.
    #[derive(Clone, Default)]
    pub struct SharedBuffer(Arc<Mutex<Vec<u8>>>);

    impl SharedBuffer {
        /// A new empty buffer.
        pub fn new() -> Self {
            Self::default()
        }

        /// Everything written so far, as UTF-8 (lossy).
        pub fn contents(&self) -> String {
            let buf = self.0.lock().unwrap_or_else(PoisonError::into_inner);
            String::from_utf8_lossy(&buf).into_owned()
        }
    }

    impl Write for SharedBuffer {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap_or_else(PoisonError::into_inner).extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
}

#[cfg(not(feature = "obs"))]
mod imp {
    use std::io::Write;

    /// Zero-sized stand-in for the span guard; dropping it does nothing.
    #[must_use = "a span records its timing when dropped"]
    pub struct Span(());

    impl Span {
        /// Always 0 (tracing compiled out).
        pub fn id(&self) -> u64 {
            0
        }
    }

    /// No-op (tracing compiled out).
    pub fn span(_name: &'static str) -> Span {
        Span(())
    }

    /// No-op (tracing compiled out).
    pub fn span_req(_name: &'static str, _req_id: u64) -> Span {
        Span(())
    }

    /// No-op (tracing compiled out).
    pub fn event(_name: &str, _fields: &[(&str, &str)]) {}

    /// No-op (tracing compiled out); the sink is dropped immediately.
    pub fn set_sink(_sink: Option<Box<dyn Write + Send>>) {}

    /// No-op (tracing compiled out).
    pub fn flush_sink() {}
}

pub use imp::*;

#[cfg(all(test, feature = "obs"))]
mod tests {
    use super::*;

    /// Trace state (sink, current-request) is process-global; serialize.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn nested_spans_share_request_and_link_parents() {
        let _guard = exclusive();
        let buf = SharedBuffer::new();
        set_sink(Some(Box::new(buf.clone())));
        {
            let outer = span_req("outer", 42);
            assert!(outer.id() != 0);
            {
                let _inner = span("inner");
                event("checkpoint", &[("k", "v\"quoted")]);
            }
        }
        set_sink(None);
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "event + inner + outer: {text}");
        // Order is write order: event first, then inner closes, then outer.
        assert!(lines[0].contains("\"kind\":\"event\""));
        assert!(lines[0].contains("\"req\":42"));
        assert!(lines[0].contains("\\\"quoted"));
        assert!(lines[1].contains("\"name\":\"inner\""));
        assert!(lines[1].contains("\"req\":42"), "inner inherits req: {}", lines[1]);
        assert!(lines[1].contains("\"parent\":"));
        assert!(lines[2].contains("\"name\":\"outer\""));
        assert!(lines[2].contains("\"dur_ns\":"));
    }

    #[test]
    fn no_sink_means_inert_spans() {
        let _guard = exclusive();
        set_sink(None);
        let s = span_req("quiet", 7);
        assert_eq!(s.id(), 0);
    }

    #[test]
    fn disabled_at_runtime_suppresses_tracing() {
        let _guard = exclusive();
        let buf = SharedBuffer::new();
        set_sink(Some(Box::new(buf.clone())));
        crate::set_enabled(false);
        {
            let _s = span_req("off", 9);
            event("off_event", &[]);
        }
        crate::set_enabled(true);
        set_sink(None);
        assert!(buf.contents().is_empty(), "runtime-off must trace nothing");
    }
}
