//! Property-based tests of the metrics-series invariants the fleet
//! aggregator leans on: wire round-trip identity, decoder totality under
//! truncation and corruption, and order-independence of merge.

use proptest::prelude::*;
use waldo_obs::series::{MetricsRegistry, SeriesKind};

/// Builds a registry from raw samples. The kind is a deterministic
/// function of the name — the real-world invariant merge associativity
/// rests on (every node samples a given name the same way).
fn build(capacity: usize, samples: &[(u8, u16, u32)]) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new(capacity);
    for &(name_idx, ts, value) in samples {
        let name = format!("series-{}", name_idx % 6);
        if name_idx % 2 == 0 {
            reg.record_counter(&name, u64::from(ts), u64::from(value));
        } else {
            reg.record_gauge(&name, u64::from(ts), u64::from(value));
        }
    }
    reg
}

fn samples() -> impl Strategy<Value = Vec<(u8, u16, u32)>> {
    prop::collection::vec((any::<u8>(), any::<u16>(), any::<u32>()), 0..60)
}

proptest! {
    #[test]
    fn wire_round_trip_is_identity(
        capacity in 1usize..128,
        raw in samples(),
    ) {
        let reg = build(capacity, &raw);
        let back = MetricsRegistry::decode(&reg.encode()).expect("own encoding decodes");
        prop_assert_eq!(back, reg);
    }

    #[test]
    fn truncation_always_errors_and_never_panics(
        capacity in 1usize..64,
        raw in samples(),
        cut in any::<usize>(),
    ) {
        let bytes = build(capacity, &raw).encode();
        // Any strict prefix must surface a typed error: the wire form has
        // no valid proper prefixes.
        let prefix = &bytes[..cut % bytes.len()];
        prop_assert!(MetricsRegistry::decode(prefix).is_err());
    }

    #[test]
    fn corruption_never_panics(
        capacity in 1usize..64,
        raw in samples(),
        flip_at in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let mut bytes = build(capacity, &raw).encode();
        let at = flip_at % bytes.len();
        bytes[at] ^= 1 << flip_bit;
        // Decoding is total: corrupted bytes produce Ok or a typed error,
        // never a panic or an unbounded allocation.
        let _ = MetricsRegistry::decode(&bytes);
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = MetricsRegistry::decode(&bytes);
    }

    #[test]
    fn merge_is_commutative(
        capacity in 1usize..64,
        raw_a in samples(),
        raw_b in samples(),
    ) {
        let a = build(capacity, &raw_a);
        let b = build(capacity, &raw_b);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(
        capacity in 1usize..64,
        raw_a in samples(),
        raw_b in samples(),
        raw_c in samples(),
    ) {
        let a = build(capacity, &raw_a);
        let b = build(capacity, &raw_b);
        let c = build(capacity, &raw_c);
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_matches_recording_into_one(
        capacity in 1usize..64,
        raw_a in samples(),
        raw_b in samples(),
    ) {
        // Splitting a sample stream across two registries and merging must
        // equal recording the whole stream into one — the claim that lets
        // per-node sampling and fleet aggregation commute.
        let mut whole: Vec<(u8, u16, u32)> = raw_a.clone();
        whole.extend_from_slice(&raw_b);
        let mut merged = build(capacity, &raw_a);
        merged.merge(&build(capacity, &raw_b));
        prop_assert_eq!(merged, build(capacity, &whole));
    }

    #[test]
    fn kinds_survive_the_wire(raw in samples()) {
        let reg = build(32, &raw);
        let back = MetricsRegistry::decode(&reg.encode()).expect("decodes");
        for (name, series) in reg.iter() {
            prop_assert_eq!(back.series(name).expect("series survives").kind(), series.kind());
            prop_assert!(matches!(series.kind(), SeriesKind::Counter | SeriesKind::Gauge));
        }
    }
}
