//! Property-based tests of the histogram invariants the obs layer leans
//! on: bucket monotonicity, quantile bounds, merge behaviour, and exact
//! count totals under concurrent recording.

use proptest::prelude::*;
use waldo_obs::hist::{bucket_floor, bucket_index, Histogram};

proptest! {
    #[test]
    fn bucket_index_is_monotone(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
    }

    #[test]
    fn bucket_floor_brackets_the_value(v in 0u64..u64::MAX) {
        let idx = bucket_index(v);
        prop_assert!(bucket_floor(idx) <= v);
        prop_assert!(bucket_floor(idx + 1) > v);
    }

    #[test]
    fn quantiles_are_ordered_and_bounded(
        xs in prop::collection::vec(0u64..10_000_000_000, 1..400),
    ) {
        let mut h = Histogram::new();
        for &x in &xs {
            h.record(x);
        }
        let lo = *xs.iter().min().unwrap();
        let hi = *xs.iter().max().unwrap();
        prop_assert_eq!(h.count(), xs.len() as u64);
        prop_assert_eq!(h.min(), lo);
        prop_assert_eq!(h.max(), hi);
        let p50 = h.quantile(0.50);
        let p90 = h.quantile(0.90);
        let p99 = h.quantile(0.99);
        prop_assert!(h.min() <= p50, "min {} > p50 {}", h.min(), p50);
        prop_assert!(p50 <= p90 && p90 <= p99, "p50 {p50} p90 {p90} p99 {p99}");
        prop_assert!(p99 <= h.max(), "p99 {} > max {}", p99, h.max());
    }

    #[test]
    fn merge_quantiles_are_bounded_by_inputs(
        xs in prop::collection::vec(0u64..1_000_000_000, 1..200),
        ys in prop::collection::vec(0u64..1_000_000_000, 1..200),
    ) {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for &x in &xs {
            a.record(x);
        }
        for &y in &ys {
            b.record(y);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        prop_assert_eq!(merged.count(), a.count() + b.count());
        prop_assert_eq!(merged.sum(), a.sum() + b.sum());
        prop_assert_eq!(merged.min(), a.min().min(b.min()));
        prop_assert_eq!(merged.max(), a.max().max(b.max()));
        for p in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let q = merged.quantile(p);
            // A merged quantile can never escape the envelope of the two
            // inputs' extreme values.
            prop_assert!(q >= a.min().min(b.min()));
            prop_assert!(q <= a.max().max(b.max()));
        }
        // Merging the other way round must give the identical histogram.
        let mut other = b.clone();
        other.merge(&a);
        prop_assert_eq!(other, merged);
    }

    #[test]
    fn sparse_round_trip_is_lossless(
        xs in prop::collection::vec(0u64..u64::MAX / 2, 0..200),
    ) {
        let mut h = Histogram::new();
        for &x in &xs {
            h.record(x);
        }
        let back =
            Histogram::from_parts(h.count(), h.sum(), h.min(), h.max(), &h.sparse_buckets());
        prop_assert_eq!(back, h);
    }
}

/// Concurrent recording through the global registry must lose no samples:
/// the final count per name is exactly what the threads put in, however
/// the scheduler interleaves them.
#[cfg(feature = "obs")]
#[test]
fn concurrent_recording_counts_are_deterministic() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 1000;
    waldo_obs::reset_histograms();
    waldo_obs::set_enabled(true);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    waldo_obs::record_duration_ns("concurrent_path", t as u64 * 131 + i);
                }
            });
        }
    });
    let snap = waldo_obs::histogram_snapshot();
    let (_, hist) = snap.iter().find(|(n, _)| *n == "concurrent_path").expect("histogram present");
    assert_eq!(hist.count(), THREADS as u64 * PER_THREAD);
    let total: u64 = hist.sparse_buckets().iter().map(|&(_, n)| n).sum();
    assert_eq!(total, hist.count(), "bucket totals must equal the count");
    waldo_obs::reset_histograms();
}
