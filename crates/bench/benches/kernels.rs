//! Criterion benchmarks of the compute kernels behind the paper's
//! figures: the per-reading signal path (FFT, features, detection), the
//! classifiers (train + predict), Algorithm-1 labeling, and the online
//! detector step. These are the costs that determine the phone-side
//! responsiveness (Fig 17) and CPU overhead (Fig 18).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use waldo::{ClassifierKind, ModelConstructor, WaldoConfig, WhiteSpaceDetector};
use waldo_data::{ChannelDataset, Labeler, Measurement, Safety};
use waldo_geo::Point;
use waldo_iq::window::Window;
use waldo_iq::{
    fft, Complex, EnergyDetector, FeatureSet, FeatureVector, FrameBatch, FrameSynthesizer, IqFrame,
};
use waldo_ml::nb::GaussianNbTrainer;
use waldo_ml::svm::{Kernel, SvmTrainer};
use waldo_ml::{Classifier, Dataset};
use waldo_rf::TvChannel;
use waldo_sensors::{Observation, SensorKind, SensorModel};

fn frames(n: usize, seed: u64) -> Vec<IqFrame> {
    let mut rng = StdRng::seed_from_u64(seed);
    let synth = FrameSynthesizer::new(256).pilot_dbfs(-40.0).data_dbfs(-45.0).noise_dbfs(-70.0);
    (0..n).map(|_| synth.synthesize(&mut rng)).collect()
}

fn observation(rss: f64) -> Observation {
    Observation {
        rss_dbm: rss,
        features: FeatureVector {
            rss_db: rss,
            cft_db: rss - 11.3,
            aft_db: rss - 12.5,
            quadrature_imbalance_db: 0.0,
            iq_kurtosis: 0.0,
            edge_bin_db: -110.0,
        },
        raw_pilot_db: rss - 11.3,
    }
}

fn synthetic_channel(n: usize) -> ChannelDataset {
    let mut measurements = Vec::new();
    let mut labels = Vec::new();
    for i in 0..n {
        let x = (i as f64 / n as f64) * 30_000.0;
        let not_safe = x > 15_000.0;
        let rss = if not_safe { -70.0 } else { -92.0 } + ((i % 7) as f64 - 3.0) * 0.4;
        measurements.push(Measurement {
            location: Point::new(x, ((i * 13) % 20) as f64 * 1_000.0),
            odometer_m: i as f64,
            observation: observation(rss),
            true_rss_dbm: rss,
        });
        labels.push(Safety::from_not_safe(not_safe));
    }
    ChannelDataset::new(TvChannel::new(30).unwrap(), SensorKind::RtlSdr, measurements, labels)
}

fn classification_dataset(n: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for _ in 0..n {
        let row: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let label = row.iter().sum::<f64>() > 0.1;
        rows.push(row);
        labels.push(label);
    }
    Dataset::from_rows(rows, labels).unwrap()
}

fn bench_signal_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("signal_path");
    let frame = frames(1, 1).pop().unwrap();
    let batch = frames(24, 2);
    let detector = EnergyDetector::new();

    group.bench_function("fft_256", |b| {
        let samples: Vec<Complex> = frame.samples().to_vec();
        b.iter_batched(
            || samples.clone(),
            |mut buf| fft::fft(black_box(&mut buf)).unwrap(),
            BatchSize::SmallInput,
        );
    });
    // Same transform, but the plan (bit-reversal table + twiddles) is
    // rebuilt on every call instead of fetched from the thread-local
    // cache — the pre-FftPlan cost model.
    group.bench_function("fft_256_unplanned", |b| {
        let samples: Vec<Complex> = frame.samples().to_vec();
        b.iter_batched(
            || samples.clone(),
            |mut buf| fft::fft_unplanned(black_box(&mut buf)).unwrap(),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("features_single_frame", |b| {
        b.iter(|| FeatureVector::extract(black_box(&frame), Window::Hann));
    });
    group.bench_function("features_24_frame_reading", |b| {
        b.iter(|| FeatureVector::extract_from_frames(black_box(&batch), Window::Hann));
    });
    // Fused SoA extraction vs the retained per-frame reference — the
    // before/after of the batched synth→FFT→feature pipeline.
    let soa = FrameBatch::from_frames(&batch);
    group.bench_function("extract_fused", |b| {
        b.iter(|| FeatureVector::extract_from_batch(black_box(&soa), Window::Hann));
    });
    group.bench_function("extract_reference", |b| {
        b.iter(|| FeatureVector::extract_from_frames_reference(black_box(&batch), Window::Hann));
    });
    group.bench_function("pilot_detector", |b| {
        b.iter(|| detector.pilot_dbfs(black_box(&frame)));
    });
    // Batched synthesis (shared Box–Muller pairs, merged noise + data
    // skirt, pilot phasor recurrence) vs the per-draw reference path.
    let synth = FrameSynthesizer::new(256).pilot_dbfs(-40.0).data_dbfs(-45.0).noise_dbfs(-70.0);
    group.bench_function("frame_synth_256", |b| {
        let mut rng = StdRng::seed_from_u64(21);
        b.iter(|| black_box(synth.synthesize(&mut rng)));
    });
    group.bench_function("frame_synth_256_unbatched", |b| {
        let mut rng = StdRng::seed_from_u64(21);
        b.iter(|| black_box(synth.synthesize_unbatched(&mut rng)));
    });
    group.bench_function("sensor_reading_rtl", |b| {
        let sensor = SensorModel::rtl_sdr();
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| sensor.capture_reading(Some(-70.0), &mut rng));
    });
    group.finish();
}

fn bench_classifiers(c: &mut Criterion) {
    let mut group = c.benchmark_group("classifiers");
    group.sample_size(10);
    let ds = classification_dataset(600, 4, 7);

    group.bench_function("nb_fit_600x4", |b| {
        b.iter(|| GaussianNbTrainer::new().fit(black_box(&ds)).unwrap());
    });
    let nb = GaussianNbTrainer::new().fit(&ds).unwrap();
    group.bench_function("nb_predict", |b| {
        b.iter(|| nb.predict(black_box(&[0.1, -0.2, 0.3, 0.0])));
    });
    group.bench_function("svm_fit_300x4", |b| {
        let small = ds.subset(&(0..300).collect::<Vec<_>>());
        b.iter(|| {
            SvmTrainer::new().kernel(Kernel::Rbf { gamma: 0.5 }).fit(black_box(&small)).unwrap()
        });
    });
    // The pre-error-cache SMO (random second multiplier, f() recomputed
    // per candidate) — the "before" of the svm_fit before/after numbers.
    group.bench_function("svm_fit_naive_300x4", |b| {
        let small = ds.subset(&(0..300).collect::<Vec<_>>());
        b.iter(|| {
            SvmTrainer::new()
                .kernel(Kernel::Rbf { gamma: 0.5 })
                .fit_naive_reference(black_box(&small))
                .unwrap()
        });
    });
    let svm = SvmTrainer::new().kernel(Kernel::Rbf { gamma: 0.5 }).fit(&ds).unwrap();
    group.bench_function("svm_predict", |b| {
        b.iter(|| svm.predict(black_box(&[0.1, -0.2, 0.3, 0.0])));
    });
    // Full kernel evaluation per support vector, without the cached SV
    // squared norms — the "before" of the svm_predict win.
    group.bench_function("svm_predict_naive", |b| {
        b.iter(|| svm.decision_function_naive(black_box(&[0.1, -0.2, 0.3, 0.0])) > 0.0);
    });
    group.bench_function("kmeans_k3_1000x2", |b| {
        let pts: Vec<Vec<f64>> = classification_dataset(1000, 2, 9).rows().to_vec();
        b.iter(|| waldo_ml::kmeans::KMeans::new(3).seed(1).fit(black_box(&pts)).unwrap());
    });
    group.finish();
}

fn bench_system(c: &mut Criterion) {
    let mut group = c.benchmark_group("system");
    group.sample_size(10);

    // Algorithm-1 labeling over 2000 readings.
    let mut rng = StdRng::seed_from_u64(11);
    let readings: Vec<(Point, f64)> = (0..2000)
        .map(|_| {
            (
                Point::new(rng.gen_range(0.0..35_000.0), rng.gen_range(0.0..20_000.0)),
                rng.gen_range(-110.0..-60.0),
            )
        })
        .collect();
    group.bench_function("algorithm1_label_2000", |b| {
        let labeler = Labeler::new();
        b.iter(|| labeler.label(black_box(&readings)));
    });

    // Campaign-scale labeling (5k readings ≈ one full-scale channel), and
    // the degenerate tiny-radius configuration whose GridIndex bucket size
    // is clamped to 1 m — pinned behavior, see Labeler::label.
    let mut rng5 = StdRng::seed_from_u64(17);
    let readings_5k: Vec<(Point, f64)> = (0..5000)
        .map(|_| {
            (
                Point::new(rng5.gen_range(0.0..35_000.0), rng5.gen_range(0.0..20_000.0)),
                rng5.gen_range(-110.0..-60.0),
            )
        })
        .collect();
    group.bench_function("label_5k", |b| {
        let labeler = Labeler::new();
        b.iter(|| labeler.label(black_box(&readings_5k)));
    });
    group.bench_function("label_5k_tiny_radius", |b| {
        let labeler = Labeler::new().radius_m(0.001);
        b.iter(|| labeler.label(black_box(&readings_5k)));
    });

    // Model construction on a 600-reading channel.
    let ds = synthetic_channel(600);
    group.bench_function("waldo_fit_nb_600", |b| {
        let c = ModelConstructor::new(
            WaldoConfig::default()
                .classifier(ClassifierKind::NaiveBayes)
                .features(FeatureSet::first_n(2)),
        );
        b.iter(|| c.fit(black_box(&ds)).unwrap());
    });
    group.bench_function("waldo_fit_svm_600", |b| {
        let c = ModelConstructor::new(WaldoConfig::default().features(FeatureSet::first_n(2)));
        b.iter(|| c.fit(black_box(&ds)).unwrap());
    });

    // One detector convergence episode (the Fig 17 unit of work).
    let model =
        ModelConstructor::new(WaldoConfig::default().classifier(ClassifierKind::NaiveBayes))
            .fit(&ds)
            .unwrap();
    group.bench_function("detector_convergence_episode", |b| {
        let mut rng = StdRng::seed_from_u64(13);
        b.iter(|| {
            let mut det = WhiteSpaceDetector::new(model.clone(), 0.5);
            let loc = Point::new(25_000.0, 10_000.0);
            loop {
                let rss = -70.0 + 0.4 * waldo_iq::synth::standard_normal(&mut rng);
                if let waldo::DetectorOutcome::Converged { safety, .. } =
                    det.push(loc, &observation(rss))
                {
                    break black_box(safety);
                }
            }
        });
    });

    // V-Scope fit on the same channel.
    let txs = vec![waldo_rf::Transmitter::new(
        TvChannel::new(30).unwrap(),
        Point::new(40_000.0, 10_000.0),
        85.0,
        300.0,
    )];
    group.bench_function("vscope_fit_600", |b| {
        b.iter(|| waldo::baseline::VScope::fit(black_box(&ds), txs.clone(), 3, 1).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_signal_path, bench_classifiers, bench_system);
criterion_main!(benches);
