//! Two-phase load generator for the model-distribution server.
//!
//! **Validation phase** — starts a server on an ephemeral port, publishes
//! a model, and hammers it from `--clients` concurrent hardened
//! [`ModelClient`]s: each does one full fetch followed by `--fetches`
//! delta fetches while the main thread republishes mid-run (so deltas
//! exercise both the nothing-changed and some-localities-changed paths).
//! Each client also fires one malformed-frame probe and one
//! oversized-frame probe on throwaway connections and verifies the typed
//! rejection. This phase sources the request/response latency numbers
//! (`fetch_p50_ns`, `fetch_p99_ns`) and the delta-vs-full byte savings.
//!
//! **Throughput phase** — holds `--connections` keep-alive connections
//! open against the same server and keeps a small pipeline of unscoped
//! fetches in flight on every one (see `waldo_bench::loadgen`), measuring
//! server capacity for `--duration` seconds: the headline
//! `fetches_per_s`, connection-setup p50/p99, and — from the server's own
//! stats — the pre-encoded response cache hit rate and reactor count.
//!
//! **Ingest phase** — after the throughput phase the same client fleet
//! turns around and uploads location-tagged reading batches through the
//! server's ingestion plane (durable WAL append per ack), re-sends one
//! already-acked batch each to prove the duplicate path, then the main
//! thread runs one incremental refit and verifies a delta fetch observes
//! the bumped epoch — the paper's crowd-sourcing loop, closed in one
//! binary. Emits the upload rate, upload latency percentiles, and refit
//! wall time as a separate ingest report (`--ingest-out`) that
//! `gate --ingest` holds to the checked-in floors.
//!
//! With `--obs-overhead`, after these phases a single client measures
//! fetch p50 in alternating recording-off/recording-on blocks (same
//! process, same server, same connection), emitting the A/B fields that
//! `gate --obs` holds to the ≤5 % overhead ceiling.
//!
//! Usage: `serve_load [--quick] [--clients N] [--fetches M]
//! [--connections N] [--duration SECS] [--out PATH] [--ingest-out PATH]
//! [--ingest-dir DIR] [--obs-overhead] [--trace PATH]`

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use serde_json::json;
use waldo::wire::ReadingBatch;
use waldo::{ClassifierKind, ModelConstructor, WaldoConfig, WaldoModel};
use waldo_bench::loadgen::{self, LoadConfig};
use waldo_bench::report::{percentile, write_json};
use waldo_data::{ChannelDataset, Labeler, Measurement, Safety};
use waldo_geo::Point;
use waldo_iq::FeatureVector;
use waldo_rf::TvChannel;
use waldo_sensors::{Observation, ReadingSample, SensorKind};
use waldo_serve::protocol::{read_frame, write_frame, FrameRead, Status};
use waldo_serve::{
    serve_with_ingest, ClientObsSnapshot, IngestPlane, ModelCatalog, ModelClient, ServeConfig,
};
use waldo_store::RefitEngine;

const CHANNEL: u8 = 30;
/// Readings per uploaded batch in the ingest phase. Small enough that a
/// batch frame stays well under the upload size cap, large enough that
/// the refit sees a meaningful number of crowd-sourced rows.
const READINGS_PER_BATCH: usize = 24;

/// Synthetic east/west channel, the same shape the core tests train on.
/// `flip` relabels a slice of the map so retrained models differ in some —
/// but not all — localities.
fn dataset(n: usize, flip: bool) -> ChannelDataset {
    let mut measurements = Vec::new();
    let mut labels = Vec::new();
    for i in 0..n {
        let x = (i as f64 / n as f64) * 30_000.0;
        let y = ((i * 7) % 20) as f64 * 1_000.0;
        let boundary = if flip && y > 10_000.0 { 12_000.0 } else { 15_000.0 };
        let not_safe = x > boundary;
        let rss = if not_safe { -70.0 } else { -95.0 } + ((i % 5) as f64 - 2.0);
        measurements.push(Measurement {
            location: Point::new(x, y),
            odometer_m: i as f64 * 100.0,
            observation: Observation {
                rss_dbm: rss,
                features: FeatureVector {
                    rss_db: rss,
                    cft_db: rss - 11.3,
                    aft_db: rss - 12.5,
                    quadrature_imbalance_db: 0.0,
                    iq_kurtosis: 0.0,
                    edge_bin_db: -110.0,
                },
                raw_pilot_db: rss - 11.3,
            },
            true_rss_dbm: rss,
        });
        labels.push(Safety::from_not_safe(not_safe));
    }
    ChannelDataset::new(TvChannel::new(30).unwrap(), SensorKind::RtlSdr, measurements, labels)
}

fn train(n: usize, flip: bool, localities: usize) -> WaldoModel {
    ModelConstructor::new(
        WaldoConfig::default().classifier(ClassifierKind::Svm).localities(localities),
    )
    .fit(&dataset(n, flip))
    .expect("synthetic data trains")
}

/// A location-tagged reading batch whose contents follow the synthetic
/// east/west truth (hot east of 15 km, quiet west of it), spread across
/// the map so refits touch several localities. Batch IDs are minted from
/// `(client, k)` so every retry of the same batch is idempotent.
fn upload_batch(client_idx: usize, k: usize) -> ReadingBatch {
    let readings = (0..READINGS_PER_BATCH)
        .map(|i| {
            let x = ((client_idx * 1_700 + k * 997 + i * 223) % 30_000) as f64;
            let y = ((client_idx * 900 + i * 151) % 20_000) as f64;
            let rss = if x > 15_000.0 { -70.0 } else { -95.0 };
            ReadingSample {
                location: Point::new(x, y),
                rss_dbm: rss,
                features: FeatureVector {
                    rss_db: rss,
                    cft_db: rss - 11.3,
                    aft_db: rss - 12.5,
                    quadrature_imbalance_db: 0.0,
                    iq_kurtosis: 0.0,
                    edge_bin_db: -110.0,
                },
            }
        })
        .collect();
    ReadingBatch {
        batch_id: (client_idx as u64) * 100_000 + k as u64 + 1,
        channel: CHANNEL,
        readings,
    }
}

/// Sends raw garbage (and an oversized length announcement) and expects
/// the server's typed rejections. Returns the number of *unexpected*
/// outcomes.
fn probe_malformed(addr: std::net::SocketAddr) -> usize {
    let mut unexpected = 0;

    // Garbage payload in a well-formed frame → MalformedFrame status.
    match TcpStream::connect(addr) {
        Ok(mut stream) => {
            if stream.set_read_timeout(Some(Duration::from_secs(5))).is_err()
                || stream.set_write_timeout(Some(Duration::from_secs(5))).is_err()
            {
                // A socket we cannot bound is a failed probe, not a silent
                // pass.
                return unexpected + 1;
            }
            if write_frame(&mut stream, b"this is not a waldo request").is_err() {
                unexpected += 1;
            } else {
                match read_frame(&mut stream, 1 << 20) {
                    Ok(FrameRead::Frame(payload)) => {
                        let ok = waldo_serve::protocol::decode_response(&payload)
                            .map(|(_req_id, status, _)| status == Status::MalformedFrame)
                            .unwrap_or(false);
                        if !ok {
                            unexpected += 1;
                        }
                    }
                    _ => unexpected += 1,
                }
            }
        }
        Err(_) => unexpected += 1,
    }

    // Oversized length prefix → RequestTooLarge, without the server
    // reading the (never-sent) body.
    match TcpStream::connect(addr) {
        Ok(mut stream) => {
            if stream.set_read_timeout(Some(Duration::from_secs(5))).is_err()
                || stream.set_write_timeout(Some(Duration::from_secs(5))).is_err()
            {
                return unexpected + 1;
            }
            let huge = (16u32 << 20).to_le_bytes();
            if stream.write_all(&huge).and_then(|()| stream.flush()).is_err() {
                unexpected += 1;
            } else {
                match read_frame(&mut stream, 1 << 20) {
                    Ok(FrameRead::Frame(payload)) => {
                        let ok = waldo_serve::protocol::decode_response(&payload)
                            .map(|(_req_id, status, _)| status == Status::RequestTooLarge)
                            .unwrap_or(false);
                        if !ok {
                            unexpected += 1;
                        }
                    }
                    _ => unexpected += 1,
                }
            }
        }
        Err(_) => unexpected += 1,
    }

    unexpected
}

struct ClientStats {
    /// (latency_ns, response_bytes, localities_sent, was_full_fetch)
    fetches: Vec<(u64, usize, usize, bool)>,
    /// Failure-policy counters at thread exit.
    obs: ClientObsSnapshot,
}

/// Whether a client error was an I/O timeout (on Linux, timed-out socket
/// reads surface as `WouldBlock`).
fn is_timeout(e: &waldo_serve::ClientError) -> bool {
    matches!(
        e,
        waldo_serve::ClientError::Io(io)
            if matches!(io.kind(), std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock)
    )
}

fn run_client(
    addr: std::net::SocketAddr,
    fetches: usize,
    client_idx: usize,
    errors: &AtomicUsize,
    timeouts: &AtomicUsize,
) -> ClientStats {
    let mut client = ModelClient::new(addr, Duration::from_secs(10));
    let mut stats =
        ClientStats { fetches: Vec::with_capacity(fetches + 1), obs: ClientObsSnapshot::default() };
    if let Err(e) = client.ping() {
        if is_timeout(&e) {
            timeouts.fetch_add(1, Ordering::Relaxed);
        }
        errors.fetch_add(1, Ordering::Relaxed);
        stats.obs = client.obs_snapshot();
        return stats;
    }
    // Clients spread across the map; unscoped fetches so every client
    // downloads (and delta-tracks) the full locality set.
    let x_km = 5.0 + (client_idx as f64 * 7.0) % 20.0;
    let y_km = (client_idx as f64 * 3.0) % 19.0;
    for fetch_idx in 0..=fetches {
        let t = Instant::now();
        match client.fetch(CHANNEL, x_km, y_km, -1.0) {
            Ok((model, report)) => {
                let ns = t.elapsed().as_nanos() as u64;
                if model.locality_count() == 0 {
                    errors.fetch_add(1, Ordering::Relaxed);
                }
                stats.fetches.push((ns, report.response_bytes, report.sent, fetch_idx == 0));
            }
            Err(e) => {
                if is_timeout(&e) {
                    timeouts.fetch_add(1, Ordering::Relaxed);
                }
                errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    if probe_malformed(addr) != 0 {
        errors.fetch_add(1, Ordering::Relaxed);
    }
    stats.obs = client.obs_snapshot();
    stats
}

/// A/B overhead measurement: one client, alternating recording-off /
/// recording-on blocks of delta fetches against the already-warm server,
/// pooled per mode. Same process, same connection, so the only difference
/// between the pools is whether `waldo_obs` is recording.
fn measure_obs_overhead(
    addr: std::net::SocketAddr,
    fetches_per_block: usize,
    blocks: usize,
) -> serde_json::Value {
    let mut client = ModelClient::new(addr, Duration::from_secs(10));
    client.ping().expect("overhead probe connects");
    // Warm the cache (and the connection) so every measured fetch is a
    // nothing-changed delta — the cheapest, most overhead-sensitive path.
    client.fetch(CHANNEL, 10.0, 10.0, -1.0).expect("warmup fetch");
    let mut run_block = |on: bool, pool: &mut Vec<u64>| {
        waldo_obs::set_enabled(on);
        for _ in 0..fetches_per_block {
            let t = Instant::now();
            client.fetch(CHANNEL, 10.0, 10.0, -1.0).expect("overhead fetch");
            pool.push(t.elapsed().as_nanos() as u64);
        }
    };
    let mut off = Vec::with_capacity(fetches_per_block * blocks);
    let mut on = Vec::with_capacity(fetches_per_block * blocks);
    // Throwaway block first so both pools see an equally warm process.
    run_block(false, &mut Vec::new());
    for _ in 0..blocks {
        run_block(false, &mut off);
        run_block(true, &mut on);
    }
    waldo_obs::set_enabled(true);
    off.sort_unstable();
    on.sort_unstable();
    let p50_off = percentile(&off, 0.50);
    let p50_on = percentile(&on, 0.50);
    let overhead =
        if p50_off > 0 { (p50_on as f64 - p50_off as f64) / p50_off as f64 } else { 0.0 };
    eprintln!(
        "obs overhead: p50 off {:.1}us on {:.1}us ({:+.2}%)",
        p50_off as f64 / 1e3,
        p50_on as f64 / 1e3,
        overhead * 100.0
    );
    json!({
        "fetches_per_mode": off.len(),
        "fetch_p50_off_ns": p50_off,
        "fetch_p50_on_ns": p50_on,
        "fetch_p99_off_ns": percentile(&off, 0.99),
        "fetch_p99_on_ns": percentile(&on, 0.99),
        "overhead_fraction": overhead,
    })
}

/// Folds a histogram into the quantile summary the report carries.
fn endpoint_json(hist: &waldo_obs::Histogram) -> serde_json::Value {
    json!({
        "count": hist.count(),
        "p50_ns": hist.quantile(0.50),
        "p90_ns": hist.quantile(0.90),
        "p99_ns": hist.quantile(0.99),
        "max_ns": hist.max(),
        "mean_ns": hist.mean(),
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let obs_overhead = args.iter().any(|a| a == "--obs-overhead");
    let flag = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
    };
    let clients: usize =
        flag("--clients").map_or(16, |v| v.parse().expect("--clients takes a number"));
    let fetches: usize = flag("--fetches")
        .map_or(if quick { 8 } else { 40 }, |v| v.parse().expect("--fetches takes a number"));
    let connections: usize = flag("--connections").map_or(if quick { 256 } else { 1000 }, |v| {
        v.parse().expect("--connections takes a number")
    });
    let duration_s: f64 = flag("--duration")
        .map_or(if quick { 1.0 } else { 2.0 }, |v| v.parse().expect("--duration takes seconds"));
    let out = flag("--out").unwrap_or("BENCH_serve.json").to_string();
    let ingest_out = flag("--ingest-out").unwrap_or("BENCH_ingest.json").to_string();
    let ingest_dir = flag("--ingest-dir").unwrap_or("target/serve_load_ingest").to_string();
    let trace_path = flag("--trace").map(str::to_string);
    let train_n = if quick { 400 } else { 1200 };
    let localities = 6;
    let upload_batches = fetches.max(4);

    if let Some(path) = &trace_path {
        if waldo_obs::compiled() {
            let file = std::fs::File::create(path).expect("create trace file");
            waldo_obs::set_sink(Some(Box::new(std::io::BufWriter::new(file))));
            eprintln!("tracing to {path}");
        } else {
            eprintln!("warning: --trace ignored (build with --features obs)");
        }
    }

    eprintln!("training models ({train_n} readings, {localities} localities)...");
    let constructor = ModelConstructor::new(
        WaldoConfig::default().classifier(ClassifierKind::Svm).localities(localities),
    );
    let base = dataset(train_n, false);
    let model_a = constructor.fit(&base).expect("synthetic data trains");
    let model_b = train(train_n, true, localities);
    let full_model_bytes = model_a.to_wire().len();

    let catalog = Arc::new(RwLock::new(ModelCatalog::new()));
    catalog.write().expect("catalog lock").publish(CHANNEL, &model_a);
    // A fresh WAL/segment directory per run: the ingest numbers must
    // measure this run's uploads, not a previous run's recovery.
    let _ = std::fs::remove_dir_all(&ingest_dir);
    let engine = RefitEngine::new(constructor, Labeler::new(), base, model_a.clone());
    let plane = IngestPlane::open(&ingest_dir, Arc::clone(&catalog), CHANNEL, engine)
        .expect("ingest plane opens");
    let default_config = ServeConfig::default();
    let mut server = serve_with_ingest(
        "127.0.0.1:0",
        Arc::clone(&catalog),
        ServeConfig {
            read_timeout: Duration::from_secs(10),
            // Room for the throughput fleet on top of the validation
            // clients and probe/stats connections.
            max_connections: default_config.max_connections.max(connections + clients + 64),
            ..default_config
        },
        Some(Arc::clone(&plane)),
    )
    .expect("ephemeral bind succeeds");
    let addr = server.addr();
    eprintln!("serving on {addr}; {clients} clients x {} fetches", fetches + 1);

    waldo_prof::reset();
    waldo_obs::reset_histograms();
    let errors = AtomicUsize::new(0);
    let timeouts = AtomicUsize::new(0);
    let errors_ref = &errors;
    let timeouts_ref = &timeouts;
    let t0 = Instant::now();
    let all_stats: Vec<ClientStats> = std::thread::scope(|scope| {
        let republisher = scope.spawn(|| {
            // Mid-run republishes: first a partial change (some localities
            // differ), then a byte-identical publish (pure epoch bump — a
            // delta fetch after it transfers zero payloads).
            std::thread::sleep(Duration::from_millis(if quick { 60 } else { 250 }));
            catalog.write().expect("catalog lock").publish(CHANNEL, &model_b);
            std::thread::sleep(Duration::from_millis(if quick { 60 } else { 250 }));
            catalog.write().expect("catalog lock").publish(CHANNEL, &model_b);
        });
        let handles: Vec<_> = (0..clients)
            .map(|i| scope.spawn(move || run_client(addr, fetches, i, errors_ref, timeouts_ref)))
            .collect();
        let stats = handles.into_iter().map(|h| h.join().expect("client thread")).collect();
        republisher.join().expect("republisher thread");
        stats
    });
    let wall_s = t0.elapsed().as_secs_f64();

    // Throughput phase: a pipelined raw-socket fleet at `connections`
    // keep-alive connections, run against the now-stable epoch so the
    // steady state is the pre-encoded `Unchanged` cache tail.
    eprintln!("load phase: {connections} connections for {duration_s:.1}s...");
    let load_config = LoadConfig {
        connections,
        threads: 2,
        depth: 4,
        duration: Duration::from_secs_f64(duration_s),
        channel: CHANNEL,
    };
    let load = loadgen::run(addr, load_config);
    let established = load.connect_ns.len();
    let load_fetches_per_s = load.fetches as f64 / duration_s;
    let mut connect_ns = load.connect_ns.clone();
    connect_ns.sort_unstable();
    let mut load_latency_ns = load.latency_ns.clone();
    load_latency_ns.sort_unstable();
    eprintln!(
        "load phase: {} fetches in {duration_s:.1}s ({load_fetches_per_s:.0}/s) over \
         {established} connections ({} failed), {} errors, connect p99 {:.1}us",
        load.fetches,
        load.connect_failures,
        load.errors,
        percentile(&connect_ns, 0.99) as f64 / 1e3,
    );

    // Ingest phase: the fleet turns around and uploads reading batches
    // through the durable WAL, each client also re-sending its first
    // batch to prove the idempotent duplicate path; then one incremental
    // refit republishes into the catalog and a delta fetch must observe
    // the bumped epoch.
    eprintln!("ingest phase: {clients} uploaders x {upload_batches} batches...");
    let epoch_before =
        catalog.read().expect("catalog lock").channel(CHANNEL).map_or(0, |c| c.epoch);
    let upload_errors = AtomicUsize::new(0);
    let upload_errors_ref = &upload_errors;
    let t_up = Instant::now();
    let upload_stats: Vec<(Vec<u64>, usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                scope.spawn(move || {
                    let mut client = ModelClient::new(addr, Duration::from_secs(10));
                    let mut lat = Vec::with_capacity(upload_batches + 1);
                    let (mut acked, mut duplicates) = (0usize, 0usize);
                    for k in 0..upload_batches {
                        let batch = upload_batch(i, k);
                        let t = Instant::now();
                        match client.upload(&batch) {
                            Ok(report) => {
                                lat.push(t.elapsed().as_nanos() as u64);
                                if report.duplicate {
                                    duplicates += 1;
                                } else {
                                    acked += 1;
                                }
                            }
                            Err(_) => {
                                upload_errors_ref.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    // Idempotency probe: the first batch again, verbatim.
                    // The WAL must ack it as a duplicate, not re-ingest.
                    match client.upload(&upload_batch(i, 0)) {
                        Ok(report) if report.duplicate => duplicates += 1,
                        _ => {
                            upload_errors_ref.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    (lat, acked, duplicates)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("uploader thread")).collect()
    });
    let upload_wall_s = t_up.elapsed().as_secs_f64();
    let mut upload_ns: Vec<u64> = upload_stats.iter().flat_map(|s| s.0.iter().copied()).collect();
    upload_ns.sort_unstable();
    let uploads_acked: usize = upload_stats.iter().map(|s| s.1).sum();
    let duplicate_acks: usize = upload_stats.iter().map(|s| s.2).sum();
    let upload_errors = upload_errors.load(Ordering::Relaxed);
    let uploads_per_s = uploads_acked as f64 / upload_wall_s.max(1e-9);

    let t_refit = Instant::now();
    let refit = plane
        .run_refit_now()
        .expect("refit succeeds")
        .expect("fresh segments must change the model");
    let refit_ns = t_refit.elapsed().as_nanos() as u64;
    let epoch_after = catalog.read().expect("catalog lock").channel(CHANNEL).map_or(0, |c| c.epoch);
    let delta_observed_epoch = {
        let mut probe = ModelClient::new(addr, Duration::from_secs(10));
        let (_, report) = probe.fetch(CHANNEL, 10.0, 10.0, -1.0).expect("post-refit fetch");
        report.epoch
    };
    let ingest_snap = plane.snapshot();
    let duplicates_materialized =
        ingest_snap.stored_readings.saturating_sub((uploads_acked * READINGS_PER_BATCH) as u64);
    eprintln!(
        "ingest: {uploads_acked} uploads acked ({uploads_per_s:.0}/s), \
         {duplicate_acks} duplicate acks, {upload_errors} errors, \
         p50 {:.1}us; refit {:.1}ms retrained {} localities over {} rows, \
         epoch {epoch_before} -> {epoch_after} (delta fetch observed {delta_observed_epoch})",
        percentile(&upload_ns, 0.50) as f64 / 1e3,
        refit_ns as f64 / 1e6,
        refit.changed_localities.len(),
        refit.total_rows,
    );

    // Read the server's live stats over the wire (exercising the `Stats`
    // opcode end-to-end) before anything resets or adds samples.
    let server_stats = {
        let mut probe = ModelClient::new(addr, Duration::from_secs(10));
        probe.stats().expect("stats query succeeds")
    };
    let cache_lookups = server_stats.cache_hits + server_stats.cache_misses;
    let cache_hit_rate =
        if cache_lookups > 0 { server_stats.cache_hits as f64 / cache_lookups as f64 } else { 0.0 };

    let overhead = if obs_overhead {
        if !waldo_obs::compiled() {
            eprintln!("warning: --obs-overhead needs --features obs; skipping");
            None
        } else {
            Some(measure_obs_overhead(addr, fetches.max(8), 4))
        }
    } else {
        None
    };

    server.shutdown();

    let protocol_errors = errors.load(Ordering::Relaxed);
    let timeout_errors = timeouts.load(Ordering::Relaxed);
    let all: Vec<&(u64, usize, usize, bool)> =
        all_stats.iter().flat_map(|s| s.fetches.iter()).collect();
    let mut latencies: Vec<u64> = all.iter().map(|f| f.0).collect();
    latencies.sort_unstable();
    let full: Vec<&&(u64, usize, usize, bool)> = all.iter().filter(|f| f.3).collect();
    let delta: Vec<&&(u64, usize, usize, bool)> = all.iter().filter(|f| !f.3).collect();
    let mean_bytes = |xs: &[&&(u64, usize, usize, bool)]| {
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().map(|f| f.1 as f64).sum::<f64>() / xs.len() as f64
        }
    };
    let full_bytes = mean_bytes(&full);
    let delta_bytes = mean_bytes(&delta);
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let validation_fetches_per_s = all.len() as f64 / wall_s;
    let delta_saved = if full_bytes > 0.0 { 1.0 - delta_bytes / full_bytes } else { 0.0 };

    let mut prof = serde_json::Map::new();
    for (name, stat) in waldo_prof::snapshot() {
        if name.starts_with("serve") {
            prof.insert(
                name,
                json!({ "seconds": stat.seconds(), "calls": stat.calls, "count": stat.count }),
            );
        }
    }

    let mut client_obs = ClientObsSnapshot::default();
    for s in &all_stats {
        client_obs.attempts_total += s.obs.attempts_total;
        client_obs.retries_total += s.obs.retries_total;
        client_obs.reconnects_total += s.obs.reconnects_total;
        client_obs.breaker_opens += s.obs.breaker_opens;
        client_obs.half_open_probes += s.obs.half_open_probes;
    }
    let mut endpoints = serde_json::Map::new();
    for ep in &server_stats.endpoints {
        endpoints.insert(ep.name.clone(), endpoint_json(&ep.hist));
    }
    let server_obs = json!({
        "accepted_total": server_stats.accepted_total,
        "busy_rejections": server_stats.busy_rejections,
        "requests_total": server_stats.requests_total,
        "errors_total": server_stats.errors_total,
        "cache_hits": server_stats.cache_hits,
        "cache_misses": server_stats.cache_misses,
        "reactors": server_stats.reactors,
        "uploads_total": server_stats.uploads_total,
        "upload_readings": server_stats.upload_readings,
        "upload_duplicates": server_stats.upload_duplicates,
        "refits_total": server_stats.refits_total,
        "endpoints": serde_json::Value::Object(endpoints),
    });
    let client_obs = json!({
        "attempts_total": client_obs.attempts_total,
        "retries_total": client_obs.retries_total,
        "reconnects_total": client_obs.reconnects_total,
        "breaker_opens": client_obs.breaker_opens,
        "half_open_probes": client_obs.half_open_probes,
    });
    let obs = json!({ "server": server_obs, "client": client_obs });

    let mut report = json!({
        "clients": clients,
        "fetches_total": all.len(),
        "full_model_bytes": full_model_bytes,
        "fetch_p50_ns": p50,
        "fetch_p99_ns": p99,
        "fetches_per_s": load_fetches_per_s,
        "validation_fetches_per_s": validation_fetches_per_s,
        "connections": established,
        "connections_requested": connections,
        "connect_failures": load.connect_failures,
        "connect_p50_ns": percentile(&connect_ns, 0.50),
        "connect_p99_ns": percentile(&connect_ns, 0.99),
        "load_duration_seconds": duration_s,
        "load_fetches_total": load.fetches,
        "load_fetches_late": load.late,
        "load_errors": load.errors,
        "load_fetch_p50_ns": percentile(&load_latency_ns, 0.50),
        "load_fetch_p99_ns": percentile(&load_latency_ns, 0.99),
        "cache_hits": server_stats.cache_hits,
        "cache_misses": server_stats.cache_misses,
        "cache_hit_rate": cache_hit_rate,
        "reactors": server_stats.reactors,
        "full_fetch_bytes_mean": full_bytes,
        "delta_fetch_bytes_mean": delta_bytes,
        "delta_bytes_saved_fraction": delta_saved,
        "protocol_errors": protocol_errors,
        "timeout_errors": timeout_errors,
        "wall_seconds": wall_s,
        "prof_enabled": waldo_prof::enabled(),
        "prof": serde_json::Value::Object(prof),
        "obs_enabled": waldo_obs::enabled(),
        "obs": obs,
    });
    if let Some(overhead) = overhead {
        if let serde::Value::Object(map) = &mut report {
            map.insert("obs_overhead", overhead);
        }
    }
    eprintln!(
        "validation: {} fetches in {wall_s:.2}s ({validation_fetches_per_s:.0}/s), \
         p50 {:.2}ms p99 {:.2}ms, full {full_bytes:.0}B delta {delta_bytes:.0}B ({:.1}% saved), \
         {protocol_errors} errors ({timeout_errors} timeouts)",
        all.len(),
        p50 as f64 / 1e6,
        p99 as f64 / 1e6,
        delta_saved * 100.0
    );
    eprintln!(
        "throughput: {load_fetches_per_s:.0} fetches/s at {established} connections; \
         cache {:.1}% hit rate over {cache_lookups} lookups; {} reactors",
        cache_hit_rate * 100.0,
        server_stats.reactors,
    );
    write_json(&out, &report);

    let ingest_report = json!({
        "clients": clients,
        "readings_per_batch": READINGS_PER_BATCH,
        "uploads_acked": uploads_acked,
        "upload_duplicate_acks": duplicate_acks,
        "upload_errors": upload_errors,
        "uploads_per_s": uploads_per_s,
        "upload_p50_ns": percentile(&upload_ns, 0.50),
        "upload_p99_ns": percentile(&upload_ns, 0.99),
        "upload_wall_seconds": upload_wall_s,
        "refit_ns": refit_ns,
        "refit_changed_localities": refit.changed_localities.len(),
        "refit_uploaded_readings": refit.uploaded_readings,
        "refit_total_rows": refit.total_rows,
        "epoch_before": epoch_before,
        "epoch_after": epoch_after,
        "delta_observed_epoch": delta_observed_epoch,
        "stored_readings": ingest_snap.stored_readings,
        "duplicates_materialized": duplicates_materialized,
        "wal_batches": ingest_snap.wal_batches,
        "checkpoint_seq": ingest_snap.checkpoint_seq,
        "prof_enabled": waldo_prof::enabled(),
    });
    write_json(&ingest_out, &ingest_report);

    if trace_path.is_some() && waldo_obs::compiled() {
        waldo_obs::flush_sink();
        waldo_obs::set_sink(None);
    }

    assert_eq!(protocol_errors, 0, "load run must complete with zero protocol errors");
    assert_eq!(load.connect_failures, 0, "every load connection must establish");
    assert!(
        load.errors <= (load.fetches / 100).max(2),
        "load phase error rate is out of bounds: {} errors / {} fetches",
        load.errors,
        load.fetches,
    );
    assert_eq!(upload_errors, 0, "ingest phase must complete with zero upload errors");
    assert_eq!(
        uploads_acked,
        clients * upload_batches,
        "every minted batch must ack exactly once as fresh"
    );
    assert!(duplicate_acks >= clients, "every client's idempotency probe must ack as a duplicate");
    assert_eq!(duplicates_materialized, 0, "duplicate acks must not materialize readings");
    assert!(epoch_after > epoch_before, "the refit must republish and bump the epoch");
    assert_eq!(delta_observed_epoch, epoch_after, "delta fetch must observe the refit epoch");
}
