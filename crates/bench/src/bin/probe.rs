//! Internal tuning probe: prints the headline shapes so world/sensor
//! parameters can be validated before the full harness is wired up.
//!
//! Always starts by timing the pipeline substrate — serial vs parallel
//! `Context::build`, planned vs ad-hoc FFT, error-cached vs naive SMO,
//! fused-batch vs per-frame synthesis and feature extraction, and the
//! online detector ingest rate — and writing the numbers to
//! `BENCH_pipeline.json` (override with `--out <path>`). When built with
//! the `prof` feature the report also carries the per-stage wall-clock
//! breakdown (synth / fft_features / label / kmeans / svm_fit / cv / …)
//! recorded by `waldo-prof` across the serial build plus one model fit
//! and one cross-validation (the serial leg so stage seconds are not
//! inflated by oversubscribed workers on small hosts). Pass `--quick` to time at [`Scale::Quick`],
//! and `--bench-only` to stop after the JSON is written (skipping the slow
//! tuning sections below).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Map, Value};
use serde_json::json;
use waldo::baseline::{SpectrumDatabase, VScope};
use waldo::eval::{cross_validate, evaluate_assessor};
use waldo::{ClassifierKind, WaldoConfig};
use waldo_bench::{Context, Scale};
use waldo_iq::{fft, Complex, FeatureSet, FrameSynthesizer};
use waldo_ml::svm::{Kernel, SvmTrainer};
use waldo_ml::Dataset;
use waldo_rf::TvChannel;
use waldo_sensors::SensorKind;

/// Times planned (cached [`fft::FftPlan`]) vs per-call (plan rebuilt every
/// transform) 256-point FFTs. Returns mean nanoseconds per call.
fn bench_fft_256() -> (f64, f64) {
    const N: usize = 256;
    const ITERS: u32 = 10_000;
    const PASSES: usize = 5;
    // Deterministic non-trivial input; no RNG needed.
    let samples: Vec<Complex> =
        (0..N).map(|i| Complex::cis(0.37 * i as f64).scale(1.0 / (1.0 + i as f64))).collect();
    let mut buf = samples.clone();
    // Warm the thread-local plan cache before timing the planned path.
    fft::fft(&mut buf).expect("256 is a power of two");

    // Best-of-PASSES: the minimum per-call time is the least polluted by
    // scheduler noise on a loaded host.
    let mut planned_ns = f64::INFINITY;
    let mut unplanned_ns = f64::INFINITY;
    for _ in 0..PASSES {
        let t = Instant::now();
        for _ in 0..ITERS {
            buf.copy_from_slice(&samples);
            fft::fft(std::hint::black_box(&mut buf)).expect("256 is a power of two");
        }
        planned_ns = planned_ns.min(t.elapsed().as_nanos() as f64 / f64::from(ITERS));

        let t = Instant::now();
        for _ in 0..ITERS {
            buf.copy_from_slice(&samples);
            fft::fft_unplanned(std::hint::black_box(&mut buf)).expect("256 is a power of two");
        }
        unplanned_ns = unplanned_ns.min(t.elapsed().as_nanos() as f64 / f64::from(ITERS));
    }
    (planned_ns, unplanned_ns)
}

/// Times error-cached SMO ([`SvmTrainer::fit`]) vs the retained naive
/// recompute reference on a 300×4 RBF problem (the `svm_fit_300x4` bench
/// shape). Returns best-of-passes nanoseconds per fit.
fn bench_svm_fit() -> (f64, f64) {
    const PASSES: usize = 3;
    let mut rng = StdRng::seed_from_u64(7);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for _ in 0..300 {
        let row: Vec<f64> = (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect();
        labels.push(row.iter().sum::<f64>() > 0.1);
        rows.push(row);
    }
    let ds = Dataset::from_rows(rows, labels).expect("non-empty");
    let trainer = SvmTrainer::new().kernel(Kernel::Rbf { gamma: 0.5 }).seed(1);

    let mut cached_ns = f64::INFINITY;
    let mut naive_ns = f64::INFINITY;
    for _ in 0..PASSES {
        let t = Instant::now();
        std::hint::black_box(trainer.fit(std::hint::black_box(&ds)).expect("two classes"));
        cached_ns = cached_ns.min(t.elapsed().as_nanos() as f64);

        let t = Instant::now();
        std::hint::black_box(
            trainer.fit_naive_reference(std::hint::black_box(&ds)).expect("two classes"),
        );
        naive_ns = naive_ns.min(t.elapsed().as_nanos() as f64);
    }
    (cached_ns, naive_ns)
}

/// Times the fused SoA batch path ([`FrameSynthesizer::synthesize_batch`]
/// amortized over 24-frame readings) against the per-frame Box–Muller
/// reference and the historical per-draw path, all on occupied 256-sample
/// frames. Returns best-of-passes nanoseconds per frame
/// `(fused, reference, unbatched)`.
fn bench_frame_synth() -> (f64, f64, f64) {
    const READINGS: u32 = 100;
    const FRAMES_PER_READING: usize = 24;
    const PASSES: usize = 3;
    let synth = FrameSynthesizer::new(256).pilot_dbfs(-40.0).data_dbfs(-45.0).noise_dbfs(-70.0);
    let frames = f64::from(READINGS) * FRAMES_PER_READING as f64;

    let mut fused_ns = f64::INFINITY;
    let mut reference_ns = f64::INFINITY;
    let mut unbatched_ns = f64::INFINITY;
    for pass in 0..PASSES {
        let mut rng = StdRng::seed_from_u64(pass as u64);
        let t = Instant::now();
        for _ in 0..READINGS {
            std::hint::black_box(synth.synthesize_batch(FRAMES_PER_READING, &mut rng));
        }
        fused_ns = fused_ns.min(t.elapsed().as_nanos() as f64 / frames);

        let mut rng = StdRng::seed_from_u64(pass as u64);
        let t = Instant::now();
        for _ in 0..READINGS * FRAMES_PER_READING as u32 {
            std::hint::black_box(synth.synthesize_reference(&mut rng));
        }
        reference_ns = reference_ns.min(t.elapsed().as_nanos() as f64 / frames);

        let mut rng = StdRng::seed_from_u64(pass as u64);
        let t = Instant::now();
        for _ in 0..READINGS * FRAMES_PER_READING as u32 {
            std::hint::black_box(synth.synthesize_unbatched(&mut rng));
        }
        unbatched_ns = unbatched_ns.min(t.elapsed().as_nanos() as f64 / frames);
    }
    (fused_ns, reference_ns, unbatched_ns)
}

/// Times fused SoA feature extraction vs the retained per-frame reference
/// on one 24-frame reading. Returns best-of-passes nanoseconds per reading
/// `(fused, reference)`.
fn bench_extract() -> (f64, f64) {
    use waldo_iq::{window::Window, FeatureVector};
    const ITERS: u32 = 2_000;
    const PASSES: usize = 3;
    let synth = FrameSynthesizer::new(256).pilot_dbfs(-40.0).data_dbfs(-45.0).noise_dbfs(-70.0);
    let batch = synth.synthesize_batch(24, &mut StdRng::seed_from_u64(5));
    let frames = batch.to_frames();

    let mut fused_ns = f64::INFINITY;
    let mut reference_ns = f64::INFINITY;
    for _ in 0..PASSES {
        let t = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(FeatureVector::extract_from_batch(
                std::hint::black_box(&batch),
                Window::Hann,
            ));
        }
        fused_ns = fused_ns.min(t.elapsed().as_nanos() as f64 / f64::from(ITERS));

        let t = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(FeatureVector::extract_from_frames_reference(
                std::hint::black_box(&frames),
                Window::Hann,
            ));
        }
        reference_ns = reference_ns.min(t.elapsed().as_nanos() as f64 / f64::from(ITERS));
    }
    (fused_ns, reference_ns)
}

/// One synthetic calibrated observation at `rss` dBm (mirrors the
/// criterion `kernels` helper).
fn observation(rss: f64) -> waldo_sensors::Observation {
    waldo_sensors::Observation {
        rss_dbm: rss,
        features: waldo_iq::FeatureVector {
            rss_db: rss,
            cft_db: rss - 11.3,
            aft_db: rss - 12.5,
            quadrature_imbalance_db: 0.0,
            iq_kurtosis: 0.0,
            edge_bin_db: -110.0,
        },
        raw_pilot_db: rss - 11.3,
    }
}

/// Times the steady-state detector ingest loop — model predict + CI update
/// per reading, restarting the episode on convergence — against a Naive
/// Bayes model over a synthetic 600-reading channel. Returns best-of-passes
/// readings pushed per second.
fn bench_detector_push() -> f64 {
    use waldo::{DetectorOutcome, ModelConstructor, WhiteSpaceDetector};
    use waldo_data::{ChannelDataset, Measurement, Safety};
    use waldo_geo::Point;
    const READINGS: u32 = 20_000;
    const PASSES: usize = 3;

    let n = 600;
    let mut measurements = Vec::new();
    let mut labels = Vec::new();
    for i in 0..n {
        let x = (i as f64 / n as f64) * 30_000.0;
        let not_safe = x > 15_000.0;
        let rss = if not_safe { -70.0 } else { -92.0 } + ((i % 7) as f64 - 3.0) * 0.4;
        measurements.push(Measurement {
            location: Point::new(x, ((i * 13) % 20) as f64 * 1_000.0),
            odometer_m: i as f64,
            observation: observation(rss),
            true_rss_dbm: rss,
        });
        labels.push(Safety::from_not_safe(not_safe));
    }
    let ds =
        ChannelDataset::new(TvChannel::new(30).unwrap(), SensorKind::RtlSdr, measurements, labels);
    let cfg = WaldoConfig::default()
        .classifier(ClassifierKind::NaiveBayes)
        .features(FeatureSet::first_n(2));
    let model = ModelConstructor::new(cfg).fit(&ds).expect("synthetic channel trains");

    let mut best_ns = f64::INFINITY;
    for pass in 0..PASSES {
        let mut rng = StdRng::seed_from_u64(pass as u64);
        let mut det = WhiteSpaceDetector::new(model.clone(), 0.5);
        let loc = Point::new(25_000.0, 10_000.0);
        let t = Instant::now();
        for _ in 0..READINGS {
            let rss = -70.0 + 0.4 * waldo_iq::synth::standard_normal(&mut rng);
            if let DetectorOutcome::Converged { .. } =
                std::hint::black_box(det.push(loc, &observation(rss)))
            {
                det = WhiteSpaceDetector::new(model.clone(), 0.5);
            }
        }
        best_ns = best_ns.min(t.elapsed().as_nanos() as f64 / f64::from(READINGS));
    }
    1e9 / best_ns
}

/// Total readings held by a campaign, summed across every (sensor,
/// channel) series.
fn total_readings(ctx: &Context) -> usize {
    let campaign = ctx.campaign();
    campaign
        .sensors()
        .iter()
        .flat_map(|&s| campaign.channels().into_iter().map(move |c| (s, c)))
        .filter_map(|(s, c)| campaign.dataset(s, c))
        .map(|ds| ds.len())
        .sum()
}

/// Builds the context serially and in parallel, times both, runs one model
/// fit + one cross-validation so the training stages appear in the
/// profile, and writes the report to `out`. Returns the parallel-built
/// context for the tuning sections.
fn bench_pipeline(scale: Scale, out: &str) -> Context {
    let (planned_ns, unplanned_ns) = bench_fft_256();
    eprintln!(
        "fft_256: planned {planned_ns:.0} ns, per-call plan {unplanned_ns:.0} ns ({:.2}x)",
        unplanned_ns / planned_ns
    );
    let (svm_cached_ns, svm_naive_ns) = bench_svm_fit();
    eprintln!(
        "svm_fit_300x4: cached {:.2} ms, naive {:.2} ms ({:.2}x)",
        svm_cached_ns / 1e6,
        svm_naive_ns / 1e6,
        svm_naive_ns / svm_cached_ns
    );
    let (synth_fused_ns, synth_reference_ns, synth_unbatched_ns) = bench_frame_synth();
    eprintln!(
        "frame_synth_256: fused {synth_fused_ns:.0} ns, reference {synth_reference_ns:.0} ns ({:.2}x), unbatched {synth_unbatched_ns:.0} ns ({:.2}x)",
        synth_reference_ns / synth_fused_ns,
        synth_unbatched_ns / synth_fused_ns
    );
    let (extract_fused_ns, extract_reference_ns) = bench_extract();
    eprintln!(
        "extract_24_frame: fused {:.1} µs, reference {:.1} µs ({:.2}x)",
        extract_fused_ns / 1e3,
        extract_reference_ns / 1e3,
        extract_reference_ns / extract_fused_ns
    );
    let detector_push_per_s = bench_detector_push();
    eprintln!("detector_push: {detector_push_per_s:.0} readings/s");

    // The parallel leg is pinned to at least two workers: on a single-core
    // host (or under `WALDO_WORKERS=1`) the ambient count is 1, where
    // `par_map` short-circuits to the serial loop — timing that would
    // compare two serial runs and report noise as a "speedup" (the
    // workers:1, 0.95x regression this replaced).
    let ambient_workers = waldo_par::available_workers();
    let parallel_workers = ambient_workers.max(2);
    let t = Instant::now();
    let ctx = waldo_par::with_workers(parallel_workers, || Context::build(scale));
    let parallel_s = t.elapsed().as_secs_f64();
    let readings = total_readings(&ctx);
    eprintln!("context (parallel, {parallel_workers} workers, ambient {ambient_workers}) built");

    // Profile window: the serial build plus one SVM model fit and one
    // 5-fold cross-validation, so every stage of the ISSUE's breakdown
    // (synth / fft_features / label / kmeans / svm_fit / cv) records.
    // Profiling the serial leg keeps the per-stage seconds comparable
    // across machines: scoped timers measure per-thread wall clock, which
    // oversubscribed workers on a small host would inflate.
    waldo_prof::reset();
    let t = Instant::now();
    let serial = waldo_par::with_workers(1, || Context::build(scale));
    let serial_s = t.elapsed().as_secs_f64();
    drop(serial);
    eprintln!(
        "context (serial, 1 worker) built in {serial_s:.1}s; parallel {parallel_s:.1}s ({:.2}x at {parallel_workers} workers)",
        serial_s / parallel_s
    );

    let ds = ctx
        .campaign()
        .dataset(SensorKind::RtlSdr, TvChannel::EVALUATION[0])
        .expect("evaluation channel is always collected");
    let cfg = WaldoConfig::default().features(FeatureSet::first_n(2)).seed(1);
    let t = Instant::now();
    let model = waldo::ModelConstructor::new(cfg.clone()).fit(ds).expect("campaign data trains");
    let fit_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let cm = cross_validate(ds, &cfg, 5, 1);
    let cv_s = t.elapsed().as_secs_f64();
    eprintln!(
        "stage workload: fit {fit_s:.2}s ({} localities), cv {cv_s:.2}s (err {:.4})",
        model.locality_count(),
        cm.error_rate()
    );

    let mut stages = Map::new();
    for (name, stat) in waldo_prof::snapshot() {
        stages.insert(
            name,
            json!({
                "seconds": stat.seconds(),
                "calls": stat.calls,
            }),
        );
    }
    if waldo_prof::enabled() {
        let snap = waldo_prof::snapshot();
        eprintln!("stage attribution (serial build + fit + cv):");
        for (name, stat) in &snap {
            eprintln!("  {name:>14}: {:>9.3}s over {} calls", stat.seconds(), stat.calls);
        }
    }

    let report = json!({
        "scale": format!("{scale:?}"),
        "workers": ambient_workers,
        "prof_enabled": waldo_prof::enabled(),
        "context_build": json!({
            "readings": readings,
            "serial_workers": 1,
            "parallel_workers": parallel_workers,
            "serial_seconds": serial_s,
            "parallel_seconds": parallel_s,
            "speedup": serial_s / parallel_s,
            "serial_readings_per_sec": readings as f64 / serial_s,
            "parallel_readings_per_sec": readings as f64 / parallel_s,
        }),
        "fft_256": json!({
            "planned_ns_per_call": planned_ns,
            "unplanned_ns_per_call": unplanned_ns,
            "speedup": unplanned_ns / planned_ns,
        }),
        "svm_fit": json!({
            "cached_ns_per_fit": svm_cached_ns,
            "naive_ns_per_fit": svm_naive_ns,
            "speedup": svm_naive_ns / svm_cached_ns,
        }),
        "frame_synth": json!({
            "fused_ns_per_frame": synth_fused_ns,
            "reference_ns_per_frame": synth_reference_ns,
            "unbatched_ns_per_frame": synth_unbatched_ns,
            "speedup": synth_reference_ns / synth_fused_ns,
            "speedup_vs_unbatched": synth_unbatched_ns / synth_fused_ns,
        }),
        "extract": json!({
            "fused_ns_per_reading": extract_fused_ns,
            "reference_ns_per_reading": extract_reference_ns,
            "speedup": extract_reference_ns / extract_fused_ns,
        }),
        "detector_push": json!({
            "readings_per_s": detector_push_per_s,
        }),
        "stages": Value::Object(stages),
    });
    waldo_bench::report::write_json(out, &report);
    ctx
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let bench_only = args.iter().any(|a| a == "--bench-only");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_pipeline.json", String::as_str);
    let scale = if quick { Scale::Quick } else { Scale::Full };

    let t0 = std::time::Instant::now();
    let ctx = bench_pipeline(scale, out);
    if bench_only {
        return;
    }

    // --- sec2: sensor labels vs analyzer ground truth ---
    for sensor in [SensorKind::RtlSdr, SensorKind::UsrpB200] {
        let (mut fp, mut fn_, mut np, mut nn) = (0usize, 0usize, 0usize, 0usize);
        for ch in TvChannel::STUDY {
            let truth = ctx.campaign().ground_truth(ch);
            let ds = ctx.campaign().dataset(sensor, ch).unwrap();
            for (t, p) in truth.labels().iter().zip(ds.labels()) {
                match (t.is_not_safe(), p.is_not_safe()) {
                    (true, false) => {
                        fp += 1;
                        np += 1;
                    }
                    (true, true) => {
                        np += 1;
                    }
                    (false, true) => {
                        fn_ += 1;
                        nn += 1;
                    }
                    (false, false) => {
                        nn += 1;
                    }
                }
            }
        }
        eprintln!(
            "sec2 {sensor:?}: misdetect(FN)={:.3} false-alarm(FP)={:.3}",
            fn_ as f64 / nn.max(1) as f64,
            fp as f64 / np.max(1) as f64
        );
    }

    // --- fig4: spectrum DB FN per channel vs analyzer truth ---
    for ch in TvChannel::STUDY {
        let truth = ctx.campaign().ground_truth(ch);
        let txs: Vec<_> =
            ctx.world().field().transmitters().into_iter().filter(|t| t.channel() == ch).collect();
        let db = SpectrumDatabase::new(ch, txs);
        let cm = evaluate_assessor(&db, truth, None);
        eprintln!(
            "fig4 {ch}: FN={:.3} FP={:.3} (truth not-safe frac {:.2})",
            cm.fn_rate(),
            cm.fp_rate(),
            truth.not_safe_fraction()
        );
    }

    // --- fig12-ish: feature sweep, NB + SVM, both sensors, avg 3 channels ---
    for sensor in [SensorKind::RtlSdr, SensorKind::UsrpB200] {
        for kind in [ClassifierKind::NaiveBayes, ClassifierKind::Svm] {
            for nf in 0usize..=3 {
                let (mut fp, mut fnr, mut err) = (0.0, 0.0, 0.0);
                for chn in [15u8, 17, 47] {
                    let ch = TvChannel::new(chn).unwrap();
                    let ds = ctx.campaign().dataset(sensor, ch).unwrap();
                    let cfg = WaldoConfig::default()
                        .classifier(kind)
                        .features(FeatureSet::first_n(nf))
                        .localities(1)
                        .seed(1);
                    let cm = cross_validate(ds, &cfg, 10, 1);
                    fp += cm.fp_rate() / 3.0;
                    fnr += cm.fn_rate() / 3.0;
                    err += cm.error_rate() / 3.0;
                }
                eprintln!(
                    "fig12 {sensor:?} {kind} f={} err={err:.4} FP={fp:.4} FN={fnr:.4}",
                    nf + 1
                );
            }
        }
    }

    // --- tab1: V-Scope vs Waldo(SVM, 2 feats, k=1), averaged over eval channels ---
    let mut vs_fp = 0.0;
    let mut vs_fn = 0.0;
    let mut wd_fp = 0.0;
    let mut wd_fn = 0.0;
    let chans = ctx.evaluation_channels();
    for &ch in &chans {
        let ds = ctx.campaign().dataset(SensorKind::RtlSdr, ch).unwrap();
        let txs: Vec<_> =
            ctx.world().field().transmitters().into_iter().filter(|t| t.channel() == ch).collect();
        let vs = VScope::fit(ds, txs, 5, 1).unwrap();
        let cm = evaluate_assessor(&vs, ds, None);
        vs_fp += cm.fp_rate();
        vs_fn += cm.fn_rate();
        let cfg = WaldoConfig::default().features(FeatureSet::first_n(2)).localities(1).seed(1);
        let cm = cross_validate(ds, &cfg, 10, 1);
        wd_fp += cm.fp_rate();
        wd_fn += cm.fn_rate();
    }
    let n = chans.len() as f64;
    eprintln!(
        "tab1: V-Scope FP={:.4} FN={:.4} | Waldo-RTL FP={:.4} FN={:.4}",
        vs_fp / n,
        vs_fn / n,
        wd_fp / n,
        wd_fn / n
    );
    eprintln!("total {:.1}s", t0.elapsed().as_secs_f64());
}
