//! Internal tuning probe: prints the headline shapes so world/sensor
//! parameters can be validated before the full harness is wired up.

use waldo::baseline::{SpectrumDatabase, VScope};
use waldo::eval::{cross_validate, evaluate_assessor};
use waldo::{ClassifierKind, WaldoConfig};
use waldo_bench::{Context, Scale};
use waldo_iq::FeatureSet;
use waldo_rf::TvChannel;
use waldo_sensors::SensorKind;

fn main() {
    let t0 = std::time::Instant::now();
    let ctx = Context::build(Scale::Full);
    eprintln!("context built in {:.1}s", t0.elapsed().as_secs_f64());

    // --- sec2: sensor labels vs analyzer ground truth ---
    for sensor in [SensorKind::RtlSdr, SensorKind::UsrpB200] {
        let (mut fp, mut fn_, mut np, mut nn) = (0usize, 0usize, 0usize, 0usize);
        for ch in TvChannel::STUDY {
            let truth = ctx.campaign().ground_truth(ch);
            let ds = ctx.campaign().dataset(sensor, ch).unwrap();
            for (t, p) in truth.labels().iter().zip(ds.labels()) {
                match (t.is_not_safe(), p.is_not_safe()) {
                    (true, false) => { fp += 1; np += 1; }
                    (true, true) => { np += 1; }
                    (false, true) => { fn_ += 1; nn += 1; }
                    (false, false) => { nn += 1; }
                }
            }
        }
        eprintln!("sec2 {sensor:?}: misdetect(FN)={:.3} false-alarm(FP)={:.3}",
            fn_ as f64 / nn.max(1) as f64, fp as f64 / np.max(1) as f64);
    }

    // --- fig4: spectrum DB FN per channel vs analyzer truth ---
    for ch in TvChannel::STUDY {
        let truth = ctx.campaign().ground_truth(ch);
        let txs: Vec<_> = ctx.world().field().transmitters().into_iter()
            .filter(|t| t.channel() == ch).collect();
        let db = SpectrumDatabase::new(ch, txs);
        let cm = evaluate_assessor(&db, truth, None);
        eprintln!("fig4 {ch}: FN={:.3} FP={:.3} (truth not-safe frac {:.2})",
            cm.fn_rate(), cm.fp_rate(), truth.not_safe_fraction());
    }

    // --- fig12-ish: feature sweep, NB + SVM, both sensors, avg 3 channels ---
    for sensor in [SensorKind::RtlSdr, SensorKind::UsrpB200] {
        for kind in [ClassifierKind::NaiveBayes, ClassifierKind::Svm] {
            for nf in 0usize..=3 {
                let (mut fp, mut fnr, mut err) = (0.0, 0.0, 0.0);
                for chn in [15u8, 17, 47] {
                    let ch = TvChannel::new(chn).unwrap();
                    let ds = ctx.campaign().dataset(sensor, ch).unwrap();
                    let cfg = WaldoConfig::default().classifier(kind)
                        .features(FeatureSet::first_n(nf)).localities(1).seed(1);
                    let cm = cross_validate(ds, &cfg, 10, 1);
                    fp += cm.fp_rate() / 3.0;
                    fnr += cm.fn_rate() / 3.0;
                    err += cm.error_rate() / 3.0;
                }
                eprintln!("fig12 {sensor:?} {kind} f={} err={err:.4} FP={fp:.4} FN={fnr:.4}",
                    nf + 1);
            }
        }
    }

    // --- tab1: V-Scope vs Waldo(SVM, 2 feats, k=1), averaged over eval channels ---
    let mut vs_fp = 0.0; let mut vs_fn = 0.0;
    let mut wd_fp = 0.0; let mut wd_fn = 0.0;
    let chans = ctx.evaluation_channels();
    for &ch in &chans {
        let ds = ctx.campaign().dataset(SensorKind::RtlSdr, ch).unwrap();
        let txs: Vec<_> = ctx.world().field().transmitters().into_iter()
            .filter(|t| t.channel() == ch).collect();
        let vs = VScope::fit(ds, txs, 5, 1).unwrap();
        let cm = evaluate_assessor(&vs, ds, None);
        vs_fp += cm.fp_rate(); vs_fn += cm.fn_rate();
        let cfg = WaldoConfig::default().features(FeatureSet::first_n(2)).localities(1).seed(1);
        let cm = cross_validate(ds, &cfg, 10, 1);
        wd_fp += cm.fp_rate(); wd_fn += cm.fn_rate();
    }
    let n = chans.len() as f64;
    eprintln!("tab1: V-Scope FP={:.4} FN={:.4} | Waldo-RTL FP={:.4} FN={:.4}",
        vs_fp / n, vs_fn / n, wd_fp / n, wd_fn / n);
    eprintln!("total {:.1}s", t0.elapsed().as_secs_f64());
}
