//! Chaos soak for the model-distribution path: seeded fault injection on
//! every client transport plus sensor-level faults on every detector,
//! driven through a full outage/recovery cycle of the server.
//!
//! The run has five barrier-separated phases shared by all clients:
//!
//! 1. **Healthy** — fetches succeed (modulo injected transport faults) and
//!    detection bouts decide against ground truth.
//! 2. **Outage** — the main thread stops the server; every client backdates
//!    its [`StaleModelGuard`] past the TTL, so *all* decisions during the
//!    outage must degrade to the conservative not-safe answer.
//! 3. **Recovery** — the server restarts on the same address; each client
//!    loops until a fetch succeeds (timing the recovery from the restart
//!    instant), then resumes healthy fetch+detect rounds.
//! 4. **Upload** — every client crowd-sources reading batches from its
//!    site through the same faulty transport into the server's durable
//!    ingestion WAL, retrying under client-minted batch IDs until acked,
//!    then re-sends an acked batch to prove the duplicate path.
//! 5. **Refit** — the main thread kills the server *and* the ingestion
//!    plane mid-stream, appends a torn tail to the WAL, reopens it (replay
//!    must recover every acked batch), runs one incremental refit, and
//!    restarts the server; every client must observe the bumped epoch
//!    through a delta fetch — the crowd-sourcing loop, closed under
//!    fault injection.
//!
//! Every random choice — fault schedules, retry jitter, synthetic readings —
//! derives from `--seed` via [`derive_seed`], so a given seed reproduces
//! the identical fault event sequence across runs and client counts.
//!
//! Emits `BENCH_chaos.json`: fault counts per category, retry/breaker
//! totals, decision tallies (including the outage-phase conservative
//! count), recovery latency percentiles, upload/WAL-recovery/refit
//! tallies, and the panic count. Exits nonzero on any panic, any
//! incorrect "safe" decision, any duplicate-ingested batch, or any
//! client that never observed the refitted model.
//!
//! A [`waldo_bench::fleet::FleetObserver`] rides the whole soak, polling
//! the server's metrics export and streaming a per-tick timeline
//! (default `results/chaos_timeline.jsonl`) for `gate --slo`.
//!
//! Usage: `chaos_soak [--quick] [--seed N] [--clients N] [--out PATH]
//! [--timeline PATH]` (needs the `fault` feature; without it the
//! schedules are no-ops and the report says so).

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex, RwLock};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::json;
use waldo::wire::ReadingBatch;
use waldo::{
    ClassifierKind, DecisionAuditLog, DecisionRecord, DetectorOutcome, ModelConstructor,
    StaleModelGuard, WaldoConfig, WaldoModel, WhiteSpaceDetector,
};
use waldo_bench::fleet::{ExternalCounter, FleetNode, FleetObserver};
use waldo_bench::report::{percentile, write_json};
use waldo_data::{ChannelDataset, Labeler, Measurement, Safety};
use waldo_fault::{
    derive_seed, SensorFault, SensorFaults, SensorPlan, TransportFaults, TransportPlan,
};
use waldo_geo::Point;
use waldo_iq::FeatureVector;
use waldo_rf::TvChannel;
use waldo_sensors::{Observation, ReadingSample, SensorKind};
use waldo_serve::{
    serve_with_ingest, CircuitBreakerPolicy, ClientError, IngestPlane, ModelCatalog, ModelClient,
    RetryPolicy, ServeConfig,
};
use waldo_store::RefitEngine;

const CHANNEL: u8 = 30;
/// Readings per crowd-sourced batch in the upload phase.
const READINGS_PER_BATCH: usize = 12;
/// CI convergence threshold (dB). With ±2 dB uniform reading noise the
/// detector converges in a dozen-odd readings, so bouts stay cheap.
const ALPHA_DB: f64 = 1.2;
/// Forced-decision cap per bout; also bounds bout wall time under drops.
const MAX_READINGS: usize = 120;
/// Uniform reading-noise half width (dB).
const NOISE_HALF_DB: f64 = 2.0;
/// Model TTL for the stale-model guard. Real wall time never approaches
/// it; outage staleness is forced deterministically via `backdate`.
const TTL: Duration = Duration::from_secs(3600);

/// Per-run knob set, scaled by `--quick`.
struct Scale {
    clients: usize,
    /// Healthy-phase fetch rounds (each followed by detection bouts).
    rounds_healthy: usize,
    /// Detection bouts per fetch round.
    bouts_per_round: usize,
    /// Fetch attempts per client during the outage (all must fail).
    outage_fetches: usize,
    /// Detection bouts per client during the outage (all must gate
    /// not-safe).
    outage_bouts: usize,
    /// Post-recovery fetch rounds.
    rounds_recovered: usize,
    /// Crowd-sourced reading batches each client uploads in the upload
    /// phase.
    upload_batches: usize,
}

impl Scale {
    fn new(quick: bool) -> Self {
        if quick {
            Self {
                clients: 4,
                rounds_healthy: 5,
                bouts_per_round: 2,
                outage_fetches: 4,
                outage_bouts: 4,
                rounds_recovered: 4,
                upload_batches: 5,
            }
        } else {
            Self {
                clients: 6,
                rounds_healthy: 12,
                bouts_per_round: 3,
                outage_fetches: 8,
                outage_bouts: 8,
                rounds_recovered: 10,
                upload_batches: 8,
            }
        }
    }
}

/// Synthetic east/west channel, the same shape the serve tests train on:
/// safe west of 15 km, not-safe east of it.
fn dataset(n: usize) -> ChannelDataset {
    let mut measurements = Vec::new();
    let mut labels = Vec::new();
    for i in 0..n {
        let x = (i as f64 / n as f64) * 30_000.0;
        let y = ((i * 7) % 20) as f64 * 1_000.0;
        let not_safe = x > 15_000.0;
        let rss = if not_safe { -70.0 } else { -95.0 } + ((i % 5) as f64 - 2.0);
        measurements.push(Measurement {
            location: Point::new(x, y),
            odometer_m: i as f64 * 100.0,
            observation: observation(rss),
            true_rss_dbm: rss,
        });
        labels.push(Safety::from_not_safe(not_safe));
    }
    ChannelDataset::new(TvChannel::new(30).unwrap(), SensorKind::RtlSdr, measurements, labels)
}

fn observation(rss: f64) -> Observation {
    Observation {
        rss_dbm: rss,
        features: FeatureVector {
            rss_db: rss,
            cft_db: rss - 11.3,
            aft_db: rss - 12.5,
            quadrature_imbalance_db: 0.0,
            iq_kurtosis: 0.0,
            edge_bin_db: -110.0,
        },
        raw_pilot_db: rss - 11.3,
    }
}

fn constructor() -> ModelConstructor {
    ModelConstructor::new(WaldoConfig::default().classifier(ClassifierKind::Svm).localities(4))
}

/// A crowd-sourced batch from `site`, deterministic in `(index, k)` so a
/// re-send is byte-identical and the duplicate probe is honest.
fn reading_batch(index: u64, k: usize, site: &Site) -> ReadingBatch {
    let readings = (0..READINGS_PER_BATCH)
        .map(|i| {
            let dx = ((i * 37 + k * 11) % 40) as f64 * 25.0;
            let dy = ((i * 53 + k * 7) % 40) as f64 * 25.0;
            let rss = site.base_rss + ((i % 5) as f64 - 2.0) * 0.5;
            ReadingSample {
                location: Point::new(site.location.x + dx, site.location.y + dy),
                rss_dbm: rss,
                features: observation(rss).features,
            }
        })
        .collect();
    ReadingBatch { batch_id: index * 100_000 + k as u64 + 1, channel: CHANNEL, readings }
}

/// Live tallies shared between every client thread and the
/// [`FleetObserver`]: the client-side half of the timeline, bumped as
/// traffic happens and sampled into per-tick deltas.
#[derive(Debug, Default)]
struct FleetTallies {
    fetch_ok: Arc<AtomicU64>,
    fetch_err: Arc<AtomicU64>,
    incorrect_safe: Arc<AtomicU64>,
}

/// Everything one client thread tallies; summed by the main thread.
#[derive(Debug, Default)]
struct ClientStats {
    /// Shared live tallies for the observer's timeline.
    tallies: Arc<FleetTallies>,
    fetch_ok: u64,
    fetch_err: u64,
    retries: u64,
    breaker_opens: u64,
    circuit_rejections: u64,
    /// Undecodable response frames — must stay zero (responses are never
    /// fault-injected; the client reads clean bytes or a dead socket).
    wire_errors: u64,
    /// Client-detected state divergence after a *corrupted request* slipped
    /// through as well-formed (e.g. a flipped `have_epoch` making the
    /// server answer `Unchanged` for never-downloaded localities). Typed
    /// and recovered from; allowed to be nonzero.
    consistency_rejections: u64,
    decisions_total: u64,
    decisions_outage: u64,
    /// Decisions the stale-model guard downgraded from safe to not-safe.
    conservative_overrides: u64,
    incorrect_safe: u64,
    recovery_ns: Option<u64>,
    transport: waldo_fault::TransportEvents,
    sensor: waldo_fault::SensorEvents,
    /// Failure-policy counters from the hardened client at thread exit.
    obs: waldo_serve::ClientObsSnapshot,
    /// Decisions ever written to this client's audit log.
    audit_total: u64,
    /// Audit records evicted by the ring bound.
    audit_dropped: u64,
    /// Records still retained at thread exit.
    audit_retained: u64,
    /// Stale-gate downgrades as the audit log counted them (must agree
    /// with `conservative_overrides`).
    audit_downgrades: u64,
    /// Upload-phase batches acked as fresh (exactly once each).
    uploads_acked: u64,
    /// Acks that reported `duplicate` — retry re-sends plus the
    /// deliberate duplicate probe.
    upload_duplicate_acks: u64,
    /// Upload attempts that errored before an ack landed (retried).
    upload_errors: u64,
    /// The epoch this client observed after the refit phase (0 = never).
    observed_refit_epoch: u64,
}

/// One fetch through the hardened client, folded into the tallies.
/// Returns the new model on success.
fn try_fetch(client: &mut ModelClient, stats: &mut ClientStats) -> Option<WaldoModel> {
    match client.fetch(CHANNEL, 10.0, 10.0, -1.0) {
        Ok((model, _report)) => {
            stats.fetch_ok += 1;
            stats.tallies.fetch_ok.fetch_add(1, Ordering::Relaxed);
            Some(model)
        }
        Err(e) => {
            stats.fetch_err += 1;
            stats.tallies.fetch_err.fetch_add(1, Ordering::Relaxed);
            match e {
                ClientError::CircuitOpen => stats.circuit_rejections += 1,
                ClientError::Wire(_) => stats.wire_errors += 1,
                ClientError::Protocol(_) => stats.consistency_rejections += 1,
                ClientError::Io(_) | ClientError::Server(_) => {}
            }
            None
        }
    }
}

/// Where a client sits and what the right answer there is.
struct Site {
    location: Point,
    base_rss: f64,
    truth: Safety,
}

/// One detection bout: a fresh detector over the guard's model, fed
/// fault-injected synthetic readings until convergence (the cap forces a
/// decision even under heavy drops). The decision goes through the
/// stale-model gate before being scored against ground truth, and the
/// whole trail lands in the client's decision-audit log.
#[allow(clippy::too_many_arguments)]
fn detection_bout(
    guard: &StaleModelGuard,
    sensor: &mut SensorFaults,
    rng: &mut StdRng,
    site: &Site,
    outage: bool,
    epoch: u64,
    log: &mut DecisionAuditLog,
    stats: &mut ClientStats,
) {
    let mut det =
        WhiteSpaceDetector::new(guard.model().clone(), ALPHA_DB).max_readings(MAX_READINGS);
    let mut last_rss = site.base_rss;
    let mut ci_trail: Vec<f64> = Vec::new();
    // Drops consume draw budget without pushing; 10x the cap bounds the
    // bout even under pathological schedules.
    for _ in 0..MAX_READINGS * 10 {
        let mut rss = site.base_rss + (rng.gen::<f64>() * 2.0 - 1.0) * NOISE_HALF_DB;
        match sensor.next_fault() {
            SensorFault::Drop => continue,
            SensorFault::Stuck => rss = last_rss,
            SensorFault::Burst(db) => rss += db,
            SensorFault::None => {}
        }
        last_rss = rss;
        match det.push(site.location, &observation(rss)) {
            DetectorOutcome::Converged { safety, readings_used } => {
                let gated = guard.gate_decision(safety);
                log.push(DecisionRecord {
                    seq: 0,
                    channel: CHANNEL,
                    locality: guard.model().locality_for(site.location),
                    model_epoch: epoch,
                    readings_used,
                    ci_trajectory_db: ci_trail,
                    decided: safety,
                    gated,
                    converged: readings_used < MAX_READINGS,
                });
                stats.decisions_total += 1;
                if outage {
                    stats.decisions_outage += 1;
                }
                if gated != safety {
                    stats.conservative_overrides += 1;
                }
                if gated == Safety::Safe && (site.truth == Safety::NotSafe || outage) {
                    stats.incorrect_safe += 1;
                    stats.tallies.incorrect_safe.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
            DetectorOutcome::NeedMoreReadings { ci_span_db } => {
                if let Some(span) = ci_span_db {
                    if ci_trail.len() >= waldo::device::CI_TRAJECTORY_CAP {
                        ci_trail.remove(0);
                    }
                    ci_trail.push(span);
                }
            }
        }
    }
    unreachable!("detector must force a decision at the reading cap");
}

#[allow(clippy::too_many_arguments)]
fn run_client(
    index: u64,
    seed: u64,
    addr: std::net::SocketAddr,
    scale: &Scale,
    barrier: &Barrier,
    restart_at: &Mutex<Option<Instant>>,
    total_acked: &AtomicU64,
    tallies: Arc<FleetTallies>,
) -> ClientStats {
    let mut stats = ClientStats { tallies, ..ClientStats::default() };

    let faults = TransportFaults::new(
        derive_seed(seed, "transport", index),
        TransportPlan {
            refuse_connect: 0.06,
            corrupt_byte: 0.05,
            short_write: 0.05,
            drop_mid_frame: 0.04,
            read_stall: 0.03,
            stall: Duration::from_millis(30),
        },
    );
    let mut client = ModelClient::new(addr, Duration::from_secs(1))
        .retry_policy(RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(80),
            jitter: 0.5,
        })
        .circuit_breaker(CircuitBreakerPolicy { failure_threshold: 3, cooldown_requests: 2 })
        .jitter_seed(derive_seed(seed, "jitter", index))
        .with_transport_faults(faults.clone());
    let mut sensor = SensorFaults::new(
        derive_seed(seed, "sensor", index),
        SensorPlan { stuck: 0.05, stuck_len: 6, drop: 0.05, burst: 0.03, burst_db: 25.0 },
    );
    let mut rng = StdRng::seed_from_u64(derive_seed(seed, "readings", index));

    // Even clients sit deep in the protected contour, odd clients in clean
    // white space: both decision polarities are exercised every phase.
    let site = if index.is_multiple_of(2) {
        Site { location: Point::new(25_000.0, 10_000.0), base_rss: -70.0, truth: Safety::NotSafe }
    } else {
        Site { location: Point::new(5_000.0, 10_000.0), base_rss: -95.0, truth: Safety::Safe }
    };

    // A deliberately small audit ring: a long soak must exercise the
    // eviction path while the totals stay exact.
    let mut audit = DecisionAuditLog::new(32);

    // Phase 1: healthy rounds. The guard appears with the first successful
    // fetch; injected faults may delay that past the first round.
    let mut guard: Option<StaleModelGuard> = None;
    for _ in 0..scale.rounds_healthy {
        if let Some(model) = try_fetch(&mut client, &mut stats) {
            match &mut guard {
                Some(g) => g.refresh(model),
                None => guard = Some(StaleModelGuard::new(model, TTL)),
            }
        }
        if let Some(g) = &guard {
            for _ in 0..scale.bouts_per_round {
                let epoch = client.cached_epoch(CHANNEL);
                detection_bout(
                    g,
                    &mut sensor,
                    &mut rng,
                    &site,
                    false,
                    epoch,
                    &mut audit,
                    &mut stats,
                );
            }
        }
    }
    let mut guard = guard.expect("at least one healthy-phase fetch must succeed");

    barrier.wait(); // healthy phase done; main stops the server
    barrier.wait(); // outage confirmed

    // Phase 2: outage. Deterministically age the cached model past its
    // TTL: every decision below must gate to the conservative answer.
    guard.backdate(TTL + Duration::from_secs(1));
    for _ in 0..scale.outage_fetches {
        assert!(
            try_fetch(&mut client, &mut stats).is_none(),
            "fetch succeeded against a stopped server"
        );
    }
    for _ in 0..scale.outage_bouts {
        let epoch = client.cached_epoch(CHANNEL);
        detection_bout(&guard, &mut sensor, &mut rng, &site, true, epoch, &mut audit, &mut stats);
    }

    barrier.wait(); // outage phase done; main restarts the server
    barrier.wait(); // restart instant recorded

    // Phase 3: recovery. Loop until a fetch lands; the breaker opened
    // during the outage, so the first attempts burn its cooldown.
    let restarted = restart_at.lock().unwrap().expect("main thread records the restart instant");
    for attempt in 0.. {
        assert!(attempt < 1_000, "client failed to recover within 1000 attempts");
        if let Some(model) = try_fetch(&mut client, &mut stats) {
            guard.refresh(model);
            stats.recovery_ns = Some(restarted.elapsed().as_nanos() as u64);
            break;
        }
        // Breaker cooldown is counted in requests; pace them out a little.
        std::thread::sleep(Duration::from_millis(20));
    }
    for _ in 0..scale.rounds_recovered {
        if let Some(model) = try_fetch(&mut client, &mut stats) {
            guard.refresh(model);
        }
        for _ in 0..scale.bouts_per_round {
            let epoch = client.cached_epoch(CHANNEL);
            detection_bout(
                &guard,
                &mut sensor,
                &mut rng,
                &site,
                false,
                epoch,
                &mut audit,
                &mut stats,
            );
        }
    }

    // Phase 4: upload. Crowd-sourced readings from this client's site go
    // up through the same faulty transport; client-minted batch IDs make
    // every retry idempotent, so the loop hammers until each batch acks.
    let epoch_before_upload = client.cached_epoch(CHANNEL);
    for k in 0..scale.upload_batches {
        let batch = reading_batch(index, k, &site);
        let mut acked = false;
        for _ in 0..60 {
            match client.upload(&batch) {
                Ok(report) => {
                    if report.duplicate {
                        // A retry re-sent a batch whose first ack was
                        // lost to a fault: ingested exactly once anyway.
                        stats.upload_duplicate_acks += 1;
                    }
                    acked = true;
                    break;
                }
                Err(_) => {
                    stats.upload_errors += 1;
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
        assert!(acked, "upload of batch {k} never acked within 60 attempts");
        stats.uploads_acked += 1;
        total_acked.fetch_add(1, Ordering::Relaxed);
    }
    // Deliberate duplicate probe: the first batch again, byte-identical.
    // The WAL's seen set must ack it without re-ingesting.
    for _ in 0..60 {
        match client.upload(&reading_batch(index, 0, &site)) {
            Ok(report) => {
                assert!(report.duplicate, "re-sent batch must ack as a duplicate");
                stats.upload_duplicate_acks += 1;
                break;
            }
            Err(_) => {
                stats.upload_errors += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }

    barrier.wait(); // uploads done; main kills the plane and recovers the WAL
    barrier.wait(); // refit published, server restarted

    // Phase 5: the closed loop's last hop — every client must observe the
    // refitted model's epoch through an ordinary delta fetch.
    for attempt in 0.. {
        assert!(attempt < 1_000, "client never observed the refit epoch");
        if try_fetch(&mut client, &mut stats).is_some() {
            let epoch = client.cached_epoch(CHANNEL);
            if epoch > epoch_before_upload {
                stats.observed_refit_epoch = epoch;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    stats.retries = client.retries_total();
    stats.breaker_opens = client.breaker_opens();
    stats.transport = faults.events();
    stats.sensor = sensor.events();
    stats.obs = client.obs_snapshot();
    stats.audit_total = audit.total();
    stats.audit_dropped = audit.dropped();
    stats.audit_retained = audit.len() as u64;
    stats.audit_downgrades = audit.downgrades();
    stats
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut seed: u64 = 42;
    let mut clients_override: Option<usize> = None;
    let mut out = String::from("target/BENCH_chaos.json");
    let mut timeline = String::from("results/chaos_timeline.jsonl");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes a u64");
            }
            "--clients" => {
                i += 1;
                clients_override = Some(args[i].parse().expect("--clients takes a count"));
            }
            "--out" => {
                i += 1;
                out = args[i].clone();
            }
            "--timeline" => {
                i += 1;
                timeline = args[i].clone();
            }
            other => panic!("unknown argument {other:?}"),
        }
        i += 1;
    }
    let mut scale = Scale::new(quick);
    if let Some(n) = clients_override {
        scale.clients = n;
    }
    let scale = Arc::new(scale);

    let started = Instant::now();
    let base = dataset(300);
    let model = constructor().fit(&base).expect("synthetic data trains");
    let mut catalog = ModelCatalog::new();
    catalog.publish(CHANNEL, &model);
    let catalog = Arc::new(RwLock::new(catalog));
    // The ingestion plane's durable state; wiped per run so the WAL
    // recovery below replays exactly this run's uploads.
    let ingest_dir =
        std::env::temp_dir().join(format!("waldo-chaos-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ingest_dir);
    let engine = RefitEngine::new(constructor(), Labeler::new(), base.clone(), model.clone());
    let plane = IngestPlane::open(&ingest_dir, Arc::clone(&catalog), CHANNEL, engine)
        .expect("ingest plane opens");
    let config = ServeConfig {
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        frame_deadline: Duration::from_secs(1),
        max_connections: 32,
        ..ServeConfig::default()
    };
    let mut server =
        serve_with_ingest("127.0.0.1:0", Arc::clone(&catalog), config.clone(), Some(plane.clone()))
            .expect("bind ephemeral port");
    let addr = server.addr();
    eprintln!(
        "chaos_soak: seed {seed}, {} clients, fault injection {} — serving on {addr}",
        scale.clients,
        if cfg!(feature = "fault") { "ON" } else { "OFF (build with --features fault)" },
    );

    // The fleet observer rides the whole soak: it polls the (single-node)
    // fleet's metrics export, samples the shared client tallies, and
    // streams the per-tick timeline `gate --slo` can evaluate. The two
    // server outages below just show up as poll errors and fetch gaps.
    let tallies = Arc::new(FleetTallies::default());
    let observer = FleetObserver::spawn(
        vec![FleetNode::new("server", addr)],
        vec![
            ExternalCounter::new("fetch_ok", Arc::clone(&tallies.fetch_ok)),
            ExternalCounter::new("fetch_err", Arc::clone(&tallies.fetch_err)),
            ExternalCounter::new("incorrect_safe", Arc::clone(&tallies.incorrect_safe)),
        ],
        Duration::from_millis(50),
        Some(std::path::PathBuf::from(&timeline)),
    );

    let barrier = Arc::new(Barrier::new(scale.clients + 1));
    let restart_at = Arc::new(Mutex::new(None::<Instant>));
    let total_acked = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..scale.clients as u64)
        .map(|index| {
            let barrier = Arc::clone(&barrier);
            let restart_at = Arc::clone(&restart_at);
            let scale = Arc::clone(&scale);
            let total_acked = Arc::clone(&total_acked);
            let tallies = Arc::clone(&tallies);
            std::thread::spawn(move || {
                run_client(index, seed, addr, &scale, &barrier, &restart_at, &total_acked, tallies)
            })
        })
        .collect();

    barrier.wait(); // clients finished the healthy phase
    server.shutdown();
    drop(server);
    eprintln!("chaos_soak: server stopped — outage phase");
    barrier.wait(); // release clients into the outage

    barrier.wait(); // clients finished the outage phase
    let mut server =
        serve_with_ingest(addr, Arc::clone(&catalog), config.clone(), Some(plane.clone()))
            .expect("rebind the same address");
    *restart_at.lock().unwrap() = Some(Instant::now());
    eprintln!("chaos_soak: server restarted — recovery phase");
    barrier.wait(); // release clients into recovery

    barrier.wait(); // clients finished the upload phase
                    // Kill: stop the server and drop the plane mid-stream — nothing but
                    // the WAL and the segment manifest survive — then simulate the torn
                    // write a real kill leaves behind and reopen. Replay must recover
                    // every acked batch; the truncated tail must vanish silently.
    server.shutdown();
    drop(server);
    let wal_pre_kill = plane.snapshot();
    drop(plane);
    {
        let mut wal = std::fs::OpenOptions::new()
            .append(true)
            .open(ingest_dir.join("readings.wal"))
            .expect("the WAL survived the kill");
        wal.write_all(&[0x7f, 0x11, 0x22]).expect("append a torn tail");
    }
    let engine = RefitEngine::new(constructor(), Labeler::new(), base.clone(), model.clone());
    let plane = IngestPlane::open(&ingest_dir, Arc::clone(&catalog), CHANNEL, engine)
        .expect("ingest plane reopens past the torn tail");
    let acked_batches = total_acked.load(Ordering::Relaxed);
    let wal_recovered = plane.snapshot();
    assert!(
        wal_recovered.wal_batches >= acked_batches,
        "WAL replay lost acked batches: {} recovered < {acked_batches} acked",
        wal_recovered.wal_batches,
    );
    let t_refit = Instant::now();
    let refit = plane
        .run_refit_now()
        .expect("refit succeeds")
        .expect("recovered uploads must change the model");
    let refit_ns = t_refit.elapsed().as_nanos() as u64;
    let after_refit = plane.snapshot();
    let duplicates_materialized = after_refit
        .stored_readings
        .saturating_sub(wal_recovered.wal_batches * READINGS_PER_BATCH as u64);
    let mut server = serve_with_ingest(addr, Arc::clone(&catalog), config, Some(plane.clone()))
        .expect("rebind after the refit");
    eprintln!(
        "chaos_soak: WAL recovered {} batches ({} acked), refit retrained {} localities in \
         {:.1} ms — epoch {} served",
        wal_recovered.wal_batches,
        acked_batches,
        refit.changed_localities.len(),
        refit_ns as f64 / 1e6,
        after_refit.model_epoch,
    );
    barrier.wait(); // release clients to observe the refitted model

    let mut total = ClientStats::default();
    let mut recoveries: Vec<u64> = Vec::new();
    let mut panics = 0u64;
    let mut clients_observed_refit = 0u64;
    for handle in handles {
        match handle.join() {
            Ok(stats) => {
                total.fetch_ok += stats.fetch_ok;
                total.fetch_err += stats.fetch_err;
                total.retries += stats.retries;
                total.breaker_opens += stats.breaker_opens;
                total.circuit_rejections += stats.circuit_rejections;
                total.wire_errors += stats.wire_errors;
                total.consistency_rejections += stats.consistency_rejections;
                total.decisions_total += stats.decisions_total;
                total.decisions_outage += stats.decisions_outage;
                total.conservative_overrides += stats.conservative_overrides;
                total.incorrect_safe += stats.incorrect_safe;
                total.transport.refused += stats.transport.refused;
                total.transport.corrupted += stats.transport.corrupted;
                total.transport.short_writes += stats.transport.short_writes;
                total.transport.dropped += stats.transport.dropped;
                total.transport.stalled += stats.transport.stalled;
                total.sensor.stuck += stats.sensor.stuck;
                total.sensor.dropped += stats.sensor.dropped;
                total.sensor.bursts += stats.sensor.bursts;
                total.obs.attempts_total += stats.obs.attempts_total;
                total.obs.retries_total += stats.obs.retries_total;
                total.obs.reconnects_total += stats.obs.reconnects_total;
                total.obs.breaker_opens += stats.obs.breaker_opens;
                total.obs.half_open_probes += stats.obs.half_open_probes;
                total.audit_total += stats.audit_total;
                total.audit_dropped += stats.audit_dropped;
                total.audit_retained += stats.audit_retained;
                total.audit_downgrades += stats.audit_downgrades;
                total.uploads_acked += stats.uploads_acked;
                total.upload_duplicate_acks += stats.upload_duplicate_acks;
                total.upload_errors += stats.upload_errors;
                if stats.observed_refit_epoch > 0 {
                    clients_observed_refit += 1;
                }
                recoveries.extend(stats.recovery_ns);
            }
            Err(_) => panics += 1,
        }
    }
    // Reactor-mode counters from the restarted server, read over the wire
    // before shutdown, so the chaos report shows the serving plane the
    // soak actually ran against (obs_dump renders the same snapshot).
    let server_stats = {
        let mut probe = ModelClient::new(addr, Duration::from_secs(10));
        probe.stats().ok()
    };
    let fleet = observer.stop();
    server.shutdown();
    recoveries.sort_unstable();
    let recovered = recoveries.len() as u64;
    let recovery_p50 = percentile(&recoveries, 0.50);
    let recovery_p99 = percentile(&recoveries, 0.99);
    let wall_seconds = started.elapsed().as_secs_f64();

    let report = json!({
        "seed": seed,
        "clients": scale.clients as u64,
        "quick": quick,
        "fault_enabled": cfg!(feature = "fault"),
        "fetch_ok": total.fetch_ok,
        "fetch_errors": total.fetch_err,
        "retries_total": total.retries,
        "breaker_opens": total.breaker_opens,
        "circuit_open_rejections": total.circuit_rejections,
        "protocol_violations": total.wire_errors,
        "consistency_rejections": total.consistency_rejections,
        "transport_refused": total.transport.refused,
        "transport_corrupted": total.transport.corrupted,
        "transport_short_writes": total.transport.short_writes,
        "transport_dropped": total.transport.dropped,
        "transport_stalled": total.transport.stalled,
        "sensor_stuck": total.sensor.stuck,
        "sensor_dropped": total.sensor.dropped,
        "sensor_bursts": total.sensor.bursts,
        "decisions_total": total.decisions_total,
        "decisions_during_outage": total.decisions_outage,
        "conservative_overrides": total.conservative_overrides,
        "incorrect_safe_decisions": total.incorrect_safe,
        "clients_recovered": recovered,
        "recovery_p50_ns": recovery_p50,
        "recovery_p99_ns": recovery_p99,
        "panics": panics,
        "serve_cache_hits": server_stats.as_ref().map_or(0, |s| s.cache_hits),
        "serve_cache_misses": server_stats.as_ref().map_or(0, |s| s.cache_misses),
        "serve_reactors": server_stats.as_ref().map_or(0, |s| s.reactors),
        "serve_busy_rejections": server_stats.as_ref().map_or(0, |s| s.busy_rejections),
        "wall_seconds": wall_seconds,
        "obs_enabled": waldo_obs::enabled(),
        "client_attempts_total": total.obs.attempts_total,
        "client_reconnects_total": total.obs.reconnects_total,
        "client_half_open_probes": total.obs.half_open_probes,
        "audit_decisions": total.audit_total,
        "audit_retained": total.audit_retained,
        "audit_dropped": total.audit_dropped,
        "audit_downgrades": total.audit_downgrades,
        "uploads_acked": total.uploads_acked,
        "upload_duplicate_acks": total.upload_duplicate_acks,
        "upload_errors": total.upload_errors,
        "readings_per_batch": READINGS_PER_BATCH as u64,
        "wal_pre_kill_batches": wal_pre_kill.wal_batches,
        "wal_recovered_batches": wal_recovered.wal_batches,
        "stored_readings": after_refit.stored_readings,
        "ingest_duplicates_materialized": duplicates_materialized,
        "refit_ns": refit_ns,
        "refit_changed_localities": refit.changed_localities.len() as u64,
        "epoch_after_refit": after_refit.model_epoch,
        "clients_observed_refit": clients_observed_refit,
        "observer_ticks": fleet.ticks,
        "observer_poll_errors": fleet.poll_errors,
        "timeline": timeline.clone(),
    });
    write_json(&out, &report);
    eprintln!(
        "chaos_soak: {} fetches ok / {} errors, {} retries, {} breaker opens, \
         {} decisions ({} during outage, {} conservative overrides), \
         recovery p50 {:.1} ms / p99 {:.1} ms, {} panics -> {out}",
        total.fetch_ok,
        total.fetch_err,
        total.retries,
        total.breaker_opens,
        total.decisions_total,
        total.decisions_outage,
        total.conservative_overrides,
        recovery_p50 as f64 / 1e6,
        recovery_p99 as f64 / 1e6,
        panics,
    );

    assert_eq!(panics, 0, "client thread panicked");
    assert_eq!(total.incorrect_safe, 0, "incorrect safe decision recorded");
    assert_eq!(recovered, scale.clients as u64, "not every client recovered");
    // The audit trail must agree with the live tallies: every decision was
    // logged, and the two independent downgrade counters match.
    assert_eq!(
        total.audit_total, total.decisions_total,
        "every decision must land in the audit log"
    );
    assert_eq!(
        total.audit_downgrades, total.conservative_overrides,
        "audit-log downgrades must match the conservative-override tally"
    );
    assert_eq!(
        total.audit_retained + total.audit_dropped,
        total.audit_total,
        "retained + dropped must account for every audit record"
    );
    // The closed loop's own invariants: every acked batch survived the
    // kill, nothing was ingested twice, and every client saw the refit.
    assert_eq!(
        total.uploads_acked,
        (scale.clients * scale.upload_batches) as u64,
        "every minted batch must eventually ack"
    );
    assert_eq!(duplicates_materialized, 0, "a batch was ingested more than once");
    assert_eq!(
        clients_observed_refit, scale.clients as u64,
        "not every client observed the refitted model's epoch"
    );
}
