//! CI gate over a `probe`-written pipeline report (and, optionally, a
//! `serve_load`-written serving report, a `serve_load`-written ingest
//! report, a `chaos_soak`-written chaos report, and a
//! `failover_drill`-written failover report).
//!
//! Usage: `gate <report.json> <floor.json> [serve_report.json] [--obs]
//! [--ingest ingest_report.json] [--chaos chaos_report.json]
//! [--failover failover_report.json] [--slo fleet_timeline.jsonl]
//! [--history history.jsonl]`
//!
//! Fails (exit 1) when:
//! - any required stage timer (`synth`, `fft_features`, `label`, `kmeans`,
//!   `svm_fit`, `cv`) is missing from the report's `stages` table or
//!   recorded zero calls — catching a stage that silently lost its
//!   instrumentation (or a report produced without the `prof` feature);
//! - the error-cached SMO regresses more than 2× against the checked-in
//!   floor (`svm_fit_ns_per_fit` in the floor file, measured on the
//!   reference machine that produced `BENCH_pipeline.json`);
//! - the fused measurement pipeline regresses more than 2× against the
//!   floor file's implied context-build rate (`context_build_readings`
//!   over `context_build_seconds`, compared ratio-wise against the
//!   report's `serial_readings_per_sec` so quick-scale smokes and
//!   full-scale runs gate alike);
//! - the online detector ingest rate (`detector_push.readings_per_s`)
//!   falls more than 2× below the checked-in
//!   `detector_push_readings_per_s` reference;
//! - a serve report is given and it recorded any protocol error, ran with
//!   fewer than 16 clients, saved less than half the full-fetch bytes on
//!   delta fetches, or its p50 fetch latency regressed more than 10×
//!   against the checked-in floor (`serve_fetch_p50_ns`);
//! - a serve report's throughput phase held fewer than 256 concurrent
//!   connections, its `fetches_per_s` fell below the absolute floor
//!   (`serve_fetches_per_s` in the floor file), or the pre-encoded
//!   response cache hit fewer than 90% of steady-state lookups;
//! - `--obs` is given and the serve report ran without the `obs` feature,
//!   has no `obs_overhead` A/B table (rerun `serve_load --obs-overhead`),
//!   lost the `serve_handle` endpoint histogram, or the obs-enabled fetch
//!   p50 exceeds the obs-disabled p50 by more than 5% plus a small
//!   absolute slack — the recording-overhead ceiling;
//! - an ingest report is given and its upload phase recorded any error,
//!   no duplicate acks (the idempotency probe went unexercised), a
//!   materialized duplicate, an upload rate below the absolute floor
//!   (`ingest_uploads_per_s`), a refit slower than the absolute ceiling
//!   (`ingest_refit_ns_ceiling`), no epoch bump, or a delta fetch that
//!   did not observe the refit epoch — the crowd-sourcing loop must
//!   demonstrably close;
//! - a chaos report is given and it ran without the `fault` feature, any
//!   fault category never fired (the soak proved nothing), it recorded a
//!   panic, a protocol violation, an incorrect "safe" decision, an
//!   unrecovered client, no retries / breaker opens / outage decisions
//!   (the hardened paths went unexercised), the recovery p99 exceeds
//!   the absolute ceiling (`chaos_recovery_p99_ns` in the floor file),
//!   no upload was acked, a WAL replay lost an acked batch, a batch was
//!   ingested twice, or a client never observed the refitted epoch;
//! - a failover report is given and it ran without the `fault` feature,
//!   skipped any of the four scripted scenarios (kill-a-follower, rebind,
//!   stale-follower, leader-loss), recorded a panic / protocol violation /
//!   incorrect "safe" decision, left a client short of the post-failover
//!   epoch, never actually failed a client over, left the follower sync
//!   loop unexercised (no installs or no errors against the dead leader),
//!   timed no recoveries, or its recovery p99 exceeds the absolute ceiling
//!   (`failover_recovery_p99_ns` in the floor file);
//! - `--slo` is given a fleet timeline (the JSONL a
//!   [`waldo_bench::fleet::FleetObserver`] writes during a drill) and any
//!   declarative objective in [`waldo_bench::slo::SloSet`] fails:
//!   availability below the floor or a sustained outage, the fetch-p99
//!   latency budget overspent, replication lag beyond its tick budget or
//!   stalled outright, or *any* incorrect-safe decision — each objective
//!   is burn-rate shaped (whole-run budget plus consecutive-tick streak),
//!   and verdicts are printed per objective either way;
//! - `--history` is given: after all checks pass, the gate appends one
//!   compact line of headline metrics to the JSONL file, then fails if any
//!   tracked metric shows a *sustained* regression — every one of the last
//!   [`TREND_RECENT`] entries worse than the best earlier entry by more
//!   than [`TREND_REGRESSION_LIMIT`]× (direction-aware; a single noisy
//!   run cannot trip it, and fewer than three entries always pass).

use std::process::ExitCode;
use std::time::{SystemTime, UNIX_EPOCH};

use serde::{Map, Value};

const REQUIRED_STAGES: [&str; 6] = ["synth", "fft_features", "label", "kmeans", "svm_fit", "cv"];

/// Maximum allowed ratio of measured `svm_fit` time to the checked-in
/// floor; generous enough to absorb machine-to-machine variation, tight
/// enough to catch an accidental return to O(n²) passes.
const SVM_FIT_REGRESSION_LIMIT: f64 = 2.0;

/// Maximum allowed regression of the serial context-build rate against
/// the floor file's implied reference rate (`context_build_readings /
/// context_build_seconds`). Rate-based so the same floor gates quick-scale
/// smokes and full-scale runs; 2× absorbs runner variation while catching
/// a return to per-frame synthesis or per-pass extraction.
const CONTEXT_BUILD_REGRESSION_LIMIT: f64 = 2.0;

/// Maximum allowed regression of the detector ingest rate against the
/// checked-in `detector_push_readings_per_s` reference.
const DETECTOR_PUSH_REGRESSION_LIMIT: f64 = 2.0;

/// Maximum allowed ratio of measured p50 fetch latency to the checked-in
/// floor. Wider than the svm_fit limit because loopback latency under 16
/// contending client threads is far noisier than a single-threaded fit
/// loop, especially on a single-core runner.
const SERVE_FETCH_REGRESSION_LIMIT: f64 = 10.0;

/// Minimum fraction of full-fetch bytes a delta fetch must save. The
/// epoch diff makes steady-state deltas nearly free; anywhere below this
/// means the delta path stopped short-circuiting unchanged localities.
const SERVE_DELTA_SAVINGS_FLOOR: f64 = 0.5;

/// Serve reports must come from a load run with at least this many
/// concurrent clients to count as a concurrency smoke.
const SERVE_MIN_CLIENTS: u64 = 16;

/// The throughput phase must have held at least this many concurrent
/// keep-alive connections for its `fetches_per_s` to count.
const SERVE_MIN_CONNECTIONS: u64 = 256;

/// Minimum steady-state hit rate of the pre-encoded response cache. The
/// reactor's hot path is a memcpy of a cached tail; below this, unscoped
/// fetches are falling back to per-request encoding.
const SERVE_CACHE_HIT_RATE_FLOOR: f64 = 0.90;

/// Maximum allowed relative increase of the client-observed fetch p50 with
/// obs recording enabled versus disabled, measured by the same-process A/B
/// blocks of `serve_load --obs-overhead`.
const OBS_OVERHEAD_CEILING: f64 = 0.05;

/// Absolute slack on top of the relative obs ceiling. Loopback delta
/// fetches complete in a few hundred µs, so one scheduler preemption is
/// worth more than 5% of p50 on its own; the slack keeps the gate from
/// flaking on timer granularity while still catching a real per-request
/// recording cost.
const OBS_OVERHEAD_SLACK_NS: f64 = 20_000.0;

/// How many of the newest history entries must *all* be worse before the
/// trend guard fires. Two in a row filters the single-run noise a ratio
/// gate against a fixed floor cannot.
const TREND_RECENT: usize = 2;

/// How much worse (direction-aware ratio against the best earlier entry)
/// a metric must be, across all of the last [`TREND_RECENT`] entries, to
/// count as a sustained regression.
const TREND_REGRESSION_LIMIT: f64 = 1.5;

/// Headline metrics tracked in the bench history, with their direction
/// (`true` = higher is better). Entries missing a metric (e.g. runs
/// without a serve report) are skipped for that metric's series.
const TREND_METRICS: [(&str, bool); 6] = [
    ("svm_fit_ns_per_fit", false),
    ("context_readings_per_s", true),
    ("detector_push_readings_per_s", true),
    ("serve_fetch_p50_ns", false),
    ("serve_fetches_per_s", true),
    ("failover_recovery_p99_ns", false),
];

fn load(path: &str) -> Result<Value, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_slice(&bytes).map_err(|e| format!("cannot parse {path}: {e:?}"))
}

fn check(report: &Value, floor: &Value) -> Result<(), String> {
    if report.get("prof_enabled").and_then(Value::as_bool) != Some(true) {
        return Err("report was produced without the prof feature (prof_enabled != true); \
             rebuild probe with --features prof"
            .into());
    }

    let stages = report
        .get("stages")
        .and_then(Value::as_object)
        .ok_or("report has no stages object".to_string())?;
    for name in REQUIRED_STAGES {
        let calls = stages
            .get(name)
            .and_then(|s| s.get("calls"))
            .and_then(Value::as_u64)
            .ok_or(format!("stage timer {name:?} missing from report"))?;
        if calls == 0 {
            return Err(format!("stage timer {name:?} recorded zero calls"));
        }
    }

    let measured = report
        .get("svm_fit")
        .and_then(|s| s.get("cached_ns_per_fit"))
        .and_then(Value::as_f64)
        .ok_or("report has no svm_fit.cached_ns_per_fit".to_string())?;
    let floor_ns = floor
        .get("svm_fit_ns_per_fit")
        .and_then(Value::as_f64)
        .ok_or("floor file has no svm_fit_ns_per_fit".to_string())?;
    if measured > SVM_FIT_REGRESSION_LIMIT * floor_ns {
        return Err(format!(
            "svm_fit regressed: {:.2} ms measured vs {:.2} ms floor (> {SVM_FIT_REGRESSION_LIMIT}x)",
            measured / 1e6,
            floor_ns / 1e6
        ));
    }
    let serial_rate = report
        .get("context_build")
        .and_then(|b| b.get("serial_readings_per_sec"))
        .and_then(Value::as_f64)
        .ok_or("report has no context_build.serial_readings_per_sec".to_string())?;
    let floor_seconds = floor
        .get("context_build_seconds")
        .and_then(Value::as_f64)
        .ok_or("floor file has no context_build_seconds".to_string())?;
    let floor_readings = floor
        .get("context_build_readings")
        .and_then(Value::as_f64)
        .ok_or("floor file has no context_build_readings".to_string())?;
    let implied_rate = floor_readings / floor_seconds;
    if serial_rate < implied_rate / CONTEXT_BUILD_REGRESSION_LIMIT {
        return Err(format!(
            "context build regressed: {serial_rate:.0} readings/s serial vs \
             {implied_rate:.0} implied floor (> {CONTEXT_BUILD_REGRESSION_LIMIT}x slower)"
        ));
    }

    let push_rate = report
        .get("detector_push")
        .and_then(|d| d.get("readings_per_s"))
        .and_then(Value::as_f64)
        .ok_or("report has no detector_push.readings_per_s".to_string())?;
    let push_floor = floor
        .get("detector_push_readings_per_s")
        .and_then(Value::as_f64)
        .ok_or("floor file has no detector_push_readings_per_s".to_string())?;
    if push_rate < push_floor / DETECTOR_PUSH_REGRESSION_LIMIT {
        return Err(format!(
            "detector ingest regressed: {push_rate:.0} readings/s vs {push_floor:.0} floor \
             (> {DETECTOR_PUSH_REGRESSION_LIMIT}x slower)"
        ));
    }

    eprintln!(
        "gate ok: all {} stage timers present; svm_fit {:.2} ms vs {:.2} ms floor; \
         context build {serial_rate:.0} readings/s vs {implied_rate:.0} implied floor; \
         detector push {push_rate:.0} readings/s vs {push_floor:.0} floor",
        REQUIRED_STAGES.len(),
        measured / 1e6,
        floor_ns / 1e6
    );
    Ok(())
}

fn check_serve(report: &Value, floor: &Value) -> Result<(), String> {
    let field = |name: &str| {
        report.get(name).and_then(Value::as_f64).ok_or(format!("serve report has no {name}"))
    };
    let errors = field("protocol_errors")?;
    if errors != 0.0 {
        return Err(format!("serve load run recorded {errors} protocol errors"));
    }
    let clients = field("clients")? as u64;
    if clients < SERVE_MIN_CLIENTS {
        return Err(format!(
            "serve load run used {clients} clients; the smoke needs >= {SERVE_MIN_CLIENTS}"
        ));
    }
    let saved = field("delta_bytes_saved_fraction")?;
    if saved < SERVE_DELTA_SAVINGS_FLOOR {
        return Err(format!(
            "delta fetches saved only {:.0}% of full-fetch bytes (floor {:.0}%)",
            saved * 100.0,
            SERVE_DELTA_SAVINGS_FLOOR * 100.0
        ));
    }
    let p50 = field("fetch_p50_ns")?;
    let floor_ns = floor
        .get("serve_fetch_p50_ns")
        .and_then(Value::as_f64)
        .ok_or("floor file has no serve_fetch_p50_ns".to_string())?;
    if p50 > SERVE_FETCH_REGRESSION_LIMIT * floor_ns {
        return Err(format!(
            "serve fetch p50 regressed: {:.3} ms measured vs {:.3} ms floor \
             (> {SERVE_FETCH_REGRESSION_LIMIT}x)",
            p50 / 1e6,
            floor_ns / 1e6
        ));
    }

    // Throughput phase: enough concurrency, enough capacity, and the
    // cached hot path actually taken.
    let connections = field("connections")? as u64;
    if connections < SERVE_MIN_CONNECTIONS {
        return Err(format!(
            "throughput phase held {connections} connections; needs >= {SERVE_MIN_CONNECTIONS}"
        ));
    }
    let fetches_per_s = field("fetches_per_s")?;
    let rate_floor = floor
        .get("serve_fetches_per_s")
        .and_then(Value::as_f64)
        .ok_or("floor file has no serve_fetches_per_s".to_string())?;
    if fetches_per_s < rate_floor {
        return Err(format!(
            "serve throughput regressed: {fetches_per_s:.0} fetches/s vs {rate_floor:.0} floor"
        ));
    }
    let hit_rate = field("cache_hit_rate")?;
    if hit_rate < SERVE_CACHE_HIT_RATE_FLOOR {
        return Err(format!(
            "response cache hit rate {:.1}% is below the {:.0}% steady-state floor",
            hit_rate * 100.0,
            SERVE_CACHE_HIT_RATE_FLOOR * 100.0
        ));
    }

    eprintln!(
        "gate ok: serve load {clients} clients, 0 protocol errors, p50 {:.3} ms vs {:.3} ms \
         floor, deltas save {:.0}%; {fetches_per_s:.0} fetches/s at {connections} connections \
         vs {rate_floor:.0} floor, cache {:.1}% hits",
        p50 / 1e6,
        floor_ns / 1e6,
        saved * 100.0,
        hit_rate * 100.0
    );
    Ok(())
}

fn check_obs(report: &Value) -> Result<(), String> {
    if report.get("obs_enabled").and_then(Value::as_bool) != Some(true) {
        return Err("serve report was produced without the obs feature (obs_enabled != true); \
             rebuild serve_load with --features obs"
            .into());
    }
    let overhead = report.get("obs_overhead").and_then(Value::as_object).ok_or(
        "serve report has no obs_overhead table; rerun serve_load with --obs-overhead".to_string(),
    )?;
    let field = |name: &str| {
        overhead.get(name).and_then(Value::as_f64).ok_or(format!("obs_overhead has no {name}"))
    };
    let off = field("fetch_p50_off_ns")?;
    let on = field("fetch_p50_on_ns")?;
    if off <= 0.0 {
        return Err("obs_overhead recorded a zero disabled-p50; the A/B blocks did not run".into());
    }
    let ceiling = off.mul_add(1.0 + OBS_OVERHEAD_CEILING, OBS_OVERHEAD_SLACK_NS);
    if on > ceiling {
        return Err(format!(
            "obs recording overhead too high: fetch p50 {:.1} µs enabled vs {:.1} µs disabled \
             (ceiling {:.1} µs = +{:.0}% + {:.0} µs slack)",
            on / 1e3,
            off / 1e3,
            ceiling / 1e3,
            OBS_OVERHEAD_CEILING * 100.0,
            OBS_OVERHEAD_SLACK_NS / 1e3
        ));
    }
    // The ceiling means nothing if recording silently stopped: the server
    // snapshot in the same report must still carry the serve_handle
    // histogram the load phase populated.
    let handle_count = report
        .get("obs")
        .and_then(|o| o.get("server"))
        .and_then(|s| s.get("endpoints"))
        .and_then(|e| e.get("serve_handle"))
        .and_then(|h| h.get("count"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    if handle_count == 0 {
        return Err("serve report's obs.server.endpoints has no populated serve_handle \
             histogram; recording was not active during the load run"
            .into());
    }
    eprintln!(
        "gate ok: obs fetch p50 {:.1} µs enabled vs {:.1} µs disabled (ceiling {:.1} µs), \
         serve_handle histogram holds {handle_count} samples",
        on / 1e3,
        off / 1e3,
        ceiling / 1e3
    );
    Ok(())
}

fn check_ingest(report: &Value, floor: &Value) -> Result<(), String> {
    let field = |name: &str| {
        report.get(name).and_then(Value::as_f64).ok_or(format!("ingest report has no {name}"))
    };
    for (name, why) in [
        ("upload_errors", "an upload failed on the clean path"),
        ("duplicates_materialized", "a duplicate ack materialized readings"),
    ] {
        let v = field(name)?;
        if v != 0.0 {
            return Err(format!("ingest report recorded {name} = {v}: {why}"));
        }
    }
    let acked = field("uploads_acked")?;
    if acked == 0.0 {
        return Err("ingest report acked zero uploads; the phase did not run".into());
    }
    if field("upload_duplicate_acks")? == 0.0 {
        return Err("ingest report has no duplicate acks; the idempotency probe never ran".into());
    }
    let uploads_per_s = field("uploads_per_s")?;
    let rate_floor = floor
        .get("ingest_uploads_per_s")
        .and_then(Value::as_f64)
        .ok_or("floor file has no ingest_uploads_per_s".to_string())?;
    if uploads_per_s < rate_floor {
        return Err(format!(
            "ingest throughput regressed: {uploads_per_s:.0} uploads/s vs {rate_floor:.0} floor"
        ));
    }
    let refit_ns = field("refit_ns")?;
    let refit_ceiling = floor
        .get("ingest_refit_ns_ceiling")
        .and_then(Value::as_f64)
        .ok_or("floor file has no ingest_refit_ns_ceiling".to_string())?;
    if refit_ns > refit_ceiling {
        return Err(format!(
            "incremental refit too slow: {:.1} ms vs {:.1} ms ceiling",
            refit_ns / 1e6,
            refit_ceiling / 1e6
        ));
    }
    let epoch_before = field("epoch_before")?;
    let epoch_after = field("epoch_after")?;
    if epoch_after <= epoch_before {
        return Err(format!(
            "refit did not bump the epoch: {epoch_before} before vs {epoch_after} after"
        ));
    }
    let observed = field("delta_observed_epoch")?;
    if observed != epoch_after {
        return Err(format!(
            "delta fetch observed epoch {observed}, expected the refit epoch {epoch_after}"
        ));
    }
    eprintln!(
        "gate ok: ingest {acked:.0} uploads acked at {uploads_per_s:.0}/s vs {rate_floor:.0} \
         floor, 0 errors, refit {:.1} ms vs {:.1} ms ceiling, epoch {epoch_before:.0} -> \
         {epoch_after:.0} observed by delta fetch",
        refit_ns / 1e6,
        refit_ceiling / 1e6
    );
    Ok(())
}

fn check_chaos(report: &Value, floor: &Value) -> Result<(), String> {
    let field = |name: &str| {
        report.get(name).and_then(Value::as_f64).ok_or(format!("chaos report has no {name}"))
    };
    if report.get("fault_enabled").and_then(Value::as_bool) != Some(true) {
        return Err("chaos report was produced without the fault feature \
             (fault_enabled != true); rebuild chaos_soak with --features fault"
            .into());
    }
    // Invariants: a chaotic run must stay typed, conservative, and alive.
    for (name, why) in [
        ("panics", "client thread panicked under injected faults"),
        ("protocol_violations", "undecodable response reached the client"),
        ("incorrect_safe_decisions", "a decision claimed safe when it must not"),
    ] {
        let v = field(name)?;
        if v != 0.0 {
            return Err(format!("chaos soak recorded {name} = {v}: {why}"));
        }
    }
    // Coverage: every fault category and every hardened path must have
    // actually fired, or the soak proved nothing.
    for name in [
        "transport_refused",
        "transport_corrupted",
        "transport_short_writes",
        "transport_dropped",
        "transport_stalled",
        "sensor_stuck",
        "sensor_dropped",
        "sensor_bursts",
        "retries_total",
        "breaker_opens",
        "decisions_during_outage",
        "conservative_overrides",
    ] {
        if field(name)? == 0.0 {
            return Err(format!("chaos soak never exercised {name} (count is zero)"));
        }
    }
    let clients = field("clients")?;
    let recovered = field("clients_recovered")?;
    if recovered < clients {
        return Err(format!("only {recovered} of {clients} clients recovered after the outage"));
    }
    let p99 = field("recovery_p99_ns")?;
    let ceiling = floor
        .get("chaos_recovery_p99_ns")
        .and_then(Value::as_f64)
        .ok_or("floor file has no chaos_recovery_p99_ns".to_string())?;
    if p99 > ceiling {
        return Err(format!(
            "chaos recovery p99 too slow: {:.1} ms vs {:.1} ms ceiling",
            p99 / 1e6,
            ceiling / 1e6
        ));
    }
    // The crowd-sourcing loop under faults: batches acked, the WAL replay
    // kept them, nothing ingested twice, and the refit reached every
    // client.
    let uploads_acked = field("uploads_acked")?;
    if uploads_acked == 0.0 {
        return Err("chaos soak acked zero uploads (the upload phase proved nothing)".into());
    }
    let wal_recovered = field("wal_recovered_batches")?;
    if wal_recovered < uploads_acked {
        return Err(format!(
            "WAL replay lost acked batches: {wal_recovered} recovered < {uploads_acked} acked"
        ));
    }
    let dup = field("ingest_duplicates_materialized")?;
    if dup != 0.0 {
        return Err(format!("chaos soak materialized {dup} duplicate-ingested readings"));
    }
    if field("clients_observed_refit")? < clients {
        return Err("not every chaos client observed the refitted model's epoch".into());
    }
    eprintln!(
        "gate ok: chaos soak {clients} clients all recovered, {} faults injected, \
         0 panics/violations/unsafe decisions, recovery p99 {:.1} ms vs {:.1} ms ceiling",
        (field("transport_refused")?
            + field("transport_corrupted")?
            + field("transport_short_writes")?
            + field("transport_dropped")?
            + field("transport_stalled")?
            + field("sensor_stuck")?
            + field("sensor_dropped")?
            + field("sensor_bursts")?),
        p99 / 1e6,
        ceiling / 1e6
    );
    Ok(())
}

fn check_failover(report: &Value, floor: &Value) -> Result<(), String> {
    let field = |name: &str| {
        report.get(name).and_then(Value::as_f64).ok_or(format!("failover report has no {name}"))
    };
    if report.get("fault_enabled").and_then(Value::as_bool) != Some(true) {
        return Err("failover report was produced without the fault feature \
             (fault_enabled != true); rebuild failover_drill with --features fault"
            .into());
    }
    // Every scripted scenario must have completed, or the drill proved a
    // weaker claim than the report's name suggests.
    for name in [
        "scenario_kill_follower",
        "scenario_rebind",
        "scenario_stale_follower",
        "scenario_leader_loss",
    ] {
        if report.get(name).and_then(Value::as_bool) != Some(true) {
            return Err(format!("failover drill did not complete {name}"));
        }
    }
    // Invariants: replica deaths must never surface as panics, garbage
    // frames, or an optimistic "safe".
    for (name, why) in [
        ("panics", "client thread panicked during a failover scenario"),
        ("protocol_violations", "undecodable response reached the client"),
        ("incorrect_safe_decisions", "a decision claimed safe when it must not"),
    ] {
        let v = field(name)?;
        if v != 0.0 {
            return Err(format!("failover drill recorded {name} = {v}: {why}"));
        }
    }
    let clients = field("clients")?;
    let converged = field("clients_converged")?;
    if converged < clients {
        return Err(format!(
            "only {converged} of {clients} clients converged to the post-failover epoch"
        ));
    }
    // Coverage: the rotation, the follower sync loop, and the recovery
    // timers must all have actually fired.
    for (name, why) in [
        ("failovers_total", "no client ever rotated off a dead replica"),
        ("follower_installs_total", "followers never installed a replicated epoch"),
        ("follower_sync_errors_total", "follower sync loops never erred against the dead leader"),
        ("recovery_samples", "no recovery was timed"),
    ] {
        if field(name)? == 0.0 {
            return Err(format!("failover drill never exercised {name}: {why}"));
        }
    }
    let p99 = field("recovery_p99_ns")?;
    let ceiling = floor
        .get("failover_recovery_p99_ns")
        .and_then(Value::as_f64)
        .ok_or("floor file has no failover_recovery_p99_ns".to_string())?;
    if p99 > ceiling {
        return Err(format!(
            "failover recovery p99 too slow: {:.1} ms vs {:.1} ms ceiling",
            p99 / 1e6,
            ceiling / 1e6
        ));
    }
    eprintln!(
        "gate ok: failover drill {clients} clients over {} scenarios, {} failovers, \
         all converged to epoch {}, 0 panics/violations/unsafe decisions, \
         recovery p99 {:.1} ms vs {:.1} ms ceiling",
        4,
        field("failovers_total")?,
        field("epoch_converged")?,
        p99 / 1e6,
        ceiling / 1e6
    );
    Ok(())
}

/// Evaluates the declarative fleet SLOs over an observer timeline and
/// prints one verdict line per objective. Fails when the timeline is
/// missing or empty (an observer that never ticked proves nothing) or
/// when any objective is breached.
fn check_slo(path: &str) -> Result<waldo_bench::slo::SloReport, String> {
    use waldo_bench::slo::{evaluate, parse_timeline, SloSet};
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let ticks = parse_timeline(&text);
    if ticks.is_empty() {
        return Err(format!("{path} holds no parseable timeline ticks; did the observer run?"));
    }
    let report = evaluate(&ticks, &SloSet::default());
    for result in &report.results {
        eprintln!("gate slo {result}");
    }
    if let Some(failed) = report.results.iter().find(|r| !r.pass) {
        return Err(format!("fleet SLO {} breached: {}", failed.name, failed.detail));
    }
    eprintln!(
        "gate ok: fleet SLOs held over {} observer ticks (replication catch-up p99 {} ms)",
        report.ticks, report.repl_lag_ms_p99,
    );
    Ok(report)
}

/// One compact history line: the headline rate/latency metrics of this
/// gate run, stamped with wall-clock seconds. Only metrics whose source
/// report was supplied appear, so the trend series stay honest.
fn history_entry(
    report: &Value,
    serve: Option<&Value>,
    failover: Option<&Value>,
    slo: Option<&waldo_bench::slo::SloReport>,
) -> Value {
    let mut entry = Map::new();
    let ts = SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_secs());
    entry.insert("ts", Value::from(ts as f64));
    let mut put = |key: &str, value: Option<f64>| {
        if let Some(v) = value {
            entry.insert(key, Value::from(v));
        }
    };
    put(
        "svm_fit_ns_per_fit",
        report.get("svm_fit").and_then(|s| s.get("cached_ns_per_fit")).and_then(Value::as_f64),
    );
    put(
        "context_readings_per_s",
        report
            .get("context_build")
            .and_then(|b| b.get("serial_readings_per_sec"))
            .and_then(Value::as_f64),
    );
    put(
        "detector_push_readings_per_s",
        report.get("detector_push").and_then(|d| d.get("readings_per_s")).and_then(Value::as_f64),
    );
    if let Some(serve) = serve {
        put("serve_fetch_p50_ns", serve.get("fetch_p50_ns").and_then(Value::as_f64));
        put("serve_fetches_per_s", serve.get("fetches_per_s").and_then(Value::as_f64));
        // The enabled-vs-disabled recording cost as a fraction, when the
        // A/B table is present: the headline number behind the <5% + 20µs
        // obs ceiling, trended so creep below the hard gate is visible.
        let off = serve
            .get("obs_overhead")
            .and_then(|o| o.get("fetch_p50_off_ns"))
            .and_then(Value::as_f64);
        let on = serve
            .get("obs_overhead")
            .and_then(|o| o.get("fetch_p50_on_ns"))
            .and_then(Value::as_f64);
        if let (Some(off), Some(on)) = (off, on) {
            if off > 0.0 {
                put("obs_overhead_frac", Some((on - off) / off));
            }
        }
    }
    if let Some(failover) = failover {
        put("failover_recovery_p99_ns", failover.get("recovery_p99_ns").and_then(Value::as_f64));
    }
    if let Some(slo) = slo {
        put("fleet_repl_lag_ms_p99", Some(slo.repl_lag_ms_p99 as f64));
    }
    Value::Object(entry)
}

/// Appends `entry` as one JSONL line and returns the full series,
/// oldest first (unparseable lines are reported, not skipped silently —
/// a corrupt history should be noticed, not eroded).
fn append_history(path: &str, entry: &Value) -> Result<Vec<Value>, String> {
    let mut entries = Vec::new();
    match std::fs::read_to_string(path) {
        Ok(text) => {
            for (i, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                let parsed: Value = serde_json::from_str(line)
                    .map_err(|e| format!("{path}:{}: unparseable history line: {e:?}", i + 1))?;
                entries.push(parsed);
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(format!("cannot read {path}: {e}")),
    }
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {parent:?}: {e}"))?;
        }
    }
    let line = serde_json::to_string(entry).map_err(|e| format!("cannot encode entry: {e:?}"))?;
    use std::io::Write;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("cannot open {path} for append: {e}"))?;
    writeln!(file, "{line}").map_err(|e| format!("cannot append to {path}: {e}"))?;
    entries.push(entry.clone());
    Ok(entries)
}

/// The sustained-regression guard: for each tracked metric, fail when all
/// of the last [`TREND_RECENT`] entries are worse than the best earlier
/// entry by more than [`TREND_REGRESSION_LIMIT`]×. One bad run never
/// fires it; series shorter than `TREND_RECENT + 1` always pass.
fn check_trend(entries: &[Value]) -> Result<(), String> {
    let mut checked = 0usize;
    for (key, higher_is_better) in TREND_METRICS {
        let series: Vec<f64> =
            entries.iter().filter_map(|e| e.get(key).and_then(Value::as_f64)).collect();
        if series.len() <= TREND_RECENT {
            continue;
        }
        checked += 1;
        let (earlier, recent) = series.split_at(series.len() - TREND_RECENT);
        let best = earlier
            .iter()
            .copied()
            .reduce(|a, b| if higher_is_better { a.max(b) } else { a.min(b) })
            .expect("earlier is non-empty");
        let worse = |v: f64| {
            if higher_is_better {
                v * TREND_REGRESSION_LIMIT < best
            } else {
                v > best * TREND_REGRESSION_LIMIT
            }
        };
        if recent.iter().all(|&v| worse(v)) {
            return Err(format!(
                "sustained regression in {key}: last {TREND_RECENT} entries {recent:?} are all \
                 worse than the best earlier entry {best:.1} by more than \
                 {TREND_REGRESSION_LIMIT}x"
            ));
        }
    }
    eprintln!(
        "gate ok: bench history trend clean over {} entries ({checked} metrics deep enough \
         to judge)",
        entries.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut failover_path = None;
    if let Some(pos) = args.iter().position(|a| a == "--failover") {
        if pos + 1 >= args.len() {
            eprintln!("--failover needs a path");
            return ExitCode::FAILURE;
        }
        failover_path = Some(args.remove(pos + 1));
        args.remove(pos);
    }
    let mut history_path = None;
    if let Some(pos) = args.iter().position(|a| a == "--history") {
        if pos + 1 >= args.len() {
            eprintln!("--history needs a path");
            return ExitCode::FAILURE;
        }
        history_path = Some(args.remove(pos + 1));
        args.remove(pos);
    }
    let mut chaos_path = None;
    if let Some(pos) = args.iter().position(|a| a == "--chaos") {
        if pos + 1 >= args.len() {
            eprintln!("--chaos needs a path");
            return ExitCode::FAILURE;
        }
        chaos_path = Some(args.remove(pos + 1));
        args.remove(pos);
    }
    let mut ingest_path = None;
    if let Some(pos) = args.iter().position(|a| a == "--ingest") {
        if pos + 1 >= args.len() {
            eprintln!("--ingest needs a path");
            return ExitCode::FAILURE;
        }
        ingest_path = Some(args.remove(pos + 1));
        args.remove(pos);
    }
    let mut slo_path = None;
    if let Some(pos) = args.iter().position(|a| a == "--slo") {
        if pos + 1 >= args.len() {
            eprintln!("--slo needs a path");
            return ExitCode::FAILURE;
        }
        slo_path = Some(args.remove(pos + 1));
        args.remove(pos);
    }
    let mut want_obs = false;
    if let Some(pos) = args.iter().position(|a| a == "--obs") {
        want_obs = true;
        args.remove(pos);
    }
    let (report_path, floor_path, serve_path) = match args.as_slice() {
        [report, floor] => (report, floor, None),
        [report, floor, serve] => (report, floor, Some(serve)),
        _ => {
            eprintln!(
                "usage: gate <report.json> <floor.json> [serve_report.json] [--obs] \
                 [--ingest ingest.json] [--chaos chaos.json] [--failover failover.json] \
                 [--slo fleet_timeline.jsonl] [--history history.jsonl]"
            );
            return ExitCode::FAILURE;
        }
    };
    if want_obs && serve_path.is_none() {
        eprintln!("--obs checks the serve report; pass serve_report.json as the third argument");
        return ExitCode::FAILURE;
    }
    let run = || -> Result<(), String> {
        let report = load(report_path)?;
        let floor = load(floor_path)?;
        check(&report, &floor)?;
        let mut serve_report = None;
        if let Some(serve_path) = serve_path {
            let loaded = load(serve_path)?;
            check_serve(&loaded, &floor)?;
            if want_obs {
                check_obs(&loaded)?;
            }
            serve_report = Some(loaded);
        }
        if let Some(ingest_path) = &ingest_path {
            check_ingest(&load(ingest_path)?, &floor)?;
        }
        if let Some(chaos_path) = &chaos_path {
            check_chaos(&load(chaos_path)?, &floor)?;
        }
        let mut failover_report = None;
        if let Some(failover_path) = &failover_path {
            let loaded = load(failover_path)?;
            check_failover(&loaded, &floor)?;
            failover_report = Some(loaded);
        }
        let mut slo_report = None;
        if let Some(slo_path) = &slo_path {
            slo_report = Some(check_slo(slo_path)?);
        }
        // History last: only runs that passed every ratio gate feed the
        // trend series, so the guard judges regressions among good runs
        // rather than re-flagging failures the gates above already caught.
        if let Some(history_path) = &history_path {
            let entry = history_entry(
                &report,
                serve_report.as_ref(),
                failover_report.as_ref(),
                slo_report.as_ref(),
            );
            let entries = append_history(history_path, &entry)?;
            check_trend(&entries)?;
        }
        Ok(())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("gate FAILED: {msg}");
            ExitCode::FAILURE
        }
    }
}
