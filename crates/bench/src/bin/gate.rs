//! CI gate over a `probe`-written pipeline report.
//!
//! Usage: `gate <report.json> <floor.json>`
//!
//! Fails (exit 1) when:
//! - any required stage timer (`synth`, `fft_features`, `label`, `kmeans`,
//!   `svm_fit`, `cv`) is missing from the report's `stages` table or
//!   recorded zero calls — catching a stage that silently lost its
//!   instrumentation (or a report produced without the `prof` feature);
//! - the error-cached SMO regresses more than 2× against the checked-in
//!   floor (`svm_fit_ns_per_fit` in the floor file, measured on the
//!   reference machine that produced `BENCH_pipeline.json`).

use std::process::ExitCode;

use serde::Value;

const REQUIRED_STAGES: [&str; 6] = ["synth", "fft_features", "label", "kmeans", "svm_fit", "cv"];

/// Maximum allowed ratio of measured `svm_fit` time to the checked-in
/// floor; generous enough to absorb machine-to-machine variation, tight
/// enough to catch an accidental return to O(n²) passes.
const SVM_FIT_REGRESSION_LIMIT: f64 = 2.0;

fn load(path: &str) -> Result<Value, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_slice(&bytes).map_err(|e| format!("cannot parse {path}: {e:?}"))
}

fn check(report: &Value, floor: &Value) -> Result<(), String> {
    if report.get("prof_enabled").and_then(Value::as_bool) != Some(true) {
        return Err("report was produced without the prof feature (prof_enabled != true); \
             rebuild probe with --features prof"
            .into());
    }

    let stages = report
        .get("stages")
        .and_then(Value::as_object)
        .ok_or("report has no stages object".to_string())?;
    for name in REQUIRED_STAGES {
        let calls = stages
            .get(name)
            .and_then(|s| s.get("calls"))
            .and_then(Value::as_u64)
            .ok_or(format!("stage timer {name:?} missing from report"))?;
        if calls == 0 {
            return Err(format!("stage timer {name:?} recorded zero calls"));
        }
    }

    let measured = report
        .get("svm_fit")
        .and_then(|s| s.get("cached_ns_per_fit"))
        .and_then(Value::as_f64)
        .ok_or("report has no svm_fit.cached_ns_per_fit".to_string())?;
    let floor_ns = floor
        .get("svm_fit_ns_per_fit")
        .and_then(Value::as_f64)
        .ok_or("floor file has no svm_fit_ns_per_fit".to_string())?;
    if measured > SVM_FIT_REGRESSION_LIMIT * floor_ns {
        return Err(format!(
            "svm_fit regressed: {:.2} ms measured vs {:.2} ms floor (> {SVM_FIT_REGRESSION_LIMIT}x)",
            measured / 1e6,
            floor_ns / 1e6
        ));
    }
    eprintln!(
        "gate ok: all {} stage timers present; svm_fit {:.2} ms vs {:.2} ms floor",
        REQUIRED_STAGES.len(),
        measured / 1e6,
        floor_ns / 1e6
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [report_path, floor_path] = args.as_slice() else {
        eprintln!("usage: gate <report.json> <floor.json>");
        return ExitCode::FAILURE;
    };
    let run = || -> Result<(), String> {
        let report = load(report_path)?;
        let floor = load(floor_path)?;
        check(&report, &floor)
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("gate FAILED: {msg}");
            ExitCode::FAILURE
        }
    }
}
