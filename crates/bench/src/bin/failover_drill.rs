//! Scripted failover drills for the geo-replicated serving plane: a
//! leader with its ingestion plane plus two pull-replicating followers,
//! a fleet of multi-endpoint clients under seeded transport/sensor
//! faults, and a kill schedule that walks the topology through every
//! failure mode the replication design claims to survive.
//!
//! The run has five barrier-separated scenarios shared by all clients:
//!
//! 1. **Healthy** — three replicas serve epoch 1; each client is sticky
//!    to a different replica (the endpoint list is rotated per client) and
//!    runs fetch+detect rounds.
//! 2. **Kill a follower** — the main thread stops follower 1. Clients
//!    sticky to it must fail over *within a single logical round trip*;
//!    per-client recovery is timed from the kill instant to the next
//!    successful fetch.
//! 3. **Rebind** — follower 1 restarts on the same address with a *fresh*
//!    catalog and a fresh sync worker; it must full-resync from the leader
//!    before the fleet's next phase.
//! 4. **Stale follower** — follower 2's sync worker is frozen, then the
//!    leader ingests crowd-sourced readings and refits to epoch 2. Clients
//!    reading through the frozen follower see stale-but-consistent epoch 1;
//!    nothing may decide incorrect-safe. The worker then resumes and must
//!    converge to epoch 2.
//! 5. **Leader loss** — the leader is killed. Follower sync loops start
//!    erroring (counted, never fatal) while both followers keep serving
//!    epoch 2; every client must converge to the post-failover epoch
//!    through the surviving replicas.
//!
//! Every decision goes through a [`StaleModelGuard`] and lands in a
//! [`DecisionAuditLog`] ring; the drill exits nonzero on any panic, any
//! incorrect "safe" decision, any client that failed to converge, or an
//! audit trail that disagrees with the live tallies.
//!
//! Emits `BENCH_failover.json` for `gate --failover`: scenario completion
//! flags, failover/recovery tallies and percentiles, follower sync
//! counters, and the invariant counts. A
//! [`waldo_bench::fleet::FleetObserver`] rides the whole drill, polling
//! every node's metrics export and streaming the per-tick fleet timeline
//! (default `results/fleet_timeline.jsonl`) that `gate --slo` evaluates.
//!
//! Usage: `failover_drill [--quick] [--seed N] [--clients N] [--out PATH]
//! [--timeline PATH]` (needs the `fault` feature; without it the
//! schedules are no-ops and the report says so).

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex, RwLock};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::json;
use waldo::wire::ReadingBatch;
use waldo::{
    ClassifierKind, DecisionAuditLog, DecisionRecord, DetectorOutcome, ModelConstructor,
    StaleModelGuard, WaldoConfig, WaldoModel, WhiteSpaceDetector,
};
use waldo_bench::fleet::{ExternalCounter, FleetNode, FleetObserver};
use waldo_bench::report::{percentile, write_json};
use waldo_data::{ChannelDataset, Labeler, Measurement, Safety};
use waldo_fault::{
    derive_seed, SensorFault, SensorFaults, SensorPlan, TransportFaults, TransportPlan,
};
use waldo_geo::Point;
use waldo_iq::FeatureVector;
use waldo_rf::TvChannel;
use waldo_sensors::{Observation, ReadingSample, SensorKind};
use waldo_serve::{
    serve, serve_with_ingest, CircuitBreakerPolicy, ClientError, IngestPlane, ModelCatalog,
    ModelClient, ReplicaFollower, ReplicaWorker, RetryPolicy, ServeConfig,
};
use waldo_store::RefitEngine;

const CHANNEL: u8 = 30;
/// Readings per crowd-sourced batch fed to the leader's refit.
const READINGS_PER_BATCH: usize = 12;
/// CI convergence threshold (dB).
const ALPHA_DB: f64 = 1.2;
/// Forced-decision cap per bout.
const MAX_READINGS: usize = 120;
/// Uniform reading-noise half width (dB).
const NOISE_HALF_DB: f64 = 2.0;
/// Model TTL; wall time never approaches it, so the stale gate stays
/// open and `conservative_overrides` must end at zero.
const TTL: Duration = Duration::from_secs(3600);
/// The epoch the leader's mid-drill refit publishes and every client
/// must converge to after the leader dies.
const REFIT_EPOCH: u64 = 2;
/// Follower sync-loop interval.
const SYNC_INTERVAL: Duration = Duration::from_millis(10);

struct Scale {
    clients: usize,
    /// Fetch rounds per scenario (each followed by detection bouts).
    rounds_per_phase: usize,
    /// Detection bouts per fetch round.
    bouts_per_round: usize,
    /// Crowd-sourced batches ingested before the leader's refit.
    refit_batches: usize,
}

impl Scale {
    fn new(quick: bool) -> Self {
        if quick {
            Self { clients: 3, rounds_per_phase: 3, bouts_per_round: 2, refit_batches: 6 }
        } else {
            Self { clients: 6, rounds_per_phase: 6, bouts_per_round: 3, refit_batches: 10 }
        }
    }
}

/// Synthetic east/west channel: safe west of 15 km, not-safe east of it.
fn dataset(n: usize) -> ChannelDataset {
    let mut measurements = Vec::new();
    let mut labels = Vec::new();
    for i in 0..n {
        let x = (i as f64 / n as f64) * 30_000.0;
        let y = ((i * 7) % 20) as f64 * 1_000.0;
        let not_safe = x > 15_000.0;
        let rss = if not_safe { -70.0 } else { -95.0 } + ((i % 5) as f64 - 2.0);
        measurements.push(Measurement {
            location: Point::new(x, y),
            odometer_m: i as f64 * 100.0,
            observation: observation(rss),
            true_rss_dbm: rss,
        });
        labels.push(Safety::from_not_safe(not_safe));
    }
    ChannelDataset::new(TvChannel::new(30).unwrap(), SensorKind::RtlSdr, measurements, labels)
}

fn observation(rss: f64) -> Observation {
    Observation {
        rss_dbm: rss,
        features: FeatureVector {
            rss_db: rss,
            cft_db: rss - 11.3,
            aft_db: rss - 12.5,
            quadrature_imbalance_db: 0.0,
            iq_kurtosis: 0.0,
            edge_bin_db: -110.0,
        },
        raw_pilot_db: rss - 11.3,
    }
}

fn constructor() -> ModelConstructor {
    ModelConstructor::new(WaldoConfig::default().classifier(ClassifierKind::Svm).localities(4))
}

/// A crowd-sourced batch near `site`, deterministic in `k`.
fn reading_batch(k: usize, site: &Site) -> ReadingBatch {
    let readings = (0..READINGS_PER_BATCH)
        .map(|i| {
            let dx = ((i * 37 + k * 11) % 40) as f64 * 25.0;
            let dy = ((i * 53 + k * 7) % 40) as f64 * 25.0;
            let rss = site.base_rss + ((i % 5) as f64 - 2.0) * 0.5;
            ReadingSample {
                location: Point::new(site.location.x + dx, site.location.y + dy),
                rss_dbm: rss,
                features: observation(rss).features,
            }
        })
        .collect();
    ReadingBatch { batch_id: 900_000 + k as u64 + 1, channel: CHANNEL, readings }
}

/// Where a client sits and what the right answer there is.
struct Site {
    location: Point,
    base_rss: f64,
    truth: Safety,
}

fn site_for(index: u64) -> Site {
    if index.is_multiple_of(2) {
        Site { location: Point::new(25_000.0, 10_000.0), base_rss: -70.0, truth: Safety::NotSafe }
    } else {
        Site { location: Point::new(5_000.0, 10_000.0), base_rss: -95.0, truth: Safety::Safe }
    }
}

/// Live fleet tallies shared between every client thread and the
/// [`FleetObserver`]: the client-side half of the timeline (the servers
/// cannot see fetch outcomes, failovers, or decision quality). All
/// cumulative; the observer samples them into per-tick deltas.
#[derive(Debug, Default)]
struct FleetTallies {
    fetch_ok: Arc<AtomicU64>,
    fetch_err: Arc<AtomicU64>,
    incorrect_safe: Arc<AtomicU64>,
    failovers: Arc<AtomicU64>,
}

/// Everything one client thread tallies; summed by the main thread.
#[derive(Debug, Default)]
struct ClientStats {
    /// Shared live tallies, bumped alongside the local counters so the
    /// observer's timeline sees traffic as it happens.
    tallies: Arc<FleetTallies>,
    fetch_ok: u64,
    fetch_err: u64,
    circuit_rejections: u64,
    /// Undecodable response frames — must stay zero.
    wire_errors: u64,
    /// Typed client-detected divergence after a corrupted-but-well-formed
    /// request; recovered from, allowed nonzero.
    consistency_rejections: u64,
    decisions_total: u64,
    conservative_overrides: u64,
    incorrect_safe: u64,
    /// Kill-a-follower scenario: kill instant to next successful fetch.
    recovery_follower_ns: Option<u64>,
    /// Leader-loss scenario: kill instant to convergence on the refit
    /// epoch through a surviving replica.
    recovery_leader_ns: Option<u64>,
    /// The epoch this client held at exit (must be [`REFIT_EPOCH`]).
    final_epoch: u64,
    obs: waldo_serve::ClientObsSnapshot,
    audit_total: u64,
    audit_dropped: u64,
    audit_retained: u64,
    audit_downgrades: u64,
}

/// One fetch through the hardened client, folded into the tallies.
fn try_fetch(client: &mut ModelClient, stats: &mut ClientStats) -> Option<WaldoModel> {
    match client.fetch(CHANNEL, 10.0, 10.0, -1.0) {
        Ok((model, _report)) => {
            stats.fetch_ok += 1;
            stats.tallies.fetch_ok.fetch_add(1, Ordering::Relaxed);
            Some(model)
        }
        Err(e) => {
            stats.fetch_err += 1;
            stats.tallies.fetch_err.fetch_add(1, Ordering::Relaxed);
            match e {
                ClientError::CircuitOpen => stats.circuit_rejections += 1,
                ClientError::Wire(_) => stats.wire_errors += 1,
                ClientError::Protocol(_) => stats.consistency_rejections += 1,
                ClientError::Io(_) | ClientError::Server(_) => {}
            }
            None
        }
    }
}

/// Fetches until one lands; the failover policy makes this fast even with
/// a dead sticky endpoint, but injected faults can still cost retries.
fn fetch_until_ok(client: &mut ModelClient, stats: &mut ClientStats) -> WaldoModel {
    for attempt in 0.. {
        assert!(attempt < 1_000, "fetch failed 1000 times in a row");
        if let Some(model) = try_fetch(client, stats) {
            return model;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    unreachable!()
}

/// One detection bout against the guarded model, fault-injected readings,
/// decision gated and audited, scored against ground truth.
fn detection_bout(
    guard: &StaleModelGuard,
    sensor: &mut SensorFaults,
    rng: &mut StdRng,
    site: &Site,
    epoch: u64,
    log: &mut DecisionAuditLog,
    stats: &mut ClientStats,
) {
    let mut det =
        WhiteSpaceDetector::new(guard.model().clone(), ALPHA_DB).max_readings(MAX_READINGS);
    let mut last_rss = site.base_rss;
    let mut ci_trail: Vec<f64> = Vec::new();
    for _ in 0..MAX_READINGS * 10 {
        let mut rss = site.base_rss + (rng.gen::<f64>() * 2.0 - 1.0) * NOISE_HALF_DB;
        match sensor.next_fault() {
            SensorFault::Drop => continue,
            SensorFault::Stuck => rss = last_rss,
            SensorFault::Burst(db) => rss += db,
            SensorFault::None => {}
        }
        last_rss = rss;
        match det.push(site.location, &observation(rss)) {
            DetectorOutcome::Converged { safety, readings_used } => {
                let gated = guard.gate_decision(safety);
                log.push(DecisionRecord {
                    seq: 0,
                    channel: CHANNEL,
                    locality: guard.model().locality_for(site.location),
                    model_epoch: epoch,
                    readings_used,
                    ci_trajectory_db: ci_trail,
                    decided: safety,
                    gated,
                    converged: readings_used < MAX_READINGS,
                });
                stats.decisions_total += 1;
                if gated != safety {
                    stats.conservative_overrides += 1;
                }
                if gated == Safety::Safe && site.truth == Safety::NotSafe {
                    stats.incorrect_safe += 1;
                    stats.tallies.incorrect_safe.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
            DetectorOutcome::NeedMoreReadings { ci_span_db } => {
                if let Some(span) = ci_span_db {
                    if ci_trail.len() >= waldo::device::CI_TRAJECTORY_CAP {
                        ci_trail.remove(0);
                    }
                    ci_trail.push(span);
                }
            }
        }
    }
    unreachable!("detector must force a decision at the reading cap");
}

/// A fetch round followed by its detection bouts.
#[allow(clippy::too_many_arguments)]
fn load_round(
    client: &mut ModelClient,
    guard: &mut StaleModelGuard,
    sensor: &mut SensorFaults,
    rng: &mut StdRng,
    site: &Site,
    audit: &mut DecisionAuditLog,
    stats: &mut ClientStats,
    bouts: usize,
) {
    if let Some(model) = try_fetch(client, stats) {
        guard.refresh(model);
    }
    for _ in 0..bouts {
        let epoch = client.cached_epoch(CHANNEL);
        detection_bout(guard, sensor, rng, site, epoch, audit, stats);
    }
}

/// Publishes the client's failover tally growth to the shared fleet
/// counter (the per-client snapshot is cumulative; the observer wants
/// one fleet-wide cumulative series).
fn publish_failovers(client: &ModelClient, last: &mut u64, tallies: &FleetTallies) {
    let now = client.obs_snapshot().failovers_total;
    tallies.failovers.fetch_add(now.saturating_sub(*last), Ordering::Relaxed);
    *last = now;
}

#[allow(clippy::too_many_arguments)]
fn run_client(
    index: u64,
    seed: u64,
    endpoints: Vec<SocketAddr>,
    scale: &Scale,
    barrier: &Barrier,
    kill_follower_at: &Mutex<Option<Instant>>,
    kill_leader_at: &Mutex<Option<Instant>>,
    tallies: Arc<FleetTallies>,
) -> ClientStats {
    let mut stats = ClientStats { tallies, ..ClientStats::default() };
    let mut last_failovers = 0u64;
    let faults = TransportFaults::new(
        derive_seed(seed, "transport", index),
        TransportPlan {
            refuse_connect: 0.03,
            corrupt_byte: 0.02,
            short_write: 0.03,
            drop_mid_frame: 0.02,
            read_stall: 0.02,
            stall: Duration::from_millis(20),
        },
    );
    let mut client = ModelClient::with_endpoints(endpoints, Duration::from_secs(1))
        .retry_policy(RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(80),
            jitter: 0.5,
        })
        .circuit_breaker(CircuitBreakerPolicy { failure_threshold: 3, cooldown_requests: 2 })
        .jitter_seed(derive_seed(seed, "jitter", index))
        .with_transport_faults(faults);
    let mut sensor = SensorFaults::new(
        derive_seed(seed, "sensor", index),
        SensorPlan { stuck: 0.05, stuck_len: 6, drop: 0.05, burst: 0.03, burst_db: 25.0 },
    );
    let mut rng = StdRng::seed_from_u64(derive_seed(seed, "readings", index));
    let site = site_for(index);
    let mut audit = DecisionAuditLog::new(32);

    // Scenario 1: healthy — all replicas serve epoch 1.
    let model = fetch_until_ok(&mut client, &mut stats);
    let mut guard = StaleModelGuard::new(model, TTL);
    for _ in 0..scale.rounds_per_phase {
        load_round(
            &mut client,
            &mut guard,
            &mut sensor,
            &mut rng,
            &site,
            &mut audit,
            &mut stats,
            scale.bouts_per_round,
        );
    }

    publish_failovers(&client, &mut last_failovers, &stats.tallies);
    barrier.wait(); // healthy done; main kills follower 1
    barrier.wait(); // kill instant recorded

    // Scenario 2: kill-a-follower. Clients sticky to the dead replica
    // rotate within the round trip; everyone else is unaffected.
    let killed = kill_follower_at.lock().unwrap().expect("main records the kill instant");
    let model = fetch_until_ok(&mut client, &mut stats);
    stats.recovery_follower_ns = Some(killed.elapsed().as_nanos() as u64);
    guard.refresh(model);
    for _ in 0..scale.rounds_per_phase {
        load_round(
            &mut client,
            &mut guard,
            &mut sensor,
            &mut rng,
            &site,
            &mut audit,
            &mut stats,
            scale.bouts_per_round,
        );
    }

    publish_failovers(&client, &mut last_failovers, &stats.tallies);
    barrier.wait(); // scenario 2 done; main rebinds follower 1, full resync
    barrier.wait();

    // Scenario 3: rebind — topology healthy again; keep the load on.
    for _ in 0..scale.rounds_per_phase {
        load_round(
            &mut client,
            &mut guard,
            &mut sensor,
            &mut rng,
            &site,
            &mut audit,
            &mut stats,
            scale.bouts_per_round,
        );
    }

    publish_failovers(&client, &mut last_failovers, &stats.tallies);
    barrier.wait(); // scenario 3 done; main freezes follower 2, refits leader
    barrier.wait();

    // Scenario 4: stale follower — fetches may land on the frozen replica
    // (stale-but-consistent epoch 1) or a current one (epoch 2). Either
    // way no decision may claim safe where the truth is not-safe.
    for _ in 0..scale.rounds_per_phase {
        load_round(
            &mut client,
            &mut guard,
            &mut sensor,
            &mut rng,
            &site,
            &mut audit,
            &mut stats,
            scale.bouts_per_round,
        );
    }

    publish_failovers(&client, &mut last_failovers, &stats.tallies);
    barrier.wait(); // scenario 4 done; main resumes follower 2, kills leader
    barrier.wait();

    // Scenario 5: leader loss — converge to the refit epoch through the
    // surviving followers.
    let killed = kill_leader_at.lock().unwrap().expect("main records the kill instant");
    for attempt in 0.. {
        assert!(attempt < 1_000, "client never converged after the leader died");
        if let Some(model) = try_fetch(&mut client, &mut stats) {
            guard.refresh(model);
            if client.cached_epoch(CHANNEL) >= REFIT_EPOCH {
                stats.recovery_leader_ns = Some(killed.elapsed().as_nanos() as u64);
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    for _ in 0..scale.rounds_per_phase {
        load_round(
            &mut client,
            &mut guard,
            &mut sensor,
            &mut rng,
            &site,
            &mut audit,
            &mut stats,
            scale.bouts_per_round,
        );
    }

    publish_failovers(&client, &mut last_failovers, &stats.tallies);
    stats.final_epoch = client.cached_epoch(CHANNEL);
    stats.obs = client.obs_snapshot();
    stats.audit_total = audit.total();
    stats.audit_dropped = audit.dropped();
    stats.audit_retained = audit.len() as u64;
    stats.audit_downgrades = audit.downgrades();
    stats
}

/// Polls `catalog` until `channel` reaches `epoch` (replication is
/// asynchronous; the drill only advances once the topology settled).
fn wait_for_epoch(catalog: &Arc<RwLock<ModelCatalog>>, epoch: u64, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let now = catalog.read().unwrap().channel(CHANNEL).map_or(0, |c| c.epoch);
        if now >= epoch {
            return;
        }
        assert!(Instant::now() < deadline, "{what} never reached epoch {epoch} (at {now})");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut seed: u64 = 42;
    let mut clients_override: Option<usize> = None;
    let mut out = String::from("target/BENCH_failover.json");
    let mut timeline = String::from("results/fleet_timeline.jsonl");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("--seed takes a u64");
            }
            "--clients" => {
                i += 1;
                clients_override = Some(args[i].parse().expect("--clients takes a count"));
            }
            "--out" => {
                i += 1;
                out = args[i].clone();
            }
            "--timeline" => {
                i += 1;
                timeline = args[i].clone();
            }
            other => panic!("unknown argument {other:?}"),
        }
        i += 1;
    }
    let mut scale = Scale::new(quick);
    if let Some(n) = clients_override {
        scale.clients = n;
    }
    let scale = Arc::new(scale);

    let started = Instant::now();
    let base = dataset(300);
    let model = constructor().fit(&base).expect("synthetic data trains");
    let config = ServeConfig {
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        frame_deadline: Duration::from_secs(1),
        max_connections: 32,
        ..ServeConfig::default()
    };

    // Leader: catalog + ingestion plane (the refit in scenario 4 goes
    // through the same path a crowd-sourced upload would).
    let leader_catalog = Arc::new(RwLock::new(ModelCatalog::new()));
    leader_catalog.write().unwrap().publish(CHANNEL, &model);
    let ingest_dir =
        std::env::temp_dir().join(format!("waldo-failover-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ingest_dir);
    let engine = RefitEngine::new(constructor(), Labeler::new(), base.clone(), model.clone());
    let plane = IngestPlane::open(&ingest_dir, Arc::clone(&leader_catalog), CHANNEL, engine)
        .expect("ingest plane opens");
    let mut leader = serve_with_ingest(
        "127.0.0.1:0",
        Arc::clone(&leader_catalog),
        config.clone(),
        Some(plane.clone()),
    )
    .expect("leader binds");
    let leader_addr = leader.addr();

    // Followers: own catalogs, own servers, pull-sync workers off the
    // leader. Both must mirror epoch 1 before any client starts.
    let f1_catalog = Arc::new(RwLock::new(ModelCatalog::new()));
    let mut f1_server =
        serve("127.0.0.1:0", Arc::clone(&f1_catalog), config.clone()).expect("follower 1 binds");
    let f1_addr = f1_server.addr();
    let f1_worker = ReplicaWorker::spawn(
        ReplicaFollower::new(
            vec![leader_addr],
            Arc::clone(&f1_catalog),
            vec![CHANNEL],
            Duration::from_secs(1),
        ),
        SYNC_INTERVAL,
    );
    let f2_catalog = Arc::new(RwLock::new(ModelCatalog::new()));
    let mut f2_server =
        serve("127.0.0.1:0", Arc::clone(&f2_catalog), config.clone()).expect("follower 2 binds");
    let f2_addr = f2_server.addr();
    let f2_worker = ReplicaWorker::spawn(
        ReplicaFollower::new(
            vec![leader_addr],
            Arc::clone(&f2_catalog),
            vec![CHANNEL],
            Duration::from_secs(1),
        ),
        SYNC_INTERVAL,
    );
    wait_for_epoch(&f1_catalog, 1, "follower 1");
    wait_for_epoch(&f2_catalog, 1, "follower 2");

    // The fleet observer rides the whole drill: it polls every node's
    // metrics export, samples the shared client tallies, and streams the
    // per-tick timeline `gate --slo` evaluates afterwards. Killed nodes
    // just become poll errors.
    let tallies = Arc::new(FleetTallies::default());
    let observer = FleetObserver::spawn(
        vec![
            FleetNode::new("leader", leader_addr),
            FleetNode::new("follower1", f1_addr),
            FleetNode::new("follower2", f2_addr),
        ],
        vec![
            ExternalCounter::new("fetch_ok", Arc::clone(&tallies.fetch_ok)),
            ExternalCounter::new("fetch_err", Arc::clone(&tallies.fetch_err)),
            ExternalCounter::new("incorrect_safe", Arc::clone(&tallies.incorrect_safe)),
            ExternalCounter::new("failovers", Arc::clone(&tallies.failovers)),
        ],
        Duration::from_millis(50),
        Some(std::path::PathBuf::from(&timeline)),
    );
    eprintln!(
        "failover_drill: seed {seed}, {} clients, fault injection {} — leader {leader_addr}, \
         followers {f1_addr} / {f2_addr}",
        scale.clients,
        if cfg!(feature = "fault") { "ON" } else { "OFF (build with --features fault)" },
    );

    let barrier = Arc::new(Barrier::new(scale.clients + 1));
    let kill_follower_at = Arc::new(Mutex::new(None::<Instant>));
    let kill_leader_at = Arc::new(Mutex::new(None::<Instant>));
    let replicas = [leader_addr, f1_addr, f2_addr];
    let handles: Vec<_> = (0..scale.clients as u64)
        .map(|index| {
            // Rotate the endpoint list per client so every replica starts
            // as someone's sticky choice — each kill scenario then hits at
            // least one client mid-session.
            let r = (index as usize) % replicas.len();
            let endpoints: Vec<SocketAddr> =
                (0..replicas.len()).map(|k| replicas[(r + k) % replicas.len()]).collect();
            let barrier = Arc::clone(&barrier);
            let kill_follower_at = Arc::clone(&kill_follower_at);
            let kill_leader_at = Arc::clone(&kill_leader_at);
            let scale = Arc::clone(&scale);
            let tallies = Arc::clone(&tallies);
            std::thread::spawn(move || {
                run_client(
                    index,
                    seed,
                    endpoints,
                    &scale,
                    &barrier,
                    &kill_follower_at,
                    &kill_leader_at,
                    tallies,
                )
            })
        })
        .collect();

    barrier.wait(); // clients finished the healthy scenario
    f1_server.shutdown();
    drop(f1_server);
    *kill_follower_at.lock().unwrap() = Some(Instant::now());
    eprintln!("failover_drill: follower 1 killed — failover scenario");
    barrier.wait();

    barrier.wait(); // clients finished the kill-a-follower scenario
    drop(f1_worker); // the dead replica's old sync worker goes too
    let f1_catalog = Arc::new(RwLock::new(ModelCatalog::new())); // fresh: full resync
    let mut f1_server =
        serve(f1_addr, Arc::clone(&f1_catalog), config.clone()).expect("follower 1 rebinds");
    let f1_worker = ReplicaWorker::spawn(
        ReplicaFollower::new(
            vec![leader_addr],
            Arc::clone(&f1_catalog),
            vec![CHANNEL],
            Duration::from_secs(1),
        ),
        SYNC_INTERVAL,
    );
    wait_for_epoch(&f1_catalog, 1, "rebound follower 1");
    eprintln!("failover_drill: follower 1 rebound and resynced — rebind scenario");
    barrier.wait();

    barrier.wait(); // clients finished the rebind scenario
    let frozen = f2_worker.stop(); // follower 2 goes stale
    for k in 0..scale.refit_batches {
        let site = site_for(k as u64); // both polarities feed the refit
        plane.ingest(&reading_batch(k, &site)).expect("leader ingests the batch");
    }
    let t_refit = Instant::now();
    let refit = plane
        .run_refit_now()
        .expect("refit succeeds")
        .expect("ingested readings must change the model");
    let refit_ns = t_refit.elapsed().as_nanos() as u64;
    let leader_epoch = leader_catalog.read().unwrap().channel(CHANNEL).unwrap().epoch;
    assert_eq!(leader_epoch, REFIT_EPOCH, "the refit must publish epoch {REFIT_EPOCH}");
    wait_for_epoch(&f1_catalog, REFIT_EPOCH, "follower 1 after the refit");
    eprintln!(
        "failover_drill: leader refit to epoch {REFIT_EPOCH} ({} localities, {:.1} ms); \
         follower 2 frozen at epoch 1 — stale-follower scenario",
        refit.changed_localities.len(),
        refit_ns as f64 / 1e6,
    );
    barrier.wait();

    barrier.wait(); // clients finished the stale-follower scenario
    let f2_worker = ReplicaWorker::spawn(frozen, SYNC_INTERVAL);
    wait_for_epoch(&f2_catalog, REFIT_EPOCH, "resumed follower 2");
    leader.shutdown();
    drop(leader);
    *kill_leader_at.lock().unwrap() = Some(Instant::now());
    eprintln!("failover_drill: leader killed — leader-loss scenario");
    barrier.wait();

    let mut total = ClientStats::default();
    let mut recoveries: Vec<u64> = Vec::new();
    let mut panics = 0u64;
    let mut clients_converged = 0u64;
    for handle in handles {
        match handle.join() {
            Ok(stats) => {
                total.fetch_ok += stats.fetch_ok;
                total.fetch_err += stats.fetch_err;
                total.circuit_rejections += stats.circuit_rejections;
                total.wire_errors += stats.wire_errors;
                total.consistency_rejections += stats.consistency_rejections;
                total.decisions_total += stats.decisions_total;
                total.conservative_overrides += stats.conservative_overrides;
                total.incorrect_safe += stats.incorrect_safe;
                total.obs.attempts_total += stats.obs.attempts_total;
                total.obs.retries_total += stats.obs.retries_total;
                total.obs.reconnects_total += stats.obs.reconnects_total;
                total.obs.breaker_opens += stats.obs.breaker_opens;
                total.obs.half_open_probes += stats.obs.half_open_probes;
                total.obs.failovers_total += stats.obs.failovers_total;
                total.audit_total += stats.audit_total;
                total.audit_dropped += stats.audit_dropped;
                total.audit_retained += stats.audit_retained;
                total.audit_downgrades += stats.audit_downgrades;
                if stats.final_epoch >= REFIT_EPOCH {
                    clients_converged += 1;
                }
                recoveries.extend(stats.recovery_follower_ns);
                recoveries.extend(stats.recovery_leader_ns);
            }
            Err(_) => panics += 1,
        }
    }

    // The surviving followers keep serving while their sync loops error
    // against the dead leader; both must have counted at least one.
    let sync_deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let errs = f1_worker.snapshot().sync_errors_total + f2_worker.snapshot().sync_errors_total;
        if errs >= 2 {
            break;
        }
        assert!(
            Instant::now() < sync_deadline,
            "follower sync loops never erred against the dead leader"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let f1_snap = f1_worker.stop().snapshot();
    let f2_snap = f2_worker.stop().snapshot();
    let fleet = observer.stop();
    f1_server.shutdown();
    f2_server.shutdown();
    let _ = std::fs::remove_dir_all(&ingest_dir);

    recoveries.sort_unstable();
    let recovery_p50 = percentile(&recoveries, 0.50);
    let recovery_p99 = percentile(&recoveries, 0.99);
    let wall_seconds = started.elapsed().as_secs_f64();

    let report = json!({
        "seed": seed,
        "clients": scale.clients as u64,
        "quick": quick,
        "fault_enabled": cfg!(feature = "fault"),
        "replicas": 3u64,
        "scenario_kill_follower": true,
        "scenario_rebind": true,
        "scenario_stale_follower": true,
        "scenario_leader_loss": true,
        "fetch_ok": total.fetch_ok,
        "fetch_errors": total.fetch_err,
        "circuit_open_rejections": total.circuit_rejections,
        "protocol_violations": total.wire_errors,
        "consistency_rejections": total.consistency_rejections,
        "decisions_total": total.decisions_total,
        "conservative_overrides": total.conservative_overrides,
        "incorrect_safe_decisions": total.incorrect_safe,
        "clients_converged": clients_converged,
        "epoch_converged": REFIT_EPOCH,
        "failovers_total": total.obs.failovers_total,
        "client_attempts_total": total.obs.attempts_total,
        "client_retries_total": total.obs.retries_total,
        "client_reconnects_total": total.obs.reconnects_total,
        "breaker_opens": total.obs.breaker_opens,
        "follower_sync_errors_total": f1_snap.sync_errors_total + f2_snap.sync_errors_total,
        "follower_installs_total": f1_snap.installs_total + f2_snap.installs_total,
        "follower_full_resyncs_total": f1_snap.full_resyncs_total + f2_snap.full_resyncs_total,
        "follower_rounds_total": f1_snap.rounds_total + f2_snap.rounds_total,
        "recovery_samples": recoveries.len() as u64,
        "recovery_p50_ns": recovery_p50,
        "recovery_p99_ns": recovery_p99,
        "audit_decisions": total.audit_total,
        "audit_retained": total.audit_retained,
        "audit_dropped": total.audit_dropped,
        "audit_downgrades": total.audit_downgrades,
        "refit_ns": refit_ns,
        "refit_changed_localities": refit.changed_localities.len() as u64,
        "observer_ticks": fleet.ticks,
        "observer_poll_errors": fleet.poll_errors,
        "repl_lag_ms_p99": fleet.repl_lag_ms_p99,
        "repl_lag_epochs_max": fleet.repl_lag_epochs_max,
        "timeline": timeline.clone(),
        "panics": panics,
        "wall_seconds": wall_seconds,
    });
    write_json(&out, &report);
    eprintln!(
        "failover_drill: {} fetches ok / {} errors, {} failovers, {} decisions \
         (0 required incorrect-safe, got {}), {} / {} clients converged to epoch {REFIT_EPOCH}, \
         recovery p50 {:.2} ms / p99 {:.2} ms, {} panics -> {out}",
        total.fetch_ok,
        total.fetch_err,
        total.obs.failovers_total,
        total.decisions_total,
        total.incorrect_safe,
        clients_converged,
        scale.clients,
        recovery_p50 as f64 / 1e6,
        recovery_p99 as f64 / 1e6,
        panics,
    );
    eprintln!(
        "failover_drill: observer {} ticks ({} poll errors against killed nodes), \
         replication catch-up p99 {} ms, worst epoch lag {} -> {timeline}",
        fleet.ticks, fleet.poll_errors, fleet.repl_lag_ms_p99, fleet.repl_lag_epochs_max,
    );
    assert!(fleet.ticks >= 2, "the fleet observer never ticked");

    assert_eq!(panics, 0, "client thread panicked");
    assert_eq!(total.incorrect_safe, 0, "incorrect safe decision recorded");
    assert_eq!(total.wire_errors, 0, "undecodable response reached a client");
    assert_eq!(
        clients_converged, scale.clients as u64,
        "not every client converged to the post-failover epoch"
    );
    assert!(total.obs.failovers_total >= 1, "no client ever failed over");
    assert_eq!(
        total.audit_total, total.decisions_total,
        "every decision must land in the audit log"
    );
    assert_eq!(
        total.audit_downgrades, total.conservative_overrides,
        "audit-log downgrades must match the conservative-override tally"
    );
    assert_eq!(
        total.audit_retained + total.audit_dropped,
        total.audit_total,
        "retained + dropped must account for every audit record"
    );
}
