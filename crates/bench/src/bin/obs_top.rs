//! Live fleet dashboard: polls every node's `OBS_EXPORT` registry and
//! redraws a one-screen summary — per-node request rate, errors, active
//! connections, catalog epoch, WAL backlog, and serve-path latency
//! quantiles, plus the fleet rollup (replication lag, fetch outcomes,
//! failovers, incorrect-safe count).
//!
//! The first address is treated as the leader for lag accounting; the
//! rest are followers. Latency columns read 0 when servers were built
//! without the `obs` feature (the series still flow; only histogram
//! gauges are absent).
//!
//! `--self-test` instead stands up a leader (with an ingestion plane),
//! a pull-syncing follower, and a client in-process, attaches a
//! [`waldo_bench::fleet::FleetObserver`] over both nodes, drives
//! upload → refit → replicate → fetch traffic, and asserts the merged
//! fleet view, the JSONL timeline, and the SLO evaluation all agree —
//! the smoke check `scripts/check.sh` runs.
//!
//! Usage: `obs_top ADDR [ADDR...] [--cadence MS] [--ticks N]`
//!    or: `obs_top --self-test`

use std::net::SocketAddr;
use std::time::Duration;

use waldo_bench::fleet::{render_dashboard, ExternalCounter, FleetNode, FleetObserver};

fn usage() -> ! {
    eprintln!("usage: obs_top ADDR [ADDR...] [--cadence MS] [--ticks N] | obs_top --self-test");
    std::process::exit(2);
}

/// Runs the live dashboard until `ticks` frames have rendered (0 =
/// until interrupted).
fn top(addrs: &[SocketAddr], cadence: Duration, ticks: u64) {
    let nodes: Vec<FleetNode> = addrs
        .iter()
        .enumerate()
        .map(|(i, &addr)| {
            let label = if i == 0 { "leader".to_owned() } else { format!("follower{i}") };
            FleetNode::new(label, addr)
        })
        .collect();
    let window_ms = (cadence.as_millis() as u64 * 10).max(5_000);
    let observer = FleetObserver::spawn(nodes.clone(), Vec::new(), cadence, None);
    let mut rendered = 0u64;
    loop {
        std::thread::sleep(cadence);
        let frame = render_dashboard(&observer.registry_snapshot(), &nodes, window_ms);
        // Clear + home, then the frame: a flicker-free rewrite on any
        // ANSI terminal.
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        rendered += 1;
        if ticks > 0 && rendered >= ticks {
            break;
        }
    }
    let report = observer.stop();
    println!(
        "obs_top: {} ticks, {} poll errors, repl lag p99 {} ms",
        report.ticks, report.poll_errors, report.repl_lag_ms_p99,
    );
}

/// Stands up a two-node fleet in-process and checks the whole
/// observability loop: export → merge → timeline → SLO verdict.
fn self_test() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, RwLock};
    use waldo::wire::ReadingBatch;
    use waldo::{ModelConstructor, WaldoConfig};
    use waldo_bench::slo::{evaluate, parse_timeline, SloSet, TimelineTick};
    use waldo_data::{ChannelDataset, Labeler, Measurement, Safety};
    use waldo_geo::Point;
    use waldo_iq::FeatureVector;
    use waldo_rf::TvChannel;
    use waldo_sensors::{Observation, ReadingSample, SensorKind};
    use waldo_serve::{
        serve, serve_with_ingest, IngestPlane, ModelCatalog, ModelClient, ReplicaFollower,
        ReplicaWorker, ServeConfig,
    };
    use waldo_store::RefitEngine;

    // A synthetic channel: east half occupied, west half quiet.
    let mut measurements = Vec::new();
    let mut labels = Vec::new();
    for i in 0..200usize {
        let x = (i as f64 / 200.0) * 30_000.0;
        let y = ((i * 7) % 20) as f64 * 1_000.0;
        let not_safe = x > 15_000.0;
        let rss = if not_safe { -70.0 } else { -95.0 } + ((i % 5) as f64 - 2.0);
        measurements.push(Measurement {
            location: Point::new(x, y),
            odometer_m: i as f64 * 100.0,
            observation: Observation {
                rss_dbm: rss,
                features: FeatureVector {
                    rss_db: rss,
                    cft_db: rss - 11.3,
                    aft_db: rss - 12.5,
                    quadrature_imbalance_db: 0.0,
                    iq_kurtosis: 0.0,
                    edge_bin_db: -110.0,
                },
                raw_pilot_db: rss - 11.3,
            },
            true_rss_dbm: rss,
        });
        labels.push(Safety::from_not_safe(not_safe));
    }
    let dataset =
        ChannelDataset::new(TvChannel::new(30).unwrap(), SensorKind::RtlSdr, measurements, labels);
    let constructor = ModelConstructor::new(WaldoConfig::default().localities(4));
    let model = constructor.fit(&dataset).expect("synthetic data trains");

    // Leader: catalog + ingestion plane.
    let catalog = Arc::new(RwLock::new(ModelCatalog::new()));
    catalog.write().expect("catalog lock").publish(30, &model);
    let ingest_dir =
        std::env::temp_dir().join(format!("waldo-obs-top-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ingest_dir);
    let engine = RefitEngine::new(constructor, Labeler::new(), dataset, model);
    let plane = IngestPlane::open(&ingest_dir, Arc::clone(&catalog), 30, engine)
        .expect("ingest plane opens");
    let mut leader = serve_with_ingest(
        "127.0.0.1:0",
        Arc::clone(&catalog),
        ServeConfig::default(),
        Some(Arc::clone(&plane)),
    )
    .expect("leader binds");

    // Follower: own catalog, pull-syncing from the leader.
    let follower_catalog = Arc::new(RwLock::new(ModelCatalog::new()));
    let follower = ReplicaFollower::new(
        vec![leader.addr()],
        Arc::clone(&follower_catalog),
        vec![30],
        Duration::from_secs(5),
    );
    let worker = ReplicaWorker::spawn(follower, Duration::from_millis(10));
    let mut follower_server =
        serve("127.0.0.1:0", Arc::clone(&follower_catalog), ServeConfig::default())
            .expect("follower binds");

    // The observer over both nodes, with harness-side tallies and a
    // timeline the SLO layer will read back.
    let fetch_ok = Arc::new(AtomicU64::new(0));
    let fetch_err = Arc::new(AtomicU64::new(0));
    let incorrect_safe = Arc::new(AtomicU64::new(0));
    let failovers = Arc::new(AtomicU64::new(0));
    let timeline_path =
        std::env::temp_dir().join(format!("waldo-obs-top-timeline-{}.jsonl", std::process::id()));
    let nodes = vec![
        FleetNode::new("leader", leader.addr()),
        FleetNode::new("follower1", follower_server.addr()),
    ];
    let observer = FleetObserver::spawn(
        nodes.clone(),
        vec![
            ExternalCounter::new("fetch_ok", Arc::clone(&fetch_ok)),
            ExternalCounter::new("fetch_err", Arc::clone(&fetch_err)),
            ExternalCounter::new("incorrect_safe", Arc::clone(&incorrect_safe)),
            ExternalCounter::new("failovers", Arc::clone(&failovers)),
        ],
        Duration::from_millis(50),
        Some(timeline_path.clone()),
    );

    // Known traffic: fetches from both nodes, an upload, a refit, and
    // the replicated delta fetch.
    let mut client = ModelClient::new(leader.addr(), Duration::from_secs(5));
    let mut follower_client = ModelClient::new(follower_server.addr(), Duration::from_secs(5));
    for _ in 0..5 {
        client.fetch(30, 10.0, 10.0, -1.0).expect("leader fetch succeeds");
        fetch_ok.fetch_add(1, Ordering::Relaxed);
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match follower_client.fetch(30, 10.0, 10.0, -1.0) {
            Ok((_, report)) if report.epoch >= 1 => {
                fetch_ok.fetch_add(1, Ordering::Relaxed);
                break;
            }
            _ => {
                fetch_err.fetch_add(1, Ordering::Relaxed);
                assert!(
                    std::time::Instant::now() < deadline,
                    "follower never served the replicated epoch"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    let batch = ReadingBatch {
        batch_id: 1,
        channel: 30,
        readings: (0..8)
            .map(|i| {
                let rss = -60.0;
                ReadingSample {
                    location: Point::new(2_000.0 + f64::from(i) * 120.0, 4_000.0),
                    rss_dbm: rss,
                    features: FeatureVector {
                        rss_db: rss,
                        cft_db: rss - 11.3,
                        aft_db: rss - 12.5,
                        quadrature_imbalance_db: 0.0,
                        iq_kurtosis: 0.0,
                        edge_bin_db: -110.0,
                    },
                }
            })
            .collect(),
    };
    client.upload(&batch).expect("upload succeeds");
    plane.run_refit_now().expect("refit runs").expect("fresh segments refit the model");
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let (_, report) = follower_client.fetch(30, 10.0, 10.0, -1.0).expect("follower fetch");
        fetch_ok.fetch_add(1, Ordering::Relaxed);
        if report.epoch >= 2 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "epoch 2 never replicated");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Let the observer catch the settled state (it must see both nodes
    // at epoch 2 and the sampled counters behind the traffic above),
    // then stop it — the stop path runs one final tick.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let registry = observer.registry_snapshot();
        let leader_sampled =
            registry.series("leader/serve/requests_total").is_some_and(|s| s.sum_since(0) >= 5);
        let follower_sampled =
            registry.series("follower1/serve/requests_total").is_some_and(|s| s.sum_since(0) >= 1);
        let caught_up = registry
            .series("follower1/catalog/epoch/30")
            .and_then(|s| s.latest())
            .is_some_and(|p| p.value >= 2);
        if (leader_sampled && follower_sampled && caught_up)
            || std::time::Instant::now() >= deadline
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let report = observer.stop();

    // The merged fleet view: per-node namespaces plus the rollup series.
    assert!(report.ticks >= 2, "observer ticked (got {})", report.ticks);
    let registry = &report.registry;
    let leader_requests =
        registry.series("leader/serve/requests_total").expect("leader series merged");
    assert!(leader_requests.sum_since(0) >= 5, "leader sampled the fetch traffic");
    assert!(
        registry.series("follower1/serve/requests_total").is_some(),
        "follower series merged under its own prefix"
    );
    assert!(
        registry.series("leader/ingest/uploads_total").is_some(),
        "ingest counters reached the fleet view"
    );
    let leader_epoch = registry
        .series("leader/catalog/epoch/30")
        .and_then(|s| s.latest())
        .expect("leader epoch gauge present");
    assert_eq!(leader_epoch.value, 2, "leader settled at the refit epoch");
    let follower_epoch = registry
        .series("follower1/catalog/epoch/30")
        .and_then(|s| s.latest())
        .expect("follower epoch gauge present");
    assert_eq!(follower_epoch.value, 2, "follower caught up to the refit epoch");
    assert!(registry.series("fleet/repl_lag_epochs").is_some(), "lag gauge recorded");
    let ok_series = registry.series("fleet/fetch_ok").expect("external tallies recorded");
    assert_eq!(
        ok_series.sum_since(0),
        fetch_ok.load(Ordering::Relaxed),
        "external deltas sum back to the cumulative tally"
    );

    // One rendered frame, with every node row and the rollup.
    let frame = render_dashboard(registry, &nodes, 60_000);
    print!("{frame}");
    assert!(frame.contains("leader") && frame.contains("follower1"), "both nodes rendered");
    assert!(frame.contains("fleet: lag"), "rollup rendered");

    // The timeline round-trips through the SLO layer and passes.
    let text = std::fs::read_to_string(&timeline_path).expect("timeline written");
    let ticks = parse_timeline(&text);
    assert!(!ticks.is_empty(), "timeline has ticks");
    assert_eq!(ticks.len() as u64, report.ticks, "one line per tick");
    let ok_from_timeline: u64 = ticks.iter().map(|t| t.fetch_ok).sum();
    assert_eq!(
        ok_from_timeline,
        fetch_ok.load(Ordering::Relaxed),
        "timeline deltas reconstruct the fetch tally"
    );
    let slo = evaluate(&ticks, &SloSet::default());
    for result in &slo.results {
        println!("{result}");
    }
    assert!(slo.pass(), "healthy two-node run passes the default SLOs");

    // And a synthetic violation must fail: an incorrect-safe decision
    // appearing mid-run breaks the absolute safety objective.
    let mut violated: Vec<TimelineTick> = ticks.clone();
    violated.last_mut().expect("non-empty").incorrect_safe_cum = 1;
    let bad = evaluate(&violated, &SloSet::default());
    assert!(!bad.pass(), "an incorrect-safe decision must fail the gate");

    drop(client);
    drop(follower_client);
    worker.stop();
    follower_server.shutdown();
    leader.shutdown();
    let _ = std::fs::remove_file(&timeline_path);
    let _ = std::fs::remove_dir_all(&ingest_dir);
    println!("obs_top: self-test OK");
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--self-test") {
        self_test();
        return;
    }
    let mut cadence = Duration::from_millis(500);
    if let Some(i) = args.iter().position(|a| a == "--cadence") {
        args.remove(i);
        let ms: u64 = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
        args.remove(i);
        cadence = Duration::from_millis(ms.max(50));
    }
    let mut ticks = 0u64;
    if let Some(i) = args.iter().position(|a| a == "--ticks") {
        args.remove(i);
        ticks = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
        args.remove(i);
    }
    let addrs: Vec<SocketAddr> = args
        .iter()
        .map(|a| {
            a.parse().unwrap_or_else(|e| {
                eprintln!("obs_top: bad address {a:?}: {e}");
                std::process::exit(2);
            })
        })
        .collect();
    if addrs.is_empty() {
        usage();
    }
    top(&addrs, cadence, ticks);
}
