//! Shared helpers for the `BENCH_*.json` report writers.
//!
//! Every harness binary (`probe`, `serve_load`, `chaos_soak`) emits a
//! flat JSON report consumed by `gate` and `scripts/bench_floor.json`;
//! this module owns the two pieces they all duplicated — the
//! warn-don't-crash writer and the nearest-rank percentile — so the
//! on-disk format stays bit-compatible across binaries.

use serde::Value;

/// Serializes `report` pretty-printed to `path`, creating parent
/// directories as needed. Failures warn on stderr instead of panicking:
/// a benchmark that ran to completion should still print its summary
/// even when the report path is unwritable.
pub fn write_json(path: &str, report: &Value) {
    match serde_json::to_vec_pretty(report) {
        Ok(bytes) => {
            if let Some(dir) = std::path::Path::new(path).parent() {
                if !dir.as_os_str().is_empty() {
                    if let Err(e) = std::fs::create_dir_all(dir) {
                        eprintln!("warning: could not create {}: {e}", dir.display());
                    }
                }
            }
            if let Err(e) = std::fs::write(path, bytes) {
                eprintln!("warning: could not write {path}: {e}");
            } else {
                eprintln!("wrote {path}");
            }
        }
        Err(e) => eprintln!("warning: could not serialize {path}: {e}"),
    }
}

/// Nearest-rank percentile over an ascending-sorted slice; 0 when empty.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_handles_edges() {
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.0), 7);
        assert_eq!(percentile(&[7], 1.0), 7);
        let xs: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&xs, 0.0), 1);
        assert_eq!(percentile(&xs, 0.5), 51);
        assert_eq!(percentile(&xs, 1.0), 100);
    }

    #[test]
    fn write_json_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("waldo_report_test");
        let path = dir.join("nested").join("out.json");
        let path_str = path.to_str().unwrap().to_string();
        let report = serde_json::json!({ "a": 1, "b": [1, 2, 3] });
        write_json(&path_str, &report);
        let body = std::fs::read_to_string(&path).expect("report written");
        let back: Value = serde_json::from_str(&body).unwrap();
        assert_eq!(back, report);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
