//! Smoke tests of the experiment context at quick scale.

#[cfg(test)]
mod tests {
    use crate::{Context, Scale};

    #[test]
    fn quick_context_covers_all_channels_and_sensors() {
        let ctx = Context::quick();
        assert_eq!(ctx.campaign().channels().len(), 9);
        assert_eq!(ctx.campaign().sensors().len(), 3);
        assert_eq!(ctx.evaluation_channels().len(), 7);
        assert_eq!(ctx.low_cost_sensors().len(), 2);
        assert_eq!(ctx.scale(), Scale::Quick);
        assert_eq!(ctx.world().region().area_km2(), 700.0);
    }

    #[test]
    fn scales_differ_in_volume() {
        assert!(Scale::Full.readings() > Scale::Quick.readings());
        assert!(Scale::Full.spacing_m() < Scale::Quick.spacing_m());
    }
}
