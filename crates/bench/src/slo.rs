//! Declarative service-level objectives evaluated over a fleet
//! timeline (`results/fleet_timeline.jsonl`, one JSON object per
//! observer tick — the schema `crate::fleet` writes).
//!
//! Each objective is burn-rate shaped: an error budget over the whole
//! run (long window) plus a sustained-breach detector (short window of
//! consecutive ticks). A run fails an objective when either the total
//! budget is spent *or* the short window stays breached — the classic
//! "slow burn or fast burn" pair, sized down to drill-length runs.
//!
//! The defaults are tuned for the chaos drills, which *inject* faults
//! on purpose: availability floors sit low enough to absorb a killed
//! node, and replication lag is budgeted as a fraction of ticks rather
//! than a hard ceiling because `failover_drill` deliberately freezes a
//! follower for a whole scenario. The two non-negotiables stay
//! absolute: zero incorrect-safe detections, ever, and the overhead
//! ceiling enforced separately by `gate`.

use std::fmt;

use serde::Value;

/// One observer tick, parsed from a timeline line. Fields missing from
/// a line decode as zero so older timelines stay readable.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimelineTick {
    /// Wall-clock ms of the tick.
    pub ts_ms: u64,
    /// Fetches acknowledged this tick (delta).
    pub fetch_ok: u64,
    /// Fetches failed this tick (delta).
    pub fetch_err: u64,
    /// Worst fleet serve-path p99 at this tick, ns (0 without obs).
    pub fetch_p99_ns: u64,
    /// Instantaneous leader-minus-slowest-follower epoch gap.
    pub repl_lag_epochs: u64,
    /// Catch-up time measured this tick, ms (0 when none completed).
    pub repl_lag_ms: u64,
    /// Cumulative incorrect-safe decisions up to this tick.
    pub incorrect_safe_cum: u64,
    /// Cumulative client failovers up to this tick.
    pub failovers_cum: u64,
    /// Total WAL backlog across the fleet at this tick.
    pub wal_backlog: u64,
    /// Node polls that failed this tick.
    pub poll_errors: u64,
}

/// The objective set `gate --slo` evaluates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSet {
    /// Minimum fetch success ratio over the whole run (long window).
    pub availability_floor: f64,
    /// Consecutive ticks with zero successes and at least one failure
    /// that count as a sustained outage (short window).
    pub outage_ticks: usize,
    /// Ceiling on the fleet fetch p99 gauge, ns. Ticks above it spend
    /// latency budget; `latency_budget` of them may breach.
    pub fetch_p99_ceiling_ns: u64,
    /// Fraction of ticks allowed above the latency ceiling.
    pub latency_budget: f64,
    /// Fraction of ticks allowed with a nonzero epoch lag. Generous by
    /// design: the drills freeze followers on purpose.
    pub lag_budget: f64,
    /// Consecutive lagging ticks that count as replication stalled
    /// outright (short window).
    pub lag_stall_ticks: usize,
    /// Hard cap on incorrect-safe detections (the paper's safety
    /// invariant; always 0).
    pub incorrect_safe_max: u64,
}

impl Default for SloSet {
    /// Drill-tolerant defaults: 90 % availability (faults are
    /// injected), 1 ms p99 ceiling with a 20 % budget, half the run
    /// allowed to lag (a follower is frozen for one of five
    /// scenarios), zero incorrect-safe.
    fn default() -> Self {
        Self {
            availability_floor: 0.90,
            outage_ticks: 40,
            fetch_p99_ceiling_ns: 1_000_000_000,
            latency_budget: 0.20,
            lag_budget: 0.60,
            lag_stall_ticks: 200,
            incorrect_safe_max: 0,
        }
    }
}

/// Verdict for one objective.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloResult {
    /// Objective name (stable, machine-friendly).
    pub name: &'static str,
    /// Whether the run met it.
    pub pass: bool,
    /// Human-readable evidence either way.
    pub detail: String,
}

impl fmt::Display for SloResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let verdict = if self.pass { "PASS" } else { "FAIL" };
        write!(f, "[{verdict}] {}: {}", self.name, self.detail)
    }
}

/// The full evaluation: every objective's verdict plus the rollup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloReport {
    /// Per-objective verdicts, definition order.
    pub results: Vec<SloResult>,
    /// Ticks evaluated.
    pub ticks: usize,
    /// p99 of the nonzero catch-up measurements, ms.
    pub repl_lag_ms_p99: u64,
}

impl SloReport {
    /// True when every objective passed.
    pub fn pass(&self) -> bool {
        self.results.iter().all(|r| r.pass)
    }
}

fn field(map: &serde::Map, name: &str) -> u64 {
    map.get(name).and_then(Value::as_u64).unwrap_or(0)
}

/// Parses a timeline (JSONL) into ticks. Unparseable lines are
/// skipped — a killed process can truncate the final line mid-write,
/// and that must not invalidate the run.
pub fn parse_timeline(text: &str) -> Vec<TimelineTick> {
    text.lines()
        .filter_map(|line| {
            let line = line.trim();
            if line.is_empty() {
                return None;
            }
            let value = serde_json::from_str(line).ok()?;
            let Value::Object(map) = value else { return None };
            Some(TimelineTick {
                ts_ms: field(&map, "ts_ms"),
                fetch_ok: field(&map, "fetch_ok"),
                fetch_err: field(&map, "fetch_err"),
                fetch_p99_ns: field(&map, "fetch_p99_ns"),
                repl_lag_epochs: field(&map, "repl_lag_epochs"),
                repl_lag_ms: field(&map, "repl_lag_ms"),
                incorrect_safe_cum: field(&map, "incorrect_safe_cum"),
                failovers_cum: field(&map, "failovers_cum"),
                wal_backlog: field(&map, "wal_backlog"),
                poll_errors: field(&map, "poll_errors"),
            })
        })
        .collect()
}

/// Longest run of consecutive ticks matching `breached`.
fn longest_streak(ticks: &[TimelineTick], breached: impl Fn(&TimelineTick) -> bool) -> usize {
    let mut longest = 0usize;
    let mut current = 0usize;
    for tick in ticks {
        if breached(tick) {
            current += 1;
            longest = longest.max(current);
        } else {
            current = 0;
        }
    }
    longest
}

/// Evaluates the objective set over a parsed timeline.
pub fn evaluate(ticks: &[TimelineTick], slos: &SloSet) -> SloReport {
    let mut results = Vec::new();

    // Availability: long-window success ratio + short-window outage.
    let ok: u64 = ticks.iter().map(|t| t.fetch_ok).sum();
    let err: u64 = ticks.iter().map(|t| t.fetch_err).sum();
    let total = ok + err;
    let ratio = if total == 0 { 1.0 } else { ok as f64 / total as f64 };
    let outage = longest_streak(ticks, |t| t.fetch_ok == 0 && t.fetch_err > 0);
    let ratio_ok = ratio >= slos.availability_floor;
    let outage_ok = outage < slos.outage_ticks;
    results.push(SloResult {
        name: "availability",
        pass: ratio_ok && outage_ok,
        detail: format!(
            "{ok}/{total} fetches ok ({:.2}% vs {:.0}% floor), longest outage {outage} ticks \
             (limit {})",
            ratio * 100.0,
            slos.availability_floor * 100.0,
            slos.outage_ticks,
        ),
    });

    // Tail latency: budgeted fraction of ticks above the ceiling.
    // Gauge reads 0 in builds without obs recording; those ticks are
    // excluded rather than counted as instant passes.
    let measured: Vec<&TimelineTick> = ticks.iter().filter(|t| t.fetch_p99_ns > 0).collect();
    let above = measured.iter().filter(|t| t.fetch_p99_ns > slos.fetch_p99_ceiling_ns).count();
    let latency_frac = if measured.is_empty() { 0.0 } else { above as f64 / measured.len() as f64 };
    results.push(SloResult {
        name: "fetch_p99",
        pass: latency_frac <= slos.latency_budget,
        detail: format!(
            "{above}/{} measured ticks above {} ns ceiling ({:.1}% vs {:.0}% budget)",
            measured.len(),
            slos.fetch_p99_ceiling_ns,
            latency_frac * 100.0,
            slos.latency_budget * 100.0,
        ),
    });

    // Replication lag: budgeted lagging-tick fraction + stall streak.
    let lagging = ticks.iter().filter(|t| t.repl_lag_epochs > 0).count();
    let lag_frac = if ticks.is_empty() { 0.0 } else { lagging as f64 / ticks.len() as f64 };
    let stall = longest_streak(ticks, |t| t.repl_lag_epochs > 0);
    let lag_budget_ok = lag_frac <= slos.lag_budget;
    let stall_ok = stall < slos.lag_stall_ticks;
    results.push(SloResult {
        name: "replication_lag",
        pass: lag_budget_ok && stall_ok,
        detail: format!(
            "{lagging}/{} ticks lagging ({:.1}% vs {:.0}% budget), longest stall {stall} ticks \
             (limit {})",
            ticks.len(),
            lag_frac * 100.0,
            slos.lag_budget * 100.0,
            slos.lag_stall_ticks,
        ),
    });

    // Safety invariant: incorrect-safe is cumulative, so the last tick
    // carries the run's total.
    let incorrect = ticks.last().map_or(0, |t| t.incorrect_safe_cum);
    results.push(SloResult {
        name: "incorrect_safe",
        pass: incorrect <= slos.incorrect_safe_max,
        detail: format!("{incorrect} incorrect-safe decisions (max {})", slos.incorrect_safe_max),
    });

    let mut catch_ups: Vec<u64> =
        ticks.iter().map(|t| t.repl_lag_ms).filter(|&ms| ms > 0).collect();
    catch_ups.sort_unstable();
    SloReport {
        results,
        ticks: ticks.len(),
        repl_lag_ms_p99: crate::report::percentile(&catch_ups, 0.99),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy_tick(ts_ms: u64) -> TimelineTick {
        TimelineTick {
            ts_ms,
            fetch_ok: 50,
            fetch_err: 1,
            fetch_p99_ns: 40_000,
            repl_lag_ms: if ts_ms.is_multiple_of(500) { 12 } else { 0 },
            ..TimelineTick::default()
        }
    }

    fn healthy_timeline() -> Vec<TimelineTick> {
        (0..100).map(|i| healthy_tick(i * 100)).collect()
    }

    #[test]
    fn healthy_timeline_passes_default_slos() {
        let report = evaluate(&healthy_timeline(), &SloSet::default());
        assert!(report.pass(), "healthy run passes: {:#?}", report.results);
        assert_eq!(report.ticks, 100);
        assert!(report.repl_lag_ms_p99 >= 12, "catch-up samples roll up");
    }

    #[test]
    fn transient_lag_within_budget_passes() {
        let mut ticks = healthy_timeline();
        // One scenario's worth of deliberate follower freeze: 40 % of
        // ticks lag, under the 60 % budget and the stall streak.
        for tick in ticks.iter_mut().take(40) {
            tick.repl_lag_epochs = 1;
        }
        let report = evaluate(&ticks, &SloSet::default());
        assert!(report.pass(), "budgeted lag passes: {:#?}", report.results);
    }

    #[test]
    fn error_ratio_violation_fails_availability() {
        let mut ticks = healthy_timeline();
        for tick in ticks.iter_mut() {
            tick.fetch_ok = 1;
            tick.fetch_err = 9;
        }
        let report = evaluate(&ticks, &SloSet::default());
        assert!(!report.pass());
        let availability = &report.results[0];
        assert_eq!(availability.name, "availability");
        assert!(!availability.pass, "10% success ratio breaches the 90% floor");
    }

    #[test]
    fn sustained_outage_fails_even_with_good_overall_ratio() {
        let mut ticks: Vec<TimelineTick> = (0..1000).map(|i| healthy_tick(i * 100)).collect();
        for tick in ticks.iter_mut().take(40) {
            tick.fetch_ok = 0;
            tick.fetch_err = 1;
        }
        let report = evaluate(&ticks, &SloSet::default());
        let availability = &report.results[0];
        assert!(!availability.pass, "a 40-tick hard outage fails the short window");
    }

    #[test]
    fn sustained_lag_violation_fails_replication() {
        let mut ticks = healthy_timeline();
        for tick in ticks.iter_mut() {
            tick.repl_lag_epochs = 2;
        }
        let report = evaluate(&ticks, &SloSet::default());
        let lag = &report.results[2];
        assert_eq!(lag.name, "replication_lag");
        assert!(!lag.pass, "lagging the whole run breaches the budget");
    }

    #[test]
    fn any_incorrect_safe_fails() {
        let mut ticks = healthy_timeline();
        ticks.last_mut().unwrap().incorrect_safe_cum = 1;
        let report = evaluate(&ticks, &SloSet::default());
        let safety = &report.results[3];
        assert_eq!(safety.name, "incorrect_safe");
        assert!(!safety.pass, "the safety invariant is absolute");
    }

    #[test]
    fn sustained_tail_latency_fails() {
        let mut ticks = healthy_timeline();
        for tick in ticks.iter_mut().take(30) {
            tick.fetch_p99_ns = 5_000_000_000;
        }
        let report = evaluate(&ticks, &SloSet::default());
        let latency = &report.results[1];
        assert_eq!(latency.name, "fetch_p99");
        assert!(!latency.pass, "30% of ticks above the ceiling blows the 20% budget");
    }

    #[test]
    fn unmeasured_latency_gauge_is_excluded_not_passed() {
        let mut ticks = healthy_timeline();
        for tick in ticks.iter_mut() {
            tick.fetch_p99_ns = 0;
        }
        let report = evaluate(&ticks, &SloSet::default());
        assert!(report.results[1].pass);
        assert!(report.results[1].detail.contains("0/0 measured"));
    }

    #[test]
    fn parse_timeline_reads_fleet_schema_and_skips_garbage() {
        let text = "\
            {\"ts_ms\":100,\"nodes\":3,\"poll_errors\":0,\"leader_epoch\":2,\
             \"repl_lag_epochs\":1,\"repl_lag_ms\":7,\"fetch_p99_ns\":42000,\
             \"wal_backlog\":5,\"fetch_ok\":10,\"fetch_ok_cum\":10,\
             \"fetch_err\":1,\"fetch_err_cum\":1,\
             \"incorrect_safe\":0,\"incorrect_safe_cum\":0}\n\
            not json\n\
            \n\
            {\"ts_ms\":200,\"fetch_ok\":12,\"incorrect_safe_cum\":0}\n\
            {\"ts_ms\":300,\"truncated";
        let ticks = parse_timeline(text);
        assert_eq!(ticks.len(), 2, "garbage and truncated lines are skipped");
        assert_eq!(ticks[0].ts_ms, 100);
        assert_eq!(ticks[0].fetch_ok, 10);
        assert_eq!(ticks[0].repl_lag_epochs, 1);
        assert_eq!(ticks[0].repl_lag_ms, 7);
        assert_eq!(ticks[0].fetch_p99_ns, 42_000);
        assert_eq!(ticks[0].wal_backlog, 5);
        assert_eq!(ticks[1].fetch_ok, 12);
    }

    #[test]
    fn display_carries_verdict_and_detail() {
        let report = evaluate(&healthy_timeline(), &SloSet::default());
        let line = report.results[0].to_string();
        assert!(line.starts_with("[PASS] availability:"), "got {line}");
    }
}
