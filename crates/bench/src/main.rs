//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--quick] <experiment | all>
//! ```
//!
//! Experiments: fig4 fig5 fig6 fig7 sec2 fig10 fig12 fig13 fig14 fig15
//! tab1 fig16 tab2 fig17 fig18 model-size ablate-grid ablate-tree
//! fig12-truth all. Results are printed and written to `results/*.json`.

use waldo_bench::experiments::{
    self, device_exp, features_exp, sensors_exp, system_exp, write_result,
};
use waldo_bench::Context;

struct Experiment {
    name: &'static str,
    describe: &'static str,
    run: fn(&Context) -> serde_json::Value,
}

const EXPERIMENTS: &[Experiment] = &[
    Experiment { name: "fig5", describe: "sensor sensitivity CDFs", run: sensors_exp::fig5 },
    Experiment { name: "fig6", describe: "per-reading sensor comparison", run: sensors_exp::fig6 },
    Experiment { name: "fig7", describe: "RTL/USRP label correlation", run: sensors_exp::fig7 },
    Experiment { name: "sec2", describe: "low-cost sensor rates", run: sensors_exp::sec2 },
    Experiment { name: "fig4", describe: "spectrum-database error", run: sensors_exp::fig4 },
    Experiment {
        name: "fig10",
        describe: "feature boxplots + ANOVA screening",
        run: |ctx| {
            let a = features_exp::fig10_11(ctx);
            let b = features_exp::anova_screening(ctx);
            serde_json::json!({ "boxplots": a, "anova": b })
        },
    },
    Experiment { name: "fig12", describe: "feature sweep", run: system_exp::fig12 },
    Experiment { name: "fig13", describe: "localities sweep", run: system_exp::fig13 },
    Experiment { name: "fig14", describe: "training-set growth", run: system_exp::fig14 },
    Experiment { name: "fig15", describe: "antenna-corrected sweep", run: system_exp::fig15 },
    Experiment {
        name: "tab1",
        describe: "baseline comparison + per-channel errors",
        run: system_exp::tab1_fig16,
    },
    Experiment {
        name: "fig16",
        describe: "alias of tab1 (same computation)",
        run: system_exp::tab1_fig16,
    },
    Experiment { name: "tab2", describe: "qualitative matrix", run: system_exp::tab2 },
    Experiment { name: "fig17", describe: "convergence time", run: device_exp::fig17 },
    Experiment { name: "fig18", describe: "CPU utilization", run: device_exp::fig18 },
    Experiment { name: "model-size", describe: "descriptor sizes", run: system_exp::model_size },
    Experiment {
        name: "ablate-grid",
        describe: "locality-count ablation",
        run: system_exp::ablate_grid,
    },
    Experiment {
        name: "ablate-tree",
        describe: "tree overfitting ablation",
        run: system_exp::ablate_tree,
    },
    Experiment {
        name: "fig12-truth",
        describe: "feature sweep vs analyzer truth",
        run: system_exp::fig12_truth,
    },
    Experiment {
        name: "coverage",
        describe: "spatial maps: Waldo vs database availability",
        run: sensors_exp::coverage,
    },
    Experiment {
        name: "ablate-matched",
        describe: "detector-statistic AUC ablation",
        run: sensors_exp::ablate_matched,
    },
];

fn usage() -> ! {
    eprintln!("usage: repro [--quick] <experiment | all>");
    eprintln!("experiments:");
    for e in EXPERIMENTS {
        eprintln!("  {:12} {}", e.name, e.describe);
    }
    std::process::exit(2);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    args.retain(|a| a != "--quick");
    if args.is_empty() {
        usage()
    }

    let t0 = std::time::Instant::now();
    eprintln!(
        "building simulation context ({}) …",
        if quick { "quick scale" } else { "full paper scale" }
    );
    let ctx = if quick { Context::quick() } else { Context::full() };
    eprintln!("context ready in {:.1} s", t0.elapsed().as_secs_f64());

    let selected: Vec<&Experiment> = if args.iter().any(|a| a == "all") {
        // fig16 duplicates tab1; run it once.
        EXPERIMENTS.iter().filter(|e| e.name != "fig16").collect()
    } else {
        args.iter()
            .map(|target| match EXPERIMENTS.iter().find(|e| e.name == *target) {
                Some(e) => e,
                None => usage(),
            })
            .collect()
    };

    for e in selected {
        let t = std::time::Instant::now();
        println!("\n=== {} — {} ===", e.name, e.describe);
        let value = (e.run)(ctx);
        write_result(e.name, &value);
        println!("[{} finished in {:.1} s]", e.name, t.elapsed().as_secs_f64());
    }
    experiments::write_result(
        "meta",
        &serde_json::json!({
            "seed": waldo_bench::MASTER_SEED,
            "scale": if quick { "quick" } else { "full" },
            "elapsed_s": t0.elapsed().as_secs_f64(),
        }),
    );
    eprintln!("total {:.1} s", t0.elapsed().as_secs_f64());
}
