//! Shared context for the reproduction harness: one world + campaign per
//! process, cached, plus small formatting helpers used by every
//! experiment.

pub mod experiments;
pub mod fleet;
pub mod loadgen;
pub mod report;
pub mod slo;

mod context_tests;

use std::sync::OnceLock;

use waldo_data::{Campaign, CampaignBuilder};
use waldo_rf::world::{World, WorldBuilder};
use waldo_rf::TvChannel;
use waldo_sensors::SensorKind;

/// The master seed behind every published number in EXPERIMENTS.md.
pub const MASTER_SEED: u64 = 42;

/// Scale of a harness run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper scale: 5282 readings per channel, 150 m spacing.
    Full,
    /// Quick mode for smoke tests: 1200 readings, 500 m spacing.
    Quick,
}

impl Scale {
    /// Readings per channel at this scale.
    pub fn readings(self) -> usize {
        match self {
            Scale::Full => 5282,
            Scale::Quick => 1200,
        }
    }

    /// Reading spacing in metres at this scale.
    pub fn spacing_m(self) -> f64 {
        match self {
            Scale::Full => 150.0,
            Scale::Quick => 500.0,
        }
    }
}

/// The lazily built simulation context shared by all experiments.
pub struct Context {
    world: World,
    campaign: Campaign,
    scale: Scale,
}

impl Context {
    /// Builds the context at the given scale (expensive: drives the full
    /// campaign).
    pub fn build(scale: Scale) -> Self {
        let world = WorldBuilder::new().seed(MASTER_SEED).build();
        let campaign = CampaignBuilder::new(&world)
            .readings_per_channel(scale.readings())
            .spacing_m(scale.spacing_m())
            .seed(MASTER_SEED)
            .collect();
        Self { world, campaign, scale }
    }

    /// Process-wide cached full-scale context.
    pub fn full() -> &'static Context {
        static CTX: OnceLock<Context> = OnceLock::new();
        CTX.get_or_init(|| Context::build(Scale::Full))
    }

    /// Process-wide cached quick context.
    pub fn quick() -> &'static Context {
        static CTX: OnceLock<Context> = OnceLock::new();
        CTX.get_or_init(|| Context::build(Scale::Quick))
    }

    /// The simulated world.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The collected campaign.
    pub fn campaign(&self) -> &Campaign {
        &self.campaign
    }

    /// The scale this context was built at.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The seven evaluation channels.
    pub fn evaluation_channels(&self) -> Vec<TvChannel> {
        TvChannel::EVALUATION.to_vec()
    }

    /// The two low-cost sensors.
    pub fn low_cost_sensors(&self) -> [SensorKind; 2] {
        [SensorKind::RtlSdr, SensorKind::UsrpB200]
    }
}

/// Formats a rate for result tables.
pub fn pct(x: f64) -> String {
    format!("{:.4}", x)
}
