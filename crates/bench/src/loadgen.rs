//! Raw pipelined load driver for the serving plane.
//!
//! `serve_load`'s validation phase uses the hardened [`ModelClient`],
//! which is strictly request/response: one in-flight request per
//! connection, so a single client measures round-trip latency, not
//! server capacity. This module is the throughput half: it opens many
//! keep-alive connections from a small pool of driver threads, keeps a
//! fixed pipeline depth of unscoped fetches outstanding on every
//! connection, and counts responses completed inside the measurement
//! window. Connections run non-blocking with the same resumable
//! [`FrameReader`]/[`FrameWriter`] state machines the server's reactors
//! use, so the driver itself never stalls on one slow socket.
//!
//! Each connection tracks the newest epoch it has seen and sends it as
//! `have_epoch`, which is exactly the steady-state fleet shape: after
//! the first response per connection, every fetch hits the server's
//! pre-encoded `Unchanged` tail for the current epoch.
//!
//! [`ModelClient`]: waldo_serve::ModelClient

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use waldo_serve::protocol::{Fill, FrameReader, FrameWriter, Request, MAX_RESPONSE_BYTES};
use waldo_serve::Status;

/// Shape of one load run.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Concurrent keep-alive connections to hold open.
    pub connections: usize,
    /// Driver threads the connections are split across.
    pub threads: usize,
    /// Fetches kept in flight per connection.
    pub depth: usize,
    /// Measurement window; requests stop being issued at its end.
    pub duration: Duration,
    /// TV channel to fetch.
    pub channel: u8,
}

/// Aggregated result of one load run.
#[derive(Debug, Default)]
pub struct LoadOutcome {
    /// Fetch responses completed inside the measurement window.
    pub fetches: u64,
    /// Responses that arrived only during the post-window drain.
    pub late: u64,
    /// Connections lost or non-`Ok` statuses observed.
    pub errors: u64,
    /// In-window fetch round-trip latencies, nanoseconds (sampled).
    pub latency_ns: Vec<u64>,
    /// TCP connect + socket-setup latencies, nanoseconds (all connects).
    pub connect_ns: Vec<u64>,
    /// Connections that never got established.
    pub connect_failures: u64,
}

impl LoadOutcome {
    fn absorb(&mut self, other: LoadOutcome) {
        self.fetches += other.fetches;
        self.late += other.late;
        self.errors += other.errors;
        self.latency_ns.extend(other.latency_ns);
        self.connect_ns.extend(other.connect_ns);
        self.connect_failures += other.connect_failures;
    }
}

/// Keep only every k-th latency sample above this many in-flight
/// responses per window, bounding sample memory at high rates.
const LATENCY_SAMPLE_EVERY: u64 = 7;

/// How long after the window closes we wait for in-flight responses.
const DRAIN_GRACE: Duration = Duration::from_secs(10);

/// Connects are paced in bursts so a thousand simultaneous SYNs don't
/// overflow the accept queue and poison the connect-latency samples
/// with retransmit timeouts.
const CONNECT_BURST: usize = 64;
const CONNECT_PAUSE: Duration = Duration::from_millis(2);

struct LoadConn {
    stream: TcpStream,
    reader: FrameReader,
    writer: FrameWriter,
    /// Send times of in-flight requests, oldest first.
    inflight: VecDeque<Instant>,
    have_epoch: u64,
    alive: bool,
}

impl LoadConn {
    fn issue(&mut self, channel: u8, now: Instant) {
        let req = Request::Fetch {
            channel,
            x_km: 10.0,
            y_km: 10.0,
            radius_km: -1.0,
            have_epoch: self.have_epoch,
        };
        self.writer.push_frame(&req.encode(1));
        self.inflight.push_back(now);
    }
}

/// Parses just enough of a response to judge it: `(status, epoch)`.
/// Layout: magic(4) version(1) req_id(8) status(1) then, for fetches,
/// the body's leading `epoch u64`.
fn response_status_epoch(payload: &[u8]) -> Option<(u8, Option<u64>)> {
    if payload.len() < 14 {
        return None;
    }
    let status = payload[13];
    let epoch =
        payload.get(14..22).map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")));
    Some((status, epoch))
}

/// Opens `count` connections to `addr`, recording setup latency for
/// each. Failed connects are retried once, then counted.
fn connect_all(addr: SocketAddr, count: usize, outcome: &mut LoadOutcome) -> Vec<LoadConn> {
    let mut conns = Vec::with_capacity(count);
    for i in 0..count {
        if i > 0 && i.is_multiple_of(CONNECT_BURST) {
            std::thread::sleep(CONNECT_PAUSE);
        }
        let attempt = || -> std::io::Result<(TcpStream, u64)> {
            let t0 = Instant::now();
            let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
            stream.set_nodelay(true)?;
            stream.set_nonblocking(true)?;
            Ok((stream, t0.elapsed().as_nanos() as u64))
        };
        let connected = attempt().or_else(|_| {
            std::thread::sleep(Duration::from_millis(50));
            attempt()
        });
        match connected {
            Ok((stream, ns)) => {
                outcome.connect_ns.push(ns);
                conns.push(LoadConn {
                    stream,
                    reader: FrameReader::new(),
                    writer: FrameWriter::new(),
                    inflight: VecDeque::new(),
                    have_epoch: 0,
                    alive: true,
                });
            }
            Err(_) => outcome.connect_failures += 1,
        }
    }
    conns
}

/// Drives one batch of connections until the shared deadline passes and
/// the pipelines drain (or the grace period expires).
fn drive(mut conns: Vec<LoadConn>, config: LoadConfig, deadline: Instant) -> LoadOutcome {
    let mut outcome = LoadOutcome::default();
    let drain_deadline = deadline + DRAIN_GRACE;
    let ok = Status::Ok.code();

    // Prime every pipeline.
    let now = Instant::now();
    for conn in &mut conns {
        for _ in 0..config.depth {
            conn.issue(config.channel, now);
        }
    }

    let mut seen: u64 = 0;
    loop {
        let now = Instant::now();
        let in_window = now < deadline;
        let mut open = 0usize;
        let mut progress = false;
        for conn in &mut conns {
            if !conn.alive {
                continue;
            }
            open += 1;

            // Write phase: push queued request frames out.
            if !conn.writer.is_empty() && conn.writer.flush_into(&mut conn.stream).is_err() {
                outcome.errors += 1 + conn.inflight.len() as u64;
                conn.alive = false;
                continue;
            }

            // Read phase: drain whatever responses have landed.
            let mut fills = 0;
            'reads: while fills < 8 {
                match conn.reader.fill(&mut conn.stream) {
                    Ok(Fill::Bytes(_)) => {
                        fills += 1;
                        progress = true;
                        loop {
                            match conn.reader.pop_frame(MAX_RESPONSE_BYTES) {
                                Ok(Some(payload)) => {
                                    let sent = conn.inflight.pop_front();
                                    match response_status_epoch(&payload) {
                                        Some((status, epoch)) if status == ok => {
                                            if let Some(e) = epoch {
                                                conn.have_epoch = e;
                                            }
                                            if in_window {
                                                outcome.fetches += 1;
                                                seen += 1;
                                                if seen.is_multiple_of(LATENCY_SAMPLE_EVERY) {
                                                    if let Some(t) = sent {
                                                        outcome
                                                            .latency_ns
                                                            .push(now.duration_since(t).as_nanos()
                                                                as u64);
                                                    }
                                                }
                                            } else {
                                                outcome.late += 1;
                                            }
                                            if in_window {
                                                conn.issue(config.channel, now);
                                            }
                                        }
                                        _ => {
                                            outcome.errors += 1;
                                            conn.alive = false;
                                            break 'reads;
                                        }
                                    }
                                }
                                Ok(None) => break,
                                Err(_) => {
                                    outcome.errors += 1;
                                    conn.alive = false;
                                    break 'reads;
                                }
                            }
                        }
                    }
                    Ok(Fill::WouldBlock) => break,
                    Ok(Fill::Eof) | Err(_) => {
                        outcome.errors += conn.inflight.len() as u64;
                        conn.alive = false;
                        break;
                    }
                }
            }
        }

        if open == 0 {
            break;
        }
        if !in_window {
            let drained = conns.iter().all(|c| !c.alive || c.inflight.is_empty());
            if drained {
                break;
            }
            if now >= drain_deadline {
                for conn in &conns {
                    if conn.alive {
                        outcome.errors += conn.inflight.len() as u64;
                    }
                }
                break;
            }
        }
        if !progress {
            // Everything is in flight; let the server's reactor run.
            std::thread::yield_now();
        }
    }
    outcome
}

/// Runs the full load: connect, split across driver threads, drive to
/// the deadline, merge.
pub fn run(addr: SocketAddr, config: LoadConfig) -> LoadOutcome {
    let mut outcome = LoadOutcome::default();
    let conns = connect_all(addr, config.connections, &mut outcome);
    let threads = config.threads.clamp(1, conns.len().max(1));

    // Split connections into contiguous batches, one per driver thread.
    let mut batches: Vec<Vec<LoadConn>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, conn) in conns.into_iter().enumerate() {
        batches[i % threads].push(conn);
    }

    let deadline = Instant::now() + config.duration;
    let handles: Vec<_> = batches
        .into_iter()
        .filter(|b| !b.is_empty())
        .map(|batch| std::thread::spawn(move || drive(batch, config, deadline)))
        .collect();
    for handle in handles {
        match handle.join() {
            Ok(part) => outcome.absorb(part),
            Err(_) => outcome.errors += 1,
        }
    }
    outcome
}
