//! Fleet-wide observability: a poller that merges every node's
//! time-series registry into one view, tracks cross-node replication
//! lag, and streams a JSONL timeline the SLO gate evaluates after the
//! run.
//!
//! # Topology
//!
//! A [`FleetObserver`] is a background thread holding one wire client
//! per node. Each tick it pulls every node's `OBS_EXPORT` registry
//! (see `waldo_obs::series`), namespaces it under the node's label via
//! [`MetricsRegistry::prefixed`], and merges the result into one fleet
//! registry — `leader/serve/requests_total` and
//! `follower1/serve/requests_total` stay distinct series, while the
//! merge stays commutative so poll order never matters. Client-side
//! tallies that only the harness knows (fetch outcomes, incorrect-safe
//! decisions, failovers) ride along as [`ExternalCounter`]s: shared
//! atomics the drill's client threads bump and the observer samples
//! under `fleet/...` names.
//!
//! # Replication lag
//!
//! The leader's `catalog/epoch/<ch>` gauge is the reference clock: the
//! first tick that sees the leader at epoch `E` records the wall time,
//! and a follower's lag in milliseconds is measured when its own epoch
//! gauge first reaches `E`. Lag in *epochs* is instantaneous:
//! `leader_epoch - min(follower_epoch)`. A dead node (kill scenarios)
//! just stops answering; its poll failures are counted, never fatal,
//! and its last-known series stay in the fleet view.
//!
//! # Timeline
//!
//! When given a path, the observer appends one JSON object per tick —
//! the flat schema `gate --slo` and `waldo_bench::slo` consume:
//! `ts_ms`, per-tick fetch deltas, the current tail-latency gauge,
//! instantaneous replication lag, and the cumulative invariant counters.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use waldo_obs::series::{wall_ms, MetricsRegistry};
use waldo_serve::{ModelClient, RetryPolicy};

/// One node the observer polls.
#[derive(Debug, Clone)]
pub struct FleetNode {
    /// Series-name prefix for this node (`leader`, `follower1`, ...).
    pub label: String,
    /// Where its `OBS_EXPORT` endpoint listens.
    pub addr: SocketAddr,
}

impl FleetNode {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, addr: SocketAddr) -> Self {
        Self { label: label.into(), addr }
    }
}

/// A harness-side cumulative counter the observer samples each tick
/// (recorded as per-tick deltas under `fleet/<name>`). The drills wire
/// these to the tallies their client threads bump — the half of the
/// fleet story no server can see.
#[derive(Debug, Clone)]
pub struct ExternalCounter {
    /// Series name under the `fleet/` prefix.
    pub name: String,
    /// The cumulative value, bumped elsewhere.
    pub value: Arc<AtomicU64>,
}

impl ExternalCounter {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, value: Arc<AtomicU64>) -> Self {
        Self { name: name.into(), value }
    }
}

/// What [`FleetObserver::stop`] returns: the merged fleet registry and
/// the run's rollup summary.
#[derive(Debug)]
pub struct FleetReport {
    /// Every node's series, name-prefixed, merged.
    pub registry: MetricsRegistry,
    /// Poll rounds completed.
    pub ticks: u64,
    /// Node polls that failed (dead node, timeout); counted per poll.
    pub poll_errors: u64,
    /// p99 of the measured follower catch-up times, ms (0 = no epoch
    /// change was ever observed propagating).
    pub repl_lag_ms_p99: u64,
    /// Worst instantaneous epoch lag seen on any tick.
    pub repl_lag_epochs_max: u64,
    /// Where the timeline was written, if anywhere.
    pub timeline: Option<PathBuf>,
}

/// Measures how long followers trail the leader's epoch bumps.
#[derive(Debug, Default)]
struct LagTracker {
    /// Wall ms when the leader was first seen at each epoch.
    leader_first_seen: BTreeMap<u64, u64>,
    /// Last epoch each follower was seen at.
    follower_at: BTreeMap<String, u64>,
    /// Completed catch-up measurements, ms.
    caught_up_ms: Vec<u64>,
}

impl LagTracker {
    /// Feeds one tick's epoch observations; returns `(lag_epochs,
    /// lag_ms)` — the instantaneous epoch gap and the catch-up time of
    /// any follower that reached a newer epoch this tick (0 otherwise).
    fn observe(
        &mut self,
        now_ms: u64,
        leader_epoch: Option<u64>,
        followers: &[(String, u64)],
    ) -> (u64, u64) {
        if let Some(epoch) = leader_epoch {
            self.leader_first_seen.entry(epoch).or_insert(now_ms);
        }
        let mut caught_up_now = 0u64;
        let mut min_follower = None::<u64>;
        for (label, epoch) in followers {
            min_follower = Some(min_follower.map_or(*epoch, |m: u64| m.min(*epoch)));
            let prev = self.follower_at.insert(label.clone(), *epoch);
            // Only a *progression* is a catch-up measurement; the first
            // sighting of a follower has no baseline to measure from.
            if prev.is_some_and(|prev| *epoch > prev) {
                if let Some(&since) = self.leader_first_seen.get(epoch) {
                    let lag = now_ms.saturating_sub(since);
                    self.caught_up_ms.push(lag);
                    caught_up_now = caught_up_now.max(lag);
                }
            }
        }
        let lag_epochs = match (leader_epoch, min_follower) {
            (Some(lead), Some(follow)) => lead.saturating_sub(follow),
            _ => 0,
        };
        (lag_epochs, caught_up_now)
    }
}

/// Shared between the poll thread and `stop()`.
#[derive(Debug, Default)]
struct FleetShared {
    registry: MetricsRegistry,
    ticks: u64,
    poll_errors: u64,
    repl_lag_epochs_max: u64,
}

/// Background fleet poller. Build with [`FleetObserver::spawn`], stop
/// with [`stop`](Self::stop) to get the [`FleetReport`].
#[derive(Debug)]
pub struct FleetObserver {
    stop: Arc<AtomicBool>,
    shared: Arc<Mutex<FleetShared>>,
    handle: Option<JoinHandle<LagTracker>>,
    timeline: Option<PathBuf>,
}

impl FleetObserver {
    /// Spawns the poll thread. `nodes[0]` is the leader for lag
    /// accounting; the rest are followers. `externals` are sampled as
    /// per-tick deltas under `fleet/<name>`. With a `timeline` path the
    /// observer truncates the file and appends one JSON line per tick.
    pub fn spawn(
        nodes: Vec<FleetNode>,
        externals: Vec<ExternalCounter>,
        cadence: Duration,
        timeline: Option<PathBuf>,
    ) -> Self {
        assert!(!nodes.is_empty(), "the observer needs at least one node");
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Mutex::new(FleetShared::default()));
        let thread_stop = Arc::clone(&stop);
        let thread_shared = Arc::clone(&shared);
        let thread_timeline = timeline.clone();
        let handle = std::thread::Builder::new()
            .name("waldo-fleet".into())
            .spawn(move || {
                poll_loop(nodes, externals, cadence, thread_timeline, thread_stop, thread_shared)
            })
            .expect("spawn fleet observer");
        Self { stop, shared, handle: Some(handle), timeline }
    }

    /// A clone of the merged fleet registry right now (the live view
    /// `obs_top` renders between ticks).
    pub fn registry_snapshot(&self) -> MetricsRegistry {
        self.shared.lock().unwrap_or_else(|e| e.into_inner()).registry.clone()
    }

    /// Stops the poll thread and returns the rollup.
    pub fn stop(mut self) -> FleetReport {
        self.stop.store(true, Ordering::Relaxed);
        let lag = self.handle.take().expect("stop() runs once").join().unwrap_or_default();
        let shared = self.shared.lock().unwrap_or_else(|e| e.into_inner());
        let mut caught = lag.caught_up_ms;
        caught.sort_unstable();
        FleetReport {
            registry: shared.registry.clone(),
            ticks: shared.ticks,
            poll_errors: shared.poll_errors,
            repl_lag_ms_p99: crate::report::percentile(&caught, 0.99),
            repl_lag_epochs_max: shared.repl_lag_epochs_max,
            timeline: self.timeline.clone(),
        }
    }
}

impl Drop for FleetObserver {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The poll client: one attempt, short timeout — a dead node must cost
/// one tick a fraction of the cadence, not a retry schedule.
fn poll_client(addr: SocketAddr) -> ModelClient {
    ModelClient::new(addr, Duration::from_millis(500)).retry_policy(RetryPolicy {
        max_attempts: 1,
        base_delay: Duration::ZERO,
        max_delay: Duration::ZERO,
        jitter: 0.0,
    })
}

fn poll_loop(
    nodes: Vec<FleetNode>,
    externals: Vec<ExternalCounter>,
    cadence: Duration,
    timeline: Option<PathBuf>,
    stop: Arc<AtomicBool>,
    shared: Arc<Mutex<FleetShared>>,
) -> LagTracker {
    let mut clients: Vec<ModelClient> = nodes.iter().map(|n| poll_client(n.addr)).collect();
    let mut lag = LagTracker::default();
    let mut last_external: BTreeMap<String, u64> = BTreeMap::new();
    let mut timeline_file = timeline.and_then(|path| {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::File::create(&path).ok()
    });
    loop {
        let stopping = stop.load(Ordering::Relaxed);
        tick(
            &nodes,
            &mut clients,
            &externals,
            &mut lag,
            &mut last_external,
            timeline_file.as_mut(),
            &shared,
        );
        if stopping {
            // The tick above ran with `stopping` set: one final sample so
            // short-lived runs still export their last state.
            return lag;
        }
        let mut slept = Duration::ZERO;
        while slept < cadence && !stop.load(Ordering::Relaxed) {
            let nap = (cadence - slept).min(Duration::from_millis(10));
            std::thread::sleep(nap);
            slept += nap;
        }
    }
}

/// Newest value of a gauge series, 0 when absent.
fn gauge(registry: &MetricsRegistry, name: &str) -> u64 {
    registry.series(name).and_then(|s| s.latest()).map_or(0, |p| p.value)
}

/// Sum of a counter series' deltas newer than `since_ms`.
fn counter_since(registry: &MetricsRegistry, name: &str, since_ms: u64) -> u64 {
    registry.series(name).map_or(0, |s| s.sum_since(since_ms))
}

/// Largest current epoch gauge across this node's channels, `None` when
/// the node exported no catalog gauges (dead, or never polled).
fn node_epoch(registry: &MetricsRegistry, label: &str) -> Option<u64> {
    let prefix = format!("{label}/catalog/epoch/");
    registry
        .iter()
        .filter(|(name, _)| name.starts_with(&prefix))
        .filter_map(|(_, s)| s.latest())
        .map(|p| p.value)
        .max()
}

#[allow(clippy::too_many_arguments)]
fn tick(
    nodes: &[FleetNode],
    clients: &mut [ModelClient],
    externals: &[ExternalCounter],
    lag: &mut LagTracker,
    last_external: &mut BTreeMap<String, u64>,
    timeline: Option<&mut std::fs::File>,
    shared: &Arc<Mutex<FleetShared>>,
) {
    let now = wall_ms();
    let mut polled = Vec::with_capacity(nodes.len());
    let mut errors = 0u64;
    for (node, client) in nodes.iter().zip(clients.iter_mut()) {
        match client.obs_export() {
            Ok(registry) => polled.push(registry.prefixed(&node.label)),
            Err(_) => errors += 1,
        }
    }
    let external_deltas: Vec<(String, u64, u64)> = externals
        .iter()
        .map(|e| {
            let cumulative = e.value.load(Ordering::Relaxed);
            let prev = last_external.insert(e.name.clone(), cumulative).unwrap_or(0);
            (format!("fleet/{}", e.name), cumulative.saturating_sub(prev), cumulative)
        })
        .collect();

    let mut guard = shared.lock().unwrap_or_else(|e| e.into_inner());
    for registry in &polled {
        guard.registry.merge(registry);
    }
    for (name, delta, _) in &external_deltas {
        guard.registry.record_counter(name, now, *delta);
    }
    let leader_epoch = node_epoch(&guard.registry, &nodes[0].label);
    let followers: Vec<(String, u64)> = nodes[1..]
        .iter()
        .filter_map(|n| node_epoch(&guard.registry, &n.label).map(|e| (n.label.clone(), e)))
        .collect();
    let (lag_epochs, lag_ms) = lag.observe(now, leader_epoch, &followers);
    guard.registry.record_gauge("fleet/repl_lag_epochs", now, lag_epochs);
    if lag_ms > 0 {
        guard.registry.record_gauge("fleet/repl_lag_ms", now, lag_ms);
    }
    guard.ticks += 1;
    guard.poll_errors += errors;
    guard.repl_lag_epochs_max = guard.repl_lag_epochs_max.max(lag_epochs);

    // The tail-latency gauge the SLO layer watches: worst serve_handle
    // p99 across the fleet (0 in builds without obs recording).
    let fetch_p99_ns = nodes
        .iter()
        .map(|n| gauge(&guard.registry, &format!("{}/lat/serve_handle/p99_ns", n.label)))
        .max()
        .unwrap_or(0);
    let wal_backlog: u64 = nodes
        .iter()
        .map(|n| gauge(&guard.registry, &format!("{}/ingest/wal_backlog", n.label)))
        .sum();

    if let Some(file) = timeline {
        let external_json: Vec<String> = external_deltas
            .iter()
            .map(|(name, delta, cumulative)| {
                let short = name.strip_prefix("fleet/").unwrap_or(name);
                format!("\"{short}\":{delta},\"{short}_cum\":{cumulative}")
            })
            .collect();
        // Flat JSONL, hand-built so a tick costs no Value tree: the
        // schema `waldo_bench::slo::parse_timeline` documents.
        let mut line = format!(
            "{{\"ts_ms\":{now},\"nodes\":{},\"poll_errors\":{errors},\
             \"leader_epoch\":{},\"repl_lag_epochs\":{lag_epochs},\"repl_lag_ms\":{lag_ms},\
             \"fetch_p99_ns\":{fetch_p99_ns},\"wal_backlog\":{wal_backlog}",
            nodes.len(),
            leader_epoch.unwrap_or(0),
        );
        for fragment in &external_json {
            line.push(',');
            line.push_str(fragment);
        }
        line.push('}');
        let _ = writeln!(file, "{line}");
    }
}

/// Renders the fleet registry as a plain-text dashboard frame: one row
/// per node with its request rate, error count, active connections,
/// epoch, WAL backlog, and tail latency, then the fleet rollup row.
/// Shared by `obs_top` and its self-test.
pub fn render_dashboard(registry: &MetricsRegistry, nodes: &[FleetNode], window_ms: u64) -> String {
    use std::fmt::Write as _;
    let now = wall_ms();
    let since = now.saturating_sub(window_ms);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>8} {:>7} {:>7} {:>9} {:>10} {:>10}",
        "node", "req/s", "errors", "active", "epoch", "wal", "p50 us", "p99 us",
    );
    for node in nodes {
        let l = &node.label;
        let rate = registry
            .series(&format!("{l}/serve/requests_total"))
            .map_or(0.0, |s| s.rate_per_s(window_ms, now));
        let errors = counter_since(registry, &format!("{l}/serve/errors_total"), 0);
        let active = gauge(registry, &format!("{l}/serve/active_connections"));
        let epoch = node_epoch(registry, l).unwrap_or(0);
        let wal = gauge(registry, &format!("{l}/ingest/wal_backlog"));
        let p50 = gauge(registry, &format!("{l}/lat/serve_handle/p50_ns"));
        let p99 = gauge(registry, &format!("{l}/lat/serve_handle/p99_ns"));
        let _ = writeln!(
            out,
            "{:<12} {:>10.1} {:>8} {:>7} {:>7} {:>9} {:>10.1} {:>10.1}",
            l,
            rate,
            errors,
            active,
            epoch,
            wal,
            p50 as f64 / 1e3,
            p99 as f64 / 1e3,
        );
    }
    let lag_epochs = gauge(registry, "fleet/repl_lag_epochs");
    let lag_ms = registry.series("fleet/repl_lag_ms").and_then(|s| s.max_since(since)).unwrap_or(0);
    let fetch_ok = counter_since(registry, "fleet/fetch_ok", since);
    let fetch_err = counter_since(registry, "fleet/fetch_err", since);
    let incorrect = counter_since(registry, "fleet/incorrect_safe", 0);
    let failovers = counter_since(registry, "fleet/failovers", 0);
    let _ = writeln!(
        out,
        "fleet: lag {lag_epochs} epochs / {lag_ms} ms; fetch {fetch_ok} ok / {fetch_err} err \
         (window); failovers {failovers}; incorrect-safe {incorrect}",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_tracker_measures_catch_up_and_instantaneous_gap() {
        let mut lag = LagTracker::default();
        // Tick 1: leader and follower both at epoch 1.
        let (gap, ms) = lag.observe(1_000, Some(1), &[("f1".into(), 1)]);
        assert_eq!((gap, ms), (0, 0));
        // Tick 2: leader publishes epoch 2; follower still at 1.
        let (gap, ms) = lag.observe(1_100, Some(2), &[("f1".into(), 1)]);
        assert_eq!((gap, ms), (1, 0));
        // Tick 3: follower catches up; lag measured from the tick the
        // leader was first seen at epoch 2.
        let (gap, ms) = lag.observe(1_350, Some(2), &[("f1".into(), 2)]);
        assert_eq!((gap, ms), (0, 250));
        assert_eq!(lag.caught_up_ms, vec![250]);
    }

    #[test]
    fn lag_tracker_takes_worst_follower() {
        let mut lag = LagTracker::default();
        lag.observe(0, Some(3), &[("a".into(), 3), ("b".into(), 3)]);
        let (gap, _) = lag.observe(10, Some(5), &[("a".into(), 5), ("b".into(), 3)]);
        assert_eq!(gap, 2, "the gap tracks the furthest-behind follower");
    }

    #[test]
    fn dashboard_renders_rows_for_every_node() {
        let mut registry = MetricsRegistry::default();
        registry.record_counter("leader/serve/requests_total", wall_ms(), 42);
        registry.record_gauge("leader/catalog/epoch/30", wall_ms(), 7);
        let nodes = vec![FleetNode::new("leader", "127.0.0.1:1".parse().unwrap())];
        let frame = render_dashboard(&registry, &nodes, 10_000);
        assert!(frame.contains("leader"), "node row rendered");
        assert!(frame.contains("fleet: lag"), "rollup row rendered");
        assert!(frame.lines().count() >= 3, "header + node + rollup");
    }
}
