//! One module per experiment family. Each experiment exposes a `run(ctx)`
//! that prints the same rows/series the paper reports and returns a JSON
//! value the harness writes under `results/`.

pub mod device_exp;
pub mod features_exp;
pub mod sensors_exp;
pub mod system_exp;

use serde_json::Value;
use std::path::Path;

/// Writes one experiment's JSON next to the printed output.
pub fn write_result(name: &str, value: &Value) {
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        eprintln!("warning: could not create results/; skipping {name}.json");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_vec_pretty(value) {
        Ok(bytes) => {
            if let Err(e) = std::fs::write(&path, bytes) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Five-number summary used for the boxplot figures.
pub fn five_number_summary(xs: &[f64]) -> [f64; 5] {
    use waldo_ml::stats::percentile;
    [
        percentile(xs, 5.0),
        percentile(xs, 25.0),
        percentile(xs, 50.0),
        percentile(xs, 75.0),
        percentile(xs, 95.0),
    ]
}

/// Quantiles of an empirical CDF for compact reporting.
pub fn cdf_quantiles(xs: &[f64]) -> Vec<(f64, f64)> {
    use waldo_ml::stats::percentile;
    [5.0, 25.0, 50.0, 75.0, 95.0].iter().map(|&q| (q / 100.0, percentile(xs, q))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_number_summary_is_sorted() {
        let xs: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let s = five_number_summary(&xs);
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(s[2], 50.0);
    }

    #[test]
    fn cdf_quantiles_cover_the_range() {
        let xs = vec![1.0, 2.0, 3.0, 4.0];
        let q = cdf_quantiles(&xs);
        assert_eq!(q.len(), 5);
        assert!(q[0].1 >= 1.0 && q[4].1 <= 4.0);
        assert!((q[2].0 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn write_result_creates_a_readable_file() {
        let value = serde_json::json!({ "hello": 1 });
        write_result("selftest", &value);
        let bytes = std::fs::read("results/selftest.json").expect("written");
        let back: serde_json::Value = serde_json::from_slice(&bytes).expect("valid json");
        assert_eq!(back["hello"], 1);
        let _ = std::fs::remove_file("results/selftest.json");
    }
}
