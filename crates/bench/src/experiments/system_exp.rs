//! §4 experiments: Waldo system evaluation (Figures 12–16, Tables 1–2).

use serde_json::{json, Value};
use waldo::baseline::{qualitative_comparison, IdwDatabase, KnnDatabase, SensingOnly, VScope};
use waldo::eval::{cross_validate, evaluate_assessor, training_fraction_sweep};
use waldo::{ClassifierKind, WaldoConfig};
use waldo_data::{ChannelDataset, Labeler, Safety};
use waldo_iq::FeatureSet;
use waldo_ml::ConfusionMatrix;
use waldo_rf::antenna::measurement_height_correction_db;
use waldo_rf::TvChannel;
use waldo_sensors::SensorKind;

use crate::Context;

const FOLDS: usize = 10;

fn config(kind: ClassifierKind, features: usize, localities: usize) -> WaldoConfig {
    WaldoConfig::default()
        .classifier(kind)
        .features(FeatureSet::first_n(features))
        .localities(localities)
        .seed(crate::MASTER_SEED)
}

/// Runs one (channel × config) cross validation for many channels in
/// parallel on the shared deterministic runtime (one task per channel, so
/// the schedule scales with however many cores the host has).
fn cv_channels(
    ctx: &Context,
    sensor: SensorKind,
    channels: &[TvChannel],
    cfg: &WaldoConfig,
) -> Vec<(TvChannel, ConfusionMatrix)> {
    waldo_par::par_map(channels, |&ch| {
        let ds = ctx.campaign().dataset(sensor, ch).expect("campaign covers all channels");
        (ch, cross_validate(ds, cfg, FOLDS, crate::MASTER_SEED))
    })
}

fn averaged(results: &[(TvChannel, ConfusionMatrix)]) -> (f64, f64, f64) {
    let n = results.len() as f64;
    let fp = results.iter().map(|(_, cm)| cm.fp_rate()).sum::<f64>() / n;
    let fnr = results.iter().map(|(_, cm)| cm.fn_rate()).sum::<f64>() / n;
    let err = results.iter().map(|(_, cm)| cm.error_rate()).sum::<f64>() / n;
    (fp, fnr, err)
}

/// Fig 12: (a) per-channel error rate for NB/SVM with location only vs
/// location + signal features; (b, c) average FP / FN rates per feature
/// count, per sensor.
pub fn fig12(ctx: &Context) -> Value {
    let channels = ctx.evaluation_channels();
    println!("# Fig 12(a) — per-channel error (USRP): location-only vs location+RSS+CFT");
    let mut fig_a = Vec::new();
    for kind in [ClassifierKind::NaiveBayes, ClassifierKind::Svm] {
        let loc = cv_channels(ctx, SensorKind::UsrpB200, &channels, &config(kind, 0, 1));
        let feat = cv_channels(ctx, SensorKind::UsrpB200, &channels, &config(kind, 2, 1));
        for ((ch, cm_loc), (_, cm_feat)) in loc.iter().zip(&feat) {
            println!(
                "  {ch} {kind:3}: loc-only err {:.4}   loc+feat err {:.4}",
                cm_loc.error_rate(),
                cm_feat.error_rate()
            );
            fig_a.push(json!({
                "channel": ch.number(),
                "model": kind.to_string(),
                "loc_only_error": cm_loc.error_rate(),
                "loc_feat_error": cm_feat.error_rate(),
            }));
        }
    }

    println!("# Fig 12(b, c) — average FP / FN per feature count (1 = location only)");
    let mut fig_bc = Vec::new();
    for sensor in ctx.low_cost_sensors() {
        for kind in [ClassifierKind::NaiveBayes, ClassifierKind::Svm] {
            for nf in 0usize..=3 {
                let res = cv_channels(ctx, sensor, &channels, &config(kind, nf, 1));
                let (fp, fnr, err) = averaged(&res);
                println!(
                    "  {:10} {kind:3} features={}: FP {fp:.4}  FN {fnr:.4}  err {err:.4}",
                    sensor.to_string(),
                    nf + 1
                );
                fig_bc.push(json!({
                    "sensor": sensor.to_string(),
                    "model": kind.to_string(),
                    "n_features": nf + 1,
                    "fp_rate": fp,
                    "fn_rate": fnr,
                    "error_rate": err,
                }));
            }
        }
    }
    json!({ "fig12a": fig_a, "fig12bc": fig_bc })
}

/// Fig 13: FP / FN per locality count k ∈ {1, 3, 5} per feature count
/// (SVM, both sensors averaged over the evaluation channels).
pub fn fig13(ctx: &Context) -> Value {
    let channels = ctx.evaluation_channels();
    println!("# Fig 13 — localities (k-means clustering) sweep, SVM");
    let mut rows = Vec::new();
    for sensor in ctx.low_cost_sensors() {
        for k in [1usize, 3, 5] {
            for nf in 0usize..=3 {
                let res = cv_channels(ctx, sensor, &channels, &config(ClassifierKind::Svm, nf, k));
                let (fp, fnr, err) = averaged(&res);
                println!(
                    "  {:10} k={k} features={}: FP {fp:.4}  FN {fnr:.4}  err {err:.4}",
                    sensor.to_string(),
                    nf + 1
                );
                rows.push(json!({
                    "sensor": sensor.to_string(),
                    "clusters": k,
                    "n_features": nf + 1,
                    "fp_rate": fp,
                    "fn_rate": fnr,
                    "error_rate": err,
                }));
            }
        }
    }
    json!({ "sweep": rows })
}

/// Fig 14: effect of growing the training set (channels 15 and 30 in
/// detail; error summary over all channels/models at coarse fractions).
pub fn fig14(ctx: &Context) -> Value {
    println!("# Fig 14 — training-set growth (held-out 10 % test set)");
    let fractions: Vec<f64> = (1..=9).map(|i| i as f64 / 9.0).collect();
    let mut detail = Vec::new();
    for chn in [15u8, 30] {
        let ch = TvChannel::new(chn).expect("valid channel");
        for sensor in ctx.low_cost_sensors() {
            for kind in [ClassifierKind::NaiveBayes, ClassifierKind::Svm] {
                let ds = ctx.campaign().dataset(sensor, ch).expect("present");
                let sweep = training_fraction_sweep(
                    ds,
                    &config(kind, 2, 5),
                    &fractions,
                    crate::MASTER_SEED,
                );
                let first = sweep.first().expect("non-empty sweep").1.error_rate();
                let last = sweep.last().expect("non-empty sweep").1.error_rate();
                println!(
                    "  ch{chn} {:10} {kind:3}: err {first:.4} @11% → {last:.4} @100%",
                    sensor.to_string()
                );
                detail.push(json!({
                    "channel": chn,
                    "sensor": sensor.to_string(),
                    "model": kind.to_string(),
                    "curve": sweep
                        .iter()
                        .map(|(f, cm)| json!({ "fraction": f, "error": cm.error_rate() }))
                        .collect::<Vec<_>>(),
                }));
            }
        }
    }

    // Fig 14(c): error CDF across all channels × sensors × models at four
    // training fractions.
    let mut cdf = Vec::new();
    for frac in [0.25, 0.5, 0.75, 1.0] {
        let mut errors = Vec::new();
        for ch in ctx.evaluation_channels() {
            for sensor in ctx.low_cost_sensors() {
                for kind in [ClassifierKind::NaiveBayes, ClassifierKind::Svm] {
                    let ds = ctx.campaign().dataset(sensor, ch).expect("present");
                    let sweep = training_fraction_sweep(
                        ds,
                        &config(kind, 2, 5),
                        &[frac],
                        crate::MASTER_SEED,
                    );
                    errors.push(sweep[0].1.error_rate());
                }
            }
        }
        let med = waldo_ml::stats::median(&errors);
        println!("  all-cases error median at {:>3.0}% data: {med:.4}", frac * 100.0);
        cdf.push(json!({ "fraction": frac, "errors": errors, "median": med }));
    }
    json!({ "detail": detail, "cdf": cdf })
}

/// Fig 15: the Fig 12(b, c) sweep with the antenna correction factor
/// applied to the labels; channels that become fully protected are dropped
/// (the paper keeps 15, 17, 22, 47).
pub fn fig15(ctx: &Context) -> Value {
    let correction = measurement_height_correction_db();
    println!("# Fig 15 — feature sweep with +{correction:.1} dB antenna correction");
    let mut rows = Vec::new();
    for sensor in ctx.low_cost_sensors() {
        // Relabel and keep channels that retain both classes.
        let mut usable: Vec<(TvChannel, ChannelDataset)> = Vec::new();
        for ch in ctx.evaluation_channels() {
            let labels = ctx.campaign().relabel(
                sensor,
                ch,
                &Labeler::new().antenna_correction_db(correction),
            );
            let not_safe = labels.iter().filter(|l| l.is_not_safe()).count();
            if not_safe > 0 && not_safe < labels.len() {
                let ds = ctx
                    .campaign()
                    .dataset(sensor, ch)
                    .expect("present")
                    .clone()
                    .with_labels(labels);
                usable.push((ch, ds));
            }
        }
        let kept: Vec<u8> = usable.iter().map(|(c, _)| c.number()).collect();
        println!("  {:10} usable channels: {kept:?}", sensor.to_string());
        if usable.is_empty() {
            println!("  (all channels fully protected after correction at this scale)");
            continue;
        }
        for kind in [ClassifierKind::NaiveBayes, ClassifierKind::Svm] {
            for nf in 0usize..=3 {
                let mut agg = Vec::new();
                for (ch, ds) in &usable {
                    let cm = cross_validate(ds, &config(kind, nf, 1), FOLDS, crate::MASTER_SEED);
                    agg.push((*ch, cm));
                }
                let (fp, fnr, err) = averaged(&agg);
                println!(
                    "  {:10} {kind:3} features={}: FP {fp:.4}  FN {fnr:.4}  err {err:.4}",
                    sensor.to_string(),
                    nf + 1
                );
                rows.push(json!({
                    "sensor": sensor.to_string(),
                    "model": kind.to_string(),
                    "n_features": nf + 1,
                    "fp_rate": fp,
                    "fn_rate": fnr,
                    "error_rate": err,
                    "channels": kept,
                }));
            }
        }
    }
    json!({ "sweep": rows, "correction_db": correction })
}

/// Table 1 + Fig 16: Waldo vs V-Scope (and the other baselines) on FP/FN
/// averaged over channels, plus per-channel error rates.
pub fn tab1_fig16(ctx: &Context) -> Value {
    let channels = ctx.evaluation_channels();
    println!("# Table 1 / Fig 16 — Waldo vs V-Scope (SVM, location + RSS + CFT, no clustering)");

    // Waldo via cross validation per sensor.
    let mut waldo_rows = Vec::new();
    for sensor in ctx.low_cost_sensors() {
        let res = cv_channels(ctx, sensor, &channels, &config(ClassifierKind::Svm, 2, 1));
        waldo_rows.push((sensor, res));
    }

    // V-Scope fitted per channel on the RTL dataset (the paper's V-Scope
    // consumes the same collected measurements).
    let mut vscope_rows: Vec<(TvChannel, ConfusionMatrix)> = Vec::new();
    for &ch in &channels {
        let ds = ctx.campaign().dataset(SensorKind::RtlSdr, ch).expect("present");
        let txs: Vec<_> =
            ctx.world().field().transmitters().into_iter().filter(|t| t.channel() == ch).collect();
        let vs = VScope::fit(ds, txs, 5, crate::MASTER_SEED).expect("campaign data fits");
        vscope_rows.push((ch, evaluate_assessor(&vs, ds, None)));
    }

    // k-NN interpolation DB (fit on even readings, scored on odd ones —
    // scoring on its own training points would be leakage) and
    // sensing-only for the wider comparison.
    let mut knn_rows = Vec::new();
    let mut idw_rows = Vec::new();
    let mut sensing_rows = Vec::new();
    for &ch in &channels {
        let ds = ctx.campaign().dataset(SensorKind::RtlSdr, ch).expect("present");
        let train: Vec<usize> = (0..ds.len()).filter(|i| i % 2 == 0).collect();
        let test: Vec<usize> = (0..ds.len()).filter(|i| i % 2 == 1).collect();
        let knn = KnnDatabase::fit(&ds.subset(&train), 5).expect("non-empty dataset");
        knn_rows.push((ch, evaluate_assessor(&knn, &ds.subset(&test), None)));
        let idw = IdwDatabase::fit(&ds.subset(&train)).expect("non-empty dataset");
        idw_rows.push((ch, evaluate_assessor(&idw, &ds.subset(&test), None)));
        sensing_rows.push((ch, evaluate_assessor(&SensingOnly::fcc(), ds, None)));
    }

    let (vs_fp, vs_fn, vs_err) = averaged(&vscope_rows);
    println!("V-Scope        : FP {vs_fp:.4}  FN {vs_fn:.4}  err {vs_err:.4}");
    let mut table = vec![json!({
        "system": "V-Scope",
        "fp_rate": vs_fp, "fn_rate": vs_fn, "error_rate": vs_err,
    })];
    for (sensor, res) in &waldo_rows {
        let (fp, fnr, err) = averaged(res);
        println!("Waldo {:9}: FP {fp:.4}  FN {fnr:.4}  err {err:.4}", sensor.to_string());
        table.push(json!({
            "system": format!("Waldo {sensor}"),
            "fp_rate": fp, "fn_rate": fnr, "error_rate": err,
        }));
    }
    let (knn_fp, knn_fn, knn_err) = averaged(&knn_rows);
    println!("kNN database   : FP {knn_fp:.4}  FN {knn_fn:.4}  err {knn_err:.4}");
    let (idw_fp, idw_fn, idw_err) = averaged(&idw_rows);
    println!("IDW database   : FP {idw_fp:.4}  FN {idw_fn:.4}  err {idw_err:.4}");
    let (s_fp, s_fn, s_err) = averaged(&sensing_rows);
    println!("Sensing −114   : FP {s_fp:.4}  FN {s_fn:.4}  err {s_err:.4}");
    table.push(json!({
        "system": "kNN database", "fp_rate": knn_fp, "fn_rate": knn_fn, "error_rate": knn_err,
    }));
    table.push(json!({
        "system": "IDW database", "fp_rate": idw_fp, "fn_rate": idw_fn, "error_rate": idw_err,
    }));
    table.push(json!({
        "system": "Sensing-only (-114 dBm)", "fp_rate": s_fp, "fn_rate": s_fn, "error_rate": s_err,
    }));

    println!("# Fig 16 — per-channel error rate");
    let mut fig16 = Vec::new();
    for (i, &ch) in channels.iter().enumerate() {
        let vs = vscope_rows[i].1.error_rate();
        let usrp = waldo_rows
            .iter()
            .find(|(s, _)| *s == SensorKind::UsrpB200)
            .map(|(_, r)| r[i].1.error_rate())
            .unwrap_or(f64::NAN);
        let rtl = waldo_rows
            .iter()
            .find(|(s, _)| *s == SensorKind::RtlSdr)
            .map(|(_, r)| r[i].1.error_rate())
            .unwrap_or(f64::NAN);
        println!("  {ch}: V-Scope {vs:.4}  Waldo-USRP {usrp:.4}  Waldo-RTL {rtl:.4}");
        fig16.push(json!({
            "channel": ch.number(),
            "vscope_error": vs,
            "waldo_usrp_error": usrp,
            "waldo_rtl_error": rtl,
        }));
    }
    json!({ "table1": table, "fig16": fig16 })
}

/// Table 2: the qualitative comparison matrix.
pub fn tab2(_ctx: &Context) -> Value {
    println!("# Table 2 — qualitative comparison");
    let rows = qualitative_comparison();
    for r in &rows {
        println!(
            "{:26} | {:46} | safety {:9} | efficiency {:9} | overhead {}",
            r.approach, r.information_source, r.safety, r.efficiency, r.overhead
        );
    }
    json!({
        "rows": rows
            .iter()
            .map(|r| json!({
                "approach": r.approach,
                "information_source": r.information_source,
                "safety": r.safety,
                "efficiency": r.efficiency,
                "overhead": r.overhead,
            }))
            .collect::<Vec<_>>()
    })
}

/// §5 model-size: serialized descriptor bytes for NB vs SVM models
/// (paper: ≈4 kB NB, ≈40 kB SVM).
pub fn model_size(ctx: &Context) -> Value {
    println!("# §5 — model descriptor sizes (k = 3 localities, 2 signal features)");
    let mut rows = Vec::new();
    for kind in [ClassifierKind::NaiveBayes, ClassifierKind::Svm, ClassifierKind::Logistic] {
        let mut sizes = Vec::new();
        for ch in ctx.evaluation_channels() {
            let ds = ctx.campaign().dataset(SensorKind::RtlSdr, ch).expect("present");
            let model = waldo::ModelConstructor::new(config(kind, 2, 3))
                .fit(ds)
                .expect("campaign data trains");
            sizes.push(model.descriptor_bytes() as f64);
        }
        let mean = waldo_ml::stats::mean(&sizes);
        println!("{kind:3}: mean descriptor {:.1} kB", mean / 1024.0);
        rows.push(json!({ "model": kind.to_string(), "mean_bytes": mean, "per_channel": sizes }));
    }
    json!({ "sizes": rows })
}

/// Ablation: k-means localities vs a regular grid partition of equal cell
/// count (DESIGN.md §6).
pub fn ablate_grid(ctx: &Context) -> Value {
    println!("# Ablation — k-means localities vs single global model (SVM, 2 features)");
    let channels = ctx.evaluation_channels();
    let mut rows = Vec::new();
    for k in [1usize, 3, 6] {
        let res =
            cv_channels(ctx, SensorKind::RtlSdr, &channels, &config(ClassifierKind::Svm, 2, k));
        let (fp, fnr, err) = averaged(&res);
        println!("  k={k}: FP {fp:.4}  FN {fnr:.4}  err {err:.4}");
        rows.push(json!({ "k": k, "fp_rate": fp, "fn_rate": fnr, "error_rate": err }));
    }
    json!({ "k_sweep": rows })
}

/// Ablation: decision tree vs SVM/NB — reproduces the paper's "decision
/// trees hit ≈1 % error and were rejected as overfit" observation by
/// comparing train-set error against cross-validated error.
pub fn ablate_tree(ctx: &Context) -> Value {
    println!("# Ablation — decision tree overfitting check (ch 47, RTL)");
    let ch = TvChannel::new(47).expect("valid channel");
    let ds = ctx.campaign().dataset(SensorKind::RtlSdr, ch).expect("present");
    let mut rows = Vec::new();
    for kind in [ClassifierKind::DecisionTree, ClassifierKind::Svm, ClassifierKind::NaiveBayes] {
        let cfg = config(kind, 2, 1);
        let model =
            waldo::ModelConstructor::new(cfg.clone()).fit(ds).expect("campaign data trains");
        let train_cm = evaluate_assessor(&model, ds, None);
        let cv_cm = cross_validate(ds, &cfg, FOLDS, crate::MASTER_SEED);
        println!(
            "  {kind:3}: train err {:.4}  vs  10-fold err {:.4}",
            train_cm.error_rate(),
            cv_cm.error_rate()
        );
        rows.push(json!({
            "model": kind.to_string(),
            "train_error": train_cm.error_rate(),
            "cv_error": cv_cm.error_rate(),
        }));
    }
    json!({ "rows": rows })
}

/// Extra analysis: the same Fig 12 sweep scored against the *analyzer*
/// ground truth instead of the sensor's own labels — quantifies whether
/// signal features pull decisions toward physical truth.
pub fn fig12_truth(ctx: &Context) -> Value {
    println!("# Analysis — feature sweep scored against analyzer ground truth (RTL, SVM)");
    let channels = ctx.evaluation_channels();
    let mut rows = Vec::new();
    for nf in 0usize..=3 {
        let cfg = config(ClassifierKind::Svm, nf, 1);
        let constructor = waldo::ModelConstructor::new(cfg);
        let mut agg = ConfusionMatrix::default();
        for &ch in &channels {
            let ds = ctx.campaign().dataset(SensorKind::RtlSdr, ch).expect("present");
            let truth = ctx.campaign().ground_truth(ch);
            let model = constructor.fit(ds).expect("campaign data trains");
            let cm = evaluate_assessor(&model, ds, Some(truth.labels()));
            agg.merge(&cm);
        }
        println!(
            "  features={}: FP {:.4}  FN {:.4}  err {:.4}",
            nf + 1,
            agg.fp_rate(),
            agg.fn_rate(),
            agg.error_rate()
        );
        rows.push(json!({
            "n_features": nf + 1,
            "fp_rate": agg.fp_rate(),
            "fn_rate": agg.fn_rate(),
            "error_rate": agg.error_rate(),
        }));
    }
    json!({ "sweep": rows })
}

/// Helper for tests: a no-allocation view of Safety slices.
pub fn not_safe_fraction(labels: &[Safety]) -> f64 {
    if labels.is_empty() {
        return 0.0;
    }
    labels.iter().filter(|l| l.is_not_safe()).count() as f64 / labels.len() as f64
}
