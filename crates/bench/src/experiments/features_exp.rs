//! §3.2 experiments: signal-feature discriminability (Figures 10–11).

use serde_json::{json, Value};
use waldo_iq::FeatureKind;
use waldo_ml::anova::two_group;
use waldo_rf::TvChannel;
use waldo_sensors::SensorKind;

use super::five_number_summary;
use crate::Context;

/// Figures 10/11: boxplot summaries of RSS/CFT/AFT for safe vs not-safe on
/// channels 47 and 30, for both low-cost sensors.
pub fn fig10_11(ctx: &Context) -> Value {
    println!("# Fig 10/11 — feature boxplots (5/25/50/75/95 percentiles), safe vs not-safe");
    let mut rows = Vec::new();
    for chn in [47u8, 30] {
        let ch = TvChannel::new(chn).expect("valid channel");
        for sensor in ctx.low_cost_sensors() {
            let ds = ctx.campaign().dataset(sensor, ch).expect("present");
            for kind in FeatureKind::SELECTED {
                let mut safe = Vec::new();
                let mut not_safe = Vec::new();
                for (m, l) in ds.measurements().iter().zip(ds.labels()) {
                    let v = m.observation.features.value(kind);
                    if l.is_not_safe() {
                        not_safe.push(v);
                    } else {
                        safe.push(v);
                    }
                }
                let s = five_number_summary(&safe);
                let n = five_number_summary(&not_safe);
                println!(
                    "ch{chn} {:10} {:12}: safe med {:8.2}  not-safe med {:8.2}",
                    sensor.to_string(),
                    kind.to_string(),
                    s[2],
                    n[2]
                );
                rows.push(json!({
                    "channel": chn,
                    "sensor": sensor.to_string(),
                    "feature": kind.to_string(),
                    "safe_summary": s,
                    "not_safe_summary": n,
                }));
            }
        }
    }
    json!({ "boxplots": rows })
}

/// The ANOVA feature screening of §3.2: the selected trio must score
/// p ≈ 0 on every evaluation channel; each rejected candidate must score
/// p > 0.1 on at least one channel.
pub fn anova_screening(ctx: &Context) -> Value {
    println!("# §3.2 — ANOVA feature screening (worst-case p across evaluation channels)");
    let mut rows = Vec::new();
    for kind in FeatureKind::ALL {
        let mut worst_p = 0.0f64;
        let mut worst_ch = 0u8;
        for ch in ctx.evaluation_channels() {
            let ds = ctx
                .campaign()
                .dataset(SensorKind::RtlSdr, ch)
                .expect("campaign covers all channels");
            let mut safe = Vec::new();
            let mut not_safe = Vec::new();
            for (m, l) in ds.measurements().iter().zip(ds.labels()) {
                let v = m.observation.features.value(kind);
                if l.is_not_safe() {
                    not_safe.push(v);
                } else {
                    safe.push(v);
                }
            }
            let p = match two_group(&safe, &not_safe) {
                Ok(r) => r.p_value,
                Err(_) => 1.0, // single-class channel: no discriminability
            };
            if p >= worst_p {
                worst_p = p;
                worst_ch = ch.number();
            }
        }
        let selected = FeatureKind::SELECTED.contains(&kind);
        println!(
            "{:14} worst p = {:9.2e} (ch{worst_ch})  [{}]",
            kind.to_string(),
            worst_p,
            if selected { "selected" } else { "rejected" }
        );
        rows.push(json!({
            "feature": kind.to_string(),
            "worst_p": worst_p,
            "worst_channel": worst_ch,
            "selected": selected,
        }));
    }
    json!({ "screening": rows })
}
