//! §2 experiments: sensor viability (Figures 4–7 and the §2.2 rates).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::{json, Value};
use waldo::baseline::SpectrumDatabase;
use waldo::eval::evaluate_assessor;
use waldo_data::Labeler;
use waldo_ml::stats::pearson;
use waldo_rf::antenna::measurement_height_correction_db;
use waldo_rf::TvChannel;
use waldo_sensors::{SensorKind, SensorModel, SignalGenerator};

use super::cdf_quantiles;
use crate::Context;

/// Detector ablation: energy detection vs the pilot-narrowband estimator
/// vs a matched filter, as ROC/AUC over occupied-vs-vacant frames near the
/// decodability threshold (the §6 "better hardware" headroom).
pub fn ablate_matched(_ctx: &Context) -> Value {
    use waldo_iq::{matched::MatchedFilter, EnergyDetector, FrameSynthesizer};
    use waldo_ml::roc::RocCurve;

    println!("# Ablation — detection statistic AUC at a weak pilot (−95 dBm class vs vacant)");
    let mut rng = StdRng::seed_from_u64(0xAB1E);
    let sensor = SensorModel::rtl_sdr();
    let det = EnergyDetector::new();
    let mf = MatchedFilter::for_dc_pilot();
    // Raw-domain synthesis at the RTL front end: a channel at −95 dBm has
    // its pilot at −106.3 dBm, below the −100 dBm narrowband floor.
    let noise_raw = sensor.capture_noise_raw_db();
    let occupied = FrameSynthesizer::new(256)
        .pilot_dbfs(-95.0 - 11.3 + sensor.gain_db())
        .data_dbfs(-95.0 - 13.8 + sensor.gain_db())
        .noise_dbfs(noise_raw);
    let vacant = FrameSynthesizer::new(256).noise_dbfs(noise_raw);

    let mut rows = Vec::new();
    for (name, score) in
        [("wideband-energy", 0usize), ("pilot-narrowband", 1), ("matched-filter", 2)]
    {
        let mut scored = Vec::new();
        for i in 0..400 {
            let positive = i % 2 == 0;
            let frame =
                if positive { occupied.synthesize(&mut rng) } else { vacant.synthesize(&mut rng) };
            let s = match score {
                0 => det.wideband_dbfs(&frame),
                1 => det.pilot_dbfs(&frame),
                _ => mf.pilot_power_dbfs(&frame),
            };
            scored.push((s, positive));
        }
        let roc = RocCurve::from_scores(&scored).expect("both classes present");
        println!("  {name:17} AUC {:.3}", roc.auc());
        rows.push(json!({ "statistic": name, "auc": roc.auc() }));
    }
    json!({ "auc": rows })
}

/// Spatial coverage comparison: Waldo's map vs the database's, per the
/// Fig 1 pocket story.
pub fn coverage(ctx: &Context) -> Value {
    use rand::Rng;
    use waldo::baseline::SpectrumDatabase as Db;
    use waldo::coverage::CoverageMap;
    use waldo::{Assessor, ClassifierKind, ModelConstructor, WaldoConfig};
    use waldo_iq::FeatureSet;
    use waldo_sensors::{Calibration, Observation, SensorModel};

    println!("# Coverage maps — available spectrum per channel, Waldo (USRP) vs database");
    let sensor = SensorModel::usrp_b200();
    let cal = Calibration::factory(&sensor);
    let mut rows = Vec::new();
    for ch in ctx.evaluation_channels() {
        let ds = ctx.campaign().dataset(SensorKind::UsrpB200, ch).expect("present");
        let model = ModelConstructor::new(
            WaldoConfig::default()
                .classifier(ClassifierKind::NaiveBayes)
                .features(FeatureSet::first_n(2))
                .seed(crate::MASTER_SEED),
        )
        .fit(ds)
        .expect("campaign data trains");
        let txs: Vec<_> =
            ctx.world().field().transmitters().into_iter().filter(|t| t.channel() == ch).collect();
        let db = Db::new(ch, txs);
        let mut rng = StdRng::seed_from_u64(crate::MASTER_SEED ^ ch.number() as u64);
        let waldo_map = CoverageMap::from_fn(ctx.world().region(), 1_000.0, |p| {
            let rss = ctx.world().field().rss_dbm(ch, p);
            let obs = Observation::measure(&sensor, &cal, rss.is_finite().then_some(rss), &mut rng);
            model.assess(p, &obs)
        });
        let _ = rng.gen::<u8>();
        let probe = ds.measurements()[0].observation;
        let db_map = CoverageMap::from_fn(ctx.world().region(), 1_000.0, |p| db.assess(p, &probe));
        println!(
            "  {ch}: Waldo {:5.1} %  database {:5.1} %  (disagreement {:4.1} %)",
            waldo_map.safe_fraction() * 100.0,
            db_map.safe_fraction() * 100.0,
            waldo_map.disagreement(&db_map) * 100.0
        );
        rows.push(json!({
            "channel": ch.number(),
            "waldo_safe_fraction": waldo_map.safe_fraction(),
            "db_safe_fraction": db_map.safe_fraction(),
            "disagreement": waldo_map.disagreement(&db_map),
        }));
    }
    json!({ "per_channel": rows })
}

/// Fig 5: CDFs of raw USRP / RTL-SDR readings for calibrated wired inputs.
pub fn fig5(_ctx: &Context) -> Value {
    let mut rng = StdRng::seed_from_u64(5);
    let mut out = Vec::new();
    println!("# Fig 5 — raw reading CDF quantiles per wired input level");
    for (sensor, levels) in [
        (SensorModel::usrp_b200(), vec![-50.0, -80.0, -94.0, -103.0]),
        (SensorModel::rtl_sdr(), vec![-70.0, -80.0, -90.0, -94.0, -96.0, -98.0]),
    ] {
        for level in levels.iter().copied().map(Some).chain([None]) {
            let generator = match level {
                Some(l) => SignalGenerator::tone(l),
                None => SignalGenerator::off(),
            };
            let readings: Vec<f64> = (0..200).map(|_| generator.drive(&sensor, &mut rng)).collect();
            let q = cdf_quantiles(&readings);
            let label = level.map_or("none".to_string(), |l| format!("{l}"));
            println!(
                "{:17} in={:>6} dBm  p5={:8.2}  p50={:8.2}  p95={:8.2} dB",
                sensor.kind().to_string(),
                label,
                q[0].1,
                q[2].1,
                q[4].1
            );
            out.push(json!({
                "sensor": sensor.kind().to_string(),
                "input_dbm": level,
                "cdf_quantiles": q,
            }));
        }
    }
    json!({ "series": out })
}

/// Fig 6: decision + RSS sequences for channel 47 across the three sensors.
pub fn fig6(ctx: &Context) -> Value {
    let ch = TvChannel::new(47).expect("valid channel");
    println!("# Fig 6 — per-reading decisions and RSS, channel 47 (first 700 readings)");
    let mut series = Vec::new();
    for sensor in [SensorKind::RtlSdr, SensorKind::UsrpB200, SensorKind::SpectrumAnalyzer] {
        let ds = ctx.campaign().dataset(sensor, ch).expect("campaign covers all sensors");
        let n = ds.len().min(700);
        let rss: Vec<f64> = ds.measurements()[..n].iter().map(|m| m.observation.rss_dbm).collect();
        let labels: Vec<bool> = ds.labels()[..n].iter().map(|l| l.is_not_safe()).collect();
        let not_safe = labels.iter().filter(|&&b| b).count();
        println!(
            "{:17} not-safe {:4}/{n}   rss range [{:7.1}, {:6.1}] dBm",
            sensor.to_string(),
            not_safe,
            rss.iter().cloned().fold(f64::INFINITY, f64::min),
            rss.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        );
        series.push(json!({
            "sensor": sensor.to_string(),
            "rss_dbm": rss,
            "not_safe": labels,
        }));
    }
    // Cross-sensor RSS correlation on the same window (the "correlation
    // between the measurements from all devices is evident" claim).
    let rtl = ctx.campaign().dataset(SensorKind::RtlSdr, ch).expect("present");
    let sa = ctx.campaign().dataset(SensorKind::SpectrumAnalyzer, ch).expect("present");
    let n = rtl.len().min(700);
    let a: Vec<f64> = rtl.measurements()[..n].iter().map(|m| m.observation.rss_dbm).collect();
    let b: Vec<f64> = sa.measurements()[..n].iter().map(|m| m.observation.rss_dbm).collect();
    let rho = pearson(&a, &b);
    println!("RTL-vs-analyzer RSS correlation over the window: {rho:.3}");
    json!({ "series": series, "rtl_vs_analyzer_rss_corr": rho })
}

/// Fig 7: CDF of per-channel Pearson correlation between RTL and USRP
/// labels (median > 0.9 with one anomalous channel in the paper).
pub fn fig7(ctx: &Context) -> Value {
    println!("# Fig 7 — RTL/USRP label correlation per channel");
    let mut rows = Vec::new();
    let mut corrs = Vec::new();
    for ch in TvChannel::STUDY {
        let rtl = ctx.campaign().dataset(SensorKind::RtlSdr, ch).expect("present");
        let usrp = ctx.campaign().dataset(SensorKind::UsrpB200, ch).expect("present");
        let a: Vec<f64> =
            rtl.labels().iter().map(|l| f64::from(u8::from(l.is_not_safe()))).collect();
        let b: Vec<f64> =
            usrp.labels().iter().map(|l| f64::from(u8::from(l.is_not_safe()))).collect();
        // Fully occupied channels have constant labels: correlation is
        // undefined; report 1.0 when both sensors agree everywhere.
        let rho = if a.iter().all(|&v| v == a[0]) && b.iter().all(|&v| v == b[0]) {
            1.0
        } else {
            pearson(&a, &b)
        };
        println!("{ch}: corr {rho:+.3}");
        corrs.push(rho);
        rows.push(json!({ "channel": ch.number(), "correlation": rho }));
    }
    let median = waldo_ml::stats::median(&corrs);
    let min = corrs.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("median correlation {median:.3}; minimum (anomalous channel) {min:.3}");
    json!({ "per_channel": rows, "median": median, "min": min })
}

/// §2.2 headline rates: misdetection / false alarm of the low-cost sensors
/// against analyzer ground truth, pooled over all nine channels.
pub fn sec2(ctx: &Context) -> Value {
    println!("# §2.2 — low-cost sensor safety/efficiency vs analyzer ground truth");
    println!("(paper: RTL-SDR 39.8 % misdetect / 0.8 % false alarm; USRP 20.9 % / 5.2 %)");
    let mut rows = Vec::new();
    for sensor in ctx.low_cost_sensors() {
        let (mut fn_, mut nn, mut fp, mut np) = (0usize, 0usize, 0usize, 0usize);
        for ch in TvChannel::STUDY {
            let truth = ctx.campaign().ground_truth(ch);
            let ds = ctx.campaign().dataset(sensor, ch).expect("present");
            for (t, p) in truth.labels().iter().zip(ds.labels()) {
                match (t.is_not_safe(), p.is_not_safe()) {
                    (true, false) => {
                        fp += 1;
                        np += 1;
                    }
                    (true, true) => np += 1,
                    (false, true) => {
                        fn_ += 1;
                        nn += 1;
                    }
                    (false, false) => nn += 1,
                }
            }
        }
        let misdetect = fn_ as f64 / nn.max(1) as f64;
        let false_alarm = fp as f64 / np.max(1) as f64;
        println!("{sensor}: misdetection {misdetect:.3}, false alarm {false_alarm:.4}");
        rows.push(json!({
            "sensor": sensor.to_string(),
            "misdetection_rate": misdetect,
            "false_alarm_rate": false_alarm,
        }));
    }
    json!({ "rates": rows })
}

/// Fig 4: FN (and FP) rate of the generic spectrum database against the
/// analyzer ground truth, per channel, with and without the antenna
/// correction factor.
pub fn fig4(ctx: &Context) -> Value {
    println!("# Fig 4 — spectrum-database error vs analyzer ground truth");
    let correction = measurement_height_correction_db();
    let mut rows = Vec::new();
    for corrected in [false, true] {
        println!("antenna correction: {}", if corrected { "applied (+7.4 dB)" } else { "none" });
        for ch in TvChannel::STUDY {
            let truth = ctx.campaign().ground_truth(ch);
            let labels = if corrected {
                ctx.campaign().relabel(
                    SensorKind::SpectrumAnalyzer,
                    ch,
                    &Labeler::new().antenna_correction_db(correction),
                )
            } else {
                truth.labels().to_vec()
            };
            let txs: Vec<_> = ctx
                .world()
                .field()
                .transmitters()
                .into_iter()
                .filter(|t| t.channel() == ch)
                .collect();
            let db = SpectrumDatabase::new(ch, txs);
            let cm = evaluate_assessor(&db, truth, Some(&labels));
            let not_safe_frac =
                labels.iter().filter(|l| l.is_not_safe()).count() as f64 / labels.len() as f64;
            println!(
                "  {ch}: FN {:.3}  FP {:.3}  (protected fraction {:.2})",
                cm.fn_rate(),
                cm.fp_rate(),
                not_safe_frac
            );
            rows.push(json!({
                "channel": ch.number(),
                "antenna_corrected": corrected,
                "fn_rate": cm.fn_rate(),
                "fp_rate": cm.fp_rate(),
                "not_safe_fraction": not_safe_frac,
            }));
        }
    }
    json!({ "per_channel": rows, "antenna_correction_db": correction })
}
