//! §5 experiments: the phone deployment (Figures 17–18).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::{json, Value};
use waldo::device::{PhoneConfig, PhoneScanner};
use waldo::{ClassifierKind, ModelConstructor, WaldoConfig};
use waldo_geo::Point;
use waldo_iq::FeatureSet;
use waldo_rf::TvChannel;
use waldo_sensors::{SensorKind, SensorModel};

use super::cdf_quantiles;
use crate::Context;

fn phone_model(ctx: &Context, ch: TvChannel) -> waldo::WaldoModel {
    let ds = ctx.campaign().dataset(SensorKind::RtlSdr, ch).expect("campaign covers all channels");
    ModelConstructor::new(
        WaldoConfig::default()
            .classifier(ClassifierKind::NaiveBayes)
            .features(FeatureSet::first_n(2))
            .localities(3)
            .seed(crate::MASTER_SEED),
    )
    .fit(ds)
    .expect("campaign data trains")
}

/// Fig 17: CDF of convergence time for stationary sensing, plus the α
/// sweep (the paper found stationary convergence insensitive to α between
/// 0.5 and 5 dB) and the mobile divergence observation.
pub fn fig17(ctx: &Context) -> Value {
    println!("# Fig 17 — detector convergence time (stationary), α sweep, mobility");
    let ch = TvChannel::new(47).expect("valid channel");
    let model = phone_model(ctx, ch);
    let mut rng = StdRng::seed_from_u64(17);

    // Stationary runs at 60 random locations, α = 0.5 dB.
    let mut times = Vec::new();
    for i in 0..60 {
        let p = Point::new(rng.gen_range(0.0..35_000.0), rng.gen_range(0.0..20_000.0));
        let rss = ctx.world().field().rss_dbm(ch, p);
        let mut phone = PhoneScanner::new(
            PhoneConfig::default(),
            SensorModel::rtl_sdr(),
            crate::MASTER_SEED + i,
        );
        let run = phone.sense_channel(&model, p, rss.is_finite().then_some(rss));
        times.push(run.radio_time_s);
    }
    let q = cdf_quantiles(&times);
    let mean = waldo_ml::stats::mean(&times);
    println!(
        "stationary: mean {mean:.3} s   p5 {:.3}  p50 {:.3}  p95 {:.3} s (paper mean ≈ 0.19 s)",
        q[0].1, q[2].1, q[4].1
    );

    // α sweep: stationary convergence time for α ∈ {0.5 … 5} dB.
    let mut alpha_rows = Vec::new();
    for alpha in [0.5, 1.0, 2.0, 5.0] {
        let mut ts = Vec::new();
        for i in 0..20 {
            let p = Point::new(rng.gen_range(0.0..35_000.0), rng.gen_range(0.0..20_000.0));
            let rss = ctx.world().field().rss_dbm(ch, p);
            let mut phone = PhoneScanner::new(
                PhoneConfig { alpha_db: alpha, ..PhoneConfig::default() },
                SensorModel::rtl_sdr(),
                crate::MASTER_SEED + 100 + i,
            );
            ts.push(phone.sense_channel(&model, p, rss.is_finite().then_some(rss)).radio_time_s);
        }
        let m = waldo_ml::stats::mean(&ts);
        println!("α = {alpha:>3} dB: mean stationary convergence {m:.3} s");
        alpha_rows.push(json!({ "alpha_db": alpha, "mean_time_s": m }));
    }

    // Mobility: the device crosses a coverage boundary while sensing.
    let mut phone = PhoneScanner::new(
        PhoneConfig { max_captures: 400, ..PhoneConfig::default() },
        SensorModel::rtl_sdr(),
        crate::MASTER_SEED + 999,
    );
    let mut diverged = 0usize;
    let mut mobile_captures = Vec::new();
    let runs = 20usize;
    for r in 0..runs {
        let y = 1_000.0 + r as f64 * 900.0;
        let run = phone.sense_channel_moving(&model, |i| {
            // A scanning device revisits the same channel roughly once per
            // multi-channel sweep; at driving speed that is hundreds of
            // metres between same-channel readings — each reading lands in
            // a different shadowing blob.
            let p = Point::new(2_000.0 + i as f64 * 400.0, y);
            let rss = ctx.world().field().rss_dbm(ch, p);
            (p, rss.is_finite().then_some(rss))
        });
        if !run.converged {
            diverged += 1;
        }
        mobile_captures.push(run.captures as f64);
    }
    let stationary_captures = mean / PhoneConfig::default().capture_period_s;
    let mobile_mean = waldo_ml::stats::mean(&mobile_captures);
    println!(
        "mobile: {diverged}/{runs} runs hit the capture cap; mean {mobile_mean:.0} captures \
         vs {stationary_captures:.0} stationary — a {:.0}x slowdown \
         (paper: minimum 0.3 s with 'large percentages of no convergence')",
        mobile_mean / stationary_captures.max(1.0)
    );
    json!({
        "stationary_times_s": times,
        "stationary_mean_s": mean,
        "alpha_sweep": alpha_rows,
        "mobile_diverged": diverged,
        "mobile_runs": runs,
        "mobile_mean_captures": mobile_mean,
    })
}

/// Fig 18: CDF of CPU utilization during scan peaks, and the duty-cycle
/// average (paper: ≈2.35 % normalized over the 60 s scan interval).
pub fn fig18(ctx: &Context) -> Value {
    println!("# Fig 18 — CPU utilization of the detection pipeline (measured wall-clock)");
    let ch = TvChannel::new(47).expect("valid channel");
    let model = phone_model(ctx, ch);
    let mut rng = StdRng::seed_from_u64(18);

    // Thirty channel states per scan (the FCC scan list), repeated scans.
    let mut peaks = Vec::new();
    let mut duties = Vec::new();
    for s in 0..25 {
        let channels: Vec<(Point, Option<f64>)> = (0..30)
            .map(|_| {
                let p = Point::new(rng.gen_range(0.0..35_000.0), rng.gen_range(0.0..20_000.0));
                let ch = TvChannel::STUDY[rng.gen_range(0..TvChannel::STUDY.len())];
                let rss = ctx.world().field().rss_dbm(ch, p);
                (p, rss.is_finite().then_some(rss))
            })
            .collect();
        let mut phone = PhoneScanner::new(
            PhoneConfig::default(),
            SensorModel::rtl_sdr(),
            crate::MASTER_SEED + 500 + s,
        );
        let report = phone.scan(&model, &channels);
        peaks.push(report.peak_cpu_fraction * 100.0);
        duties.push(report.duty_cycle_cpu_fraction * 100.0);
    }
    let q = cdf_quantiles(&peaks);
    println!("peak CPU while scanning: p5 {:.2}%  p50 {:.2}%  p95 {:.2}%", q[0].1, q[2].1, q[4].1);
    println!(
        "duty-cycle average over the 60 s interval: {:.3}% (paper ≈ 2.35 %)",
        waldo_ml::stats::mean(&duties)
    );
    json!({
        "peak_cpu_percent": peaks,
        "duty_cycle_percent": duties,
        "duty_cycle_mean_percent": waldo_ml::stats::mean(&duties),
    })
}
