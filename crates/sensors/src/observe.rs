//! Field observations: one capture turned into the calibrated quantities
//! the rest of the system consumes.

use rand::Rng;
use serde::{Deserialize, Serialize};
use waldo_iq::{window::Window, FeatureVector};

use crate::{Calibration, SensorModel};

/// One calibrated field observation of one channel at one location.
///
/// # Examples
///
/// ```
/// use waldo_sensors::{Calibration, Observation, SensorModel};
/// use rand::SeedableRng;
///
/// let sensor = SensorModel::spectrum_analyzer();
/// let cal = Calibration::identity();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let obs = Observation::measure(&sensor, &cal, Some(-60.0), &mut rng);
/// assert!((obs.rss_dbm - -60.0).abs() < 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Calibrated channel-power estimate: pilot reading + 12 dB, mapped to
    /// dBm. This is the value Algorithm 1 compares against −84 dBm.
    pub rss_dbm: f64,
    /// The full calibrated feature vector (RSS/CFT/AFT and the screened-out
    /// candidates), dB values in dBm.
    pub features: FeatureVector,
    /// The uncalibrated pilot reading (raw dB), kept for Fig 5/6 plots.
    pub raw_pilot_db: f64,
}

impl Observation {
    /// Captures one frame of a channel whose true power at the antenna is
    /// `true_rss_dbm` (`None` = vacant) and derives all calibrated
    /// quantities.
    pub fn measure<R: Rng + ?Sized>(
        sensor: &SensorModel,
        calibration: &Calibration,
        true_rss_dbm: Option<f64>,
        rng: &mut R,
    ) -> Self {
        let _t = waldo_prof::scope("observe");
        let batch = sensor.capture_reading_batch(true_rss_dbm, rng);
        let extraction = FeatureVector::extract_from_batch(&batch, Window::Hann);
        let raw_pilot_db = extraction.pilot_db;
        let rss_dbm = calibration.to_dbm(raw_pilot_db) + 12.0;

        let raw_features = extraction.features;
        // The calibration map is affine in dB; apply it to each dB feature.
        // (`shifted_db` covers the slope-1 fast path exactly.)
        //
        // The RSS *feature* is the sensor's channel-power reading itself
        // (pilot + 12 dB), exactly what the paper feeds the classifier —
        // the wideband capture energy would be dominated by the device's
        // own in-capture noise floor and carry almost no signal.
        let shift_at = |raw: f64| calibration.to_dbm(raw) - raw;
        let features = FeatureVector {
            rss_db: rss_dbm,
            cft_db: calibration.to_dbm(raw_features.cft_db),
            aft_db: calibration.to_dbm(raw_features.aft_db),
            quadrature_imbalance_db: raw_features.quadrature_imbalance_db,
            iq_kurtosis: raw_features.iq_kurtosis,
            edge_bin_db: raw_features.edge_bin_db + shift_at(raw_features.edge_bin_db),
        };
        Self { rss_dbm, features, raw_pilot_db }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xD00D)
    }

    fn mean_rss(
        sensor: &SensorModel,
        cal: &Calibration,
        level: Option<f64>,
        n: usize,
        rng: &mut StdRng,
    ) -> f64 {
        let lin: f64 = (0..n)
            .map(|_| 10f64.powf(Observation::measure(sensor, cal, level, rng).rss_dbm / 10.0))
            .sum::<f64>()
            / n as f64;
        10.0 * lin.log10()
    }

    #[test]
    fn strong_channel_rss_is_calibrated() {
        let mut rng = rng();
        for sensor in [SensorModel::rtl_sdr(), SensorModel::usrp_b200()] {
            let cal = Calibration::factory(&sensor);
            let est = mean_rss(&sensor, &cal, Some(-60.0), 100, &mut rng);
            // Pilot = −71.3 dBm, +12 dB ⇒ estimate ≈ −59.3 dBm (the paper's
            // 12 dB vs the exact 11.3 dB leaves a +0.7 dB bias by design).
            assert!((est - -59.3).abs() < 1.0, "{}: {est}", sensor.kind());
        }
    }

    #[test]
    fn vacant_channel_saturates_at_effective_floor() {
        let mut rng = rng();
        let sensor = SensorModel::rtl_sdr().with_glitch_prob(0.0);
        let cal = Calibration::factory(&sensor);
        let est = mean_rss(&sensor, &cal, None, 150, &mut rng);
        // Effective vacant reading: pilot floor −100 + 12 = −88 dBm — only
        // ~4 dB of headroom below the −84 dBm decodability threshold,
        // which is exactly why the RTL-SDR loses efficiency.
        assert!((est - -88.0).abs() < 1.0, "got {est}");
        let usrp = SensorModel::usrp_b200().with_glitch_prob(0.0);
        let est = mean_rss(&usrp, &Calibration::factory(&usrp), None, 150, &mut rng);
        assert!((est - -91.0).abs() < 1.2, "usrp got {est}");
    }

    #[test]
    fn features_move_with_signal_level() {
        let mut rng = rng();
        let sensor = SensorModel::usrp_b200();
        let cal = Calibration::factory(&sensor);
        let strong = Observation::measure(&sensor, &cal, Some(-55.0), &mut rng);
        let weak = Observation::measure(&sensor, &cal, Some(-85.0), &mut rng);
        assert!(strong.features.cft_db > weak.features.cft_db + 15.0);
        assert!(strong.features.aft_db > weak.features.aft_db + 10.0);
        assert!(strong.features.rss_db > weak.features.rss_db + 10.0);
    }

    #[test]
    fn raw_reading_is_preserved_for_plots() {
        let mut rng = rng();
        let sensor = SensorModel::rtl_sdr();
        let cal = Calibration::factory(&sensor);
        let obs = Observation::measure(&sensor, &cal, Some(-60.0), &mut rng);
        // raw = rss − 11.3 + gain, roughly.
        assert!((obs.raw_pilot_db - (-60.0 - 11.3 + sensor.gain_db())).abs() < 3.0);
        // And the calibrated value is raw + intercept + 12.
        assert!((obs.rss_dbm - (cal.to_dbm(obs.raw_pilot_db) + 12.0)).abs() < 1e-9);
    }

    #[test]
    fn analyzer_is_accurate_at_the_decodability_threshold() {
        // The analyzer's -114 dBm pilot floor leaves ~19 dB of headroom at
        // the -84 dBm contour: its channel estimate there is unbiased.
        let mut rng = rng();
        let sa = SensorModel::spectrum_analyzer();
        let cal = Calibration::identity();
        let est = mean_rss(&sa, &cal, Some(-84.0), 200, &mut rng);
        assert!((est - -83.3).abs() < 1.0, "got {est}");
        // Deep below its floor the estimate saturates at floor + 12.
        let deep = mean_rss(&sa, &cal, Some(-130.0), 200, &mut rng);
        assert!((deep - -102.0).abs() < 1.5, "got {deep}");
    }
}
