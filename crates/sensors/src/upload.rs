//! Crowd-sourced upload samples: the compact per-reading record a phone
//! ships to the central constructor.
//!
//! The federated-ingestion literature (and the paper's own deployment
//! story) assumes devices upload *compact feature summaries*, not raw I/Q:
//! one [`ReadingSample`] is a location tag plus the calibrated channel
//! power and the full [`FeatureVector`] — everything the labeler and the
//! per-locality trainers need, and nothing else.

use rand::Rng;
use serde::{Deserialize, Serialize};
use waldo_geo::Point;
use waldo_iq::FeatureVector;

use crate::{Calibration, Observation, SensorModel};

/// One location-tagged reading in upload form.
///
/// # Examples
///
/// ```
/// use waldo_geo::Point;
/// use waldo_sensors::{Calibration, Observation, ReadingSample, SensorModel};
/// use rand::SeedableRng;
///
/// let sensor = SensorModel::spectrum_analyzer();
/// let cal = Calibration::identity();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let obs = Observation::measure(&sensor, &cal, Some(-70.0), &mut rng);
/// let sample = ReadingSample::new(Point::new(1_200.0, 800.0), &obs);
/// assert_eq!(sample.rss_dbm, obs.rss_dbm);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadingSample {
    /// Where the reading was taken, local frame (metres).
    pub location: Point,
    /// Calibrated channel-power estimate, dBm (the Algorithm-1 input).
    pub rss_dbm: f64,
    /// The full calibrated feature vector.
    pub features: FeatureVector,
}

impl ReadingSample {
    /// Converts a calibrated [`Observation`] into its upload form.
    pub fn new(location: Point, observation: &Observation) -> Self {
        Self { location, rss_dbm: observation.rss_dbm, features: observation.features }
    }

    /// Captures one observation at `location` and converts it in one step —
    /// the whole phone-side pipeline from antenna to upload record.
    pub fn capture<R: Rng + ?Sized>(
        location: Point,
        sensor: &SensorModel,
        calibration: &Calibration,
        true_rss_dbm: Option<f64>,
        rng: &mut R,
    ) -> Self {
        Self::new(location, &Observation::measure(sensor, calibration, true_rss_dbm, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_mirrors_its_observation() {
        let mut rng = StdRng::seed_from_u64(9);
        let sensor = SensorModel::usrp_b200();
        let cal = Calibration::factory(&sensor);
        let obs = Observation::measure(&sensor, &cal, Some(-65.0), &mut rng);
        let sample = ReadingSample::new(Point::new(10.0, 20.0), &obs);
        assert_eq!(sample.rss_dbm, obs.rss_dbm);
        assert_eq!(sample.features, obs.features);
        assert_eq!(sample.location, Point::new(10.0, 20.0));
    }

    #[test]
    fn capture_is_measure_plus_tagging() {
        let sensor = SensorModel::rtl_sdr();
        let cal = Calibration::factory(&sensor);
        let direct = {
            let mut rng = StdRng::seed_from_u64(11);
            Observation::measure(&sensor, &cal, Some(-70.0), &mut rng)
        };
        let captured = {
            let mut rng = StdRng::seed_from_u64(11);
            ReadingSample::capture(Point::new(5.0, 6.0), &sensor, &cal, Some(-70.0), &mut rng)
        };
        assert_eq!(captured, ReadingSample::new(Point::new(5.0, 6.0), &direct));
    }
}
