//! Wired calibration against a signal generator (§2.1).
//!
//! The paper calibrates the RTL-SDR and USRP with an Agilent E4422B over a
//! wired connection, fitting "a linear function that maps different input
//! levels to their corresponding output readings". [`calibrate`] reproduces
//! that: drive the sensor with known tone levels, average its raw pilot
//! readings, and least-squares fit the raw → dBm line (discarding levels
//! swallowed by the noise floor, which would bend the fit).

use rand::Rng;
use serde::{Deserialize, Serialize};
use waldo_iq::FrameSynthesizer;

use crate::SensorModel;

/// A laboratory signal generator producing a CW tone at a known level, or
/// nothing at all ("No signal" in Fig 5).
///
/// # Examples
///
/// ```
/// use waldo_sensors::{SensorModel, SignalGenerator};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let generator = SignalGenerator::tone(-50.0);
/// let raw = generator.drive(&SensorModel::rtl_sdr(), &mut rng);
/// assert!((raw - (-50.0 + SensorModel::rtl_sdr().gain_db())).abs() < 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SignalGenerator {
    level_dbm: Option<f64>,
}

impl SignalGenerator {
    /// A tone at `level_dbm`.
    pub fn tone(level_dbm: f64) -> Self {
        Self { level_dbm: Some(level_dbm) }
    }

    /// No output (noise-floor characterization).
    pub fn off() -> Self {
        Self { level_dbm: None }
    }

    /// The configured level, if any.
    pub fn level_dbm(&self) -> Option<f64> {
        self.level_dbm
    }

    /// Drives `sensor` over the wired connection and returns one raw pilot
    /// reading (dB, uncalibrated). Wired operation bypasses over-the-air
    /// impairments but keeps the device's own gain wobble and floor.
    pub fn drive<R: Rng + ?Sized>(&self, sensor: &SensorModel, rng: &mut R) -> f64 {
        use waldo_iq::{window::Window, FeatureVector};
        let wobble = sensor.reading_sigma_db() * waldo_iq::synth::standard_normal(rng);
        let mut synth =
            FrameSynthesizer::new(sensor.frame_len()).noise_dbfs(sensor.capture_noise_raw_db());
        if let Some(level) = self.level_dbm {
            synth = synth.pilot_dbfs(level + sensor.gain_db() + wobble);
        }
        let batch = synth.synthesize_batch(sensor.frames_per_reading(), rng);
        FeatureVector::extract_from_batch(&batch, Window::Hann).pilot_db
    }
}

/// Errors from the calibration procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalibrationError {
    /// Fewer than two usable (above-floor) levels remain.
    TooFewLevels,
    /// The usable levels produced a degenerate (flat) fit.
    Degenerate,
}

impl std::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrationError::TooFewLevels => {
                write!(f, "need at least two calibration levels above the noise floor")
            }
            CalibrationError::Degenerate => write!(f, "calibration points produced a flat fit"),
        }
    }
}

impl std::error::Error for CalibrationError {}

/// A linear raw-reading → dBm map.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    slope: f64,
    intercept_dbm: f64,
}

impl Calibration {
    /// The identity map (used by the spectrum analyzer, which reads dBm
    /// natively).
    pub fn identity() -> Self {
        Self { slope: 1.0, intercept_dbm: 0.0 }
    }

    /// An exact factory calibration for `sensor` (slope 1, intercept
    /// −gain); field experiments use [`calibrate`] instead to exercise the
    /// full procedure.
    pub fn factory(sensor: &SensorModel) -> Self {
        Self { slope: 1.0, intercept_dbm: -sensor.gain_db() }
    }

    /// Fitted slope (≈ 1 for a well-behaved energy detector).
    pub fn slope(&self) -> f64 {
        self.slope
    }

    /// Fitted intercept in dBm.
    pub fn intercept_dbm(&self) -> f64 {
        self.intercept_dbm
    }

    /// Maps a raw reading (dB) to input-referred dBm.
    pub fn to_dbm(&self, raw_db: f64) -> f64 {
        self.slope * raw_db + self.intercept_dbm
    }
}

/// Runs the wired calibration: `frames_per_level` captures at each level in
/// `levels_dbm`, keeping levels whose mean reading clears the sensor's raw
/// noise floor by 3 dB, then fitting the raw → dBm line.
///
/// # Errors
///
/// Returns [`CalibrationError`] if fewer than two levels survive the floor
/// cut or the fit degenerates.
///
/// # Panics
///
/// Panics if `frames_per_level == 0`.
pub fn calibrate<R: Rng + ?Sized>(
    sensor: &SensorModel,
    levels_dbm: &[f64],
    frames_per_level: usize,
    rng: &mut R,
) -> Result<Calibration, CalibrationError> {
    assert!(frames_per_level > 0, "need at least one frame per level");
    // Floor reference from a generator-off run.
    let off = SignalGenerator::off();
    let floor_raw =
        mean_db(&(0..frames_per_level.max(20)).map(|_| off.drive(sensor, rng)).collect::<Vec<_>>());

    let mut points: Vec<(f64, f64)> = Vec::new(); // (raw, dBm)
    for &level in levels_dbm {
        let generator = SignalGenerator::tone(level);
        let raws: Vec<f64> = (0..frames_per_level).map(|_| generator.drive(sensor, rng)).collect();
        let raw = mean_db(&raws);
        if raw > floor_raw + 3.0 {
            points.push((raw, level));
        }
    }
    if points.len() < 2 {
        return Err(CalibrationError::TooFewLevels);
    }
    // Inline 1-D OLS (y = dBm, x = raw).
    let n = points.len() as f64;
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my = points.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum();
    let sxy: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    if sxx < 1e-9 {
        return Err(CalibrationError::Degenerate);
    }
    let slope = sxy / sxx;
    Ok(Calibration { slope, intercept_dbm: my - slope * mx })
}

/// Power-domain mean of dB values.
fn mean_db(vals: &[f64]) -> f64 {
    let lin: f64 = vals.iter().map(|v| 10f64.powf(v / 10.0)).sum::<f64>() / vals.len() as f64;
    10.0 * lin.log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xCAFE)
    }

    #[test]
    fn calibration_recovers_the_device_gain() {
        let mut rng = rng();
        for sensor in [SensorModel::rtl_sdr(), SensorModel::usrp_b200()] {
            let cal =
                calibrate(&sensor, &[-90.0, -80.0, -70.0, -60.0, -50.0], 40, &mut rng).unwrap();
            assert!((cal.slope() - 1.0).abs() < 0.03, "{}: slope {}", sensor.kind(), cal.slope());
            // A raw reading equal to gain must map back to ~0 dBm.
            let back = cal.to_dbm(sensor.gain_db());
            assert!(back.abs() < 1.0, "{}: {back}", sensor.kind());
        }
    }

    #[test]
    fn calibration_roundtrips_unseen_levels() {
        let mut rng = rng();
        let sensor = SensorModel::usrp_b200();
        let cal = calibrate(&sensor, &[-85.0, -70.0, -55.0], 40, &mut rng).unwrap();
        // Probe a level not in the calibration set.
        let raws: Vec<f64> =
            (0..60).map(|_| SignalGenerator::tone(-63.0).drive(&sensor, &mut rng)).collect();
        let est = cal.to_dbm(mean_db(&raws));
        assert!((est - -63.0).abs() < 1.0, "estimated {est}");
    }

    #[test]
    fn below_floor_levels_are_discarded() {
        let mut rng = rng();
        let sensor = SensorModel::rtl_sdr();
        // Two levels below the −98 dBm floor, two above: fit must use the
        // two above and stay linear.
        let cal = calibrate(&sensor, &[-120.0, -110.0, -70.0, -50.0], 40, &mut rng).unwrap();
        assert!((cal.slope() - 1.0).abs() < 0.05, "slope {}", cal.slope());
    }

    #[test]
    fn all_below_floor_fails() {
        let mut rng = rng();
        let sensor = SensorModel::rtl_sdr();
        assert_eq!(
            calibrate(&sensor, &[-130.0, -125.0, -120.0], 30, &mut rng),
            Err(CalibrationError::TooFewLevels)
        );
    }

    #[test]
    fn factory_calibration_matches_fitted_calibration() {
        let mut rng = rng();
        let sensor = SensorModel::usrp_b200();
        let fitted = calibrate(&sensor, &[-90.0, -70.0, -50.0], 60, &mut rng).unwrap();
        let factory = Calibration::factory(&sensor);
        for raw in [-60.0, -40.0, -20.0] {
            assert!((fitted.to_dbm(raw) - factory.to_dbm(raw)).abs() < 1.5);
        }
    }

    #[test]
    fn identity_is_identity() {
        let cal = Calibration::identity();
        assert_eq!(cal.to_dbm(-84.0), -84.0);
    }

    #[test]
    fn generator_off_reads_floor() {
        let mut rng = rng();
        let sensor = SensorModel::spectrum_analyzer();
        let raws: Vec<f64> =
            (0..60).map(|_| SignalGenerator::off().drive(&sensor, &mut rng)).collect();
        let floor = mean_db(&raws);
        assert!((floor - -114.0).abs() < 1.0, "floor {floor}");
    }
}
