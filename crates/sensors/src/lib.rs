//! Sensor substrate: parametric models of the three devices the paper
//! drives around Atlanta, plus the wired calibration procedure of §2.1.
//!
//! * [`SensorModel::rtl_sdr`] — the $15 dongle: very stable readings
//!   (Fig 5c/d shows little variability) but an effective narrowband floor
//!   of ≈ −98 dBm, only ~2 dB below the −84 dBm decodability threshold
//!   once the +12 dB pilot-to-channel correction is applied. That bias is
//!   what costs it efficiency (39.8 % misdetections in §2.2).
//! * [`SensorModel::usrp_b200`] — the $686 SDR: sensitive to ≈ −103 dBm but
//!   with visibly noisier readings (Fig 5a), which costs it safety
//!   (5.2 % false alarms).
//! * [`SensorModel::spectrum_analyzer`] — the $25k FieldFox-class reference
//!   used as ground truth (−114 dBm, tight readings).
//!
//! The measurement pipeline is faithful to the paper: each observation is a
//! 256-sample I/Q capture; the *narrowband pilot* estimator (+12 dB) turns
//! it into a channel-power reading; a wired [`calibrate`] run against a
//! [`SignalGenerator`] learns the linear raw-to-dBm map that is then
//! applied in the field.

mod calibration;
mod model;
mod observe;
mod upload;

pub use calibration::{calibrate, Calibration, CalibrationError, SignalGenerator};
pub use model::{SensorKind, SensorModel};
pub use observe::Observation;
pub use upload::ReadingSample;
